"""Shim for offline editable installs (``pip install -e . --no-use-pep517``).

All real metadata lives in ``pyproject.toml``; this file exists only because
the build environment has no ``wheel`` package, which PEP 660 editable
installs require with this setuptools version.
"""

from setuptools import setup

setup()
