"""Exception hierarchy for the patternlets reproduction library.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` and friends) propagate.

The hierarchy mirrors the system inventory in ``DESIGN.md``:

- :class:`SchedulerError` and friends come from the execution substrate
  (``repro.sched``).
- :class:`SmpError` subclasses come from the shared-memory (OpenMP-analogue)
  runtime (``repro.smp``).
- :class:`MpError` subclasses come from the message-passing (MPI-analogue)
  runtime (``repro.mp``).
- :class:`RegistryError` comes from the patternlet registry (``repro.core``).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchedulerError",
    "DeadlockError",
    "TaskFailedError",
    "ParallelError",
    "SmpError",
    "TeamBrokenError",
    "ScheduleError",
    "ReductionError",
    "MpError",
    "RankFailedError",
    "CommError",
    "IsolationError",
    "TruncationError",
    "CollectiveError",
    "RegistryError",
    "ToggleError",
    "BatchError",
    "CacheUnserializable",
]


class ReproError(Exception):
    """Base class for every exception raised by this library."""


# ---------------------------------------------------------------------------
# Execution substrate (repro.sched)
# ---------------------------------------------------------------------------


class SchedulerError(ReproError):
    """A failure inside the task-execution substrate."""


class DeadlockError(SchedulerError):
    """Every live task is blocked and no progress is possible.

    Raised by the lockstep executor when its runnable set empties, and by the
    threaded executor's watchdog when no task makes progress within the
    configured timeout.  The message names the blocked tasks and what each
    one was waiting for, which is itself a teaching aid: the paper's
    ``messagePassing2``/deadlock patternlets exist to provoke exactly this.
    """

    def __init__(self, message: str, blocked: dict[str, str] | None = None):
        super().__init__(message)
        #: Mapping of task label -> human-readable description of its wait.
        self.blocked: dict[str, str] = dict(blocked or {})


class TaskFailedError(SchedulerError):
    """A single task raised; carries the original exception."""

    def __init__(self, label: str, cause: BaseException):
        super().__init__(f"task {label!r} failed: {cause!r}")
        self.label = label
        self.cause = cause


class ParallelError(SchedulerError):
    """One or more tasks in a fork-join group raised.

    Aggregates every per-task failure so a crash in thread 3 is not masked
    by a secondary :class:`TeamBrokenError` in thread 0.
    """

    def __init__(self, failures: list[TaskFailedError]):
        self.failures = list(failures)
        lines = ", ".join(f.label for f in self.failures)
        super().__init__(
            f"{len(self.failures)} task(s) failed: {lines}"
        )

    @property
    def causes(self) -> list[BaseException]:
        """The original exceptions, in task order."""
        return [f.cause for f in self.failures]


# ---------------------------------------------------------------------------
# Shared-memory runtime (repro.smp)
# ---------------------------------------------------------------------------


class SmpError(ReproError):
    """A failure inside the shared-memory (OpenMP-analogue) runtime."""


class TeamBrokenError(SmpError):
    """A collective operation aborted because a teammate died.

    When one thread of a team raises, any teammate blocked in a barrier,
    reduction, or ``single`` region would otherwise wait forever; instead
    the synchronisation primitives observe the team's failed flag and raise
    this error so the whole region unwinds promptly.
    """


class ScheduleError(SmpError):
    """An invalid loop schedule specification (unknown kind, chunk <= 0, ...)."""


class ReductionError(SmpError):
    """An invalid reduction (unknown operator, inconsistent identity, ...)."""


# ---------------------------------------------------------------------------
# Message-passing runtime (repro.mp)
# ---------------------------------------------------------------------------


class MpError(ReproError):
    """A failure inside the message-passing (MPI-analogue) runtime."""


class RankFailedError(MpError):
    """A rank's main function raised; carries rank and original exception."""

    def __init__(self, rank: int, cause: BaseException):
        super().__init__(f"rank {rank} failed: {cause!r}")
        self.rank = rank
        self.cause = cause


class CommError(MpError):
    """Misuse of the communicator API (bad rank, bad tag, use after free)."""


class IsolationError(MpError):
    """A message payload could not be copied by value.

    The runtime enforces distributed-memory semantics by pickling every
    payload; objects that cannot be pickled (open files, locks, ...) would
    silently share state between ranks, so they are rejected eagerly.
    """


class TruncationError(MpError):
    """A receive buffer was too small for the matched message (MPI_ERR_TRUNCATE)."""


class CollectiveError(MpError):
    """Inconsistent participation in a collective (mismatched root, counts...)."""


# ---------------------------------------------------------------------------
# Patternlet framework (repro.core)
# ---------------------------------------------------------------------------


class RegistryError(ReproError):
    """Unknown patternlet, duplicate registration, or bad metadata."""


class ToggleError(ReproError):
    """Unknown toggle name passed to a patternlet run."""


# ---------------------------------------------------------------------------
# Batch execution layer (repro.batch)
# ---------------------------------------------------------------------------


class BatchError(ReproError):
    """A failure in the batch runner (bad spec grid, broken worker pool)."""


class CacheUnserializable(BatchError):
    """A run (or spec) cannot be expressed as a cache record.

    Raised when a trace carries values outside the cache's canonical JSON
    vocabulary, when the trace is incomplete (dropped/evicted events), or
    when a spec's extras defeat key derivation.  Callers treat it as
    "execute live, don't cache" — never as a run failure.
    """
