"""Reduction operators shared by the SMP and MP runtimes.

The paper's Section III.D lists the combining operations both OpenMP and MPI
support for the *Reduction* pattern: sum, product, min, max, min/max with
location, logical and/or/xor, bitwise and/or/xor, plus user-defined
associative operations.  This module defines all of them once as
:class:`Op` objects; ``repro.smp`` exposes them under their OpenMP clause
spellings (``"+"``, ``"*"``, ``"&&"``, ...) and ``repro.mp`` under their MPI
names (``SUM``, ``PROD``, ``LAND``, ...).

An :class:`Op` is a binary function plus an optional identity element.  Ops
must be associative (MPI requires this of user ops too — the runtime's tree
reductions reassociate freely); commutativity is tracked so future
optimisations could exploit it, but the built-in trees never reorder
operands across ranks, so non-commutative associative ops are safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce as _functools_reduce
from typing import Any, Callable, Iterable

from repro.errors import ReductionError

__all__ = [
    "Op",
    "SUM",
    "PROD",
    "MIN",
    "MAX",
    "MINLOC",
    "MAXLOC",
    "LAND",
    "LOR",
    "LXOR",
    "BAND",
    "BOR",
    "BXOR",
    "BUILTIN_OPS",
    "OMP_OPERATORS",
    "resolve_op",
    "sequential_reduce",
]


@dataclass(frozen=True)
class Op:
    """A named associative combining operation.

    Parameters
    ----------
    name:
        MPI-style name (``"SUM"``); used in diagnostics.
    fn:
        Binary function combining two partial results.
    identity:
        Identity element, or ``None`` if the op has no usable identity (the
        runtimes then seed reductions with the first contribution instead).
    commutative:
        Whether operand order is irrelevant.
    """

    name: str
    fn: Callable[[Any, Any], Any]
    identity: Any = None
    commutative: bool = True

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Op({self.name})"

    @staticmethod
    def create(
        fn: Callable[[Any, Any], Any],
        *,
        name: str = "USER",
        identity: Any = None,
        commutative: bool = True,
    ) -> "Op":
        """Create a user-defined op (MPI's ``MPI_Op_create`` analogue).

        The function must be associative; the runtimes' tree reductions
        rely on it.
        """
        return Op(name=name, fn=fn, identity=identity, commutative=commutative)


def _minloc(a: tuple[Any, int], b: tuple[Any, int]) -> tuple[Any, int]:
    # Ties resolve to the lower index, matching MPI_MINLOC.
    if b[0] < a[0] or (b[0] == a[0] and b[1] < a[1]):
        return b
    return a


def _maxloc(a: tuple[Any, int], b: tuple[Any, int]) -> tuple[Any, int]:
    if b[0] > a[0] or (b[0] == a[0] and b[1] < a[1]):
        return b
    return a


SUM = Op("SUM", lambda a, b: a + b, identity=0)
PROD = Op("PROD", lambda a, b: a * b, identity=1)
MIN = Op("MIN", lambda a, b: b if b < a else a)
MAX = Op("MAX", lambda a, b: b if b > a else a)
MINLOC = Op("MINLOC", _minloc)
MAXLOC = Op("MAXLOC", _maxloc)
LAND = Op("LAND", lambda a, b: bool(a) and bool(b), identity=True)
LOR = Op("LOR", lambda a, b: bool(a) or bool(b), identity=False)
LXOR = Op("LXOR", lambda a, b: bool(a) != bool(b), identity=False)
BAND = Op("BAND", lambda a, b: a & b, identity=-1)
BOR = Op("BOR", lambda a, b: a | b, identity=0)
BXOR = Op("BXOR", lambda a, b: a ^ b, identity=0)

#: Every built-in op, keyed by MPI-style name.
BUILTIN_OPS: dict[str, Op] = {
    op.name: op
    for op in (SUM, PROD, MIN, MAX, MINLOC, MAXLOC, LAND, LOR, LXOR, BAND, BOR, BXOR)
}

#: The OpenMP ``reduction(<operator>: var)`` clause spellings.
OMP_OPERATORS: dict[str, Op] = {
    "+": SUM,
    "*": PROD,
    "min": MIN,
    "max": MAX,
    "&": BAND,
    "|": BOR,
    "^": BXOR,
    "&&": LAND,
    "||": LOR,
}


def resolve_op(op: "Op | str") -> Op:
    """Accept an :class:`Op`, an MPI name, or an OpenMP operator spelling."""
    if isinstance(op, Op):
        return op
    if isinstance(op, str):
        if op in BUILTIN_OPS:
            return BUILTIN_OPS[op]
        if op in OMP_OPERATORS:
            return OMP_OPERATORS[op]
        known = sorted(BUILTIN_OPS) + sorted(OMP_OPERATORS)
        raise ReductionError(f"unknown reduction op {op!r} (known: {known})")
    raise ReductionError(f"reduction op must be Op or str, got {type(op).__name__}")


def sequential_reduce(op: "Op | str", values: Iterable[Any]) -> Any:
    """The sequential specification every parallel reduction must match.

    Left fold of ``values`` in order.  The identity is used only for an
    empty input — matching MPI semantics, where reducing a single value
    returns it untouched (never normalised through the operator, which
    matters for type-coercing ops like LOR).  Property-based tests compare
    tree reductions against this.
    """
    op = resolve_op(op)
    values = list(values)
    if not values:
        if op.identity is None:
            raise ReductionError(f"empty reduction with identity-free op {op.name}")
        return op.identity
    return _functools_reduce(op.fn, values)
