"""The ``patternlet`` command-line tool.

The classroom front-end: list the collection, show a patternlet's card
(patterns, toggles with their C pragmas, the student exercise), and run
one — scaling tasks, flipping toggles, choosing the executor and seed —
exactly the workflow of the paper's live-coding demos:

    patternlet list
    patternlet list --backend openmp
    patternlet show openmp.barrier
    patternlet run openmp.barrier --tasks 4
    patternlet run openmp.barrier --tasks 4 --on barrier
    patternlet run mpi.deadlock --tasks 4 --mode lockstep --seed 7
    patternlet run mpi.broadcast --np 8 --topology ring
    patternlet sweep openmp.reduction --on parallel_for --seeds 0-15
    patternlet sweep mpi.broadcast --np 2,4,8,16,32 --topology flat,binomial
    patternlet sweep --fleet 2 --telemetry telem --telemetry-port 9178
    patternlet fleet-report telem --out fleet_report.html
    patternlet metrics-serve telem --once
    patternlet bench --quick --check BENCH_runtime.json
    patternlet catalog

``sweep`` and ``selfcheck`` go through :mod:`repro.batch`: runs fan
across a persistent worker pool (``--jobs``) and deterministic runs are
served from the content-addressed run cache (``--no-cache`` or
``REPRO_CACHE=0`` to opt out).

MPI runs accept ``--topology`` (communicator algorithm set: ``flat``,
``binomial``, ``ring``, ``hierarchical``; default from the
``REPRO_TOPOLOGY`` env var, else binomial) and ``--network`` (link-cost
profile: ``uniform``, ``hetero2``, ``hetero4``).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro._version import __version__
from repro.core.patterns import CATALOG, LAYERS, patterns_by_layer
from repro.core.registry import all_patternlets, get_patternlet, inventory, run_patternlet
from repro.errors import ReproError

__all__ = ["main", "build_parser"]


class _VersionAction(argparse.Action):
    """``--version`` with the engine fingerprint.

    The fingerprint (a hash over the engine sources, the same one the
    run-cache keys embed) is resolved lazily so plain parses never pay
    for it; it makes every version string attributable to an exact
    engine build, matching the header of metrics and report artifacts.
    """

    def __init__(self, option_strings, dest, **kwargs):
        kwargs.setdefault("nargs", 0)
        kwargs.setdefault("help", "show version and engine fingerprint, then exit")
        super().__init__(option_strings, dest, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        from repro.batch.specs import engine_fingerprint

        print(f"{parser.prog} {__version__} (engine {engine_fingerprint()})")
        parser.exit(0)


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the ``patternlet`` tool (see module docstring)."""
    parser = argparse.ArgumentParser(
        prog="patternlet",
        description="Run and explore the patternlet collection.",
    )
    parser.add_argument("--version", action=_VersionAction, dest="version")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list patternlets (optionally by backend)")
    p_list.add_argument("--backend", choices=("openmp", "mpi", "pthreads", "hybrid"))

    p_show = sub.add_parser("show", help="show one patternlet's card")
    p_show.add_argument("name")

    p_run = sub.add_parser("run", help="run a patternlet")
    p_run.add_argument("name")
    p_run.add_argument("--tasks", "-n", "--np", type=int, default=None,
                       help="thread/process count (default: the patternlet's own)")
    p_run.add_argument("--on", action="append", default=[], metavar="TOGGLE",
                       help="uncomment a toggle (repeatable)")
    p_run.add_argument("--off", action="append", default=[], metavar="TOGGLE",
                       help="comment a toggle out (repeatable)")
    p_run.add_argument("--mode", choices=("thread", "lockstep"), default="lockstep",
                       help="executor: real threads or deterministic lockstep")
    p_run.add_argument("--seed", type=int, default=0, help="lockstep interleaving seed")
    p_run.add_argument("--repeat", type=int, default=1, metavar="N",
                       help="run N times back-to-back (reusing the rank-thread "
                            "pool) and report per-run timing; output shown once")
    p_run.add_argument("--policy", default="random",
                       choices=("random", "roundrobin", "fifo", "lifo"))
    p_run.add_argument("--topology", default=None, metavar="NAME",
                       help="communicator topology for MPI worlds (flat, "
                            "binomial, ring, hierarchical; default: "
                            "$REPRO_TOPOLOGY or binomial)")
    p_run.add_argument("--network", default=None, metavar="PROFILE",
                       help="network cost profile (uniform, hetero2, hetero4)")
    p_run.add_argument("--attribute", action="store_true",
                       help="prefix every line with the task that printed it")
    p_run.add_argument("--detect-races", action="store_true",
                       help="prove (or refute) data races on shared cells "
                            "via happens-before analysis of the run's trace")
    p_run.add_argument("--metrics", action="store_true",
                       help="print the run's metrics as OpenMetrics text")
    p_run.add_argument("--metrics-out", metavar="FILE", default=None,
                       help="write run metrics to FILE (.json for the JSON "
                            "document, anything else for OpenMetrics text)")

    p_trace = sub.add_parser(
        "trace", help="run a patternlet and draw its interleaving timeline"
    )
    p_trace.add_argument("name")
    p_trace.add_argument("--tasks", "-n", "--np", type=int, default=None)
    p_trace.add_argument("--on", action="append", default=[], metavar="TOGGLE")
    p_trace.add_argument("--off", action="append", default=[], metavar="TOGGLE")
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--policy", default="random",
                         choices=("random", "roundrobin", "fifo", "lifo"))
    p_trace.add_argument("--no-legend", action="store_true",
                         help="omit the numbered line legend")
    p_trace.add_argument("--events", action="store_true",
                         help="draw lanes over the full event trace, not "
                              "just the printed lines")
    p_trace.add_argument("--json", action="store_true",
                         help="print the run's trace as Chrome trace-event "
                              "JSON instead of drawing lanes")
    p_trace.add_argument("--out", metavar="FILE", default=None,
                         help="write the Chrome trace-event JSON to FILE "
                              "(open in a trace viewer)")

    p_report = sub.add_parser(
        "report", help="run a patternlet and write a self-contained HTML "
                       "run report (Gantt, message heatmap, blocked time, "
                       "load balance, race verdict)"
    )
    p_report.add_argument("name")
    p_report.add_argument("--tasks", "-n", "--np", type=int, default=None,
                          help="thread/process count (default: the patternlet's own)")
    p_report.add_argument("--on", action="append", default=[], metavar="TOGGLE")
    p_report.add_argument("--off", action="append", default=[], metavar="TOGGLE")
    p_report.add_argument("--seed", type=int, default=0)
    p_report.add_argument("--policy", default="random",
                          choices=("random", "roundrobin", "fifo", "lifo"))
    p_report.add_argument("--out", metavar="FILE", default=None,
                          help="output path (default <name>_report.html)")

    p_source = sub.add_parser(
        "source", help="print a patternlet's source (its module, like cat-ing the .c file)"
    )
    p_source.add_argument("name")

    p_check = sub.add_parser(
        "selfcheck", help="verify the collection reproduces the paper's figures"
    )
    p_check.add_argument("--figure", default=None, help='e.g. "Fig. 9"')
    p_check.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes for the check batch "
                              "(default 1 = in-process)")
    p_check.add_argument("--no-cache", action="store_true",
                         help="recompute every run; skip the run cache")
    p_check.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="run-cache location (default ~/.cache/repro-runs)")

    p_sweep = sub.add_parser(
        "sweep", help="run a seeds x tasks grid through the batch runner "
                      "(race scan / exam study / lab grading)"
    )
    p_sweep.add_argument("names", nargs="*", metavar="NAME",
                         help="patternlet ids (default: the deterministic "
                              "figure-suite grid)")
    p_sweep.add_argument("--seeds", default="0-7", metavar="SPEC",
                         help='seed set, e.g. "0-7" or "0,3,11" (default 0-7)')
    p_sweep.add_argument("--tasks", "--np", default=None, metavar="LIST",
                         help='comma-separated task counts, e.g. "2,4,8" '
                              "(default: each patternlet's own)")
    p_sweep.add_argument("--topology", default=None, metavar="LIST",
                         help='comma-separated communicator topologies, e.g. '
                              '"flat,binomial" — crossed with the grid '
                              "(default: $REPRO_TOPOLOGY or binomial)")
    p_sweep.add_argument("--network", default=None, metavar="PROFILE",
                         help="network cost profile for every run "
                              "(uniform, hetero2, hetero4)")
    p_sweep.add_argument("--on", action="append", default=[], metavar="TOGGLE",
                         help="uncomment a toggle for every run (repeatable)")
    p_sweep.add_argument("--off", action="append", default=[], metavar="TOGGLE",
                         help="comment a toggle out for every run (repeatable)")
    p_sweep.add_argument("--policy", default="random",
                         choices=("random", "roundrobin", "fifo", "lifo"))
    p_sweep.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="worker processes (default: auto; REPRO_JOBS "
                              "overrides the auto heuristic)")
    p_sweep.add_argument("--fleet", type=int, default=None, metavar="N",
                         help="run the grid on N persistent fleet workers "
                              "(file-based job messenger + work stealing; "
                              "0 = auto-size, default: REPRO_FLEET_WORKERS "
                              "else off)")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="recompute every run; skip the run cache")
    p_sweep.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="run-cache location (default ~/.cache/repro-runs)")
    p_sweep.add_argument("--telemetry", nargs="?", const="fleet-telemetry",
                         default=None, metavar="DIR",
                         help="(fleet only) journal every worker, export the "
                              "merged batch telemetry to DIR (default "
                              "fleet-telemetry/) — render it with "
                              "'patternlet fleet-report DIR'")
    p_sweep.add_argument("--telemetry-port", type=int, default=None,
                         metavar="PORT",
                         help="with --telemetry: serve live OpenMetrics over "
                              "the running fleet on PORT (0 = ephemeral)")
    p_sweep.add_argument("--keep-fleet-dir", action="store_true",
                         help="keep the fleet's message directory (skip the "
                              "per-batch cleanup and shutdown removal) for "
                              "post-mortem inspection")
    p_sweep.add_argument("--per-run", action="store_true",
                         help="print one line per run, not per group")
    p_sweep.add_argument("--quick", action="store_true",
                         help="small canned grid (CI smoke: seeds 0-3)")
    p_sweep.add_argument("--stats-out", metavar="FILE", default=None,
                         help="write batch/cache statistics as JSON")

    p_bench = sub.add_parser(
        "bench", help="measure engine throughput (msgs/s, switches/s, "
                      "collective latency, figure-suite wall clock)"
    )
    p_bench.add_argument("--quick", action="store_true",
                         help="~5x fewer iterations (CI smoke runs)")
    p_bench.add_argument("--out", metavar="FILE", default=None,
                         help="write results as JSON (e.g. BENCH_runtime.json)")
    p_bench.add_argument("--check", metavar="BASELINE", default=None,
                         help="compare against a baseline JSON; exit 1 if any "
                              "throughput metric drops more than --tolerance")
    p_bench.add_argument("--tolerance", type=float, default=0.30,
                         help="allowed throughput drop vs baseline (default 0.30)")
    p_bench.add_argument("--topology", default=None, metavar="NAME",
                         help="pin the collective-latency benches to one "
                              "communicator topology (default: report the "
                              "fastest per np)")
    p_bench.add_argument("--fleet", type=int, default=None, metavar="N",
                         help="worker count for the fleet sweep benches "
                              "(default: 2)")

    p_daemon = sub.add_parser(
        "serve",
        help="run the patternlet service daemon: POST /run and /sweep with "
             "request coalescing and admission control over the shared run "
             "cache (SIGTERM/Ctrl-C drains in-flight runs)",
    )
    p_daemon.add_argument("--host", default="127.0.0.1")
    p_daemon.add_argument("--port", type=int, default=8097,
                          help="listen port (default 8097; 0 = ephemeral)")
    p_daemon.add_argument("--workers", type=int, default=1, metavar="N",
                          help="execution concurrency: 1 = one in-process "
                               "lane (default), N>1 = N persistent worker "
                               "processes")
    p_daemon.add_argument("--queue-limit", type=int, default=32, metavar="N",
                          help="admitted-but-waiting executions beyond the "
                               "worker count before 429 shedding (default 32)")
    p_daemon.add_argument("--deadline-ms", type=float, default=10_000.0,
                          help="max milliseconds an admitted execution may "
                               "queue before 503 (default 10000)")
    p_daemon.add_argument("--no-cache", action="store_true",
                          help="bypass the run cache (every distinct request "
                               "executes; identical concurrent requests still "
                               "coalesce)")
    p_daemon.add_argument("--cache-dir", default=None, metavar="DIR",
                          help="run-cache root (default: REPRO_CACHE_DIR or "
                               "~/.cache/repro-runs)")
    p_daemon.add_argument("--max-cells", type=int, default=256, metavar="N",
                          help="largest grid one POST /sweep may expand to "
                               "(default 256)")
    p_daemon.add_argument("--fleet", type=int, default=None, metavar="N",
                          help="route large /sweep grids to an N-worker "
                               "sweep fleet (default: off)")
    p_daemon.add_argument("--telemetry-dir", default=None, metavar="DIR",
                          help="fleet journal directory folded into /metrics")
    p_daemon.add_argument("--drain-timeout", type=float, default=10.0,
                          metavar="S",
                          help="seconds shutdown waits for in-flight runs "
                               "(default 10)")

    p_serve = sub.add_parser(
        "metrics-serve",
        help="serve (or print) the merged OpenMetrics view of a fleet "
             "directory or telemetry export — the /metrics endpoint the "
             "service daemon will mount",
    )
    p_serve.add_argument("dir", metavar="DIR",
                         help="a live fleet root or an exported telemetry "
                              "directory (from sweep --telemetry)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="listen port (default 0 = ephemeral)")
    p_serve.add_argument("--once", action="store_true",
                         help="print one rendered scrape to stdout and exit "
                              "(no server)")

    p_freport = sub.add_parser(
        "fleet-report",
        help="render an exported fleet-telemetry directory into a "
             "self-contained HTML dashboard (worker lanes, steals, "
             "straggler heatmap, cache hits)",
    )
    p_freport.add_argument("dir", metavar="DIR",
                           help="telemetry export directory "
                                "(from sweep --telemetry)")
    p_freport.add_argument("--out", metavar="FILE", default="fleet_report.html",
                           help="output HTML path (default fleet_report.html)")
    p_freport.add_argument("--trace-out", metavar="FILE", default=None,
                           help="also write the merged Chrome trace (workers "
                                "as processes, ranks as threads) to FILE")

    p_quiz = sub.add_parser(
        "quiz", help="print the four-question parallel-week exam (and, with --key, its computed answers)"
    )
    p_quiz.add_argument("--key", action="store_true", help="show the autograded answer key")

    sub.add_parser("catalog", help="print the design-pattern catalog by layer")
    sub.add_parser("inventory", help="print collection counts per backend")
    return parser


def _cmd_list(backend: str | None) -> int:
    for p in all_patternlets(backend):
        toggles = ",".join(t.name for t in p.toggles) or "-"
        print(f"{p.name:35s} [{p.backend:8s}] toggles: {toggles:24s} {p.summary}")
    return 0


def _cmd_show(name: str) -> int:
    p = get_patternlet(name)
    print(f"{p.name} ({p.backend})")
    print(f"  {p.summary}")
    print(f"  patterns: {', '.join(p.patterns)}")
    if p.figures:
        print(f"  reproduces: {', '.join(p.figures)}")
    print(f"  default tasks: {p.default_tasks}")
    if p.toggles:
        print("  toggles:")
        for t in p.toggles:
            state = "on" if t.default else "off"
            print(f"    {t.name} (default {state}): {t.description}")
            print(f"      C site: {t.pragma}")
    print("  exercise:")
    print(f"    {p.exercise}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    toggles = {name: True for name in args.on}
    toggles.update({name: False for name in args.off})
    repeat = max(1, args.repeat)
    # ``network`` rides in extras only when explicitly requested, so runs
    # that never name one keep their historical cache keys.
    extra = {"network": args.network} if args.network else {}
    t0 = time.perf_counter()
    for _ in range(repeat):
        run = run_patternlet(
            args.name,
            tasks=args.tasks,
            toggles=toggles or None,
            mode=args.mode,
            seed=args.seed,
            policy=args.policy,
            topology=args.topology,
            **extra,
        )
    elapsed = time.perf_counter() - t0
    if repeat > 1:
        print(
            f"(repeat: {repeat} runs in {elapsed:.3f}s, "
            f"{elapsed / repeat * 1000:.2f} ms/run)",
            file=sys.stderr,
        )
    if args.attribute:
        for label, line in run.records:
            print(f"[{label:12s}] {line}")
    else:
        print(run.text)
    if run.span is not None:
        print(f"(virtual span: {run.span:g} work units; wall: {run.wall:.4f}s)",
              file=sys.stderr)
    if args.metrics or args.metrics_out:
        from repro.obs import metrics_dict, run_metrics

        if args.metrics:
            print(run_metrics(run).to_openmetrics(), end="")
        if args.metrics_out:
            import json

            try:
                with open(args.metrics_out, "w", encoding="utf-8") as fh:
                    if args.metrics_out.endswith(".json"):
                        json.dump(metrics_dict(run), fh, indent=1, sort_keys=True)
                        fh.write("\n")
                    else:
                        fh.write(run_metrics(run).to_openmetrics())
            except OSError as exc:
                print(f"error: cannot write {args.metrics_out}: {exc}",
                      file=sys.stderr)
                return 1
            print(f"wrote {args.metrics_out}", file=sys.stderr)
    if args.detect_races:
        from repro.trace import detect_races, race_summary

        races = detect_races(run.trace)
        print()
        print(race_summary(races))
        return 2 if races else 0
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.timeline import render_events, render_run

    toggles = {name: True for name in args.on}
    toggles.update({name: False for name in args.off})
    run = run_patternlet(
        args.name,
        tasks=args.tasks,
        toggles=toggles or None,
        mode="lockstep",
        seed=args.seed,
        policy=args.policy,
    )
    if args.json or args.out:
        from repro.trace import dumps, write_chrome_trace

        if args.out:
            try:
                count = write_chrome_trace(args.out, run.trace)
            except OSError as exc:
                print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
                return 1
            print(f"wrote {count} events to {args.out}")
        else:
            print(dumps(run.trace, indent=2))
        return 0
    if args.events:
        print(render_events(run.trace, legend=not args.no_legend))
    else:
        print(render_run(run, legend=not args.no_legend))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs import write_report

    toggles = {name: True for name in args.on}
    toggles.update({name: False for name in args.off})
    run = run_patternlet(
        args.name,
        tasks=args.tasks,
        toggles=toggles or None,
        mode="lockstep",
        seed=args.seed,
        policy=args.policy,
    )
    out = args.out
    if out is None:
        slug = args.name.replace("/", ".").replace(".", "_")
        out = f"{slug}_report.html"
    try:
        write_report(run, out)
    except OSError as exc:
        print(f"error: cannot write {out}: {exc}", file=sys.stderr)
        return 1
    print(f"wrote {out}")
    return 0


def _cmd_source(name: str) -> int:
    import importlib
    import inspect

    p = get_patternlet(name)
    module = importlib.import_module(p.source)
    print(inspect.getsource(module), end="")
    return 0


def _cmd_selfcheck(args: argparse.Namespace) -> int:
    from repro.core.selfcheck import run_selfcheck

    cache_stats: dict = {}
    results = run_selfcheck(
        only=args.figure,
        jobs=args.jobs,
        use_cache=False if args.no_cache else None,
        cache_dir=args.cache_dir,
        stats_out=cache_stats,
    )
    if not results:
        print(f"error: unknown figure {args.figure!r}", file=sys.stderr)
        return 1
    width = max(len(r.figure) for r in results)
    failures = 0
    for r in results:
        mark = "PASS" if r.passed else "FAIL"
        failures += 0 if r.passed else 1
        print(f"{r.figure:<{width}}  {mark}  {r.description}  [{r.detail}]")
    # The cache verdict comes through the metrics registry (the same
    # counters every other consumer reads), not raw dict plumbing.
    from repro.obs.live import cache_counters
    from repro.obs.registry import MetricsRegistry

    reg = MetricsRegistry()
    cache_counters(reg, cache_stats)
    hits = int(reg.get("cache_hits").total())
    misses = int(reg.get("cache_misses").total())
    stores = int(reg.get("cache_stores").total())
    print(
        f"\n{len(results) - failures}/{len(results)} figure checks passed — "
        f"cache: {hits} hits / {misses} misses / {stores} stored"
    )
    return 0 if failures == 0 else 1


def _parse_seed_spec(spec: str) -> list[int]:
    seeds: list[int] = []
    for part in spec.split(","):
        part = part.strip()
        if "-" in part[1:]:  # "0-7" (but allow a lone negative number)
            lo, hi = part.split("-", 1) if not part.startswith("-") else (part, part)
            seeds.extend(range(int(lo), int(hi) + 1))
        else:
            seeds.append(int(part))
    return seeds


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json

    from repro.batch import (
        RunSpec,
        figure_suite_specs,
        fleet_size,
        run_specs,
        run_specs_fleet,
    )

    try:
        seeds = _parse_seed_spec(args.seeds)
    except ValueError:
        print(f"error: bad --seeds spec {args.seeds!r}", file=sys.stderr)
        return 1
    if args.quick:
        seeds = [s for s in seeds if s < 4] or [0, 1, 2, 3]

    toggles = {name: True for name in args.on}
    toggles.update({name: False for name in args.off})
    topologies: list[str | None]
    if args.topology:
        topologies = [t.strip() for t in args.topology.split(",") if t.strip()]
        from repro.mp.communicators import available_topologies

        known = available_topologies()
        bad = [t for t in topologies if t not in known]
        if bad:
            print(f"error: unknown topology {', '.join(bad)} "
                  f"(available: {', '.join(known)})", file=sys.stderr)
            return 1
    else:
        topologies = [None]
    extra = {"network": args.network} if args.network else {}
    if args.names:
        task_counts: list[int | None]
        if args.tasks:
            try:
                task_counts = [int(t) for t in args.tasks.split(",")]
            except ValueError:
                print(f"error: bad --tasks list {args.tasks!r}", file=sys.stderr)
                return 1
        else:
            task_counts = [None]
        specs = [
            RunSpec.make(name, tasks=tasks, toggles=toggles or None,
                         seed=seed, policy=args.policy, topology=topo, **extra)
            for name in args.names
            for tasks in task_counts
            for topo in topologies
            for seed in seeds
        ]
    else:
        specs = figure_suite_specs(seeds=seeds)
        if args.topology or args.network:
            import dataclasses

            specs = [
                dataclasses.replace(
                    s,
                    topology=topo,
                    extra=tuple(sorted({**s.extra_dict, **extra}.items())),
                )
                for s in specs
                for topo in topologies
            ]

    n_fleet = fleet_size(args.fleet, len(specs))
    if n_fleet is None and (args.telemetry or args.telemetry_port is not None
                            or args.keep_fleet_dir):
        print("error: --telemetry/--telemetry-port/--keep-fleet-dir need the "
              "fleet (add --fleet N)", file=sys.stderr)
        return 1
    if n_fleet is not None:
        from repro.batch import fleet_advisory

        advisory = fleet_advisory(len(specs), n_fleet)
        if advisory is not None:
            print(advisory, file=sys.stderr)
        report = run_specs_fleet(
            specs,
            workers=n_fleet,
            use_cache=False if args.no_cache else None,
            cache_dir=args.cache_dir,
            telemetry_dir=args.telemetry,
            serve_port=args.telemetry_port,
            keep_fleet_dir=args.keep_fleet_dir,
            announce=lambda url: print(f"serving metrics at {url}",
                                       file=sys.stderr),
        )
    else:
        report = run_specs(
            specs,
            max_workers=args.jobs,
            use_cache=False if args.no_cache else None,
            cache_dir=args.cache_dir,
        )

    if args.per_run:
        for o in report.outcomes:
            status = "ERROR" if o.error else ("hit " if o.cached else "run ")
            races = f"races={o.races}" if not o.error else o.error
            span = f"span={o.span:g}" if o.span is not None else "span=-"
            print(f"{status} {o.spec.label():48s} {races:12s} {span}")
    else:
        # One line per (patternlet, tasks, toggles, topology) group: the
        # seed scan's verdict — how many seeds raced, how many distinct
        # outputs.
        groups: dict[tuple, list] = {}
        for o in report.outcomes:
            g = (o.spec.patternlet, o.spec.tasks, o.spec.toggles, o.spec.topology)
            groups.setdefault(g, []).append(o)
        for (name, tasks, tgl, topo), outs in groups.items():
            label = name + (f" np={tasks}" if tasks is not None else "")
            for t, on in tgl:
                label += f" {t}={'on' if on else 'off'}"
            if topo is not None:
                label += f" topo={topo}"
            racy = sum(1 for o in outs if o.races > 0)
            distinct = len({o.text for o in outs})
            hits = sum(1 for o in outs if o.cached)
            errors = sum(1 for o in outs if o.error)
            line = (f"{label:56s} seeds={len(outs):<3d} "
                    f"distinct-outputs={distinct:<3d} racy-seeds={racy}/{len(outs)} "
                    f"cached={hits}/{len(outs)}")
            if errors:
                line += f" ERRORS={errors}"
            print(line)

    stats = report.stats()
    if report.fleet is not None:
        tail = (f", fleet of {report.fleet['workers']} "
                f"({report.fleet['completed_shards']} shards, "
                f"{report.fleet['steals']} steals)")
    elif stats["pooled"]:
        tail = f", {stats['workers']} workers"
    else:
        tail = ", in-process"
    print(
        f"\n{stats['runs']} runs in {stats['wall_s']:.3f}s "
        f"({stats['throughput_runs_s']:.0f} runs/s) — "
        f"cache hits {stats['hits']}/{stats['runs']} "
        f"(hit rate {stats['hit_rate']:.0%})" + tail,
        file=sys.stderr,
    )
    if report.telemetry is not None:
        print(
            f"telemetry: {report.telemetry['records']} journal records "
            f"for sweep {report.telemetry['sweep_id']} exported to "
            f"{report.telemetry['dir']} — render with "
            f"'patternlet fleet-report {report.telemetry['dir']}'",
            file=sys.stderr,
        )
    elif args.telemetry:
        print("note: the batch ran on a degraded (non-fleet) path; no "
              "telemetry was journalled", file=sys.stderr)
    if args.keep_fleet_dir and report.fleet is not None \
            and report.fleet.get("root"):
        print(f"fleet dir kept at {report.fleet['root']}", file=sys.stderr)
    if args.stats_out:
        try:
            with open(args.stats_out, "w") as fh:
                json.dump(stats, fh, indent=1, sort_keys=True)
                fh.write("\n")
        except OSError as exc:
            print(f"error: cannot write {args.stats_out}: {exc}", file=sys.stderr)
            return 1
        print(f"wrote {args.stats_out}", file=sys.stderr)
    return 1 if report.errors else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.bench import (
        compare,
        format_table,
        load_report,
        make_report,
        remeasure,
        run_benchmarks,
        save_report,
    )

    def note(msg: str) -> None:
        print(f"  ... {msg}", file=sys.stderr)

    print(f"running engine benchmarks ({'quick' if args.quick else 'full'})",
          file=sys.stderr)
    metrics = run_benchmarks(quick=args.quick, progress=note,
                             topology=args.topology, fleet=args.fleet)

    baseline = None
    if args.check:
        try:
            baseline = load_report(args.check)["metrics"]
        except OSError as exc:
            print(f"error: cannot read baseline {args.check}: {exc}",
                  file=sys.stderr)
            return 1
    for line in format_table(metrics, baseline):
        print(line)

    if args.out:
        try:
            save_report(args.out, make_report(metrics, quick=args.quick))
        except OSError as exc:
            print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
            return 1
        print(f"wrote {args.out}", file=sys.stderr)

    if baseline is not None:
        failures = compare(
            metrics,
            baseline,
            tolerance=args.tolerance,
            on_skip=lambda msg: print(f"warning: {msg}", file=sys.stderr),
        )
        if failures:
            # A regression verdict deserves more samples than a pass:
            # re-measure just the failing gates (best of 10) before
            # declaring one.  Interference can only depress a rate
            # sample, so a genuinely slower engine still fails here.
            names = [f.split(":", 1)[0] for f in failures]
            print(f"\n{len(names)} gate(s) failed; re-measuring before the "
                  "verdict", file=sys.stderr)
            retried = remeasure(metrics, names, quick=args.quick,
                                progress=note)
            for name in names:
                if retried.get(name) != metrics.get(name):
                    print(f"  {name}: {metrics[name]:.1f} -> "
                          f"{retried[name]:.1f}", file=sys.stderr)
            metrics = retried
            if args.out:
                save_report(args.out,
                            make_report(metrics, quick=args.quick))
            failures = compare(metrics, baseline, tolerance=args.tolerance)
        if failures:
            print("\nPERF REGRESSION:", file=sys.stderr)
            for f in failures:
                print(f"  {f}", file=sys.stderr)
            return 1
        print(f"\nperf check passed (tolerance {args.tolerance:.0%})",
              file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ServeConfig, serve_forever

    cfg = ServeConfig(
        host=args.host,
        port=args.port,
        workers=max(1, args.workers),
        queue_limit=max(0, args.queue_limit),
        deadline_ms=args.deadline_ms,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        max_cells=max(1, args.max_cells),
        fleet=args.fleet,
        telemetry_dir=args.telemetry_dir,
        drain_timeout_s=args.drain_timeout,
    )

    def announce(url: str) -> None:
        print(f"patternlet daemon serving at {url} "
              f"(workers={cfg.workers}, cache={'on' if cfg.use_cache else 'off'}; "
              "SIGTERM/Ctrl-C drains and exits)", file=sys.stderr)

    try:
        clean = asyncio.run(serve_forever(cfg, announce=announce))
    except OSError as exc:
        print(f"error: cannot bind {cfg.host}:{cfg.port}: {exc}",
              file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 0
    if not clean:
        print("warning: drain timed out with runs still in flight",
              file=sys.stderr)
        return 1
    return 0


def _cmd_metrics_serve(args: argparse.Namespace) -> int:
    import os.path

    from repro.obs.telemetry import fleet_registry, serve_metrics

    if not os.path.isdir(args.dir):
        print(f"error: {args.dir} is not a directory", file=sys.stderr)
        return 1
    if args.once:
        print(fleet_registry(args.dir).to_openmetrics(), end="")
        return 0
    try:
        server = serve_metrics(args.dir, host=args.host, port=args.port)
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    print(f"serving OpenMetrics for {args.dir} at {server.url} "
          "(Ctrl-C to stop)", file=sys.stderr)
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        return 0
    finally:
        server.stop()


def _cmd_fleet_report(args: argparse.Namespace) -> int:
    from repro.obs.fleet_report import write_fleet_report
    from repro.obs.telemetry import load_export

    try:
        records, summary = load_export(args.dir)
    except OSError as exc:
        print(f"error: cannot read {args.dir}: {exc}", file=sys.stderr)
        return 1
    if not records:
        print(f"error: no journal records under {args.dir} — was the sweep "
              "run with --telemetry?", file=sys.stderr)
        return 1
    try:
        write_fleet_report(args.dir, args.out)
    except OSError as exc:
        print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
        return 1
    print(f"wrote {args.out} ({len(records)} journal records, "
          f"sweep {summary.get('sweep_id', '?')})")
    if args.trace_out:
        from repro.trace.export import write_fleet_chrome_trace

        try:
            count = write_fleet_chrome_trace(args.trace_out, records)
        except OSError as exc:
            print(f"error: cannot write {args.trace_out}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"wrote {count} trace events to {args.trace_out}")
    return 0


def _cmd_quiz(show_key: bool) -> int:
    from repro.education.quiz import EXAM, correct_answers

    key = correct_answers() if show_key else None
    for qno, q in enumerate(EXAM, start=1):
        print(f"Q{qno} [{q.topic}]")
        print(f"  {q.prompt}")
        for i, choice in enumerate(q.choices):
            marker = "*" if key is not None and key[qno - 1] == i else " "
            print(f"   {marker} ({chr(ord('a') + i)}) {choice}")
        print()
    if key is None:
        print("(answers: patternlet quiz --key — every answer is computed")
        print(" live from the runtime, so the key cannot rot)")
    return 0


def _cmd_catalog() -> int:
    for layer in LAYERS:
        print(f"== {layer} ==")
        for pat in patterns_by_layer(layer):
            alias = ""
            if pat.opl_name or pat.uiuc_name:
                names = [n for n in (pat.uiuc_name, pat.opl_name) if n]
                alias = f" (a.k.a. {', '.join(names)})"
            print(f"  {pat.name}{alias}")
            print(f"    {pat.description}")
    print(f"({len(CATALOG)} patterns catalogued)")
    return 0


def _cmd_inventory() -> int:
    inv = inventory()
    for backend in ("openmp", "mpi", "pthreads", "hybrid"):
        print(f"{backend:10s} {inv[backend]:3d}")
    print(f"{'total':10s} {inv['total']:3d}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point: parse, dispatch, translate ReproError to exit code 1."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args.backend)
        if args.command == "show":
            return _cmd_show(args.name)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "source":
            return _cmd_source(args.name)
        if args.command == "selfcheck":
            return _cmd_selfcheck(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "metrics-serve":
            return _cmd_metrics_serve(args)
        if args.command == "fleet-report":
            return _cmd_fleet_report(args)
        if args.command == "quiz":
            return _cmd_quiz(args.key)
        if args.command == "catalog":
            return _cmd_catalog()
        if args.command == "inventory":
            return _cmd_inventory()
        raise AssertionError(f"unhandled command {args.command}")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
