"""The pthreads create/join API and program runner.

A :class:`PthreadsRuntime` runs a *program* — an ordinary function given a
:class:`PthreadContext` — as the initial thread of a managed world.  The
context supplies:

- ``create(fn, *args)`` → handle (``pthread_create``), running
  ``fn(*args)`` concurrently;
- ``join(handle)`` → the thread's return value (``pthread_join``);
- factories for :class:`~repro.pthreads.sync.Mutex`,
  :class:`~repro.pthreads.sync.CondVar`,
  :class:`~repro.pthreads.sync.Semaphore` and
  :class:`~repro.pthreads.sync.PthreadBarrier`;
- ``self_id()``, ``checkpoint()`` and a ``race_window()`` matching the SMP
  layer's race machinery, so the pthreads race patternlets behave the same
  way.

Unlike the SMP layer there is no implicit team: thread counts, shared
state, and synchronisation objects are all explicit — which is exactly the
pedagogical contrast the paper's Pthreads patternlets exist to show.
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Callable

from repro import trace as _trace
from repro.pthreads.sync import CondVar, Mutex, PthreadBarrier, RWLock, Semaphore
from repro.sched import Executor, make_executor
from repro.sched.base import TaskHandle, current_task_label

__all__ = ["PthreadsRuntime", "PthreadContext"]


class PthreadContext:
    """Per-program handle passed to the program's main function."""

    def __init__(self, runtime: "PthreadsRuntime"):
        self._runtime = runtime
        self._counter = itertools.count()

    # -- thread lifecycle ------------------------------------------------------

    def create(
        self, fn: Callable[..., Any], *args: Any, name: str | None = None
    ) -> TaskHandle:
        """``pthread_create``: start ``fn(*args)`` on a new thread."""
        uid = next(self._counter)
        label = name or f"pthread:{uid}"
        _trace.emit("task.spawn", child=label, hb_rel=("spawn", label, uid))

        def body() -> Any:
            _trace.emit("task.start", hb_acq=("spawn", label, uid))
            try:
                return fn(*args)
            finally:
                _trace.emit("task.end", hb_rel=("end", label, uid))

        handle = self._runtime.executor.spawn(body, label)
        handle.trace_key = ("end", label, uid)
        return handle

    def join(self, handle: TaskHandle) -> Any:
        """``pthread_join``: wait for a thread; return its result."""
        result = handle.join()
        _trace.emit(
            "task.join",
            child=getattr(handle, "label", None),
            hb_acq=getattr(handle, "trace_key", None),
        )
        return result

    def self_id(self) -> str:
        """``pthread_self``: the current task's label."""
        return current_task_label() or "main"

    # -- synchronisation factories -----------------------------------------------

    def mutex(self, name: str = "mutex") -> Mutex:
        """A fresh named :class:`~repro.pthreads.sync.Mutex`."""
        return Mutex(self._runtime.executor, name)

    def cond(self, mutex: Mutex, name: str = "cond") -> CondVar:
        """A condition variable bound to ``mutex``."""
        return CondVar(self._runtime.executor, mutex, name)

    def semaphore(self, value: int = 0, name: str = "sem") -> Semaphore:
        """A counting semaphore with the given initial value."""
        return Semaphore(self._runtime.executor, value, name)

    def barrier(self, parties: int, name: str = "barrier") -> PthreadBarrier:
        """A reusable barrier sized for ``parties`` threads."""
        return PthreadBarrier(self._runtime.executor, parties, name)

    def rwlock(self, name: str = "rwlock") -> RWLock:
        """A writer-preferring reader-writer lock."""
        return RWLock(self._runtime.executor, name)

    # -- scheduling hooks -----------------------------------------------------------

    def checkpoint(self) -> None:
        """Offer the scheduler a switch point (lockstep visibility)."""
        self._runtime.executor.checkpoint()

    def race_window(self) -> None:
        """Injectable preemption gap for the race patternlets."""
        if self._runtime.executor.mode == "lockstep":
            self._runtime.executor.checkpoint()
        else:
            jitter = self._runtime.race_jitter
            time.sleep(jitter if jitter > 0 else 0)


class PthreadsRuntime:
    """Runner for pthreads-style programs."""

    def __init__(
        self,
        *,
        mode: str = "thread",
        seed: int = 0,
        policy: str = "random",
        deadlock_timeout: float = 30.0,
        race_jitter: float = 0.0,
        executor: Executor | None = None,
    ):
        self.executor = executor or make_executor(
            mode, seed=seed, policy=policy, deadlock_timeout=deadlock_timeout
        )
        self.race_jitter = race_jitter
        #: Event spine of the most recent run (or the ambient recorder).
        self.trace = _trace.TraceRecorder()
        self._run_counter = itertools.count(1)

    def run(self, program: Callable[[PthreadContext], Any]) -> Any:
        """Run ``program(pt)`` as the managed initial thread; return its result.

        Exceptions in the initial thread (including
        :class:`~repro.errors.TaskFailedError` from joining a crashed
        thread) propagate as a
        :class:`~repro.errors.ParallelError` from the underlying executor.
        """
        ctx = PthreadContext(self)
        scope = f"pthreads#{next(self._run_counter)}"

        def main_thread() -> Any:
            _trace.emit("task.start", scope=scope)
            try:
                return program(ctx)
            finally:
                _trace.emit("task.end", scope=scope)

        # Emission goes to the ambient recorder; install this runtime's
        # own spine only when no harness (capture_run, ...) put one up.
        recorder = _trace.current_recorder()
        pushed = recorder is None
        if pushed:
            recorder = _trace.TraceRecorder()
            _trace.push_recorder(recorder)
        self.trace = recorder
        try:
            group = self.executor.run_tasks(
                [main_thread], ["pthread:main"], group_label="pthreads"
            )
        finally:
            if pushed:
                _trace.pop_recorder(recorder)
        return group.results()[0]
