"""Pthreads-flavoured synchronisation objects.

Unlike the SMP layer's team-scoped primitives, these are free-standing
objects created by the program and passed to threads explicitly — the
pthreads idiom.  All of them are executor-aware (blocking goes through
``wait_until``), so they work identically under real threads and under the
deterministic lockstep scheduler, and they appear by name in deadlock
diagnostics.
"""

from __future__ import annotations

import itertools
import threading
from typing import TYPE_CHECKING

from repro.errors import SmpError
from repro.sched import Executor
from repro.trace.events import emit as _trace_emit

__all__ = ["Mutex", "CondVar", "Semaphore", "PthreadBarrier", "RWLock"]

# Distinguishes same-named objects in trace happens-before keys.
_uids = itertools.count()


class Mutex:
    """``pthread_mutex_t``: a FIFO-fair lock usable as a context manager."""

    def __init__(self, executor: Executor, name: str = "mutex"):
        self._executor = executor
        self.name = name
        self._uid = next(_uids)
        self._lock = threading.Lock()
        self._next_ticket = 0
        self._now_serving = 0

    def lock(self) -> None:
        """``pthread_mutex_lock``: take a ticket and wait your turn."""
        with self._lock:
            ticket = self._next_ticket
            self._next_ticket += 1
        self._executor.wait_until(
            lambda: self._now_serving == ticket,
            describe=f"mutex {self.name!r} (ticket {ticket})",
        )
        _trace_emit(
            "mutex.acquire", name=self.name, hb_acq=("mutex", self._uid)
        )

    def unlock(self) -> None:
        """``pthread_mutex_unlock``: serve the next ticket."""
        with self._lock:
            if self._now_serving >= self._next_ticket:
                raise SmpError(f"mutex {self.name!r} unlocked while not held")
            # Emit before serving the next ticket so the successor's
            # acquire event follows this one in stream order.
            _trace_emit(
                "mutex.release", name=self.name, hb_rel=("mutex", self._uid)
            )
            self._now_serving += 1
        self._executor.notify()

    def __enter__(self) -> "Mutex":
        self.lock()
        return self

    def __exit__(self, *exc: object) -> None:
        self.unlock()

    @property
    def locked(self) -> bool:
        with self._lock:
            return self._now_serving < self._next_ticket


class CondVar:
    """``pthread_cond_t``: wait/signal/broadcast tied to a :class:`Mutex`.

    As with POSIX, ``wait`` must be called with the mutex held; it releases
    the mutex while waiting and reacquires it before returning.  Waiters
    are released in FIFO order by ``signal`` and all at once by
    ``broadcast``.  Spurious wakeups do not occur, but portable callers
    should still re-check their predicate in a loop.
    """

    def __init__(self, executor: Executor, mutex: Mutex, name: str = "cond"):
        self._executor = executor
        self._mutex = mutex
        self.name = name
        self._uid = next(_uids)
        self._lock = threading.Lock()
        self._arrivals = 0
        self._releases = 0

    def wait(self) -> None:
        """``pthread_cond_wait``: release the mutex, sleep, reacquire."""
        if not self._mutex.locked:
            raise SmpError(f"cond {self.name!r}: wait() without holding the mutex")
        with self._lock:
            my_slot = self._arrivals
            self._arrivals += 1
        self._mutex.unlock()
        self._executor.wait_until(
            lambda: self._releases > my_slot,
            describe=f"condition variable {self.name!r}",
        )
        _trace_emit("cond.wake", name=self.name, hb_acq=("cond", self._uid))
        self._mutex.lock()

    def signal(self) -> None:
        """Release one waiter (if any)."""
        with self._lock:
            if self._releases < self._arrivals:
                # Emit before bumping releases: the wake event it orders
                # must come later in the stream.
                _trace_emit(
                    "cond.signal", name=self.name, hb_rel=("cond", self._uid)
                )
                self._releases += 1
        self._executor.notify()

    def broadcast(self) -> None:
        """Release every current waiter."""
        with self._lock:
            _trace_emit(
                "cond.broadcast", name=self.name, hb_rel=("cond", self._uid)
            )
            self._releases = self._arrivals
        self._executor.notify()

    @property
    def waiting(self) -> int:
        with self._lock:
            return self._arrivals - self._releases


class Semaphore:
    """``sem_t``: counting semaphore with executor-visible blocking."""

    def __init__(self, executor: Executor, value: int = 0, name: str = "sem"):
        if value < 0:
            raise ValueError("semaphore value must be non-negative")
        self._executor = executor
        self.name = name
        self._uid = next(_uids)
        self._lock = threading.Lock()
        self._value = value

    def post(self) -> None:
        """``sem_post``: increment and wake a waiter."""
        with self._lock:
            # Emit before the count becomes visible: any waiter's acquire
            # event must follow this one in stream order.
            _trace_emit("sem.post", name=self.name, hb_rel=("sem", self._uid))
            self._value += 1
        self._executor.notify()

    def acquire_slot(self) -> bool:
        """Nonblocking decrement; True on success (shared by wait/trywait)."""
        with self._lock:
            if self._value > 0:
                self._value -= 1
                _trace_emit(
                    "sem.wait", name=self.name, hb_acq=("sem", self._uid)
                )
                return True
            return False

    def wait(self) -> None:
        """``sem_wait``: block until the count is positive, then decrement."""
        while True:
            if self.acquire_slot():
                return
            self._executor.wait_until(
                lambda: self._value > 0,
                describe=f"semaphore {self.name!r}",
            )

    def trywait(self) -> bool:
        """``sem_trywait``: nonblocking decrement attempt."""
        return self.acquire_slot()

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class PthreadBarrier:
    """``pthread_barrier_t``: reusable barrier for a fixed party count.

    ``wait`` returns ``True`` on exactly one thread per cycle (the
    ``PTHREAD_BARRIER_SERIAL_THREAD`` convention) and ``False`` on the
    rest.
    """

    def __init__(self, executor: Executor, parties: int, name: str = "barrier"):
        if parties <= 0:
            raise ValueError("parties must be positive")
        self._executor = executor
        self.parties = parties
        self.name = name
        self._uid = next(_uids)
        self._lock = threading.Lock()
        self._count = 0
        self._generation = 0

    def wait(self) -> bool:
        """Arrive; True on exactly the serial thread once all are in."""
        with self._lock:
            gen = self._generation
            # Arrivals are recorded before the generation can flip, so
            # every departure of this generation follows every arrival.
            _trace_emit(
                "pbar.arrive",
                name=self.name,
                generation=gen,
                hb_rel=("pbar", self._uid, gen),
            )
            self._count += 1
            serial = self._count == self.parties
            if serial:
                self._count = 0
                self._generation += 1
        if serial:
            self._executor.notify()
        else:
            self._executor.wait_until(
                lambda: self._generation != gen,
                describe=f"pthread barrier {self.name!r} (generation {gen})",
            )
        _trace_emit(
            "pbar.depart",
            name=self.name,
            generation=gen,
            hb_acq=("pbar", self._uid, gen),
        )
        return serial


class RWLock:
    """``pthread_rwlock_t``: many concurrent readers or one writer.

    Writer-preferring: once a writer is waiting, new readers queue behind
    it (no writer starvation).  Exposed as two context-manager views,
    ``read_locked()`` and ``write_locked()``.
    """

    def __init__(self, executor: Executor, name: str = "rwlock"):
        self._executor = executor
        self.name = name
        self._uid = next(_uids)
        self._lock = threading.Lock()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def _try_read(self) -> bool:
        with self._lock:
            if not self._writer and self._writers_waiting == 0:
                self._readers += 1
                _trace_emit(
                    "rwlock.rdlock", name=self.name, hb_acq=("rwlock", self._uid)
                )
                return True
            return False

    def read_lock(self) -> None:
        """Acquire shared (read) access; queues behind waiting writers."""
        while not self._try_read():
            self._executor.wait_until(
                lambda: not self._writer and self._writers_waiting == 0,
                describe=f"rwlock {self.name!r} (read)",
            )

    def read_unlock(self) -> None:
        """Release shared access."""
        with self._lock:
            if self._readers <= 0:
                raise SmpError(f"rwlock {self.name!r}: read_unlock without lock")
            _trace_emit(
                "rwlock.rdunlock", name=self.name, hb_rel=("rwlock", self._uid)
            )
            self._readers -= 1
        self._executor.notify()

    def _try_write(self) -> bool:
        with self._lock:
            if not self._writer and self._readers == 0:
                self._writer = True
                self._writers_waiting -= 1
                _trace_emit(
                    "rwlock.wrlock", name=self.name, hb_acq=("rwlock", self._uid)
                )
                return True
            return False

    def write_lock(self) -> None:
        """Acquire exclusive (write) access, draining active readers first."""
        with self._lock:
            self._writers_waiting += 1
        while not self._try_write():
            self._executor.wait_until(
                lambda: not self._writer and self._readers == 0,
                describe=f"rwlock {self.name!r} (write)",
            )

    def write_unlock(self) -> None:
        """Release exclusive access."""
        with self._lock:
            if not self._writer:
                raise SmpError(f"rwlock {self.name!r}: write_unlock without lock")
            _trace_emit(
                "rwlock.wrunlock", name=self.name, hb_rel=("rwlock", self._uid)
            )
            self._writer = False
        self._executor.notify()

    def read_locked(self) -> "_RWView":
        """Context-manager view of the shared side."""
        return _RWView(self.read_lock, self.read_unlock)

    def write_locked(self) -> "_RWView":
        """Context-manager view of the exclusive side."""
        return _RWView(self.write_lock, self.write_unlock)

    @property
    def state(self) -> tuple[int, bool, int]:
        """(active readers, writer active, writers waiting) — diagnostics."""
        with self._lock:
            return (self._readers, self._writer, self._writers_waiting)


class _RWView:
    __slots__ = ("_enter", "_exit")

    def __init__(self, enter, exit_):
        self._enter = enter
        self._exit = exit_

    def __enter__(self) -> None:
        self._enter()

    def __exit__(self, *exc: object) -> None:
        self._exit()
