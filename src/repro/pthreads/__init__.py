"""POSIX-threads-analogue layer.

The paper's 9 Pthreads patternlets use the raw create/join + mutex +
condition-variable vocabulary rather than OpenMP's directives.  This
package supplies that vocabulary over the shared execution substrate:

    from repro.pthreads import PthreadsRuntime

    rt = PthreadsRuntime(num_threads=4, mode="lockstep", seed=1)

    def program(pt):
        handles = [pt.create(worker, i) for i in range(4)]
        for h in handles:
            h = pt.join(h)

    rt.run(program)

``run`` executes the program's *initial thread* as a managed task (the
initial thread **is** a thread, as every pthreads tutorial eventually has
to explain), so lockstep determinism covers it too.
"""

from repro.pthreads.api import PthreadContext, PthreadsRuntime
from repro.pthreads.sync import CondVar, Mutex, PthreadBarrier, RWLock, Semaphore

__all__ = [
    "PthreadsRuntime",
    "PthreadContext",
    "Mutex",
    "CondVar",
    "Semaphore",
    "PthreadBarrier",
    "RWLock",
]
