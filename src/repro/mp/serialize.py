"""Copy-on-send payload isolation.

Distributed memory is an *isolation* property: ranks share no address
space, so a message received is always a private copy.  Rank threads here
share one interpreter, so the runtime enforces that property by pickling
every payload at send time and unpickling at receive time — mutating a
received object can never be observed by the sender, exactly as on the
paper's Beowulf cluster.

Unpicklable payloads (open files, locks, thread handles) would be the
moral equivalent of sending a pointer across the network; they are
rejected eagerly with :class:`~repro.errors.IsolationError`.

The byte size of the pickle doubles as the message size for the LogP cost
model, so "bigger payloads cost more virtual time" falls out for free.
"""

from __future__ import annotations

import pickle
from typing import Any

from repro.errors import IsolationError

__all__ = ["pack", "unpack", "deep_copy_by_value"]


def pack(payload: Any) -> bytes:
    """Serialise a payload for transport; raises IsolationError if impossible."""
    try:
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise IsolationError(
            f"payload of type {type(payload).__name__} cannot cross a "
            f"distributed-memory boundary: {exc}"
        ) from exc


def unpack(data: bytes) -> Any:
    """Materialise a received payload as a fresh private copy."""
    return pickle.loads(data)


def deep_copy_by_value(payload: Any) -> Any:
    """One-shot pack+unpack (used by self-sends and testing)."""
    return unpack(pack(payload))
