"""Copy-on-send payload isolation.

Distributed memory is an *isolation* property: ranks share no address
space, so a message received is always a private copy.  Rank threads here
share one interpreter, so the runtime enforces that property by pickling
every payload at send time and unpickling at receive time — mutating a
received object can never be observed by the sender, exactly as on the
paper's Beowulf cluster.

Unpicklable payloads (open files, locks, thread handles) would be the
moral equivalent of sending a pointer across the network; they are
rejected eagerly with :class:`~repro.errors.IsolationError`.

The byte size of the pickle doubles as the message size for the LogP cost
model, so "bigger payloads cost more virtual time" falls out for free.

Two fast paths keep the enforcement from swamping the modeled costs
(mpi4py's buffer-protocol shortcut is the precedent):

- **Immutable payloads travel by reference.**  For ``int``/``float``/
  ``str``/``bytes``/``bool``/``None`` — and tuples composed only of those —
  isolation is vacuously preserved: the receiver cannot mutate the object,
  so handing over the reference is observationally identical to a copy at
  zero pickling cost.  :func:`pack_packet` detects these (exact-type
  checks: a *subclass* of ``int`` may carry mutable attributes and still
  pays the pickle) and the pickle size needed by the LogP model is
  computed lazily, only when something actually asks for it.
- **Pack-once forwarding.**  A :class:`Packet` carries one payload in
  packed form; collectives serialise at the root once and forward the same
  bytes hop to hop, unpacking only at each final receiver (see
  :mod:`repro.mp.collectives`).
"""

from __future__ import annotations

import pickle
from typing import Any

from repro.errors import IsolationError

__all__ = [
    "pack",
    "unpack",
    "deep_copy_by_value",
    "is_immutable",
    "Packet",
    "pack_packet",
]

#: Exact types that are safely shareable across the rank boundary.
#: Subclasses are deliberately excluded (a ``class Evil(int)`` can carry a
#: mutable ``__dict__``), which is why membership tests use ``type(obj)``.
_IMMUTABLE_SCALARS = frozenset((int, float, str, bytes, bool, complex, type(None)))


def is_immutable(payload: Any) -> bool:
    """True when sharing ``payload`` by reference cannot violate isolation.

    Covers the immutable scalars and tuples (arbitrarily nested) whose
    elements are all themselves immutable by this definition.
    """
    if type(payload) in _IMMUTABLE_SCALARS:
        return True
    if type(payload) is tuple:
        return all(is_immutable(item) for item in payload)
    return False


def pack(payload: Any) -> bytes:
    """Serialise a payload for transport; raises IsolationError if impossible."""
    try:
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise IsolationError(
            f"payload of type {type(payload).__name__} cannot cross a "
            f"distributed-memory boundary: {exc}"
        ) from exc


def unpack(data: bytes) -> Any:
    """Materialise a received payload as a fresh private copy."""
    return pickle.loads(data)


class Packet:
    """One payload in transport form, packed at most once.

    Either ``data`` holds the pickle (the isolating copy path) or it is
    ``None`` and ``obj`` is an immutable payload travelling by reference.
    ``size`` is the pickle length either way — computed lazily for by-ref
    packets, since the LogP model only needs it when ``per_byte`` costs are
    nonzero or a receive asks for its :class:`~repro.mp.mailbox.Status`.

    A packet may be forwarded through any number of hops (each ``unpack``
    of a pickled packet yields a fresh private copy), which is what the
    tree collectives exploit.
    """

    __slots__ = ("obj", "data", "_size")

    def __init__(self, obj: Any = None, data: bytes | None = None, size: int | None = None):
        self.obj = obj
        self.data = data
        self._size = size if size is not None else (len(data) if data is not None else None)

    @property
    def by_ref(self) -> bool:
        """True when the payload travels by reference (immutable fast path)."""
        return self.data is None

    @property
    def size(self) -> int:
        """Pickle length in bytes (computed lazily for by-ref packets)."""
        size = self._size
        if size is None:
            size = len(pack(self.obj))
            self._size = size
        return size

    def unpack(self) -> Any:
        """The received payload: a fresh copy, or the shared immutable."""
        data = self.data
        if data is None:
            return self.obj
        return unpack(data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.by_ref:
            return f"Packet(by_ref, {type(self.obj).__name__})"
        return f"Packet({self._size} bytes)"


def pack_packet(payload: Any) -> Packet:
    """Pack a payload for transport, taking the by-reference fast path.

    Mutable payloads are pickled eagerly, so unpicklable ones still raise
    :class:`~repro.errors.IsolationError` at the send site (never later at
    some receive deep inside a collective).
    """
    if type(payload) in _IMMUTABLE_SCALARS:  # inline scalar case: every send
        return Packet(obj=payload)
    if is_immutable(payload):
        return Packet(obj=payload)
    return Packet(data=pack(payload))


def deep_copy_by_value(payload: Any) -> Any:
    """Isolating copy (used by self-sends, collective root copies, tests).

    Immutable payloads come back as themselves — a rank sending itself an
    ``int`` no longer pays two pickles for a copy that cannot be told
    apart from the original.
    """
    if is_immutable(payload):
        return payload
    return unpack(pack(payload))
