"""Copy-on-send payload isolation — now mostly without the copy.

Distributed memory is an *isolation* property: ranks share no address
space, so a message received is always a private copy.  Rank threads here
share one interpreter, so the runtime enforces that property at the
transport layer — mutating a received object can never be observed by the
sender, exactly as on the paper's Beowulf cluster.

Unpicklable payloads (open files, locks, thread handles) would be the
moral equivalent of sending a pointer across the network; they are
rejected eagerly with :class:`~repro.errors.IsolationError`.

The byte size of the payload's pickle doubles as the message size for the
LogP cost model, so "bigger payloads cost more virtual time" falls out for
free (buffer payloads charge their exact byte count instead — no pickle
framing).

:func:`pack_packet` picks one of four transport lanes, cheapest first
(mpi4py's buffer-protocol shortcut and MPJ Express's buffer-based
messaging are the precedents):

1. **By reference** (zero cost) — immutable payloads: the scalars
   ``int``/``float``/``str``/``bytes``/``bool``/``complex``/``None``,
   ``range``, and ``tuple``/``frozenset`` trees composed only of those.
   The receiver cannot mutate the object, so sharing the reference is
   observationally identical to a copy.  Exact-type checks only: a
   *subclass* of ``int`` may carry mutable attributes and pays the pickle.
   The pickle size needed by the LogP model is computed lazily (and
   race-free — forwarded packets are sized from concurrent receivers).
2. **Buffer snapshot** (one ``memcpy``) — ``bytearray``, ``array.array``
   and ``memoryview`` payloads are captured as raw bytes at send time and
   rebuilt per receiver (``memoryview`` receivers get a read-only
   zero-copy view over the snapshot).  The LogP size is the exact
   ``nbytes``.
3. **Copy-on-write snapshot** (structural copy, no pickle) — ``list``/
   ``dict``/``set`` trees (and tuples containing them) are frozen into a
   private snapshot shared by *all* receivers, each of which unwraps it
   behind a :mod:`repro.mp.cow` proxy that materialises private storage
   on first touch.  Most patternlet receivers only read, so the deep copy
   usually never happens — and a tree broadcast of a mutable payload now
   serialises *zero* times instead of O(receivers).
4. **Pickle** (the original PR 2 path) — everything else: custom classes,
   container subclasses, pathological nesting.  Still packed exactly once
   per send and forwarded hop to hop (:class:`Packet`), unpacking only at
   each final receiver.
"""

from __future__ import annotations

import pickle
import threading
from array import array
from typing import Any

from repro.errors import IsolationError
from repro.mp.cow import (
    COW_PROXY_TYPES,
    CowDict,
    CowList,
    NotCowable,
    freeze,
    thaw,
)

__all__ = [
    "pack",
    "unpack",
    "deep_copy_by_value",
    "is_immutable",
    "Packet",
    "pack_packet",
    "KIND_REF",
    "KIND_PICKLE",
    "KIND_BUFFER",
    "KIND_COW",
    "KIND_COW_FLAT",
    "KIND_COW_MOVE",
]

#: Exact types that are safely shareable across the rank boundary.
#: Subclasses are deliberately excluded (a ``class Evil(int)`` can carry a
#: mutable ``__dict__``), which is why membership tests use ``type(obj)``.
_IMMUTABLE_SCALARS = frozenset((int, float, str, bytes, bool, complex, type(None)))

#: Transport lanes (``Packet.kind``).  ``cow-flat`` is the degenerate CoW
#: case — a flat list of immutable scalars, the single most common mutable
#: payload shape — where one shallow copy per side *is* the deep copy and
#: beats the proxy machinery outright.
KIND_REF = "ref"
KIND_PICKLE = "pickle"
KIND_BUFFER = "buffer"
KIND_COW = "cow"
KIND_COW_FLAT = "cow-flat"
#: A ``cow-flat`` packet that the point-to-point send path has marked as
#: single-consumer (born in ``comm.send``, taken by exactly one ``recv``):
#: the receiver may take the snapshot itself — ownership transfer — instead
#: of copying it.  ``unpack`` still copies (any path that *might* unpack
#: twice stays conservative); only the untraced recv fast lanes move.
KIND_COW_MOVE = "cow-move"

#: Buffer-lane reconstructor tags (``Packet.obj`` for KIND_BUFFER).
_BUF_BYTEARRAY = "bytearray"
_BUF_MEMORYVIEW = "memoryview"
_BUF_ARRAY = "array:"  # + typecode

#: Guards lazy ``Packet.size`` memoisation.  A forwarded by-ref/CoW packet
#: is shared by several receiver ranks; under the threaded executor two of
#: them can resolve ``_size`` concurrently.  One process-wide lock (sizing
#: is rare and cheap) makes the pack run exactly once per packet.
_SIZE_LOCK = threading.Lock()


def is_immutable(payload: Any) -> bool:
    """True when sharing ``payload`` by reference cannot violate isolation.

    Covers the immutable scalars, ``range`` (its bounds are always plain
    ints), and ``tuple``/``frozenset`` containers — arbitrarily nested —
    whose elements are all themselves immutable by this definition.  The
    walk is iterative: a 100k-deep tuple nest must not hit the interpreter
    recursion limit just to be classified.
    """
    t = type(payload)
    if t in _IMMUTABLE_SCALARS or t is range:
        return True
    if t is not tuple and t is not frozenset:
        return False
    stack = [payload]
    while stack:
        node = stack.pop()
        for item in node:
            ti = type(item)
            if ti in _IMMUTABLE_SCALARS or ti is range:
                continue
            if ti is tuple or ti is frozenset:
                stack.append(item)
            else:
                return False
    return True


def pack(payload: Any) -> bytes:
    """Serialise a payload for transport; raises IsolationError if impossible."""
    try:
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise IsolationError(
            f"payload of type {type(payload).__name__} cannot cross a "
            f"distributed-memory boundary: {exc}"
        ) from exc


def unpack(data: bytes) -> Any:
    """Materialise a received payload as a fresh private copy."""
    return pickle.loads(data)


class Packet:
    """One payload in transport form, packed at most once.

    ``kind`` names the lane: ``"ref"`` (``obj`` is the immutable payload
    itself), ``"pickle"`` (``data`` holds the pickle), ``"buffer"``
    (``data`` holds the raw byte snapshot, ``obj`` the reconstructor tag),
    ``"cow"`` (``obj`` is the frozen structural snapshot shared by all
    receivers) or ``"cow-flat"`` (``obj`` is a flat scalar-list snapshot;
    each receiver takes a shallow — hence deep — copy).  ``size`` is the LogP message size: the exact byte count
    for buffer packets, the pickle length otherwise — computed lazily for
    by-ref and CoW packets, since the LogP model only needs it when
    ``per_byte`` costs are nonzero or a receive asks for its
    :class:`~repro.mp.mailbox.Status`.

    A packet may be forwarded through any number of hops (each ``unpack``
    yields a fresh private view), which is what the tree collectives
    exploit: one freeze or pickle at the root, zero per hop.
    """

    __slots__ = ("kind", "obj", "data", "_size")

    def __init__(
        self,
        obj: Any = None,
        data: bytes | None = None,
        size: int | None = None,
        kind: str | None = None,
    ):
        if kind is None:
            kind = KIND_REF if data is None else KIND_PICKLE
        self.kind = kind
        self.obj = obj
        self.data = data
        self._size = size if size is not None else (len(data) if data is not None else None)

    @property
    def by_ref(self) -> bool:
        """True when the payload travels by reference (immutable fast path)."""
        return self.kind == KIND_REF

    @property
    def size(self) -> int:
        """LogP message size in bytes (lazy for by-ref/CoW packets).

        Memoised under a lock: two receiver ranks sizing the same forwarded
        packet concurrently must not both pay the pickle (and must agree).
        """
        size = self._size
        if size is None:
            with _SIZE_LOCK:
                size = self._size
                if size is None:
                    size = len(pack(self.obj))
                    self._size = size
        return size

    def unpack(self) -> Any:
        """The received payload: a private view, or the shared immutable."""
        kind = self.kind
        if kind == KIND_REF:
            return self.obj
        if kind == KIND_COW_FLAT or kind == KIND_COW_MOVE:
            # Flat scalar list: the shallow copy is the deep copy, and it
            # is cheaper than building (then probably materialising) a
            # CowList proxy over the snapshot.  (A cow-move packet copies
            # here too: unpack's contract is a fresh view per call; the
            # zero-copy take lives in the recv fast lanes, which know the
            # message is single-consumer.)
            return self.obj.copy()
        if kind == KIND_COW:
            # Root proxies are built storage-direct (list.__new__ + two
            # slot stores) rather than through thaw(): this runs once per
            # receiver per message and the constructor frames were ~40% of
            # the CoW lane's unpack cost.  The memo is deferred to first
            # materialisation (see Cow*._materialize).
            obj = self.obj
            t = obj.__class__
            if t is list:
                p = _new_list(CowList)
                p._frozen = obj
                p._memo = None
                return p
            if t is dict:
                p = _new_dict(CowDict)
                p._frozen = obj
                p._memo = None
                return p
            if t is set:
                # Sets are never lazy (C set-argument fast paths bypass
                # Python methods; see repro.mp.cow): plain private copy.
                return set(obj)
            return thaw(obj)  # tuple roots carrying mutables
        if kind == KIND_BUFFER:
            tag = self.obj
            data = self.data
            if tag == _BUF_BYTEARRAY:
                return bytearray(data)
            if tag == _BUF_MEMORYVIEW:
                return memoryview(data)  # read-only, zero-copy over the snapshot
            a = array(tag[len(_BUF_ARRAY) :])
            a.frombytes(data)
            return a
        return unpack(self.data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind == KIND_REF:
            return f"Packet(by_ref, {type(self.obj).__name__})"
        if self.kind == KIND_COW:
            return f"Packet(cow, {type(self.obj).__name__})"
        if self.kind == KIND_COW_FLAT:
            return f"Packet(cow-flat, {len(self.obj)} items)"
        if self.kind == KIND_BUFFER:
            return f"Packet(buffer:{self.obj}, {len(self.data)} bytes)"
        return f"Packet({self._size} bytes)"


_new_packet = object.__new__
_new_list = list.__new__
_new_dict = dict.__new__
_all_scalars = _IMMUTABLE_SCALARS.issuperset


def _cow_packet(snapshot: Any) -> Packet:
    # Packet.__init__ unrolled (four slot stores beat the ctor frame on
    # the hottest mutable-send path, as with Message in comm.send).
    pkt = _new_packet(Packet)
    pkt.kind = KIND_COW
    pkt.obj = snapshot
    pkt.data = None
    pkt._size = None
    return pkt


def pack_packet(payload: Any) -> Packet:
    """Pack a payload for transport down the cheapest sound lane.

    Payloads outside the by-ref / buffer / CoW vocabularies are pickled
    eagerly, so unpicklable ones still raise
    :class:`~repro.errors.IsolationError` at the send site (never later at
    some receive deep inside a collective).
    """
    t = type(payload)
    if t in _IMMUTABLE_SCALARS or t is range:  # inline scalar case: every send
        return Packet(obj=payload)
    if t is list:
        # Flat list of immutable scalars — the single most common mutable
        # payload shape — snapshots as one shallow copy, skipping the
        # recursive freeze walk entirely (the element scan runs at C
        # speed; the Packet ctor is unrolled as in _cow_packet).
        if _all_scalars(map(type, payload)):
            pkt = _new_packet(Packet)
            pkt.kind = KIND_COW_FLAT
            pkt.obj = payload.copy()
            pkt.data = None
            pkt._size = None
            return pkt
        try:
            return _cow_packet(freeze(payload))
        except NotCowable:
            return Packet(data=pack(payload))
    if t is dict or t is set or t in COW_PROXY_TYPES:
        try:
            return _cow_packet(freeze(payload))
        except NotCowable:
            return Packet(data=pack(payload))
    if t is bytearray:
        return Packet(obj=_BUF_BYTEARRAY, data=bytes(payload), kind=KIND_BUFFER)
    if t is memoryview:
        return Packet(obj=_BUF_MEMORYVIEW, data=payload.tobytes(), kind=KIND_BUFFER)
    if t is array:
        return Packet(
            obj=_BUF_ARRAY + payload.typecode, data=payload.tobytes(), kind=KIND_BUFFER
        )
    if t is tuple or t is frozenset:
        if is_immutable(payload):
            return Packet(obj=payload)
        if t is tuple:  # a tuple is poisoned by one mutable element: CoW it
            try:
                return _cow_packet(freeze(payload))
            except NotCowable:
                pass
    return Packet(data=pack(payload))


def deep_copy_by_value(payload: Any) -> Any:
    """Isolating copy (used by self-sends, collective root copies, tests).

    Immutable payloads come back as themselves — a rank sending itself an
    ``int`` no longer pays two pickles for a copy that cannot be told
    apart from the original.  Container payloads come back as CoW proxies
    over a private snapshot: isolated, but the deep copy is deferred until
    (unless) the holder actually mutates.
    """
    if is_immutable(payload):
        return payload
    return pack_packet(payload).unpack()
