"""Message-passing (MPI-analogue) runtime.

Public surface::

    from repro.mp import mpirun, ANY_SOURCE, ANY_TAG

    def main(comm):
        if comm.rank == 0:
            comm.send("hi", dest=1)
        elif comm.rank == 1:
            print(comm.recv(source=0))

    result = mpirun(2, main)

Ranks are isolated by copy-on-send messaging (see
:mod:`repro.mp.serialize`), placed on simulated cluster nodes (see
:mod:`repro.mp.cluster`), and clocked by a LogP cost model (see
:mod:`repro.mp.vtime`).  Collectives are real algorithms over
point-to-point messages (see :mod:`repro.mp.collectives`); *which*
algorithm each one runs is the world's pluggable communicator topology
(see :mod:`repro.mp.communicators` — ``flat``/``binomial``/``ring``/
``hierarchical``, selectable per run and defaulted by the
``REPRO_TOPOLOGY`` environment variable).
"""

from repro.mp.cluster import Cluster
from repro.mp.comm import (
    ANY_SOURCE,
    ANY_TAG,
    Comm,
    Request,
    Status,
    testall,
    waitall,
    waitany,
)
from repro.mp.communicators import (
    available_topologies,
    create_communicator,
    default_topology,
)
from repro.mp.runtime import MpRuntime, World, WorldResult, mpirun
from repro.mp.topology import CartComm, create_cart, dims_create
from repro.mp.vtime import (
    LinkCosts,
    LogPCosts,
    NETWORK_PROFILES,
    NetworkModel,
    network_profile,
)
from repro.ops import (
    BAND,
    BOR,
    BXOR,
    LAND,
    LOR,
    LXOR,
    MAX,
    MAXLOC,
    MIN,
    MINLOC,
    PROD,
    SUM,
    Op,
)

__all__ = [
    "mpirun",
    "MpRuntime",
    "World",
    "WorldResult",
    "Comm",
    "Request",
    "waitall",
    "waitany",
    "testall",
    "Status",
    "Cluster",
    "CartComm",
    "create_cart",
    "dims_create",
    "LogPCosts",
    "LinkCosts",
    "NetworkModel",
    "NETWORK_PROFILES",
    "network_profile",
    "available_topologies",
    "create_communicator",
    "default_topology",
    "ANY_SOURCE",
    "ANY_TAG",
    "Op",
    "SUM",
    "PROD",
    "MIN",
    "MAX",
    "MINLOC",
    "MAXLOC",
    "LAND",
    "LOR",
    "LXOR",
    "BAND",
    "BOR",
    "BXOR",
]
