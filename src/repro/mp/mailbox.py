"""Per-rank mailboxes with MPI matching semantics.

Every rank owns one :class:`Mailbox`.  A message carries its communicator
*context key* (so traffic on split/dup'd communicators and internal
collective traffic can never cross-match), the sender's communicator-local
rank, a non-negative tag, the pickled payload, and its virtual arrival
time under the LogP model.

Matching follows MPI's rules:

- a receive names ``(source, tag)`` where either may be a wildcard
  (``ANY_SOURCE`` / ``ANY_TAG``);
- candidates are considered in arrival order, so messages between one
  (sender, receiver, tag) pair are *non-overtaking*;
- synchronous sends (``ssend``) park a rendezvous flag on the message; the
  sender's clock and control only resume once the receive matched it.

The store is **indexed by exact** ``(context, source, tag)`` key: the
overwhelmingly common exact receive touches one deque — O(1) at any
in-flight message count, where the old flat list scanned every queued
message per match (O(messages), quadratic across a busy run at np=256).
Wildcard receives pick the lowest-``uid`` candidate across matching
buckets; ``uid`` is a global arrival counter, so this is exactly the
arrival order the flat scan honoured and non-overtaking is preserved.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass
from typing import Hashable

from repro.errors import CommError
from repro.mp.serialize import Packet

__all__ = ["ANY_SOURCE", "ANY_TAG", "Message", "Mailbox", "Status"]

#: Wildcard source for receives (MPI_ANY_SOURCE).
ANY_SOURCE = -2
#: Wildcard tag for receives (MPI_ANY_TAG).
ANY_TAG = -1

_msg_ids = itertools.count()


class Message:
    """One in-flight message.

    The payload lives in a :class:`~repro.mp.serialize.Packet` (pickled
    bytes, or an immutable travelling by reference); ``data`` and ``size``
    remain available as views for callers that think in pickle terms.
    A slotted plain class rather than a dataclass: one of these is built
    per send, on the transport hot path.
    """

    __slots__ = ("context", "source", "tag", "packet", "arrival", "sync", "consumed", "uid")

    def __init__(
        self,
        context: Hashable,
        source: int,
        tag: int,
        packet: Packet | None = None,
        arrival: float = 0.0,  # virtual time at which it becomes receivable
        sync: bool = False,  # ssend rendezvous?
        data: bytes | None = None,
        size: int | None = None,
    ):
        self.context = context
        self.source = source
        self.tag = tag
        self.packet = packet if packet is not None else Packet(data=data, size=size)
        self.arrival = arrival
        self.sync = sync
        self.consumed = False  # set when matched (releases a waiting ssend)
        self.uid = next(_msg_ids)

    @property
    def data(self) -> bytes | None:
        """The pickled payload (``None`` for by-reference packets)."""
        return self.packet.data

    @property
    def size(self) -> int:
        """Pickle length in bytes (lazily computed for by-ref packets)."""
        return self.packet.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Message(src={self.source}, tag={self.tag}, uid={self.uid}, "
            f"sync={self.sync})"
        )


@dataclass(frozen=True)
class Status:
    """Receive status (MPI_Status): who sent it, with what tag, how big."""

    source: int
    tag: int
    size: int

    def Get_source(self) -> int:
        """MPI spelling of :attr:`source`."""
        return self.source

    def Get_tag(self) -> int:
        """MPI spelling of :attr:`tag`."""
        return self.tag

    def Get_count(self) -> int:
        """Message size in bytes (the pickle length)."""
        return self.size


class Mailbox:
    """One rank's incoming-message store, indexed for O(1) matching.

    Messages are bucketed by exact ``(context, source, tag)`` key in a
    ``dict`` of deques; each bucket is FIFO, so per-pair non-overtaking
    is structural and an exact-key receive is a dict probe plus a
    ``popleft``.  Wildcard receives scan the (few) live buckets and pick
    the lowest ``uid`` — global arrival order — among bucket heads.

    ``locked=False`` drops the internal lock entirely: lockstep worlds
    run exactly one task at a time, so their mailboxes can never be
    accessed concurrently.  The default keeps the lock for real-thread
    worlds, where the indexed store (bucket creation, empty-bucket GC)
    is not safe under bare GIL atomicity the way the old flat
    ``list.append`` was.
    """

    __slots__ = ("owner_rank", "_lock", "_queues")

    def __init__(self, owner_rank: int, *, locked: bool = True):
        self.owner_rank = owner_rank
        self._lock = threading.Lock() if locked else None
        self._queues: dict[tuple, deque[Message]] = {}

    def deposit(self, msg: Message) -> None:
        """File an in-flight message under its key (called by the sender)."""
        lock = self._lock
        if lock is None:
            self._deposit(msg)
        else:
            with lock:
                self._deposit(msg)

    def _deposit(self, msg: Message) -> None:
        queues = self._queues
        key = (msg.context, msg.source, msg.tag)
        q = queues.get(key)
        if q is None:
            queues[key] = q = deque((msg,))
        else:
            q.append(msg)

    def _match(
        self, context: Hashable, source: int, tag: int
    ) -> tuple[tuple, "deque[Message]", Message] | None:
        """First matching ``(key, bucket, message)`` in arrival order."""
        queues = self._queues
        if source != ANY_SOURCE and tag != ANY_TAG:
            key = (context, source, tag)
            q = queues.get(key)
            if q:
                for msg in q:
                    if not msg.consumed:
                        return key, q, msg
            return None
        best = None
        for key, q in queues.items():
            if key[0] != context:
                continue
            if source != ANY_SOURCE and key[1] != source:
                continue
            if tag != ANY_TAG and key[2] != tag:
                continue
            for msg in q:
                if not msg.consumed:
                    if best is None or msg.uid < best[2].uid:
                        best = (key, q, msg)
                    break
        return best

    def peek(self, context: Hashable, source: int, tag: int) -> Message | None:
        """First matching message in arrival order, not removed (probe)."""
        lock = self._lock
        if lock is None:
            hit = self._match(context, source, tag)
        else:
            with lock:
                hit = self._match(context, source, tag)
        return hit[2] if hit is not None else None

    def take(self, context: Hashable, source: int, tag: int) -> Message | None:
        """Remove and return the first matching message, or ``None``.

        Marks the message consumed so a rendezvous (``ssend``) sender is
        released.
        """
        lock = self._lock
        if lock is None:
            return self._take(context, source, tag)
        with lock:
            return self._take(context, source, tag)

    def _take(self, context: Hashable, source: int, tag: int) -> Message | None:
        hit = self._match(context, source, tag)
        if hit is None:
            return None
        key, q, msg = hit
        # msg is the first unconsumed entry of its bucket: purge any
        # consumed stragglers ahead of it, then pop it.
        while q[0].consumed and q[0] is not msg:
            q.popleft()
        if q[0] is msg:
            q.popleft()
        else:  # pragma: no cover - unreachable; _match picks the head
            q.remove(msg)
        msg.consumed = True
        if not q:
            # Empty-bucket GC keeps the wildcard scan proportional to the
            # number of *live* (sender, tag) pairs, not all pairs ever
            # seen.  Safe: this runs under the lock or (lockstep) with no
            # concurrency at all.
            del self._queues[key]
        return msg

    def pending(self) -> int:
        """Number of undelivered messages (diagnostics / leak tests)."""
        lock = self._lock
        if lock is None:
            return sum(len(q) for q in self._queues.values())
        with lock:
            return sum(len(q) for q in self._queues.values())

    def drain(self) -> list[Message]:
        """Remove and return everything, in arrival order (world teardown)."""
        lock = self._lock
        if lock is None:
            return self._drain()
        with lock:
            return self._drain()

    def _drain(self) -> list[Message]:
        out = [msg for q in self._queues.values() for msg in q]
        out.sort(key=lambda m: m.uid)
        self._queues.clear()
        return out


def validate_tag(tag: int) -> None:
    """User-facing tags must be non-negative (wildcards are receive-only)."""
    if not isinstance(tag, int) or isinstance(tag, bool):
        raise CommError(f"tag must be an int, got {type(tag).__name__}")
    if tag < 0:
        raise CommError(f"send tag must be >= 0, got {tag}")
