"""Per-rank mailboxes with MPI matching semantics.

Every rank owns one :class:`Mailbox`.  A message carries its communicator
*context key* (so traffic on split/dup'd communicators and internal
collective traffic can never cross-match), the sender's communicator-local
rank, a non-negative tag, the pickled payload, and its virtual arrival
time under the LogP model.

Matching follows MPI's rules:

- a receive names ``(source, tag)`` where either may be a wildcard
  (``ANY_SOURCE`` / ``ANY_TAG``);
- candidates are considered in arrival order, so messages between one
  (sender, receiver, tag) pair are *non-overtaking*;
- synchronous sends (``ssend``) park a rendezvous flag on the message; the
  sender's clock and control only resume once the receive matched it.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Hashable

from repro.errors import CommError
from repro.mp.serialize import Packet

__all__ = ["ANY_SOURCE", "ANY_TAG", "Message", "Mailbox", "Status"]

#: Wildcard source for receives (MPI_ANY_SOURCE).
ANY_SOURCE = -2
#: Wildcard tag for receives (MPI_ANY_TAG).
ANY_TAG = -1

_msg_ids = itertools.count()


class Message:
    """One in-flight message.

    The payload lives in a :class:`~repro.mp.serialize.Packet` (pickled
    bytes, or an immutable travelling by reference); ``data`` and ``size``
    remain available as views for callers that think in pickle terms.
    A slotted plain class rather than a dataclass: one of these is built
    per send, on the transport hot path.
    """

    __slots__ = ("context", "source", "tag", "packet", "arrival", "sync", "consumed", "uid")

    def __init__(
        self,
        context: Hashable,
        source: int,
        tag: int,
        packet: Packet | None = None,
        arrival: float = 0.0,  # virtual time at which it becomes receivable
        sync: bool = False,  # ssend rendezvous?
        data: bytes | None = None,
        size: int | None = None,
    ):
        self.context = context
        self.source = source
        self.tag = tag
        self.packet = packet if packet is not None else Packet(data=data, size=size)
        self.arrival = arrival
        self.sync = sync
        self.consumed = False  # set when matched (releases a waiting ssend)
        self.uid = next(_msg_ids)

    @property
    def data(self) -> bytes | None:
        """The pickled payload (``None`` for by-reference packets)."""
        return self.packet.data

    @property
    def size(self) -> int:
        """Pickle length in bytes (lazily computed for by-ref packets)."""
        return self.packet.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Message(src={self.source}, tag={self.tag}, uid={self.uid}, "
            f"sync={self.sync})"
        )


@dataclass(frozen=True)
class Status:
    """Receive status (MPI_Status): who sent it, with what tag, how big."""

    source: int
    tag: int
    size: int

    def Get_source(self) -> int:
        """MPI spelling of :attr:`source`."""
        return self.source

    def Get_tag(self) -> int:
        """MPI spelling of :attr:`tag`."""
        return self.tag

    def Get_count(self) -> int:
        """Message size in bytes (the pickle length)."""
        return self.size


class Mailbox:
    """One rank's incoming-message store."""

    def __init__(self, owner_rank: int):
        self.owner_rank = owner_rank
        self._lock = threading.Lock()
        self._messages: list[Message] = []

    def deposit(self, msg: Message) -> None:
        """Append an in-flight message (called by the sender)."""
        with self._lock:
            self._messages.append(msg)

    def peek(self, context: Hashable, source: int, tag: int) -> Message | None:
        """First matching message in arrival order, not removed (probe).

        The match test is inlined (rather than calling :func:`_matches`)
        in both scans: ``peek`` is every blocked receive's wait predicate,
        re-run by the scheduler at each wakeup.
        """
        with self._lock:
            for msg in self._messages:
                if (
                    msg.context == context
                    and not msg.consumed
                    and (source == ANY_SOURCE or msg.source == source)
                    and (tag == ANY_TAG or msg.tag == tag)
                ):
                    return msg
            return None

    def take(self, context: Hashable, source: int, tag: int) -> Message | None:
        """Remove and return the first matching message, or ``None``.

        Marks the message consumed so a rendezvous (``ssend``) sender is
        released.
        """
        with self._lock:
            messages = self._messages
            for i, msg in enumerate(messages):
                if (
                    msg.context == context
                    and not msg.consumed
                    and (source == ANY_SOURCE or msg.source == source)
                    and (tag == ANY_TAG or msg.tag == tag)
                ):
                    del messages[i]
                    msg.consumed = True
                    return msg
            return None

    def pending(self) -> int:
        """Number of undelivered messages (diagnostics / leak tests)."""
        with self._lock:
            return len(self._messages)

    def drain(self) -> list[Message]:
        """Remove and return everything (used on world teardown)."""
        with self._lock:
            out = self._messages
            self._messages = []
            return out


def validate_tag(tag: int) -> None:
    """User-facing tags must be non-negative (wildcards are receive-only)."""
    if not isinstance(tag, int) or isinstance(tag, bool):
        raise CommError(f"tag must be an int, got {type(tag).__name__}")
    if tag < 0:
        raise CommError(f"send tag must be >= 0, got {tag}")
