"""Per-rank mailboxes with MPI matching semantics.

Every rank owns one :class:`Mailbox`.  A message carries its communicator
*context key* (so traffic on split/dup'd communicators and internal
collective traffic can never cross-match), the sender's communicator-local
rank, a non-negative tag, the pickled payload, and its virtual arrival
time under the LogP model.

Matching follows MPI's rules:

- a receive names ``(source, tag)`` where either may be a wildcard
  (``ANY_SOURCE`` / ``ANY_TAG``);
- candidates are considered in arrival order, so messages between one
  (sender, receiver, tag) pair are *non-overtaking*;
- synchronous sends (``ssend``) park a rendezvous flag on the message; the
  sender's clock and control only resume once the receive matched it.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.errors import CommError

__all__ = ["ANY_SOURCE", "ANY_TAG", "Message", "Mailbox", "Status"]

#: Wildcard source for receives (MPI_ANY_SOURCE).
ANY_SOURCE = -2
#: Wildcard tag for receives (MPI_ANY_TAG).
ANY_TAG = -1

_msg_ids = itertools.count()


@dataclass
class Message:
    """One in-flight message."""

    context: Hashable
    source: int
    tag: int
    data: bytes
    size: int
    arrival: float  # virtual time at which it becomes receivable
    sync: bool = False  # ssend rendezvous?
    consumed: bool = False  # set when matched (releases a waiting ssend)
    uid: int = field(default_factory=lambda: next(_msg_ids))


@dataclass(frozen=True)
class Status:
    """Receive status (MPI_Status): who sent it, with what tag, how big."""

    source: int
    tag: int
    size: int

    def Get_source(self) -> int:
        """MPI spelling of :attr:`source`."""
        return self.source

    def Get_tag(self) -> int:
        """MPI spelling of :attr:`tag`."""
        return self.tag

    def Get_count(self) -> int:
        """Message size in bytes (the pickle length)."""
        return self.size


def _matches(msg: Message, context: Hashable, source: int, tag: int) -> bool:
    if msg.context != context or msg.consumed:
        return False
    if source != ANY_SOURCE and msg.source != source:
        return False
    if tag != ANY_TAG and msg.tag != tag:
        return False
    return True


class Mailbox:
    """One rank's incoming-message store."""

    def __init__(self, owner_rank: int):
        self.owner_rank = owner_rank
        self._lock = threading.Lock()
        self._messages: list[Message] = []

    def deposit(self, msg: Message) -> None:
        """Append an in-flight message (called by the sender)."""
        with self._lock:
            self._messages.append(msg)

    def peek(self, context: Hashable, source: int, tag: int) -> Message | None:
        """First matching message in arrival order, not removed (probe)."""
        with self._lock:
            for msg in self._messages:
                if _matches(msg, context, source, tag):
                    return msg
            return None

    def take(self, context: Hashable, source: int, tag: int) -> Message | None:
        """Remove and return the first matching message, or ``None``.

        Marks the message consumed so a rendezvous (``ssend``) sender is
        released.
        """
        with self._lock:
            for i, msg in enumerate(self._messages):
                if _matches(msg, context, source, tag):
                    del self._messages[i]
                    msg.consumed = True
                    return msg
            return None

    def pending(self) -> int:
        """Number of undelivered messages (diagnostics / leak tests)."""
        with self._lock:
            return len(self._messages)

    def drain(self) -> list[Message]:
        """Remove and return everything (used on world teardown)."""
        with self._lock:
            out = self._messages
            self._messages = []
            return out


def validate_tag(tag: int) -> None:
    """User-facing tags must be non-negative (wildcards are receive-only)."""
    if not isinstance(tag, int) or isinstance(tag, bool):
        raise CommError(f"tag must be an int, got {type(tag).__name__}")
    if tag < 0:
        raise CommError(f"send tag must be >= 0, got {tag}")
