"""Copy-on-write payload proxies: structural sharing with isolation intact.

PR 2's transport pickled every mutable payload per receiver.  That is the
*mechanism* of distributed memory, not its meaning: the observable contract
is only that no rank can see another rank's mutations.  Most patternlet
receivers never mutate what they receive (they read a broadcast toggle
table, sum a scattered block, print a gathered row), so the copy is usually
pure waste — O(receivers) serialisations of identical bytes in a tree
broadcast.

This module keeps the contract while deleting the copies:

- :func:`freeze` takes a mutable container payload at *send* time and
  returns a private structural **snapshot** — same shapes (``list`` stays
  ``list``, ``dict`` stays ``dict``), immutable leaves shared by reference,
  aliasing and cycles preserved via a memo, no pickle involved.  The
  snapshot is owned by the packet and never mutated afterwards, so the
  sender mutating its original after the send cannot leak into any
  receiver (the classic MPI_Isend aliasing bug is impossible by
  construction).
- :func:`thaw` gives each receiver a **proxy** (:class:`CowList` /
  :class:`CowDict`) over that shared snapshot.  The proxy is an *empty*
  real container carrying a reference to its frozen source; every public
  operation — reads included — first materialises one level
  (shallow-copies the snapshot level into the proxy's own storage, wrapping
  mutable children in fresh proxies).  After materialisation the proxy is
  indistinguishable from a plain container and pays zero further overhead
  at the C level.  Receivers that only read still share all *immutable*
  leaves; receivers that mutate get private storage the moment they touch
  the object; sibling receivers and the sender never observe either.
- ``set`` payloads thaw to **plain private copies**, not proxies: their
  elements are immutable under the vocabulary, so a shallow copy already
  is a deep copy — and CPython's set-argument fast paths (``set(x)``,
  ``frozenset(x)``, ``s.update(x)``, ``s.union(x)``) read the argument's
  hash table directly, bypassing every Python-level method, which a lazy
  set proxy could not survive.

Materialisation-on-read (not merely on write) is what makes the proxies
safe against CPython's C-level shortcuts: once any Python-visible method
has run, the subclass's real storage is populated, so C code that indexes
``ob_item`` directly sees the right data.  Shortcut paths that take the
*proxy as an argument* without calling any of its methods are closed case
by case: dicts are safe because every dict-merging fast path defers to an
overridden ``keys()``; ``list + proxy`` is intercepted by
``CowList.__radd__`` (subclass reflection runs before ``list.__add__``'s
direct ``ob_item`` read); sets are never lazy at all (above).  The one
documented residual hole is C code that bypasses *all* Python-level
methods on a never-touched proxy (e.g. handing a freshly received,
never-read proxy straight to the C ``json`` encoder); none of the
runtime's own paths do this — the batch codec walks containers in
Python — and ``repr``/``==``/iteration all materialise first.

Why not true lazy-pickle sharing of the sender's live object?  Because the
sender may mutate between send and receive; only an eager snapshot
preserves send-time semantics.  The snapshot is still ~6× cheaper than a
pickle round-trip for small payloads and is taken exactly once per send
regardless of the number of receivers.
"""

from __future__ import annotations

import threading
import types
from typing import Any

__all__ = [
    "CowList",
    "CowDict",
    "NotCowable",
    "freeze",
    "thaw",
    "is_materialized",
    "COW_PROXY_TYPES",
]

#: Exact leaf types shareable by reference (mirrors serialize._IMMUTABLE_SCALARS;
#: duplicated here to keep this module import-light and cycle-free).
_SCALARS = frozenset((int, float, str, bytes, bool, complex, type(None)))


class NotCowable(Exception):
    """Payload contains a node outside the CoW vocabulary; use the pickle lane."""


# One process-wide reentrant lock guards first-touch materialisation.  It is
# only ever taken while a proxy is still frozen — the common case (already
# materialised) is a single attribute check with no locking.  Reentrant
# because materialising ``self`` may materialise a proxy argument in turn.
_THAW_LOCK = threading.RLock()


def _thaw(node: Any, memo: dict) -> Any:
    """Receiver-side value for one snapshot node (lazy: children stay frozen).

    ``memo`` maps ``id(snapshot_node) -> (snapshot_node, thawed)`` so aliased
    and cyclic structure on the sender side stays aliased on the receiver
    side; the snapshot node is kept in the value to pin its id.
    """
    t = type(node)
    if t is list:
        cls: Any = CowList
    elif t is dict:
        cls = CowDict
    elif t is set:
        # Plain private copy (elements are immutable: shallow == deep);
        # see the module docstring for why sets are never lazy.
        got = memo.get(id(node))
        if got is not None:
            return got[1]
        out = set(node)
        memo[id(node)] = (node, out)
        return out
    elif t is tuple:
        got = memo.get(id(node))
        if got is not None:
            return got[1]
        out = tuple(_thaw(x, memo) for x in node)
        if all(a is b for a, b in zip(out, node)):
            out = node  # fully immutable tuple: share it
        memo[id(node)] = (node, out)
        return out
    else:
        # scalars, range, frozenset: immutable by freeze()'s construction.
        return node
    got = memo.get(id(node))
    if got is not None:
        return got[1]
    proxy = cls(node, memo)
    memo[id(node)] = (node, proxy)
    return proxy


def thaw(snapshot: Any) -> Any:
    """Materialise a receiver's view of a frozen snapshot (fresh memo)."""
    return _thaw(snapshot, {})


def is_materialized(proxy: Any) -> bool:
    """True once ``proxy`` has populated its own storage (test helper)."""
    return proxy._frozen is None


def _freeze(obj: Any, memo: dict) -> Any:
    t = type(obj)
    if t in _SCALARS or t is range:
        return obj
    oid = id(obj)
    got = memo.get(oid)
    if got is not None:
        return got
    if t in _PROXY_BASES:  # CowList/CowDict: re-send shares the snapshot
        snap = obj._frozen
        if snap is not None:
            memo[oid] = snap
            return snap
        t = _PROXY_BASES[t]  # materialised: freeze its real storage
    if t is list:
        new_list: list = []
        memo[oid] = new_list
        for x in obj:
            new_list.append(_freeze(x, memo))
        return new_list
    if t is dict:
        new_dict: dict = {}
        memo[oid] = new_dict
        for k, v in obj.items():
            # Keys are hashable; under the CoW vocabulary that means
            # immutable, so _freeze returns them by reference (or raises).
            new_dict[_freeze(k, memo)] = _freeze(v, memo)
        return new_dict
    if t is set:
        for x in obj:
            _freeze(x, memo)  # validate elements (hashable => immutable here)
        new_set = set(obj)
        memo[oid] = new_set
        return new_set
    if t is tuple:
        frozen = tuple(_freeze(x, memo) for x in obj)
        if all(a is b for a, b in zip(frozen, obj)):
            frozen = obj  # all-immutable tuple: share by reference
        memo[oid] = frozen
        return frozen
    if t is frozenset:
        for x in obj:
            _freeze(x, memo)  # elements must be in-vocabulary
        memo[oid] = obj  # immutable container of immutables: share it
        return obj
    raise NotCowable(type(obj).__name__)


def freeze(payload: Any) -> Any:
    """Send-time snapshot of a container payload (no pickle).

    Returns a private structure of plain containers and shared immutable
    leaves, aliasing/cycles preserved.  Raises :class:`NotCowable` when the
    payload contains any node outside the vocabulary (custom classes,
    subclassed containers, ...) — callers fall back to the pickle lane.
    ``RecursionError`` on a pathologically deep nest degrades the same
    way; the freeze walk actually survives somewhat deeper nesting than
    pickle does, so the fallback only ever converts "too deep for
    freeze" into the pickle lane's own eager
    :class:`~repro.errors.IsolationError` — exactly what the
    pickle-only transport raised before this lane existed.
    """
    try:
        return _freeze(payload, {})
    except RecursionError as exc:
        raise NotCowable("payload too deeply nested for structural freeze") from exc


# -- proxies -----------------------------------------------------------------
#
# Each proxy is a real container subclass constructed EMPTY, holding the
# frozen snapshot in a slot.  Every public method (generated below) checks
# the slot and materialises on first touch.  __init__ deliberately does not
# call the base initialiser: base storage stays empty until materialisation.


class CowList(list):
    """A received ``list``: shares the sender's snapshot until first touch."""

    __slots__ = ("_frozen", "_memo")

    def __init__(self, frozen: list, memo: dict | None = None):
        self._frozen = frozen
        self._memo = memo if memo is not None else {}

    def _materialize(self) -> None:
        with _THAW_LOCK:
            fz = self._frozen
            if fz is None:
                return
            memo = self._memo
            if memo is None:
                # Root proxies defer the memo to first touch; the root must
                # register itself so a cycle (or alias) back to the
                # snapshot root resolves to *this* proxy, not a twin.
                memo = {id(fz): (fz, self)}
            list.extend(self, [_thaw(x, memo) for x in fz])
            self._frozen = None
            self._memo = None

    def __reduce__(self):
        if self._frozen is not None:
            self._materialize()
        return (list, (list(self),))

    def __radd__(self, other):
        # ``plain_list + proxy`` would otherwise hit list_concat's direct
        # ob_item read on a still-empty subclass; defining __radd__ on the
        # subclass makes Python consult it *before* list.__add__.
        if self._frozen is not None:
            self._materialize()
        return list.__add__(other, self)


class CowDict(dict):
    """A received ``dict``: shares the sender's snapshot until first touch."""

    __slots__ = ("_frozen", "_memo")

    def __init__(self, frozen: dict, memo: dict | None = None):
        self._frozen = frozen
        self._memo = memo if memo is not None else {}

    def _materialize(self) -> None:
        with _THAW_LOCK:
            fz = self._frozen
            if fz is None:
                return
            memo = self._memo
            if memo is None:  # see CowList._materialize
                memo = {id(fz): (fz, self)}
            for k, v in fz.items():
                dict.__setitem__(self, k, _thaw(v, memo))
            self._frozen = None
            self._memo = None

    def __reduce__(self):
        if self._frozen is not None:
            self._materialize()
        return (dict, (dict(self),))


_PROXY_BASES = {CowList: list, CowDict: dict}
COW_PROXY_TYPES = tuple(_PROXY_BASES)

#: Methods never wrapped: identity/infrastructure, the explicit __reduce__
#: above, and classmethods (fromkeys) that take no instance.
_SKIP = {
    "__class__",
    "__class_getitem__",
    "__delattr__",
    "__dir__",
    "__doc__",
    "__getattribute__",
    "__getstate__",
    "__getnewargs__",
    "__hash__",
    "__init__",
    "__init_subclass__",
    "__new__",
    "__reduce__",
    "__reduce_ex__",
    "__setattr__",
    "__sizeof__",
    "__subclasshook__",
    "_materialize",
}


def _install_delegates(cls: type, base: type) -> None:
    """Wrap every public method of ``base`` to materialise on first touch.

    Proxy *arguments* are materialised too: ``a == b`` with a frozen ``b``
    would otherwise let the C comparison read ``b``'s still-empty storage.
    """
    proxy_types = COW_PROXY_TYPES
    for name in dir(base):
        if name in _SKIP:
            continue
        raw = base.__dict__.get(name)
        if isinstance(raw, (classmethod, staticmethod)) or type(raw) in (
            types.ClassMethodDescriptorType,
            staticmethod,
        ):
            continue
        fn = getattr(base, name)
        if not callable(fn):
            continue
        if getattr(object, name, None) is fn:
            continue  # inherited straight from object: touches no storage

        def _make(fn: Any):
            def method(self, *args, **kwargs):
                if self._frozen is not None:
                    self._materialize()
                for a in args:
                    if type(a) in proxy_types and a._frozen is not None:
                        a._materialize()
                return fn(self, *args, **kwargs)

            method.__name__ = fn.__name__
            method.__qualname__ = f"{cls.__name__}.{fn.__name__}"
            return method

        setattr(cls, name, _make(fn))


_install_delegates(CowList, list)
_install_delegates(CowDict, dict)
