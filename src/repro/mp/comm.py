"""Communicators: point-to-point messaging, requests, and comm management.

A :class:`Comm` is a rank's handle on one communication context, mirroring
mpi4py's lowercase (pickle-based) API:

    def main(comm):
        if comm.rank == 0:
            comm.send({"a": 7}, dest=1, tag=11)
        elif comm.rank == 1:
            data = comm.recv(source=0, tag=11)

Payloads cross by value (see :mod:`repro.mp.serialize`), matching follows
MPI rules (see :mod:`repro.mp.mailbox`), and every operation advances the
rank's logical clock under the LogP cost model (see :mod:`repro.mp.vtime`).

Send flavours:

- :meth:`Comm.send` — *eager/buffered*: deposits and returns immediately,
  like ``MPI_Send`` of a small message on a real implementation.
- :meth:`Comm.ssend` — *synchronous*: returns only once the matching
  receive has started.  This is the flavour whose naive head-to-head use
  deadlocks, which the ``messagePassing2``/deadlock patternlets exploit.
- :meth:`Comm.isend` / :meth:`Comm.irecv` — nonblocking, returning a
  :class:`Request` with ``test``/``wait``.

Collective operations live in :mod:`repro.mp.collectives`; ``Comm`` exposes
them as methods (``bcast``, ``scatter``, ``gather``, ``reduce``, ...).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Hashable, Sequence

from repro.errors import CommError, MpError
from repro.mp import collectives as _coll
from repro.obs import live as _live
from repro.sched.base import current_task_label as _task_label
from repro.trace import events as _trace_events
from repro.trace.events import active as _trace_active, emit as _trace_emit
from repro.mp.mailbox import (
    ANY_SOURCE,
    ANY_TAG,
    Mailbox,
    Message,
    Status,
    _msg_ids,
    validate_tag,
)
from repro.mp.serialize import (
    KIND_COW_FLAT,
    KIND_COW_MOVE,
    KIND_REF,
    Packet,
    pack_packet,
)
from repro.ops import Op

if TYPE_CHECKING:  # pragma: no cover
    from repro.mp.runtime import World

__all__ = ["Comm", "Request", "ANY_SOURCE", "ANY_TAG", "Status", "waitall", "waitany", "testall"]

#: Unique sentinel for the per-communicator packet memo ("no entry yet");
#: distinct from any user payload, including None.
_NO_MEMO = object()

#: Allocator for the unrolled Message construction in :meth:`Comm.send`.
_new_message = object.__new__


class Request:
    """Handle for a nonblocking operation (MPI_Request analogue)."""

    def __init__(
        self,
        comm: "Comm",
        *,
        completed: bool = False,
        value: Any = None,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
    ):
        self._comm = comm
        self._done = completed
        self._value = value
        self._source = source
        self._tag = tag

    def test(self) -> tuple[bool, Any]:
        """Nonblocking completion check: ``(done, value_or_None)``."""
        if self._done:
            return True, self._value
        msg = self._comm._mailbox.peek(self._comm._ctx, self._source, self._tag)
        if msg is None:
            # Give teammates a chance to make progress between polls (this
            # is what makes test-loops live under the lockstep executor).
            self._comm._world.executor.checkpoint()
            return False, None
        self._value = self._comm._complete_recv(self._source, self._tag)
        self._done = True
        return True, self._value

    def wait(self) -> Any:
        """Block until complete; return the received payload (None for sends)."""
        if self._done:
            return self._value
        self._value = self._comm.recv(source=self._source, tag=self._tag)
        self._done = True
        return self._value


def waitall(requests: "Sequence[Request]") -> list[Any]:
    """``MPI_Waitall``: complete every request; return their payloads in order."""
    return [req.wait() for req in requests]


def waitany(requests: "Sequence[Request]") -> tuple[int, Any]:
    """``MPI_Waitany``: block until *some* request completes.

    Returns ``(index, payload)`` of the first completion found.  Polls the
    request set through nonblocking tests (which are scheduler checkpoints,
    so lockstep worlds keep making progress).
    """
    if not requests:
        raise CommError("waitany on an empty request list")
    comm = requests[0]._comm
    while True:
        for i, req in enumerate(requests):
            done, value = req.test()
            if done:
                return i, value
        comm._check_world()


def testall(requests: "Sequence[Request]") -> tuple[bool, list[Any] | None]:
    """``MPI_Testall``: ``(True, payloads)`` if all complete, else ``(False, None)``."""
    values = []
    for req in requests:
        done, value = req.test()
        if not done:
            return False, None
        values.append(value)
    return True, values


class Comm:
    """One rank's communicator handle.

    Exposes both pythonic (``comm.rank``) and MPI-spelled
    (``comm.Get_rank()``) accessors, since the paper's audience will have
    seen the latter.
    """

    def __init__(
        self,
        world: "World",
        local_rank: int,
        global_ranks: Sequence[int],
        ctx: Hashable,
        name: str = "COMM_WORLD",
    ):
        self._world = world
        # A plain-list ``global_ranks`` is adopted without copying: rank
        # maps are immutable by contract once a communicator exists, and
        # the world-sized copy per rank made world construction O(np^2).
        self._ranks = (
            global_ranks if type(global_ranks) is list else list(global_ranks)
        )
        self._rank = local_rank
        self._ctx = ctx
        self._name = name
        self._coll_seq = 0
        self._split_seq = 0
        # Hot-path caches: every send/recv needs this rank's clock and
        # mailbox; resolving them through the world per operation is pure
        # overhead, and a communicator's rank mapping never changes.
        gid = self._ranks[local_rank]
        self._my_clock = world.clocks[gid]
        self._my_mailbox = world.mailboxes[gid]
        # LogP constants are frozen for the world's lifetime; fold the
        # per-message arithmetic down to one add when bandwidth is off.
        costs = world.costs
        self._ovh = costs.overhead
        self._hop0 = costs.transit(0)
        self._pb = costs.per_byte
        # Which algorithm set comm.bcast()/reduce()/... dispatch to.
        self._topo = world.communicator
        # Heterogeneous networks replace the scalar constants with
        # per-destination arrays indexed by local rank: the sender pays
        # the *link's* overhead, and transit varies by (src, dst) node
        # pair.  ``_hop0s is None`` keeps the uniform fast path exact.
        if world.hetero:
            net = world.network
            nodes = world.rank_nodes
            my_node = nodes[gid]
            links = [net.link(my_node, nodes[g]) for g in self._ranks]
            self._sovhs = [l.overhead for l in links]
            self._hop0s = [l.overhead + l.latency for l in links]
            self._pbs = [l.per_byte for l in links]
        else:
            self._hop0s = None
        self._executor = world.executor
        self._lockstep = self._executor.mode == "lockstep"
        self._mailboxes = world.mailboxes
        # Communicators are constructed on (and used from) their owning
        # rank task — MPI_THREAD_FUNNELED semantics — so the live-probe
        # hooks can be bound to this task's label once, here.  Resolving
        # the thread-local label (and building a (label, size) tuple) per
        # event cost ~2x the probe append itself on the send/recv path.
        p = _live.probe
        if p is not None:
            label = _task_label() or "main"
            self._p_sent = p.sent_for(label)
            self._p_recv = p.received_for(label)
        else:
            self._p_sent = None
            self._p_recv = None
        # Packet memo for repeated sends of the *same* immutable object
        # (loop counters, sentinel tokens, broadcast constants): identity
        # plus immutability make reusing the packed form safe, and the memo
        # keeps the object alive so its id cannot be recycled.
        self._pk_obj: Any = _NO_MEMO
        self._pk: Packet | None = None

    # -- identity -------------------------------------------------------------

    @property
    def rank(self) -> int:
        """This process's rank within the communicator."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of processes in the communicator."""
        return len(self._ranks)

    def Get_rank(self) -> int:
        """MPI spelling of :attr:`rank`."""
        return self._rank

    def Get_size(self) -> int:
        """MPI spelling of :attr:`size`."""
        return len(self._ranks)

    @property
    def name(self) -> str:
        return self._name

    @property
    def world(self) -> "World":
        return self._world

    def Get_processor_name(self) -> str:
        """Name of the simulated cluster node hosting this rank (Figure 6)."""
        return self._world.cluster.processor_name(
            self._global(self._rank), self._world.size
        )

    # -- virtual time -----------------------------------------------------------

    @property
    def vtime(self) -> float:
        """This rank's logical clock (LogP work units)."""
        return self._my_clock.now

    def work(self, cost: float = 1.0) -> None:
        """Charge local compute to this rank's clock."""
        self._my_clock.advance(cost)

    def wtime(self) -> float:
        """Wall-clock seconds (``MPI_Wtime`` analogue)."""
        import time

        return time.perf_counter()

    def abort(self, reason: str = "MPI_Abort called") -> None:
        """``MPI_Abort``: tear the whole world down from one rank.

        Marks the world broken (unblocking every rank waiting in a
        receive or collective) and raises in the calling rank.
        """
        if self._world.group is not None:
            self._world.group.failed = True
        self._world.executor.notify()
        raise MpError(f"rank {self._rank} aborted the world: {reason}")

    # -- internals ----------------------------------------------------------------

    def _global(self, local: int) -> int:
        if not 0 <= local < len(self._ranks):
            raise CommError(
                f"rank {local} out of range for communicator {self._name!r} "
                f"of size {len(self._ranks)}"
            )
        return self._ranks[local]

    @property
    def _mailbox(self) -> Mailbox:
        return self._my_mailbox

    def _check_world(self) -> None:
        if self._world.broken:
            raise MpError(
                f"communication aborted: another rank in world "
                f"{self._world.label!r} failed"
            )

    def _clock(self):
        return self._my_clock

    # -- point-to-point -------------------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Eager (buffered) send: deposits the message and returns.

        This duplicates :meth:`_post_packet` (which remains the shared
        path for ``ssend``/``isend`` and the collectives): ``send`` is the
        single hottest entry point of the transport, and the extra frames
        were measurable against the message-throughput benchmark.
        """
        if obj is self._pk_obj:
            packet = self._pk
        else:
            packet = pack_packet(obj)
            # Only by-ref packets are memoisable: identity plus immutability
            # make reuse safe.  A CoW packet must NOT be memoised — its
            # snapshot captures send-time state, and the sender may mutate
            # the (same-identity) container between two sends.
            if packet.kind is KIND_REF:
                self._pk_obj = obj
                self._pk = packet
            elif packet.kind is KIND_COW_FLAT:
                # Born here, delivered to exactly one recv (collectives
                # post through _post_packet, never this path): mark the
                # snapshot movable so that recv can take it without the
                # receiver-side copy.
                packet.kind = KIND_COW_MOVE
        if tag.__class__ is not int or tag < 0:
            validate_tag(tag)
        ranks = self._ranks
        if not 0 <= dest < len(ranks):
            self._global(dest)  # raises with the full diagnostic
        clock = self._my_clock
        depart = clock.now
        hops = self._hop0s
        if hops is None:
            clock.now = depart + self._ovh
            pb = self._pb
            if pb:
                arrival = depart + (self._hop0 + packet.size * pb)
            else:
                arrival = depart + self._hop0
        else:
            # Heterogeneous: sender pays this link's overhead; transit is
            # the (src, dst) link's.  Receive cost stays processor-level.
            clock.now = depart + self._sovhs[dest]
            pb = self._pbs[dest]
            arrival = depart + hops[dest] + (packet.size * pb if pb else 0.0)
        # Message.__init__ unrolled: eight slot stores beat the ctor frame
        # on the hottest send path (every other site uses the ctor).
        msg = _new_message(Message)
        msg.context = self._ctx
        msg.source = self._rank
        msg.tag = tag
        msg.packet = packet
        msg.arrival = arrival
        msg.sync = False
        msg.consumed = False
        msg.uid = next(_msg_ids)
        rec = _trace_events._top
        if rec is not None and rec.recording:
            rec.emit(
                "msg.send",
                scope=self._world.scope,
                uid=msg.uid,
                dest=dest,
                tag=tag,
                size=msg.size,
                vtime=clock.now,
                hb_rel=("msg", self._world.scope, msg.uid),
            )
        ps = self._p_sent
        if ps is not None:
            ps(msg.packet.size)
        # Indexed deposit: files the message under its (context, source,
        # tag) bucket so the receiver matches it O(1).  Lockstep mailboxes
        # carry no lock at all (one task runs at a time); thread-mode
        # mailboxes take theirs inside deposit().
        self._mailboxes[ranks[dest]].deposit(msg)
        ex = self._executor
        if self._lockstep:
            # LockstepExecutor.notify inlined (dirty flag + external-waiter
            # wakeup + preemption point): one frame fewer per send.
            ex._dirty = True
            if ex._ext_waiters:
                with ex._cond:
                    ex._cond.notify_all()
            ex.checkpoint()
        else:
            ex.notify()

    def ssend(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Synchronous send: blocks until the matching receive matches it."""
        msg = self._post(obj, dest, tag, sync=True)
        self._world.executor.wait_until(
            lambda: msg.consumed or self._world.broken,
            describe=lambda: (
                f"{self._who()} ssend to rank {dest} tag {tag}: waiting for "
                "matching recv"
            ),
        )
        self._check_world()
        # Rendezvous completes when the receiver matched; causality flows
        # back to the sender.
        self._my_clock.merge(msg.arrival)
        _trace_emit(
            "msg.ssend_done",
            scope=self._world.scope,
            uid=msg.uid,
            vtime=self._my_clock.now,
            hb_acq=("msg-ack", self._world.scope, msg.uid),
        )

    def _post(self, obj: Any, dest: int, tag: int, *, sync: bool) -> Message:
        return self._post_packet(pack_packet(obj), dest, tag, sync=sync)

    def _post_packet(
        self, packet: Packet, dest: int, tag: int, *, sync: bool = False
    ) -> Message:
        """Deposit an already-packed payload (the pack-once transport core)."""
        if tag.__class__ is not int or tag < 0:
            validate_tag(tag)
        ranks = self._ranks
        if not 0 <= dest < len(ranks):
            self._global(dest)  # raises with the full diagnostic
        gdest = ranks[dest]
        clock = self._my_clock
        depart = clock.now
        # The LogP transit term only needs the pickle size when bandwidth
        # is being modelled; with per_byte == 0 the by-ref fast path never
        # has to serialise at all.
        hops = self._hop0s
        if hops is None:
            clock.now = depart + self._ovh
            pb = self._pb
            if pb:
                arrival = depart + (self._hop0 + packet.size * pb)
            else:
                arrival = depart + self._hop0
        else:
            clock.now = depart + self._sovhs[dest]
            pb = self._pbs[dest]
            arrival = depart + hops[dest] + (packet.size * pb if pb else 0.0)
        msg = Message(self._ctx, self._rank, tag, packet, arrival, sync)
        # Emit before depositing: the receiver's ``msg.recv`` must follow
        # this event in stream order for the HB edge to point forward.
        if _trace_active():
            _trace_emit(
                "msg.send",
                scope=self._world.scope,
                uid=msg.uid,
                dest=dest,
                tag=tag,
                size=msg.size,
                vtime=clock.now,
                hb_rel=("msg", self._world.scope, msg.uid),
            )
        ps = self._p_sent
        if ps is not None:
            ps(msg.packet.size)
        self._world.mailboxes[gdest].deposit(msg)
        self._executor.notify()
        return msg

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        *,
        status: bool = False,
    ) -> Any:
        """Blocking receive; returns the payload (or ``(payload, Status)``).

        ``source``/``tag`` accept the wildcards ``ANY_SOURCE``/``ANY_TAG``.
        """
        if source != ANY_SOURCE and not 0 <= source < len(self._ranks):
            self._global(source)  # raises with the full diagnostic
        # Fast path: a matching message is already queued and no recorder
        # wants the peek/ack/recv events — take it without building the
        # wait predicate.  Scheduler-neutral: the slow path would not have
        # blocked (its predicate is true on entry), so no switch is skipped.
        grp = self._world.group
        rec = _trace_events._top
        untraced = rec is None or not rec.recording
        if untraced and (grp is None or not grp.failed):
            # Indexed take: a dict probe plus popleft on the bucket —
            # O(1) regardless of how many messages are in flight (the
            # old inlined flat scan was O(messages) per receive).
            msg = self._my_mailbox.take(self._ctx, source, tag)
            if msg is not None:
                clock = self._my_clock
                now = clock.now
                arrival = msg.arrival
                clock.now = (arrival if arrival > now else now) + self._ovh
                pr = self._p_recv
                if pr is not None:
                    pr(msg.packet.size)
                if msg.sync:
                    self._executor.notify()
                packet = msg.packet
                k = packet.kind
                if k is KIND_REF or k is KIND_COW_MOVE:
                    # By-ref immutable, or a single-consumer flat snapshot
                    # (cow-move): this recv owns it — no copy either way.
                    payload = packet.obj
                else:
                    payload = packet.unpack()
                if status:
                    return payload, Status(
                        source=msg.source, tag=msg.tag, size=msg.size
                    )
                return payload
        self._wait_for_message(source, tag)
        if untraced and not _trace_active():
            # Light completion: no events to emit, so skip the peek/ack
            # bookkeeping of _complete_recv_msg (indexed take as above).
            msg = self._my_mailbox.take(self._ctx, source, tag)
            if msg is None:  # pragma: no cover - single consumer per mailbox
                raise CommError("matched message vanished (mailbox misuse)")
            clock = self._my_clock
            now = clock.now
            arrival = msg.arrival
            clock.now = (arrival if arrival > now else now) + self._ovh
            pr = self._p_recv
            if pr is not None:
                pr(msg.packet.size)
            if msg.sync:
                self._executor.notify()
        else:
            msg = self._complete_recv_msg(source, tag)
        packet = msg.packet
        k = packet.kind
        if k is KIND_REF or k is KIND_COW_MOVE:
            payload = packet.obj  # see the fast path above: recv owns a move
        else:
            payload = packet.unpack()
        if status:
            return payload, Status(source=msg.source, tag=msg.tag, size=msg.size)
        return payload

    def _wait_for_message(self, source: int, tag: int) -> None:
        """Block until a matching message is queued (or the world broke)."""
        mbox = self._my_mailbox
        world = self._world
        grp = world.group
        if grp is not None and self._lockstep:
            # The common case inside a lockstep world: the predicate is
            # re-evaluated on every scheduler wakeup, so it probes the
            # mailbox index directly (no lock exists on a lockstep
            # mailbox; only one task runs at a time) and reads the
            # group's failed flag instead of the ``broken`` property.
            if source != ANY_SOURCE and tag != ANY_TAG:
                # Exact-key receive: the predicate is one dict probe.
                def pred(
                    _queues=mbox._queues,
                    _key=(self._ctx, source, tag),
                    _grp=grp,
                ):
                    q = _queues.get(_key)
                    if q:
                        for m in q:
                            if not m.consumed:
                                return True
                    return _grp.failed

            else:

                def pred(_match=mbox._match, _ctx=self._ctx, _grp=grp):
                    return (
                        _match(_ctx, source, tag) is not None or _grp.failed
                    )

        elif grp is not None:
            # Real threads: go through the locked peek.
            ctx = self._ctx

            def pred(_peek=mbox.peek, _ctx=ctx, _grp=grp):
                return _peek(_ctx, source, tag) is not None or _grp.failed

        else:
            ctx = self._ctx
            pred = lambda: mbox.peek(ctx, source, tag) is not None or world.broken
        world.executor.wait_until(
            pred, describe=lambda: self._recv_describe(source, tag)
        )
        if grp.failed if grp is not None else world.broken:
            self._check_world()  # raises with the full diagnostic

    def _complete_recv_msg(self, source: int, tag: int) -> Message:
        """Consume a matching queued message, charging receive costs."""
        traced = _trace_active()
        if traced:
            matched = self._my_mailbox.peek(self._ctx, source, tag)
            if matched is not None and matched.sync:
                # The rendezvous ack must be on the stream before ``take``
                # flips ``consumed`` and unblocks the sender, whose
                # ``msg.ssend_done`` acquires this edge.
                _trace_emit(
                    "msg.ack",
                    scope=self._world.scope,
                    uid=matched.uid,
                    hb_rel=("msg-ack", self._world.scope, matched.uid),
                )
        msg = self._my_mailbox.take(self._ctx, source, tag)
        if msg is None:  # pragma: no cover - single consumer per mailbox
            raise CommError("matched message vanished (mailbox misuse)")
        clock = self._my_clock
        now = clock.now
        arrival = msg.arrival
        clock.now = (arrival if arrival > now else now) + self._ovh
        if traced:
            _trace_emit(
                "msg.recv",
                scope=self._world.scope,
                uid=msg.uid,
                source=msg.source,
                tag=msg.tag,
                size=msg.size,
                vtime=clock.now,
                hb_acq=("msg", self._world.scope, msg.uid),
            )
        pr = self._p_recv
        if pr is not None:
            pr(msg.packet.size)
        if msg.sync:
            self._world.executor.notify()  # release the rendezvous sender
        return msg

    def _complete_recv(
        self, source: int, tag: int, *, with_status: bool = False
    ) -> Any:
        msg = self._complete_recv_msg(source, tag)
        payload = msg.packet.unpack()
        if with_status:
            return payload, Status(source=msg.source, tag=msg.tag, size=msg.size)
        return payload

    def _recv_packet(self, source: int, tag: int) -> Packet:
        """Blocking receive of the raw :class:`Packet` (pack-once forwarding).

        Collectives use this to relay a payload through intermediate tree
        hops without ever unpacking it; isolation is preserved because
        every final ``Packet.unpack`` still yields a private copy.
        """
        grp = self._world.group
        if not _trace_active() and (grp is None or not grp.failed):
            msg = self._my_mailbox.take(self._ctx, source, tag)
            if msg is not None:
                clock = self._my_clock
                now = clock.now
                arrival = msg.arrival
                clock.now = (arrival if arrival > now else now) + self._ovh
                pr = self._p_recv
                if pr is not None:
                    pr(msg.packet.size)
                if msg.sync:
                    self._executor.notify()
                return msg.packet
        self._wait_for_message(source, tag)
        return self._complete_recv_msg(source, tag).packet

    def sendrecv(
        self,
        sendobj: Any,
        dest: int,
        sendtag: int = 0,
        source: int = ANY_SOURCE,
        recvtag: int = ANY_TAG,
    ) -> Any:
        """Combined send+receive (deadlock-free even head-to-head)."""
        self.send(sendobj, dest, sendtag)
        return self.recv(source=source, tag=recvtag)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send (eager, so it completes immediately)."""
        self._post(obj, dest, tag, sync=False)
        return Request(self, completed=True, value=None)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive; complete it with ``req.wait()``/``req.test()``."""
        if source != ANY_SOURCE:
            self._global(source)
        return Request(self, source=source, tag=tag)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status:
        """Block until a matching message is available; return its Status."""
        mbox = self._mailbox
        self._world.executor.wait_until(
            lambda: mbox.peek(self._ctx, source, tag) is not None
            or self._world.broken,
            describe=lambda: self._recv_describe(source, tag, verb="probe"),
        )
        self._check_world()
        msg = mbox.peek(self._ctx, source, tag)
        assert msg is not None
        return Status(source=msg.source, tag=msg.tag, size=msg.size)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status | None:
        """Nonblocking probe: Status if a matching message is queued, else None."""
        msg = self._mailbox.peek(self._ctx, source, tag)
        if msg is None:
            return None
        return Status(source=msg.source, tag=msg.tag, size=msg.size)

    def _recv_describe(self, source: int, tag: int, verb: str = "recv") -> str:
        s = "ANY_SOURCE" if source == ANY_SOURCE else f"rank {source}"
        t = "ANY_TAG" if tag == ANY_TAG else str(tag)
        return f"{self._who()} {verb} from {s} tag {t}"

    def _who(self) -> str:
        return f"rank {self._rank} ({self._name})"

    # -- collectives (delegating to repro.mp.collectives) -------------------------

    def _next_coll_ctx(self) -> Hashable:
        seq = self._coll_seq
        self._coll_seq += 1
        return (self._ctx, "coll", seq)

    def barrier(self) -> None:
        """Block until every rank of the communicator has entered (Fig. 10-12)."""
        self._topo.barrier(self)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast root's object to all ranks (topology-dependent tree)."""
        return self._topo.bcast(self, obj, root)

    def scatter(self, sendobj: Sequence[Any] | None, root: int = 0) -> Any:
        """Deal one element of root's sequence to each rank."""
        return self._topo.scatter(self, sendobj, root)

    def scatterv(
        self,
        sendobj: Sequence[Any] | None,
        counts: Sequence[int],
        root: int = 0,
    ) -> list[Any]:
        """Deal ``counts[i]`` items of root's flat sequence to rank ``i``."""
        return _coll.scatterv(self, sendobj, counts, root)

    def gather(self, sendobj: Any, root: int = 0) -> list[Any] | None:
        """Collect one object per rank at root, in rank order (Fig. 25-28)."""
        return self._topo.gather(self, sendobj, root)

    def gatherv(self, sendobj: Sequence[Any], root: int = 0) -> list[Any] | None:
        """Collect variable-length sequences at root, flattened rank-major."""
        return _coll.gatherv(self, sendobj, root)

    def allgather(self, sendobj: Any) -> list[Any]:
        """Gather to all ranks."""
        return self._topo.allgather(self, sendobj)

    def alltoall(self, sendobjs: Sequence[Any]) -> list[Any]:
        """Personalised all-to-all exchange."""
        return _coll.alltoall(self, sendobjs)

    def reduce_scatter(self, sendobj: Sequence[Any], op: "Op | str" = "SUM") -> Any:
        """Elementwise-reduce p vectors, dealing element i to rank i."""
        return _coll.reduce_scatter(self, sendobj, op)

    def reduce(self, sendobj: Any, op: Op | str = "SUM", root: int = 0) -> Any:
        """Combine one value per rank at root (topology-dependent; Fig. 23-24)."""
        return self._topo.reduce(self, sendobj, op, root)

    def allreduce(
        self, sendobj: Any, op: Op | str = "SUM", *, algorithm: str | None = None
    ) -> Any:
        """Combine and distribute to all ranks.

        ``algorithm`` (``"tree"``/``"doubling"``) forces a specific base
        algorithm regardless of topology; ``None`` (the default) lets the
        world's communicator topology choose.
        """
        return self._topo.allreduce(self, sendobj, op, algorithm=algorithm)

    def scan(self, sendobj: Any, op: Op | str = "SUM") -> Any:
        """Inclusive prefix reduction over ranks."""
        return _coll.scan(self, sendobj, op)

    def exscan(self, sendobj: Any, op: Op | str = "SUM") -> Any:
        """Exclusive prefix reduction (rank 0 receives ``None``)."""
        return _coll.exscan(self, sendobj, op)

    # -- communicator management ---------------------------------------------------

    def dup(self, name: str | None = None) -> "Comm":
        """A congruent communicator with an isolated message context."""
        seq = self._split_seq
        self._split_seq += 1
        return Comm(
            self._world,
            self._rank,
            self._ranks,
            ctx=(self._ctx, "dup", seq),
            name=name or f"{self._name}+dup{seq}",
        )

    def split(self, color: int | None, key: int = 0) -> "Comm | None":
        """Partition the communicator by ``color``; order new ranks by ``key``.

        Ranks passing ``color=None`` (MPI_UNDEFINED) get ``None`` back.
        Collective: every rank of this communicator must call it.
        """
        seq = self._split_seq
        self._split_seq += 1
        triples = _coll.allgather(self, (color, key, self._rank))
        if color is None:
            return None
        members = sorted(
            (k, r) for c, k, r in triples if c == color
        )
        local_ranks = [r for _, r in members]
        new_rank = local_ranks.index(self._rank)
        new_globals = [self._ranks[r] for r in local_ranks]
        return Comm(
            self._world,
            new_rank,
            new_globals,
            ctx=(self._ctx, "split", seq, color),
            name=f"{self._name}.split{seq}[{color}]",
        )

    def create_cart(
        self,
        dims: "Sequence[int] | int",
        *,
        periods: "Sequence[bool] | bool" = False,
        allow_smaller: bool = False,
    ) -> Any:
        """Attach a Cartesian grid (``MPI_Cart_create``); see repro.mp.topology."""
        from repro.mp.topology import create_cart

        return create_cart(
            self, dims, periods=periods, allow_smaller=allow_smaller
        )

    # -- hybrid (MPI+OpenMP) support -------------------------------------------------

    def smp_runtime(self, num_threads: int | None = None) -> Any:
        """An :class:`~repro.smp.runtime.SmpRuntime` for *this node*.

        Shares this world's executor (so lockstep determinism spans both
        levels) and defaults the team size to the node's core count — the
        MPI+OpenMP heterogeneous patternlets fork per-node thread teams
        through this.
        """
        from repro.smp.runtime import SmpRuntime

        if num_threads is None:
            num_threads = max(1, self._world.cluster.cores_per_node)
        return SmpRuntime(
            num_threads=num_threads,
            executor=self._world.executor,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Comm({self._name!r}, rank={self._rank}/{self.size})"
