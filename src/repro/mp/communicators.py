"""Pluggable communicator topologies: which algorithm a collective runs.

The paper's Figure 19 contrasts a root that talks to everyone (O(t))
against a combining tree (O(lg t)).  This module makes that contrast a
*runtime axis* instead of a code comment: a world is constructed with a
named **topology**, and every ``comm.bcast()`` / ``comm.reduce()`` /
``comm.barrier()`` dispatches to that topology's algorithm — so students
can run the same patternlet under ``flat``, ``binomial``, ``ring`` and
``hierarchical`` communicators and watch the virtual-time span and the
message matrix change while the printed values stay identical.

The registry follows chainermn's ``create_communicator`` convention::

    from repro.mp.communicators import create_communicator

    comm = create_communicator("hierarchical")

Registered topologies:

================  ==========================================================
``flat``          root exchanges p-1 point-to-point messages (Fig. 19's
                  sequential baseline); central-coordinator barrier.
``binomial``      binomial trees + dissemination barrier — the library
                  default, byte-identical to the historical behaviour.
``ring``          neighbour-only pipelines; bandwidth-optimal allreduce
                  (each link carries the payload a constant number of
                  times); token-ring barrier.
``hierarchical``  two-level: collectives run intra-node first (using the
                  ``node-01..`` grouping of :mod:`repro.mp.cluster`), then
                  once across node leaders — one message per inter-node
                  link, the winning shape on heterogeneous networks
                  (:class:`~repro.mp.vtime.NetworkModel`).
================  ==========================================================

Every topology produces the **same final values** for the same inputs
(the cross-topology equivalence suite pins this); only the message
pattern — and therefore the virtual-time span — differs.  Collectives not
listed in a topology's table (``scan``, ``alltoall``, ...) fall back to
the base algorithms.

The default topology is ``binomial``; the ``REPRO_TOPOLOGY`` environment
variable overrides it process-wide (the same hatch family as
``REPRO_CACHE`` / ``REPRO_RANK_POOL``).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import CollectiveError, CommError
from repro.mp import collectives as _coll
from repro.ops import Op, resolve_op

if TYPE_CHECKING:  # pragma: no cover
    from repro.mp.comm import Comm

__all__ = [
    "DEFAULT_TOPOLOGY",
    "TopologyCommunicator",
    "BinomialCommunicator",
    "FlatCommunicator",
    "RingCommunicator",
    "HierarchicalCommunicator",
    "available_topologies",
    "create_communicator",
    "default_topology",
    "register_communicator",
]

#: The library default; the historical binomial-tree behaviour.
DEFAULT_TOPOLOGY = "binomial"


def default_topology() -> str:
    """The process-wide default topology (``REPRO_TOPOLOGY`` or binomial)."""
    return os.environ.get("REPRO_TOPOLOGY") or DEFAULT_TOPOLOGY


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, type["TopologyCommunicator"]] = {}


def register_communicator(
    cls: type["TopologyCommunicator"],
) -> type["TopologyCommunicator"]:
    """Register a topology class under its ``name`` (usable as a decorator)."""
    if not cls.name:
        raise CommError(f"{cls.__name__} must define a non-empty name")
    _REGISTRY[cls.name] = cls
    return cls


def available_topologies() -> list[str]:
    """Registered topology names, sorted."""
    return sorted(_REGISTRY)


def create_communicator(name: str | None = None, **kwargs: Any) -> "TopologyCommunicator":
    """Instantiate a registered topology (chainermn-style factory).

    ``name=None`` resolves :func:`default_topology`.  Unknown names raise
    :class:`~repro.errors.CommError` listing what is available.
    """
    name = name or default_topology()
    cls = _REGISTRY.get(name)
    if cls is None:
        raise CommError(
            f"unknown communicator topology {name!r}; available: "
            + ", ".join(available_topologies())
        )
    return cls(**kwargs)


# ---------------------------------------------------------------------------
# topology classes
# ---------------------------------------------------------------------------


class TopologyCommunicator:
    """Base topology: the binomial-tree algorithm set.

    Subclasses override individual collectives; anything not overridden
    inherits these defaults, which delegate to the exact functions in
    :mod:`repro.mp.collectives` that the library has always run — so the
    base class *is* the byte-identity guarantee for the default topology.
    Instances are stateless and shared by every communicator of a world.
    """

    name = ""

    def barrier(self, comm: "Comm") -> None:
        """Dissemination barrier (Θ(lg p) rounds)."""
        _coll.barrier(comm)

    def bcast(self, comm: "Comm", obj: Any, root: int = 0) -> Any:
        """Binomial-tree broadcast (Θ(lg p) span)."""
        return _coll.bcast(comm, obj, root)

    def scatter(
        self, comm: "Comm", sendobj: Sequence[Any] | None, root: int = 0
    ) -> Any:
        """Linear scatter: root deals one item per rank."""
        return _coll.scatter(comm, sendobj, root)

    def gather(self, comm: "Comm", sendobj: Any, root: int = 0) -> list[Any] | None:
        """Linear gather at root, rank order."""
        return _coll.gather(comm, sendobj, root)

    def allgather(self, comm: "Comm", sendobj: Any) -> list[Any]:
        """Gather to rank 0, then binomial broadcast."""
        return _coll.allgather(comm, sendobj)

    def reduce(
        self, comm: "Comm", sendobj: Any, op: Op | str = "SUM", root: int = 0
    ) -> Any:
        """Binomial-tree reduction (operand-order preserving)."""
        return _coll.reduce(comm, sendobj, op, root)

    def allreduce(
        self,
        comm: "Comm",
        sendobj: Any,
        op: Op | str = "SUM",
        *,
        algorithm: str | None = None,
    ) -> Any:
        """Tree reduce + broadcast (or a forced base ``algorithm``)."""
        return _coll.allreduce(comm, sendobj, op, algorithm=algorithm or "tree")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


@register_communicator
class BinomialCommunicator(TopologyCommunicator):
    """Binomial trees everywhere — the default (pure base-class behaviour)."""

    name = "binomial"


@register_communicator
class FlatCommunicator(TopologyCommunicator):
    """Root exchanges p-1 messages: Figure 19's sequential baseline.

    Span grows Θ(p·o) with the world size — run a ``--topology
    flat,binomial`` sweep over np to watch it degrade.
    """

    name = "flat"

    def barrier(self, comm: "Comm") -> None:
        """Central-coordinator barrier: everyone checks in with rank 0."""
        _coll.barrier_central(comm)

    def bcast(self, comm: "Comm", obj: Any, root: int = 0) -> Any:
        """Root sends p-1 point-to-point messages (Θ(p) span)."""
        return _coll.bcast_linear(comm, obj, root)

    def reduce(
        self, comm: "Comm", sendobj: Any, op: Op | str = "SUM", root: int = 0
    ) -> Any:
        """Root receives and folds p-1 contributions in rank order."""
        return _coll.reduce_linear(comm, sendobj, op, root)

    def allgather(self, comm: "Comm", sendobj: Any) -> list[Any]:
        """Linear gather to rank 0, then linear broadcast back out."""
        gathered = _coll.gather(comm, sendobj, root=0)
        return _coll.bcast_linear(comm, gathered, root=0)

    def allreduce(
        self,
        comm: "Comm",
        sendobj: Any,
        op: Op | str = "SUM",
        *,
        algorithm: str | None = None,
    ) -> Any:
        """Linear reduce at rank 0, then linear broadcast of the total."""
        if algorithm is not None:
            return _coll.allreduce(comm, sendobj, op, algorithm=algorithm)
        total = _coll.reduce_linear(comm, sendobj, op, root=0)
        return _coll.bcast_linear(comm, total, root=0)


@register_communicator
class RingCommunicator(TopologyCommunicator):
    """Neighbour-only pipelines; the bandwidth-optimal allreduce shape."""

    name = "ring"

    def barrier(self, comm: "Comm") -> None:
        """Two token laps around the ring."""
        _coll.barrier_ring(comm)

    def bcast(self, comm: "Comm", obj: Any, root: int = 0) -> Any:
        """Pipeline the packet neighbour-to-neighbour around the ring."""
        return _coll.bcast_ring(comm, obj, root)

    def reduce(
        self, comm: "Comm", sendobj: Any, op: Op | str = "SUM", root: int = 0
    ) -> Any:
        """Chain partial sums around the ring onto the root."""
        return _coll.reduce_ring(comm, sendobj, op, root)

    def allgather(self, comm: "Comm", sendobj: Any) -> list[Any]:
        """p-1 neighbour rotations; each link carries each item once."""
        return _coll.allgather_ring(comm, sendobj)

    def allreduce(
        self,
        comm: "Comm",
        sendobj: Any,
        op: Op | str = "SUM",
        *,
        algorithm: str | None = None,
    ) -> Any:
        """Bandwidth-optimal ring allreduce: reduce up, pipeline down."""
        if algorithm is not None:
            return _coll.allreduce(comm, sendobj, op, algorithm=algorithm)
        return _coll.allreduce_ring(comm, sendobj, op)


# ---------------------------------------------------------------------------
# hierarchical (two-level) topology
# ---------------------------------------------------------------------------


def _node_groups(comm: "Comm") -> list[list[int]]:
    """The communicator's local ranks grouped by hosting node.

    Groups are ordered by node index; members ascend within each group.
    Grouping uses the *global* rank's placement, so a split communicator
    still groups by physical node.
    """
    nodes = comm._world.rank_nodes
    groups: dict[int, list[int]] = {}
    for local, g in enumerate(comm._ranks):
        groups.setdefault(nodes[g], []).append(local)
    return [groups[n] for n in sorted(groups)]


def _tree_packet(ch: "Comm", members: list[int], me: int, packet, tag: int):
    """Binomial packet broadcast over an ordered member list.

    ``members[0]`` supplies ``packet``; everyone else receives from its
    binomial parent (by list position) and forwards to its children,
    biggest subtree first, without unpacking — the same pack-once
    discipline as the rank-ordered tree broadcast.
    """
    n = len(members)
    if n == 1:
        return packet
    pos = members.index(me)
    if pos != 0:
        parent = members[_coll.binomial_parent(pos)]
        packet = ch._recv_packet(source=parent, tag=tag)
    for child in reversed(_coll.binomial_children(pos, n)):
        ch._post_packet(packet, members[child], tag)
    return packet


def _tree_reduce(ch: "Comm", comm: "Comm", members: list[int], me: int, value, rop, tag: int):
    """Binomial reduction over an ordered member list onto ``members[0]``.

    Each child's subtree covers a contiguous span of list positions, so
    operands combine in member-list order (ascending local rank within a
    node group).
    """
    if len(members) == 1:
        return value
    pos = members.index(me)
    acc = value
    combine = comm._world.costs.combine
    for child in _coll.binomial_children(pos, len(members)):
        contribution = ch.recv(source=members[child], tag=tag)
        acc = rop(acc, contribution)
        comm.work(combine)
    if pos != 0:
        ch.send(acc, members[_coll.binomial_parent(pos)], tag=tag)
    return acc


@register_communicator
class HierarchicalCommunicator(TopologyCommunicator):
    """Two-level collectives: intra-node trees, one hop per remote node.

    Each node elects a leader (the root's node elects the root itself, so
    no extra forwarding hop exists at the root); data moves across the
    expensive inter-node links exactly once per node, then fans out or
    combines over the cheap intra-node links.  On a uniform network this
    is just a differently-shaped tree; under a heterogeneous
    :class:`~repro.mp.vtime.NetworkModel` it is the span winner — which
    is the whole teaching point.

    Reduction operands combine in grouped order (within each node
    ascending, then node by node).  Under block placement this *is*
    absolute rank order, so non-commutative ops are safe there; under
    cyclic placement use commutative ops.
    """

    name = "hierarchical"

    def barrier(self, comm: "Comm") -> None:
        """Members check in with their node leader; leaders disseminate."""
        ch = _coll._channel(comm, "barrier-hier")
        rank = comm.rank
        if comm.size == 1:
            return
        groups = _node_groups(comm)
        my_group = next(g for g in groups if rank in g)
        lead = my_group[0]
        if rank != lead:
            ch.send(None, lead, tag=0)
            ch.recv(source=lead, tag=99)
            return
        for m in my_group[1:]:
            ch.recv(source=m, tag=0)
        leaders = [g[0] for g in groups]
        n = len(leaders)
        if n > 1:
            li = leaders.index(rank)
            dist, rnd = 1, 1
            while dist < n:
                ch.send(None, leaders[(li + dist) % n], tag=rnd)
                ch.recv(source=leaders[(li - dist) % n], tag=rnd)
                dist <<= 1
                rnd += 1
        for m in my_group[1:]:
            ch.send(None, m, tag=99)

    def bcast(self, comm: "Comm", obj: Any, root: int = 0) -> Any:
        """Leader-stage binomial tree, then an intra-node tree per group."""
        _coll._validate_root(comm, root)
        ch = _coll._channel(comm, "bcast-hier")
        rank = comm.rank
        from repro.mp.serialize import pack_packet

        if comm.size == 1:
            return pack_packet(obj).unpack() if rank == root else obj
        groups = _node_groups(comm)
        my_group = next(g for g in groups if rank in g)
        leaders = [root if root in g else g[0] for g in groups]
        my_lead = root if root in my_group else my_group[0]
        packet = pack_packet(obj) if rank == root else None
        if rank == my_lead:
            ordered = [root] + [l for l in leaders if l != root]
            packet = _tree_packet(ch, ordered, rank, packet, tag=0)
        members = [my_lead] + [m for m in my_group if m != my_lead]
        packet = _tree_packet(ch, members, rank, packet, tag=1)
        return packet.unpack()

    def reduce(
        self, comm: "Comm", sendobj: Any, op: Op | str = "SUM", root: int = 0
    ) -> Any:
        """Intra-node trees, a leaders tree, then one hop to the root."""
        _coll._validate_root(comm, root)
        rop = resolve_op(op)
        ch = _coll._channel(comm, "reduce-hier")
        rank = comm.rank
        from repro.mp.serialize import deep_copy_by_value

        if comm.size == 1:
            return deep_copy_by_value(sendobj)
        groups = _node_groups(comm)
        my_group = next(g for g in groups if rank in g)
        acc = _tree_reduce(ch, comm, my_group, rank, sendobj, rop, tag=0)
        leaders = [g[0] for g in groups]
        if rank == my_group[0]:
            acc = _tree_reduce(ch, comm, leaders, rank, acc, rop, tag=1)
        head = leaders[0]
        if head == root:
            return deep_copy_by_value(acc) if rank == root else None
        if rank == head:
            ch.send(acc, root, tag=2)
            return None
        if rank == root:
            return ch.recv(source=head, tag=2)
        return None

    def scatter(
        self, comm: "Comm", sendobj: Sequence[Any] | None, root: int = 0
    ) -> Any:
        """Root ships each node's chunk to its leader; leaders deal it out."""
        _coll._validate_root(comm, root)
        ch = _coll._channel(comm, "scatter-hier")
        size, rank = comm.size, comm.rank
        from repro.mp.serialize import deep_copy_by_value

        groups = _node_groups(comm)
        my_group = next(g for g in groups if rank in g)
        my_lead = root if root in my_group else my_group[0]
        chunk: list | None = None
        if rank == root:
            if sendobj is None:
                raise CollectiveError("scatter root must supply a sequence")
            items = list(sendobj)
            if len(items) != size:
                raise CollectiveError(
                    f"scatter needs exactly {size} items, got {len(items)}"
                )
            for g in groups:
                lead = root if root in g else g[0]
                piece = [(m, items[m]) for m in g]
                if lead == root:
                    chunk = piece
                else:
                    ch.send(piece, lead, tag=0)
        elif rank == my_lead:
            chunk = ch.recv(source=root, tag=0)
        if rank == my_lead:
            mine = None
            for m, value in chunk:
                if m == rank:
                    mine = deep_copy_by_value(value)
                else:
                    ch.send(value, m, tag=1)
            return mine
        return ch.recv(source=my_lead, tag=1)

    def gather(self, comm: "Comm", sendobj: Any, root: int = 0) -> list[Any] | None:
        """Leaders collect their node's values, then forward one chunk each."""
        _coll._validate_root(comm, root)
        ch = _coll._channel(comm, "gather-hier")
        size, rank = comm.size, comm.rank
        from repro.mp.serialize import deep_copy_by_value

        groups = _node_groups(comm)
        my_group = next(g for g in groups if rank in g)
        my_lead = root if root in my_group else my_group[0]
        if rank != my_lead:
            ch.send(sendobj, my_lead, tag=0)
            return None
        chunk = [
            (m, deep_copy_by_value(sendobj) if m == rank else ch.recv(source=m, tag=0))
            for m in my_group
        ]
        if rank != root:
            ch.send(chunk, root, tag=1)
            return None
        out: list[Any] = [None] * size
        for m, value in chunk:
            out[m] = value
        for g in groups:
            lead = root if root in g else g[0]
            if lead == root:
                continue
            for m, value in ch.recv(source=lead, tag=1):
                out[m] = value
        return out

    def allgather(self, comm: "Comm", sendobj: Any) -> list[Any]:
        """Hierarchical gather to rank 0, then hierarchical broadcast."""
        gathered = self.gather(comm, sendobj, root=0)
        return self.bcast(comm, gathered, root=0)

    def allreduce(
        self,
        comm: "Comm",
        sendobj: Any,
        op: Op | str = "SUM",
        *,
        algorithm: str | None = None,
    ) -> Any:
        """Hierarchical reduce to rank 0, then hierarchical broadcast."""
        if algorithm is not None:
            return _coll.allreduce(comm, sendobj, op, algorithm=algorithm)
        total = self.reduce(comm, sendobj, op, root=0)
        return self.bcast(comm, total, root=0)
