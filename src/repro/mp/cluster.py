"""Simulated cluster topology: nodes, processor names, rank placement.

The paper's MPI SPMD patternlet prints the node each process runs on
(Figure 6: ``Hello from process 3 of 4 on node-04``) "to help students see
the difference between distributed and non-distributed computations".
This module supplies that visibility for the simulated world: a
:class:`Cluster` maps ranks to named nodes under a placement policy.

- ``block`` placement fills each node before moving on (ranks 0..c-1 on
  node-01, c..2c-1 on node-02, ...), the mpirun default on real clusters;
- ``cyclic`` placement deals ranks round-robin across nodes.

With the default one core per node and block placement, rank *r* lands on
``node-0{r+1}`` — reproducing Figure 6 exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CommError

__all__ = ["Cluster"]


@dataclass(frozen=True)
class Cluster:
    """Rank-to-node placement for one simulated machine.

    Parameters
    ----------
    cores_per_node:
        Slots per node.
    num_nodes:
        Fixed node count, or ``None`` for "as many as needed".  With a
        fixed count, placement wraps around (oversubscription), as mpirun
        does.
    placement:
        ``"block"`` or ``"cyclic"``.
    name_format:
        ``str.format`` pattern for node names, applied to the 1-based node
        number.
    """

    cores_per_node: int = 1
    num_nodes: int | None = None
    placement: str = "block"
    name_format: str = "node-{:02d}"

    def __post_init__(self) -> None:
        if self.cores_per_node <= 0:
            raise CommError("cores_per_node must be positive")
        if self.num_nodes is not None and self.num_nodes <= 0:
            raise CommError("num_nodes must be positive when given")
        if self.placement not in ("block", "cyclic"):
            raise CommError(f"unknown placement {self.placement!r}")

    def nodes_used(self, world_size: int) -> int:
        """How many distinct nodes a world of this size occupies."""
        if world_size <= 0:
            return 0
        return len({self.node_of(r, world_size) for r in range(world_size)})

    def node_of(self, rank: int, world_size: int) -> int:
        """0-based node index hosting ``rank``."""
        if not 0 <= rank < world_size:
            raise CommError(f"rank {rank} out of range for world size {world_size}")
        if self.placement == "block":
            node = rank // self.cores_per_node
        else:
            span = self.num_nodes
            if span is None:
                span = -(-world_size // self.cores_per_node)
            node = rank % max(span, 1)
        if self.num_nodes is not None:
            node %= self.num_nodes
        return node

    def processor_name(self, rank: int, world_size: int) -> str:
        """``MPI_Get_processor_name()``: the hosting node's name."""
        return self.name_format.format(self.node_of(rank, world_size) + 1)

    def ranks_on_node(self, node: int, world_size: int) -> list[int]:
        """All ranks placed on the given 0-based node (hybrid patternlets)."""
        return [
            r for r in range(world_size) if self.node_of(r, world_size) == node
        ]
