"""LogP-style virtual-time cost model for the message-passing runtime.

The paper's Figure 19 claims the *Reduction* pattern combines ``t`` partial
results in ``O(lg t)`` time against ``O(t)`` sequentially, counting unit
additions.  On this single-core host wall-clock cannot exhibit that, so the
runtime carries **logical clocks**: every rank owns a clock that advances by

- ``overhead`` for each send/receive it performs (the LogP *o*),
- ``latency + size_bytes * per_byte`` for a message in flight (LogP *L*,
  and *G* for bandwidth),
- explicit compute charged by the program (``comm.work(cost)``), including
  ``combine`` per reduction-operator application.

A message deposited at sender-clock ``s`` becomes *visible* to the receiver
at ``s + overhead + latency + size*per_byte``; a receive completes at
``max(receiver_clock, visible) + overhead``.  The **span** of a run is the
maximum final clock over ranks — the critical-path length, which is the
quantity Figure 19's time axis measures.  Under the default unit costs a
binomial-tree reduction of ``t`` ranks has span ``Θ(lg t)`` and the
sequential gather-and-add has span ``Θ(t)``, independent of the host.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LogPCosts", "RankClock"]


@dataclass(frozen=True)
class LogPCosts:
    """Cost parameters, in abstract work units (defaults: unit latency/add).

    ``overhead`` defaults to a small nonzero value: a sender that posts
    p-1 messages must pay per message, otherwise flat (linear) algorithms
    would be free at the root and the O(p)-vs-O(lg p) comparisons of
    Figure 19 would degenerate.

    ``latency`` is charged once per message; ``overhead`` per send *and* per
    receive on the respective rank's own clock; ``per_byte`` models
    bandwidth; ``combine`` is the conventional charge for one reduction
    operator application (programs apply it via ``comm.work``).
    """

    latency: float = 1.0
    overhead: float = 0.1
    per_byte: float = 0.0
    combine: float = 1.0

    def transit(self, size_bytes: int) -> float:
        """Clock delta from send-start to receivability."""
        return self.overhead + self.latency + size_bytes * self.per_byte


class RankClock:
    """One rank's logical clock."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, cost: float) -> float:
        """Add ``cost`` work units; returns the new time."""
        if cost < 0:
            raise ValueError("cost must be non-negative")
        self.now += cost
        return self.now

    def merge(self, t: float) -> float:
        """Advance to at least ``t`` (message causality / barrier release)."""
        if t > self.now:
            self.now = t
        return self.now
