"""LogP-style virtual-time cost model for the message-passing runtime.

The paper's Figure 19 claims the *Reduction* pattern combines ``t`` partial
results in ``O(lg t)`` time against ``O(t)`` sequentially, counting unit
additions.  On this single-core host wall-clock cannot exhibit that, so the
runtime carries **logical clocks**: every rank owns a clock that advances by

- ``overhead`` for each send/receive it performs (the LogP *o*),
- ``latency + size_bytes * per_byte`` for a message in flight (LogP *L*,
  and *G* for bandwidth),
- explicit compute charged by the program (``comm.work(cost)``), including
  ``combine`` per reduction-operator application.

A message deposited at sender-clock ``s`` becomes *visible* to the receiver
at ``s + overhead + latency + size*per_byte``; a receive completes at
``max(receiver_clock, visible) + overhead``.  The **span** of a run is the
maximum final clock over ranks — the critical-path length, which is the
quantity Figure 19's time axis measures.  Under the default unit costs a
binomial-tree reduction of ``t`` ranks has span ``Θ(lg t)`` and the
sequential gather-and-add has span ``Θ(t)``, independent of the host.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CommError

__all__ = [
    "LinkCosts",
    "LogPCosts",
    "NETWORK_PROFILES",
    "NetworkModel",
    "RankClock",
    "network_profile",
]


@dataclass(frozen=True)
class LogPCosts:
    """Cost parameters, in abstract work units (defaults: unit latency/add).

    ``overhead`` defaults to a small nonzero value: a sender that posts
    p-1 messages must pay per message, otherwise flat (linear) algorithms
    would be free at the root and the O(p)-vs-O(lg p) comparisons of
    Figure 19 would degenerate.

    ``latency`` is charged once per message; ``overhead`` per send *and* per
    receive on the respective rank's own clock; ``per_byte`` models
    bandwidth; ``combine`` is the conventional charge for one reduction
    operator application (programs apply it via ``comm.work``).
    """

    latency: float = 1.0
    overhead: float = 0.1
    per_byte: float = 0.0
    combine: float = 1.0

    def transit(self, size_bytes: int) -> float:
        """Clock delta from send-start to receivability."""
        return self.overhead + self.latency + size_bytes * self.per_byte


@dataclass(frozen=True)
class LinkCosts:
    """Cost parameters of one network link class.

    A link is a (source node, destination node) pair of the simulated
    cluster.  ``latency`` and ``per_byte`` are the wire properties (LogP
    *L* and *G*); ``overhead`` is the *sender's* CPU cost of pushing a
    message onto this link — a shared-memory copy is much cheaper than a
    NIC round through the network stack, which is exactly why real MPI
    implementations special-case intra-node transport.  The receiver
    always pays the processor-level ``LogPCosts.overhead`` (receive cost
    is a property of the host, not of where the message came from).
    """

    latency: float = 1.0
    overhead: float = 0.1
    per_byte: float = 0.0

    def transit(self, size_bytes: int) -> float:
        """Clock delta from send-start to receivability over this link."""
        return self.overhead + self.latency + size_bytes * self.per_byte


class NetworkModel:
    """Heterogeneous per-link generalisation of the uniform LogP tuple.

    Resolution order for the link between two nodes:

    1. an exact ``(src_node, dst_node)`` entry in ``links`` (arbitrary
       link tables; asymmetric links are allowed),
    2. the ``intra`` class when ``src_node == dst_node``, else ``inter``,
    3. the default link derived from ``costs`` (uniform behaviour).

    ``costs`` remains the processor-level model: its ``overhead`` is
    charged per receive on the receiver's clock, its ``combine`` per
    reduction-operator application, and its latency/overhead/per_byte
    form the default link.  A model with no ``intra``/``inter``/``links``
    overrides is *uniform* and the transport keeps its scalar fast path.
    """

    __slots__ = ("costs", "intra", "inter", "links", "_default_link", "_memo")

    def __init__(
        self,
        costs: LogPCosts | None = None,
        *,
        intra: LinkCosts | None = None,
        inter: LinkCosts | None = None,
        links: "dict[tuple[int, int], LinkCosts] | None" = None,
    ):
        self.costs = costs or LogPCosts()
        self.intra = intra
        self.inter = inter
        self.links = dict(links or {})
        self._default_link = LinkCosts(
            latency=self.costs.latency,
            overhead=self.costs.overhead,
            per_byte=self.costs.per_byte,
        )
        self._memo: dict[tuple[int, int], LinkCosts] = {}

    @property
    def uniform(self) -> bool:
        """True when every link resolves to the default (scalar fast path)."""
        return self.intra is None and self.inter is None and not self.links

    def link(self, src_node: int, dst_node: int) -> LinkCosts:
        """The cost class of the ``src_node -> dst_node`` link."""
        key = (src_node, dst_node)
        got = self._memo.get(key)
        if got is None:
            got = self.links.get(key)
            if got is None:
                got = self.intra if src_node == dst_node else self.inter
            if got is None:
                got = self._default_link
            self._memo[key] = got
        return got

    def transit(self, src_node: int, dst_node: int, size_bytes: int = 0) -> float:
        """Clock delta from send-start to receivability between two nodes."""
        return self.link(src_node, dst_node).transit(size_bytes)

    @classmethod
    def from_costs(cls, costs: LogPCosts | None = None) -> "NetworkModel":
        """A uniform model — every link is the LogP default."""
        return cls(costs)

    @classmethod
    def two_level(
        cls,
        *,
        intra: LinkCosts,
        inter: LinkCosts,
        combine: float = 1.0,
    ) -> "NetworkModel":
        """The minimum heterogeneous cluster: cheap intra-node, costly
        inter-node.  Processor-level receive overhead follows ``intra``."""
        costs = LogPCosts(
            latency=intra.latency,
            overhead=intra.overhead,
            per_byte=intra.per_byte,
            combine=combine,
        )
        return cls(costs, intra=intra, inter=inter)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.uniform:
            return f"NetworkModel(uniform, {self.costs!r})"
        return (
            f"NetworkModel(intra={self.intra!r}, inter={self.inter!r}, "
            f"links={len(self.links)})"
        )


#: Named network presets for the CLI / bench (``--network``).  Each maps
#: to ``(NetworkModel factory, Cluster factory or None)``; ``None`` keeps
#: whatever cluster the caller configured.
NETWORK_PROFILES = ("uniform", "hetero2", "hetero4")


def network_profile(name: str):
    """Resolve a named network preset to ``(NetworkModel, Cluster | None)``.

    - ``uniform``: the default LogP tuple on the caller's cluster.
    - ``hetero2``: two 16-core nodes, block placement; inter-node links
      are ~10x the latency, 20x the send overhead, and carry a bandwidth
      term.  At np=32 the world spans both nodes, which is the setting
      where the hierarchical communicator visibly beats ``flat``.
    - ``hetero4``: four 8-core nodes with the same link classes.
    """
    from repro.mp.cluster import Cluster

    if name == "uniform":
        return NetworkModel.from_costs(LogPCosts()), None
    if name in ("hetero2", "hetero4"):
        net = NetworkModel.two_level(
            intra=LinkCosts(latency=0.5, overhead=0.1, per_byte=0.0),
            inter=LinkCosts(latency=5.0, overhead=2.0, per_byte=0.05),
        )
        if name == "hetero2":
            return net, Cluster(cores_per_node=16, num_nodes=2)
        return net, Cluster(cores_per_node=8, num_nodes=4)
    raise CommError(
        f"unknown network profile {name!r}; available: "
        + ", ".join(NETWORK_PROFILES)
    )


class RankClock:
    """One rank's logical clock."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, cost: float) -> float:
        """Add ``cost`` work units; returns the new time."""
        if cost < 0:
            raise ValueError("cost must be non-negative")
        self.now += cost
        return self.now

    def merge(self, t: float) -> float:
        """Advance to at least ``t`` (message causality / barrier release)."""
        if t > self.now:
            self.now = t
        return self.now
