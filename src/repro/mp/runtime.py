"""World lifecycle: the ``mpirun`` analogue.

Where the paper runs::

    mpirun -np 4 ./spmd

this library runs::

    from repro.mp import mpirun

    def main(comm):
        print(f"Hello from process {comm.rank} of {comm.size} "
              f"on {comm.Get_processor_name()}")

    mpirun(4, main)

Each rank is a task on the configured executor with private state enforced
by copy-on-send messaging; the :class:`WorldResult` carries per-rank return
values, the wall time, and the LogP *span* (critical-path virtual time).

A failed rank marks the world broken, which promptly unblocks every rank
waiting in a receive or collective; the launcher then raises a
:class:`~repro.errors.ParallelError` carrying the original exception(s).
Deadlocks surface as :class:`~repro.errors.DeadlockError` — immediately
under the lockstep executor, via watchdog under real threads.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro import trace as _trace
from repro.mp.cluster import Cluster
from repro.mp.comm import Comm
from repro.mp.communicators import create_communicator, default_topology
from repro.mp.mailbox import Mailbox
from repro.mp.vtime import LogPCosts, NetworkModel, RankClock, network_profile
from repro.sched import Executor, make_executor
from repro.sched.base import TaskGroup, current_task_label

__all__ = ["World", "WorldResult", "MpRuntime", "mpirun"]


class World:
    """Shared bookkeeping of one launched world (one ``mpirun``)."""

    def __init__(self, runtime: "MpRuntime", size: int, label: str):
        if size <= 0:
            raise ValueError("world size must be positive")
        self.runtime = runtime
        self.size = size
        self.label = label
        # Lockstep worlds run one task at a time: their mailboxes can
        # never see concurrent access, so they drop the per-op lock.
        locked = runtime.executor.mode != "lockstep"
        self.mailboxes = [Mailbox(r, locked=locked) for r in range(size)]
        self.clocks = [RankClock() for _ in range(size)]
        self.costs = runtime.costs
        self.cluster = runtime.cluster
        self.network = runtime.network
        self.communicator = runtime.communicator
        self.topology = runtime.topology
        # Each rank's hosting node: the hierarchical communicator groups
        # by it, and heterogeneous transports index per-destination link
        # costs with it.  ``hetero`` gates the scalar fast path in Comm.
        self.hetero = not runtime.network.uniform
        cluster = self.cluster
        self.rank_nodes = [cluster.node_of(r, size) for r in range(size)]
        #: One shared world-rank list handed to every rank's Comm (which
        #: adopts plain lists without copying): building np copies of a
        #: length-np list made world setup O(np^2) — ruinous at np=1024.
        self.ranks = list(range(size))
        self.group: TaskGroup | None = None
        #: Trace scope naming this world's events (set by the launcher).
        self.scope = label

    @property
    def executor(self) -> Executor:
        return self.runtime.executor

    @property
    def broken(self) -> bool:
        return self.group is not None and self.group.failed

    @property
    def span(self) -> float:
        """Critical-path virtual time so far (max rank clock)."""
        return max(c.now for c in self.clocks)

    def undelivered_messages(self) -> int:
        """Messages never received (leak diagnostics for tests)."""
        return sum(m.pending() for m in self.mailboxes)


class WorldResult:
    """Outcome of one world run."""

    def __init__(
        self,
        *,
        world: World,
        results: list[Any],
        span: float,
        wall: float,
    ):
        #: Per-rank return values of ``main``, indexed by rank.
        self.results = results
        #: Critical-path virtual time (LogP units).
        self.span = span
        #: Real elapsed seconds.
        self.wall = wall
        self.world = world

    @property
    def size(self) -> int:
        return self.world.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorldResult(np={self.world.size}, span={self.span:.3g}, "
            f"wall={self.wall:.3g}s)"
        )


class MpRuntime:
    """Factory for worlds: holds the executor, cost model, and cluster shape.

    Parameters mirror :class:`~repro.smp.runtime.SmpRuntime`: ``mode`` is
    ``"thread"`` (real threads, nondeterministic) or ``"lockstep"``
    (deterministic seeded interleavings); ``costs`` is the LogP model;
    ``cluster`` maps ranks onto named nodes.

    ``network`` generalises ``costs``: a :class:`NetworkModel` instance,
    or a profile name from :data:`~repro.mp.vtime.NETWORK_PROFILES`
    (``"hetero2"``, ...) which may also imply a cluster shape.  When both
    ``network`` and ``costs`` are given, ``network`` wins (its own
    ``costs`` become the processor-level model).  ``topology`` names the
    communicator algorithm set (:func:`repro.mp.communicators.create_communicator`);
    ``None`` follows ``REPRO_TOPOLOGY``/binomial.
    """

    def __init__(
        self,
        *,
        mode: str = "thread",
        seed: int = 0,
        policy: str = "random",
        deadlock_timeout: float = 30.0,
        costs: LogPCosts | None = None,
        cluster: Cluster | None = None,
        network: "NetworkModel | str | None" = None,
        topology: str | None = None,
        executor: Executor | None = None,
        batch: int = 1,
    ):
        self.executor = executor or make_executor(
            mode,
            seed=seed,
            policy=policy,
            deadlock_timeout=deadlock_timeout,
            batch=batch,
        )
        if isinstance(network, str):
            network, profile_cluster = network_profile(network)
            cluster = cluster or profile_cluster
        elif network is None:
            network = NetworkModel.from_costs(costs)
        self.network = network
        self.costs = network.costs
        self.cluster = cluster or Cluster()
        self.topology = topology or default_topology()
        self.communicator = create_communicator(self.topology)
        #: Event spine of the most recent run (or the ambient recorder).
        self.trace = _trace.TraceRecorder()
        self._world_counter = 0
        self._counter_lock = threading.Lock()

    def run(
        self,
        size: int,
        main: Callable[..., Any],
        *args: Any,
        label: str | None = None,
        **kwargs: Any,
    ) -> WorldResult:
        """Launch ``main(comm, *args, **kwargs)`` on ``size`` ranks; join all."""
        with self._counter_lock:
            self._world_counter += 1
            wid = self._world_counter
        world_label = label or f"world{wid}"
        world = World(self, size, world_label)
        scope = f"{world_label}#{wid}"
        world.scope = scope
        parent = current_task_label()
        prefix = f"{parent}/" if parent else ""

        def make_thunk(rank: int) -> Callable[[], Any]:
            def thunk() -> Any:
                _trace.emit("task.start", scope=scope, hb_acq=("fork", scope))
                comm = Comm(world, rank, world.ranks, ctx=("world", wid))
                try:
                    return main(comm, *args, **kwargs)
                finally:
                    _trace.emit(
                        "task.end",
                        scope=scope,
                        vtime=world.clocks[rank].now,
                        hb_rel=("join", scope),
                    )

            return thunk

        labels = [f"{prefix}mpi:{r}" for r in range(size)]
        t0 = time.perf_counter()
        def publish(group: TaskGroup) -> None:
            world.group = group

        # Emission goes to the ambient recorder; install this runtime's
        # own spine only when no harness (capture_run, ...) put one up.
        recorder = _trace.current_recorder()
        pushed = recorder is None
        if pushed:
            recorder = _trace.TraceRecorder()
            _trace.push_recorder(recorder)
        self.trace = recorder
        try:
            _trace.emit(
                "world.fork",
                scope=scope,
                label=world_label,
                tasks=size,
                hb_rel=("fork", scope),
            )
            group = self.executor.run_tasks(
                [make_thunk(r) for r in range(size)],
                labels,
                group_label=world_label,
                on_group=publish,
            )
            _trace.emit(
                "world.join", scope=scope, label=world_label, hb_acq=("join", scope)
            )
        finally:
            if pushed:
                _trace.pop_recorder(recorder)
        wall = time.perf_counter() - t0
        return WorldResult(
            world=world,
            results=group.results(),
            span=_trace.span_of(recorder, scope=scope),
            wall=wall,
        )


def mpirun(
    size: int,
    main: Callable[..., Any],
    *args: Any,
    mode: str = "thread",
    seed: int = 0,
    policy: str = "random",
    deadlock_timeout: float = 30.0,
    costs: LogPCosts | None = None,
    cluster: Cluster | None = None,
    network: "NetworkModel | str | None" = None,
    topology: str | None = None,
    batch: int = 1,
    **kwargs: Any,
) -> WorldResult:
    """One-shot launcher (the ``mpirun -np <size>`` analogue).

    Builds a fresh :class:`MpRuntime` and runs ``main`` on ``size`` ranks.
    For repeated runs sharing an executor/cost model, construct an
    :class:`MpRuntime` once and call :meth:`MpRuntime.run`.  ``batch``
    selects the lockstep arbitration quantum (see
    :class:`~repro.sched.lockstep.LockstepExecutor`).
    """
    runtime = MpRuntime(
        mode=mode,
        seed=seed,
        policy=policy,
        deadlock_timeout=deadlock_timeout,
        costs=costs,
        cluster=cluster,
        network=network,
        topology=topology,
        batch=batch,
    )
    return runtime.run(size, main, *args, **kwargs)
