"""Collective operations, built entirely on point-to-point messaging.

Like MPI itself, every collective here is an algorithm over sends and
receives — nothing is magic, and the patternlets can point students at
real tree structure:

================  ============================  =====================
collective        algorithm                     span (LogP units)
================  ============================  =====================
barrier           dissemination                 Θ(lg p)
bcast             binomial tree                 Θ(lg p)
reduce            binomial tree (operand-       Θ(lg p)
                  order preserving)
allreduce         reduce+bcast (default) or     Θ(lg p)
                  recursive doubling
gather / scatter  linear at root                Θ(p)
allgather         gather + bcast                Θ(p)
alltoall          rotation (p-1 rounds)         Θ(p)
scan / exscan     linear chain                  Θ(p)
================  ============================  =====================

Each collective call derives a private context key from the calling
communicator's collective sequence number, so successive collectives (and
user point-to-point traffic) can never cross-match — but this also means
**all ranks must execute the same collectives in the same order**, the
standard MPI rule.  Getting that wrong produces an honest deadlock, which
the deadlock patternlet demonstrates on purpose.

The linear/flat alternatives (``reduce_linear``, ``barrier_central``) are
kept public: they are the sequential baseline of Figure 19 and the ablation
benches compare their Θ(p) spans against the trees' Θ(lg p).  The ring
family (``bcast_ring``, ``reduce_ring``, ``allreduce_ring``,
``barrier_ring``) only ever talks to neighbouring ranks — Θ(p) span, but
each link carries the payload a constant number of times, the
bandwidth-friendly shape real allreduce implementations use.

These functions are the *algorithms*; which one a ``comm.bcast()`` call
actually runs is chosen by the world's pluggable communicator topology
(:mod:`repro.mp.communicators`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import CollectiveError
from repro.ops import Op, resolve_op

if TYPE_CHECKING:  # pragma: no cover
    from repro.mp.comm import Comm

__all__ = [
    "barrier",
    "barrier_central",
    "barrier_ring",
    "bcast",
    "bcast_linear",
    "bcast_ring",
    "scatter",
    "scatterv",
    "gather",
    "gatherv",
    "allgather",
    "allgather_ring",
    "alltoall",
    "reduce_scatter",
    "reduce",
    "reduce_linear",
    "reduce_ring",
    "allreduce",
    "allreduce_ring",
    "scan",
    "exscan",
    "binomial_parent",
    "binomial_children",
]


def _channel(comm: "Comm", opname: str) -> "Comm":
    """A private same-shape communicator for one collective instance."""
    from repro.mp.comm import Comm

    ctx = comm._next_coll_ctx()
    return Comm(comm._world, comm._rank, comm._ranks, ctx=ctx, name=f"{comm.name}:{opname}")


def _validate_root(comm: "Comm", root: int) -> None:
    if not 0 <= root < comm.size:
        raise CollectiveError(
            f"root {root} out of range for communicator of size {comm.size}"
        )


# ---------------------------------------------------------------------------
# binomial-tree structure (relative ranks; root is relative 0)
# ---------------------------------------------------------------------------


def binomial_parent(relative: int) -> int:
    """Parent of a node in the binomial tree: clear the lowest set bit."""
    if relative <= 0:
        raise CollectiveError("relative rank 0 is the root; it has no parent")
    return relative & (relative - 1)


def binomial_children(relative: int, size: int) -> list[int]:
    """Children of a node, ascending.

    Node ``r``'s children are ``r + 2^k`` for ``2^k`` below ``r``'s lowest
    set bit (unbounded for the root), clipped to ``size``.  Child ``r+2^k``
    roots a subtree covering relative ranks ``[r+2^k, r+2^{k+1})``.
    """
    low = relative & -relative if relative else 1 << 62
    out = []
    k = 1
    while k < low:
        child = relative + k
        if child >= size:
            break
        out.append(child)
        k <<= 1
    return out


# ---------------------------------------------------------------------------
# synchronisation
# ---------------------------------------------------------------------------


def barrier(comm: "Comm") -> None:
    """Dissemination barrier: ⌈lg p⌉ rounds of shifted token exchange."""
    ch = _channel(comm, "barrier")
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    round_no = 0
    dist = 1
    while dist < size:
        ch.send(None, (rank + dist) % size, tag=round_no)
        ch.recv(source=(rank - dist) % size, tag=round_no)
        dist <<= 1
        round_no += 1


def barrier_central(comm: "Comm") -> None:
    """Flat central-coordinator barrier: Θ(p) span (ablation baseline)."""
    ch = _channel(comm, "barrier0")
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    if rank == 0:
        for src in range(1, size):
            ch.recv(source=src, tag=0)
        for dst in range(1, size):
            ch.send(None, dst, tag=1)
    else:
        ch.send(None, 0, tag=0)
        ch.recv(source=0, tag=1)


# ---------------------------------------------------------------------------
# data movement
# ---------------------------------------------------------------------------


def bcast(comm: "Comm", obj: Any, root: int = 0) -> Any:
    """Binomial-tree broadcast: Θ(lg p) span.

    Larger subtrees are forwarded first so the critical path stays
    logarithmic.  The payload is *packed once* at the root; intermediate
    hops forward the same transport packet without unpacking it, and each
    rank materialises its private copy exactly once at the end (the root's
    return value unpacks the same packet, so it is a private copy too).
    """
    _validate_root(comm, root)
    ch = _channel(comm, "bcast")
    size, rank = comm.size, comm.rank
    from repro.mp.serialize import pack_packet

    if size == 1:
        return pack_packet(obj).unpack() if rank == root else obj
    rel = (rank - root) % size
    if rel == 0:
        packet = pack_packet(obj)
    else:
        parent = (binomial_parent(rel) + root) % size
        packet = ch._recv_packet(source=parent, tag=0)
    for child in reversed(binomial_children(rel, size)):  # biggest subtree first
        ch._post_packet(packet, (child + root) % size, 0)
    return packet.unpack()


def bcast_linear(comm: "Comm", obj: Any, root: int = 0) -> Any:
    """Flat broadcast (root sends p-1 messages): Θ(p) span (ablation).

    Packs once at the root even though it posts p-1 messages.
    """
    _validate_root(comm, root)
    ch = _channel(comm, "bcast0")
    if comm.rank == root:
        from repro.mp.serialize import pack_packet

        packet = pack_packet(obj)
        for dst in range(comm.size):
            if dst != root:
                ch._post_packet(packet, dst, 0)
        return packet.unpack()
    return ch.recv(source=root, tag=0)


def scatter(comm: "Comm", sendobj: Sequence[Any] | None, root: int = 0) -> Any:
    """Root deals element ``i`` of its sequence to rank ``i`` (linear)."""
    _validate_root(comm, root)
    ch = _channel(comm, "scatter")
    size, rank = comm.size, comm.rank
    if rank == root:
        if sendobj is None:
            raise CollectiveError("scatter root must supply a sequence")
        items = list(sendobj)
        if len(items) != size:
            raise CollectiveError(
                f"scatter needs exactly {size} items, got {len(items)}"
            )
        for dst in range(size):
            if dst != root:
                ch.send(items[dst], dst, tag=0)
        from repro.mp.serialize import deep_copy_by_value

        return deep_copy_by_value(items[root])
    return ch.recv(source=root, tag=0)


def gather(comm: "Comm", sendobj: Any, root: int = 0) -> list[Any] | None:
    """Everyone sends to root; root returns the rank-ordered list (Fig. 26-28).

    Non-root ranks return ``None``, as in mpi4py.
    """
    _validate_root(comm, root)
    ch = _channel(comm, "gather")
    size, rank = comm.size, comm.rank
    if rank != root:
        ch.send(sendobj, root, tag=0)
        return None
    from repro.mp.serialize import deep_copy_by_value

    out: list[Any] = [None] * size
    out[root] = deep_copy_by_value(sendobj)
    for src in range(size):
        if src != root:
            out[src] = ch.recv(source=src, tag=0)
    return out


def allgather(comm: "Comm", sendobj: Any) -> list[Any]:
    """Gather at rank 0, then broadcast the assembled list."""
    gathered = gather(comm, sendobj, root=0)
    return bcast(comm, gathered, root=0)


def alltoall(comm: "Comm", sendobjs: Sequence[Any]) -> list[Any]:
    """Personalised exchange: rank i's element j reaches rank j's slot i.

    Rotation algorithm: p-1 rounds, exchanging with partners at increasing
    offsets (deadlock-free because sends are eager).
    """
    size, rank = comm.size, comm.rank
    items = list(sendobjs)
    if len(items) != size:
        raise CollectiveError(
            f"alltoall needs exactly {size} items, got {len(items)}"
        )
    ch = _channel(comm, "alltoall")
    from repro.mp.serialize import deep_copy_by_value

    out: list[Any] = [None] * size
    out[rank] = deep_copy_by_value(items[rank])
    for offset in range(1, size):
        dst = (rank + offset) % size
        src = (rank - offset) % size
        ch.send(items[dst], dst, tag=offset)
        out[src] = ch.recv(source=src, tag=offset)
    return out


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------


def reduce(comm: "Comm", sendobj: Any, op: Op | str = "SUM", root: int = 0) -> Any:
    """Binomial-tree reduction to root: Θ(lg p) span, p-1 total combines.

    Children are received in ascending relative order, and each child's
    contribution covers a contiguous ascending rank range, so operands
    combine in rank order — safe for non-commutative (associative) ops.
    Non-root ranks return ``None``.
    """
    _validate_root(comm, root)
    rop = resolve_op(op)
    ch = _channel(comm, "reduce")
    size, rank = comm.size, comm.rank
    # For commutative ops the tree can be rooted anywhere.  A
    # non-commutative op must see operands in absolute rank order, so its
    # tree is always rooted at rank 0 and the result forwarded to root.
    tree_root = root if rop.commutative else 0
    rel = (rank - tree_root) % size
    acc = sendobj
    for child in binomial_children(rel, size):
        contribution = ch.recv(source=(child + tree_root) % size, tag=0)
        acc = rop(acc, contribution)
        comm.work(comm._world.costs.combine)
    if rel != 0:
        parent = (binomial_parent(rel) + tree_root) % size
        ch.send(acc, parent, tag=0)
        if rank != root:
            return None
    if tree_root != root:
        if rank == tree_root:
            ch.send(acc, root, tag=1)
            return None
        if rank == root:
            return ch.recv(source=tree_root, tag=1)
        return None
    from repro.mp.serialize import deep_copy_by_value

    return deep_copy_by_value(acc)


def reduce_linear(
    comm: "Comm", sendobj: Any, op: Op | str = "SUM", root: int = 0
) -> Any:
    """Sequential gather-and-fold at root: Θ(p) span.

    This is Figure 19's "doing this summing sequentially takes time O(t)"
    baseline; the ablation bench plots its span against :func:`reduce`.
    """
    _validate_root(comm, root)
    rop = resolve_op(op)
    ch = _channel(comm, "reduce0")
    size, rank = comm.size, comm.rank
    rel = (rank - root) % size
    if rel != 0:
        ch.send(sendobj, root, tag=0)
        return None
    acc = sendobj
    for rel_src in range(1, size):
        contribution = ch.recv(source=(rel_src + root) % size, tag=0)
        acc = rop(acc, contribution)
        comm.work(comm._world.costs.combine)
    from repro.mp.serialize import deep_copy_by_value

    return deep_copy_by_value(acc)


def allreduce(
    comm: "Comm", sendobj: Any, op: Op | str = "SUM", *, algorithm: str = "tree"
) -> Any:
    """Reduce-to-all.

    ``algorithm="tree"``: binomial reduce to rank 0 then binomial bcast
    (2·lg p message steps, works for any p and any associative op).
    ``algorithm="doubling"``: recursive doubling (lg p steps, power-of-two
    sizes only — others fall back to tree; requires commutativity for the
    operand orders to matter not).
    """
    if algorithm not in ("tree", "doubling"):
        raise CollectiveError(f"unknown allreduce algorithm {algorithm!r}")
    rop = resolve_op(op)
    size, rank = comm.size, comm.rank
    if algorithm == "doubling" and size & (size - 1) == 0 and rop.commutative:
        ch = _channel(comm, "allreduce-rd")
        acc = sendobj
        dist = 1
        while dist < size:
            partner = rank ^ dist
            ch.send(acc, partner, tag=dist)
            other = ch.recv(source=partner, tag=dist)
            # Keep operand order by rank so results are bitwise identical
            # across ranks even for order-sensitive floating point sums.
            acc = rop(other, acc) if partner < rank else rop(acc, other)
            comm.work(comm._world.costs.combine)
            dist <<= 1
        return acc
    total = reduce(comm, sendobj, rop, root=0)
    return bcast(comm, total, root=0)


def scan(comm: "Comm", sendobj: Any, op: Op | str = "SUM") -> Any:
    """Inclusive prefix reduction (linear chain)."""
    rop = resolve_op(op)
    ch = _channel(comm, "scan")
    size, rank = comm.size, comm.rank
    acc = sendobj
    if rank > 0:
        prefix = ch.recv(source=rank - 1, tag=0)
        acc = rop(prefix, acc)
        comm.work(comm._world.costs.combine)
    if rank < size - 1:
        ch.send(acc, rank + 1, tag=0)
    return acc


def exscan(comm: "Comm", sendobj: Any, op: Op | str = "SUM") -> Any:
    """Exclusive prefix reduction; rank 0 returns ``None``."""
    rop = resolve_op(op)
    ch = _channel(comm, "exscan")
    size, rank = comm.size, comm.rank
    prefix = None
    if rank > 0:
        prefix = ch.recv(source=rank - 1, tag=0)
    if rank < size - 1:
        if prefix is None:
            outgoing = sendobj
        else:
            outgoing = rop(prefix, sendobj)
            comm.work(comm._world.costs.combine)
        ch.send(outgoing, rank + 1, tag=0)
    return prefix


def scatterv(
    comm: "Comm",
    sendobj: Sequence[Any] | None,
    counts: Sequence[int] | None,
    root: int = 0,
) -> list[Any]:
    """Variable-count scatter: rank ``i`` receives ``counts[i]`` items.

    The root supplies one flat sequence whose length is ``sum(counts)``;
    this is the paper's exercise "make the array length indivisible by np
    and adapt the slicing".  ``counts`` must be supplied (identically) by
    every rank — as in MPI, where every rank passes the counts array.
    """
    _validate_root(comm, root)
    size, rank = comm.size, comm.rank
    if counts is None or len(counts) != size:
        raise CollectiveError(
            f"scatterv needs one count per rank ({size}), got {counts!r}"
        )
    if any(c < 0 for c in counts):
        raise CollectiveError("scatterv counts must be non-negative")
    ch = _channel(comm, "scatterv")
    if rank == root:
        if sendobj is None:
            raise CollectiveError("scatterv root must supply the data")
        items = list(sendobj)
        if len(items) != sum(counts):
            raise CollectiveError(
                f"scatterv data length {len(items)} != sum(counts) {sum(counts)}"
            )
        offsets = [0]
        for c in counts[:-1]:
            offsets.append(offsets[-1] + c)
        mine: list[Any] = []
        for dst in range(size):
            piece = items[offsets[dst] : offsets[dst] + counts[dst]]
            if dst == root:
                from repro.mp.serialize import deep_copy_by_value

                mine = deep_copy_by_value(piece)
            else:
                ch.send(piece, dst, tag=0)
        return mine
    return ch.recv(source=root, tag=0)


def gatherv(comm: "Comm", sendobj: Sequence[Any], root: int = 0) -> list[Any] | None:
    """Variable-count gather: root receives every rank's items, flattened
    in rank order.  (Counts are discovered from the payloads — the
    pickle transport makes explicit recvcounts unnecessary.)
    """
    chunks = gather(comm, list(sendobj), root=root)
    if chunks is None:
        return None
    return [item for chunk in chunks for item in chunk]


def allgather_ring(comm: "Comm", sendobj: Any) -> list[Any]:
    """Ring allgather: p-1 neighbour hops, each forwarding one block.

    The bandwidth-friendly alternative to gather+bcast: every rank only
    ever talks to its neighbours, and after p-1 hops everyone holds every
    block.  Span Θ(p), but each *hop* moves one block instead of the
    gather tree's growing payloads — the trade real implementations
    weigh (ablation bench).
    """
    ch = _channel(comm, "allgather-ring")
    size, rank = comm.size, comm.rank
    from repro.mp.serialize import deep_copy_by_value

    blocks: list[Any] = [None] * size
    blocks[rank] = deep_copy_by_value(sendobj)
    right = (rank + 1) % size
    left = (rank - 1) % size
    carrying = rank
    for hop in range(size - 1):
        ch.send((carrying, blocks[carrying]), right, tag=hop)
        carrying, block = ch.recv(source=left, tag=hop)
        blocks[carrying] = block
    return blocks


def reduce_scatter(
    comm: "Comm", sendobj: Sequence[Any], op: Op | str = "SUM"
) -> Any:
    """``MPI_Reduce_scatter_block``: elementwise-reduce p vectors, then
    deal element i of the combined result to rank i.

    Every rank contributes a length-p sequence; rank i returns the
    op-combination of everyone's element i.  Implemented as a tree reduce
    of the whole vector followed by a scatter of its elements.
    """
    rop = resolve_op(op)
    size = comm.size
    items = list(sendobj)
    if len(items) != size:
        raise CollectiveError(
            f"reduce_scatter needs exactly {size} elements, got {len(items)}"
        )
    vector_op = Op.create(
        lambda a, b: [rop(x, y) for x, y in zip(a, b)],
        name=f"vector({rop.name})",
        commutative=rop.commutative,
    )
    combined = reduce(comm, items, vector_op, root=0)
    return scatter(comm, combined, root=0)


# ---------------------------------------------------------------------------
# ring algorithms (neighbour-only communication)
# ---------------------------------------------------------------------------


def bcast_ring(comm: "Comm", obj: Any, root: int = 0) -> Any:
    """Ring (pipeline) broadcast: Θ(p) span, neighbour-only links.

    The packet travels ``root → root+1 → ... → root-1`` and is forwarded
    without unpacking (pack-once, like the tree broadcast).  Every link
    carries the payload exactly once — the shape that wins when link
    bandwidth, not hop latency, is the scarce resource.
    """
    _validate_root(comm, root)
    ch = _channel(comm, "bcast-ring")
    size, rank = comm.size, comm.rank
    from repro.mp.serialize import pack_packet

    if size == 1:
        return pack_packet(obj).unpack() if rank == root else obj
    rel = (rank - root) % size
    if rel == 0:
        packet = pack_packet(obj)
    else:
        packet = ch._recv_packet(source=(rank - 1) % size, tag=0)
    if rel != size - 1:
        ch._post_packet(packet, (rank + 1) % size, 0)
    return packet.unpack()


def reduce_ring(
    comm: "Comm", sendobj: Any, op: Op | str = "SUM", root: int = 0
) -> Any:
    """Chain reduction around the ring: Θ(p) span, p-1 combines.

    The accumulator flows ``0 → 1 → ... → p-1`` so operands combine in
    absolute rank order (safe for non-commutative associative ops, like
    the tree), then one closing hop delivers the total to ``root``.
    Non-root ranks return ``None``.
    """
    _validate_root(comm, root)
    rop = resolve_op(op)
    ch = _channel(comm, "reduce-ring")
    size, rank = comm.size, comm.rank
    from repro.mp.serialize import deep_copy_by_value

    if size == 1:
        return deep_copy_by_value(sendobj)
    acc = sendobj
    if rank > 0:
        prefix = ch.recv(source=rank - 1, tag=0)
        acc = rop(prefix, acc)
        comm.work(comm._world.costs.combine)
    if rank < size - 1:
        ch.send(acc, rank + 1, tag=0)
        if rank == root:
            return ch.recv(source=size - 1, tag=1)
        return None
    if root == size - 1:
        return deep_copy_by_value(acc)
    ch.send(acc, root, tag=1)
    return None


def allreduce_ring(comm: "Comm", sendobj: Any, op: Op | str = "SUM") -> Any:
    """Ring allreduce: reduce chain up, pipeline broadcast back down.

    2(p-1) messages total and every link carries the payload at most
    twice — the bandwidth-optimal message pattern (the scalar analogue of
    reduce-scatter + allgather on chunked vectors).  Operands combine in
    absolute rank order, so all ranks return the identical total even for
    order-sensitive ops.  Span Θ(p).
    """
    rop = resolve_op(op)
    ch = _channel(comm, "allreduce-ring")
    size, rank = comm.size, comm.rank
    from repro.mp.serialize import deep_copy_by_value, pack_packet

    if size == 1:
        return deep_copy_by_value(sendobj)
    acc = sendobj
    if rank > 0:
        prefix = ch.recv(source=rank - 1, tag=0)
        acc = rop(prefix, acc)
        comm.work(comm._world.costs.combine)
    if rank < size - 1:
        ch.send(acc, rank + 1, tag=0)
        packet = ch._recv_packet(source=rank + 1, tag=1)
    else:
        packet = pack_packet(acc)
    if rank > 0:
        ch._post_packet(packet, rank - 1, 1)
    return packet.unpack()


def barrier_ring(comm: "Comm") -> None:
    """Token-ring barrier: two laps of a token, Θ(p) span.

    Lap one proves every rank has arrived (the token can only complete
    the circle once each rank has forwarded it); lap two releases.  The
    Θ(p)-vs-Θ(lg p) contrast with the dissemination barrier is the same
    lesson as Figure 19's reduction comparison, told with a token.
    """
    ch = _channel(comm, "barrier-ring")
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    right = (rank + 1) % size
    left = (rank - 1) % size
    if rank == 0:
        ch.send(None, right, tag=0)
        ch.recv(source=left, tag=0)
        ch.send(None, right, tag=1)
        ch.recv(source=left, tag=1)
    else:
        ch.recv(source=left, tag=0)
        ch.send(None, right, tag=0)
        ch.recv(source=left, tag=1)
        ch.send(None, right, tag=1)
