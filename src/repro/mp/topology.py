"""Cartesian process topologies (MPI_Cart_create and friends).

Geometric decomposition — the mid-level pattern behind halo-exchange
codes like the heat-diffusion exemplar — wants neighbours by grid
coordinate, not raw rank arithmetic.  :meth:`CartComm.shift` answers "who
is my left/right (up/down, ...) neighbour", honouring periodic and
non-periodic dimensions exactly as ``MPI_Cart_shift`` does (non-periodic
edges get ``None``, MPI's ``MPI_PROC_NULL``).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import CommError
from repro.mp.comm import Comm

__all__ = ["CartComm", "create_cart", "dims_create"]


def dims_create(nnodes: int, ndims: int) -> list[int]:
    """Balanced grid dimensions for ``nnodes`` (``MPI_Dims_create``).

    Factors ``nnodes`` into ``ndims`` factors as close to equal as
    possible, largest first.
    """
    if nnodes <= 0 or ndims <= 0:
        raise CommError("nnodes and ndims must be positive")
    dims = [1] * ndims
    remaining = nnodes
    # Greedily peel prime factors onto the currently smallest dimension.
    factor = 2
    factors: list[int] = []
    while factor * factor <= remaining:
        while remaining % factor == 0:
            factors.append(factor)
            remaining //= factor
        factor += 1
    if remaining > 1:
        factors.append(remaining)
    for f in sorted(factors, reverse=True):
        dims[dims.index(min(dims))] *= f
    return sorted(dims, reverse=True)


class CartComm(Comm):
    """A communicator with an attached Cartesian grid."""

    def __init__(self, base: Comm, dims: Sequence[int], periods: Sequence[bool]):
        super().__init__(
            base._world,
            base._rank,
            base._ranks,
            ctx=(base._ctx, "cart", tuple(dims), tuple(periods)),
            name=f"{base.name}.cart{tuple(dims)}",
        )
        self.dims = tuple(dims)
        self.periods = tuple(periods)

    # -- coordinate arithmetic ------------------------------------------------

    def coords_of(self, rank: int) -> tuple[int, ...]:
        """Grid coordinates of a rank (row-major, like MPI)."""
        if not 0 <= rank < self.size:
            raise CommError(f"rank {rank} out of range")
        coords = []
        rem = rank
        for extent in reversed(self.dims):
            coords.append(rem % extent)
            rem //= extent
        return tuple(reversed(coords))

    @property
    def coords(self) -> tuple[int, ...]:
        """This rank's own grid coordinates."""
        return self.coords_of(self.rank)

    def rank_of(self, coords: Sequence[int]) -> int | None:
        """Rank at the given coordinates; ``None`` if off a non-periodic edge."""
        if len(coords) != len(self.dims):
            raise CommError(
                f"expected {len(self.dims)} coordinates, got {len(coords)}"
            )
        normalised = []
        for c, extent, periodic in zip(coords, self.dims, self.periods):
            if periodic:
                c %= extent
            elif not 0 <= c < extent:
                return None
            normalised.append(c)
        rank = 0
        for c, extent in zip(normalised, self.dims):
            rank = rank * extent + c
        return rank

    def shift(self, dim: int, disp: int = 1) -> tuple[int | None, int | None]:
        """``MPI_Cart_shift``: the ``(source, dest)`` pair for a shift.

        ``dest`` is the neighbour ``disp`` steps along ``dim``; ``source``
        is the rank whose shifted data lands here.  ``None`` marks the
        void beyond a non-periodic edge.
        """
        if not 0 <= dim < len(self.dims):
            raise CommError(f"dimension {dim} out of range for {self.dims}")
        me = list(self.coords)
        dest_coords = list(me)
        dest_coords[dim] += disp
        src_coords = list(me)
        src_coords[dim] -= disp
        return self.rank_of(src_coords), self.rank_of(dest_coords)

    def neighbors(self, dim: int) -> tuple[int | None, int | None]:
        """Convenience: the (lower, upper) neighbours along one dimension."""
        lower, upper = self.shift(dim, +1)
        return lower, upper


def create_cart(
    comm: Comm,
    dims: Sequence[int] | int,
    *,
    periods: Sequence[bool] | bool = False,
    allow_smaller: bool = False,
) -> CartComm | None:
    """Attach a Cartesian grid to a communicator (``MPI_Cart_create``).

    ``dims`` may be an integer dimension count (balanced extents are
    computed via :func:`dims_create`) or explicit extents.  If the grid is
    smaller than the communicator and ``allow_smaller`` is set, surplus
    ranks get ``None`` (as with MPI when ``reorder`` drops ranks);
    otherwise the sizes must match exactly.  Collective.
    """
    if isinstance(dims, int):
        dims = dims_create(comm.size, dims)
    dims = list(dims)
    if any(d <= 0 for d in dims):
        raise CommError(f"grid extents must be positive, got {dims}")
    if isinstance(periods, bool):
        periods = [periods] * len(dims)
    periods = [bool(p) for p in periods]
    if len(periods) != len(dims):
        raise CommError("periods must match dims in length")
    cells = math.prod(dims)
    if cells > comm.size:
        raise CommError(f"grid {dims} needs {cells} ranks; have {comm.size}")
    if cells < comm.size and not allow_smaller:
        raise CommError(
            f"grid {dims} uses {cells} of {comm.size} ranks; pass "
            "allow_smaller=True to leave the surplus out"
        )
    member = comm.rank < cells
    sub = comm.split(color=0 if member else None, key=comm.rank)
    if sub is None:
        return None
    return CartComm(sub, dims, periods)
