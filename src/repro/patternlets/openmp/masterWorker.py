"""masterWorker patternlet (OpenMP-analogue).

Thread 0 (the master) fills a shared work queue; the whole team (workers)
drains it under mutual exclusion.  A barrier separates the filling and
draining phases so no worker races the master's setup.

Exercise: delete the barrier (conceptually: what could a worker observe?).
Then make the master also consume — is a dedicated master worth a core?
"""

from repro.core.registry import Patternlet, RunConfig, register


def main(cfg: RunConfig):
    items = int(cfg.extra.get("items", 8))
    rt = cfg.smp_runtime()
    queue = []
    done = []

    def region(ctx):
        me = ctx.thread_num
        ctx.master(lambda: queue.extend(f"task#{k}" for k in range(items)))
        ctx.master(lambda: print(f"Master (thread 0) queued {items} tasks"))
        ctx.barrier()
        taken = 0
        while True:
            with ctx.critical("queue"):
                job = queue.pop(0) if queue else None
            if job is None:
                break
            done.append((job, me))
            print(f"Worker thread {me} completed {job}")
            taken += 1
            ctx.checkpoint()
        return taken

    print()
    result = rt.parallel(region)
    print()
    print(f"Work completed: {len(done)} of {items} tasks "
          f"by {sum(1 for n in result.results if n)} active workers")
    return {"done": done, "per_thread": result.results}


PATTERNLET = register(
    Patternlet(
        name="openmp.masterWorker",
        backend="openmp",
        summary="Master fills a queue; the team drains it under a lock.",
        patterns=("Master-Worker", "Task Decomposition", "Critical Section"),
        toggles=(),
        exercise=(
            "Chart tasks-per-worker for 2, 4 and 8 threads on 8 tasks.  "
            "When do added workers stop helping?"
        ),
        default_tasks=4,
        main=main,
        source=__name__,
    )
)
