"""parallelLoopDynamic patternlet (OpenMP-analogue).

``schedule(dynamic)`` hands out iterations first-come-first-served, which
balances *uneven* work: here iteration i simulates i units of work, so a
static deal overloads the high-numbered chunk while dynamic adapts.

Exercise: run with static and dynamic schedules and compare each thread's
total simulated work.  When is dynamic's extra coordination worth it?
"""

from repro.core.registry import Patternlet, RunConfig, register
from repro.core.toggles import Toggle


def main(cfg: RunConfig):
    reps = int(cfg.extra.get("reps", 12))
    rt = cfg.smp_runtime()
    schedule = "dynamic" if cfg.toggles["dynamic"] else "static"
    totals = [0] * cfg.tasks

    def body(i, ctx):
        ctx.work(i)  # iteration i costs i units: skewed load
        totals[ctx.thread_num] += i
        print(f"Thread {ctx.thread_num} performed iteration {i} (cost {i})")
        ctx.checkpoint()

    print()
    result = rt.parallel_for(reps, body, schedule=schedule, work_per_iteration=0.0)
    print()
    for t, w in enumerate(totals):
        print(f"Thread {t} total simulated work: {w}")
    return result


PATTERNLET = register(
    Patternlet(
        name="openmp.parallelLoopDynamic",
        backend="openmp",
        summary="Dynamic schedule balancing a skewed-work loop.",
        patterns=("Parallel Loop", "Loop Schedule"),
        toggles=(
            Toggle(
                "dynamic",
                "#pragma omp parallel for schedule(dynamic)",
                "First-come-first-served iterations instead of a static deal.",
                default=True,
            ),
        ),
        exercise=(
            "Toggle dynamic off and compare the per-thread work totals.  "
            "Explain why the static deal is unfair for this loop even "
            "though every thread gets the same number of iterations."
        ),
        default_tasks=3,
        main=main,
        source=__name__,
    )
)
