"""spmd2 patternlet (OpenMP-analogue).

The second SPMD patternlet makes the team size a command-line argument
(``omp_set_num_threads(atoi(argv[1]))``), so students can scale the run
without editing code — the *scalable* property of patternlets.

Exercise: run with 1, 2, 4, 8 threads.  Does each thread always print
exactly one line?  Is thread 0 always first?
"""

from repro.core.registry import Patternlet, RunConfig, register


def main(cfg: RunConfig):
    rt = cfg.smp_runtime()
    rt.set_num_threads(cfg.tasks)  # the atoi(argv[1]) of the C version

    def region(ctx):
        print(f"Hello from thread {ctx.thread_num} of {ctx.num_threads}")
        ctx.checkpoint()

    print()
    result = rt.parallel(region)
    print()
    return result


PATTERNLET = register(
    Patternlet(
        name="openmp.spmd2",
        backend="openmp",
        summary="SPMD with the team size taken from the command line.",
        patterns=("SPMD",),
        toggles=(),
        exercise=(
            "Run with 1, 2, 4 and 8 threads.  Record which thread prints "
            "first in each run; what decides that order?"
        ),
        default_tasks=4,
        main=main,
        source=__name__,
    )
)
