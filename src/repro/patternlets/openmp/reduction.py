"""reduction patternlet (OpenMP-analogue) — the paper's Figure 20.

Builds an array of random values and sums it twice: sequentially, then
with a parallel loop.  Three behaviours, two toggles:

- both off: the "parallel" sum is just a second sequential sum and the
  two agree (Figure 21);
- ``parallel_for`` on, ``reduction`` off: every thread hammers one shared
  sum — a data race, and the parallel total comes up short (Figure 22);
- both on: per-thread partial sums combined by a reduction tree — correct
  again, with multiple threads (Figure 21's output restored).

Exercise: brainstorm fixes for the racy version before enabling the
reduction toggle; compare your fix to what reduction(+:sum) does.
"""

import random

from repro.core.registry import Patternlet, RunConfig, register
from repro.core.toggles import Toggle
from repro.smp import SharedCell


def main(cfg: RunConfig):
    size = int(cfg.extra.get("size", 200))
    rng = random.Random(int(cfg.extra.get("data_seed", 42)))
    array = [rng.randrange(1000) for _ in range(size)]
    seq_sum = sum(array)

    use_parallel = cfg.toggles["parallel_for"]
    use_reduction = cfg.toggles["reduction"]
    rt = cfg.smp_runtime(num_threads=cfg.tasks if use_parallel else 1)

    if use_reduction:
        result = rt.parallel_for(
            size, lambda i, ctx: array[i], reduction="+", work_per_iteration=0.0
        )
        par_sum = result.reduction
    else:
        shared = SharedCell(0)
        result = rt.parallel_for(
            size,
            lambda i, ctx: shared.unsafe_add(array[i], ctx),
            work_per_iteration=0.0,
        )
        par_sum = shared.value

    print()
    print(f"Seq. sum: \t{seq_sum}")
    print(f"Par. sum: \t{par_sum}")
    print()
    if par_sum != seq_sum:
        print(f"MISMATCH: the parallel sum lost {seq_sum - par_sum} "
              "due to a data race on the shared sum variable.")
    return {"sequential": seq_sum, "parallel": par_sum, "team": result}


PATTERNLET = register(
    Patternlet(
        name="openmp.reduction",
        backend="openmp",
        summary="Sequential vs parallel array sum; race without the reduction clause.",
        patterns=("Reduction", "Parallel Loop", "Shared Data"),
        figures=("Fig. 20", "Fig. 21", "Fig. 22"),
        toggles=(
            Toggle(
                "parallel_for",
                "#pragma omp parallel for",
                "Divide the summing loop among a thread team.",
            ),
            Toggle(
                "reduction",
                "reduction(+:sum)",
                "Give each thread a private sum and combine them at the end.",
            ),
        ),
        exercise=(
            "Enable only parallel_for and rerun several seeds: how much is "
            "lost each time?  Describe where each thread's additions go "
            "once the reduction clause is enabled."
        ),
        default_tasks=4,
        main=main,
        source=__name__,
    )
)
