"""barrier patternlet (OpenMP-analogue) — the paper's Figure 7.

Each thread announces itself BEFORE and AFTER a (toggleable) barrier.
Without the barrier the two phases interleave freely (Figure 8); with it,
every BEFORE line precedes every AFTER line (Figure 9).

Exercise: predict the output before uncommenting ``#pragma omp barrier``;
then uncomment, rerun, and explain the difference.  Can AFTER lines still
appear in any relative order among themselves?
"""

from repro.core.registry import Patternlet, RunConfig, register
from repro.core.toggles import Toggle


def main(cfg: RunConfig):
    rt = cfg.smp_runtime()
    use_barrier = cfg.toggles["barrier"]

    def region(ctx):
        print(f"Thread {ctx.thread_num} of {ctx.num_threads} is BEFORE the barrier.")
        ctx.checkpoint()
        if use_barrier:
            ctx.barrier()
        print(f"Thread {ctx.thread_num} of {ctx.num_threads} is AFTER the barrier.")
        ctx.checkpoint()

    print()
    result = rt.parallel(region)
    print()
    return result


PATTERNLET = register(
    Patternlet(
        name="openmp.barrier",
        backend="openmp",
        summary="BEFORE/AFTER prints around a toggleable barrier.",
        patterns=("Barrier", "SPMD"),
        figures=("Fig. 7", "Fig. 8", "Fig. 9"),
        toggles=(
            Toggle(
                "barrier",
                "#pragma omp barrier",
                "Hold every thread until the whole team arrives.",
            ),
        ),
        exercise=(
            "Run without the barrier and circle every AFTER line that "
            "appears above some BEFORE line.  Rerun with the barrier: why "
            "can that no longer happen?"
        ),
        default_tasks=4,
        main=main,
        source=__name__,
    )
)
