"""forkJoin patternlet (OpenMP-analogue).

Sequential code runs before the fork and after the join; only the block in
between is replicated across the team.  The prints make the three phases
visible.

Exercise: which lines appear exactly once regardless of the thread count,
and why?  Move the 'During' print outside the region and predict the new
output.
"""

from repro.core.registry import Patternlet, RunConfig, register


def main(cfg: RunConfig):
    rt = cfg.smp_runtime()

    print("Before forking: only the initial thread exists.")

    def region(ctx):
        print(f"During: thread {ctx.thread_num} of {ctx.num_threads} is working.")
        ctx.checkpoint()

    result = rt.parallel(region)
    print("After joining: only the initial thread remains.")
    return result


PATTERNLET = register(
    Patternlet(
        name="openmp.forkJoin",
        backend="openmp",
        summary="Sequential-parallel-sequential structure made visible.",
        patterns=("Fork-Join",),
        toggles=(),
        exercise=(
            "Count the lines for 1, 2 and 4 threads.  Write the formula for "
            "the total as a function of the thread count."
        ),
        default_tasks=4,
        main=main,
        source=__name__,
    )
)
