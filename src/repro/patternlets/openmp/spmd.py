"""spmd patternlet (OpenMP-analogue) — the paper's Figure 1.

The canonical first patternlet: each thread of the team introduces itself.
With the ``parallel`` toggle off (the commented-out ``#pragma omp
parallel``) the "team" is a single thread (Figure 2); uncommenting it makes
four greetings appear in nondeterministic order (Figure 3).

Exercise: compile and run, then uncomment the pragma, recompile, and rerun.
Explain why the number of lines changes, why their order varies from run to
run, and where each thread's id number comes from.
"""

from repro.core.registry import Patternlet, RunConfig, register
from repro.core.toggles import Toggle


def main(cfg: RunConfig):
    rt = cfg.smp_runtime(num_threads=cfg.tasks if cfg.toggles["parallel"] else 1)

    def region(ctx):
        print(f"Hello from thread {ctx.thread_num} of {ctx.num_threads}")
        ctx.checkpoint()

    print()
    result = rt.parallel(region)
    print()
    return result


PATTERNLET = register(
    Patternlet(
        name="openmp.spmd",
        backend="openmp",
        summary="Each thread prints its id: the Single Program Multiple Data pattern.",
        patterns=("SPMD", "Fork-Join"),
        figures=("Fig. 1", "Fig. 2", "Fig. 3"),
        toggles=(
            Toggle(
                "parallel",
                "#pragma omp parallel",
                "Fork a thread team for the block (off = sequential run).",
                default=True,
            ),
        ),
        exercise=(
            "Run with the parallel toggle off, then on.  Why does the order "
            "of the greetings change between runs?  What does "
            "omp_get_thread_num() return in each thread, and why?"
        ),
        default_tasks=4,
        main=main,
        source=__name__,
    )
)
