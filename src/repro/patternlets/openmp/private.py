"""private patternlet (OpenMP-analogue).

When every thread writes the *same* shared temporary, their updates trample
each other; declaring it private gives each thread its own copy.  Here each
thread computes its own square via a shared or private scratch slot.

Exercise: with the toggle off, which results are wrong and why can the
wrong answers differ from run to run?  What does OpenMP's ``private``
clause change about the variable's storage?
"""

from repro.core.registry import Patternlet, RunConfig, register
from repro.core.toggles import Toggle


def main(cfg: RunConfig):
    rt = cfg.smp_runtime()
    use_private = cfg.toggles["private"]
    shared_scratch = {"value": None}  # one location shared by all threads

    def region(ctx):
        me = ctx.thread_num
        if use_private:
            scratch = {"value": None}  # per-thread private copy
        else:
            scratch = shared_scratch
        scratch["value"] = me
        ctx.race_window()  # ...another thread may overwrite the shared slot
        square = scratch["value"] * scratch["value"]
        expected = me * me
        verdict = "ok" if square == expected else f"WRONG (expected {expected})"
        print(f"Thread {me}: my id squared is {square} ... {verdict}")
        ctx.checkpoint()
        return square == expected

    print()
    result = rt.parallel(region)
    print()
    correct = sum(1 for ok in result.results if ok)
    print(f"{correct} of {result.size} threads computed the right square.")
    return result


PATTERNLET = register(
    Patternlet(
        name="openmp.private",
        backend="openmp",
        summary="Shared scratch variable trampled by teammates vs a private copy.",
        patterns=("Private Data", "Shared Data"),
        toggles=(
            Toggle(
                "private",
                "#pragma omp parallel private(scratch)",
                "Give each thread its own copy of the scratch variable.",
            ),
        ),
        exercise=(
            "Run several seeds with the toggle off and tabulate how many "
            "threads compute a wrong square.  Why does thread 0's answer "
            "sometimes survive?"
        ),
        default_tasks=4,
        main=main,
        source=__name__,
    )
)
