"""forkJoin2 patternlet (OpenMP-analogue).

Two parallel regions of *different* sizes separated by sequential code:
teams are created per region, so the program can fork 2 threads, join,
then fork 4.

Exercise: why might a program want differently-sized teams in different
phases?  What happens to the thread ids between the two regions?
"""

from repro.core.registry import Patternlet, RunConfig, register


def main(cfg: RunConfig):
    rt = cfg.smp_runtime()
    first = max(1, cfg.tasks // 2)

    def phase(tag):
        def region(ctx):
            print(f"Phase {tag}: thread {ctx.thread_num} of {ctx.num_threads}")
            ctx.checkpoint()

        return region

    print("Forking first team...")
    r1 = rt.parallel(phase("A"), num_threads=first)
    print("Joined. Forking second team...")
    r2 = rt.parallel(phase("B"), num_threads=cfg.tasks)
    print("Joined again.")
    return (r1, r2)


PATTERNLET = register(
    Patternlet(
        name="openmp.forkJoin2",
        backend="openmp",
        summary="Successive parallel regions with different team sizes.",
        patterns=("Fork-Join",),
        toggles=(),
        exercise=(
            "Run with 4 tasks: phase A uses 2 threads and phase B uses 4.  "
            "Is 'thread 1 of phase A' the same OS thread as 'thread 1 of "
            "phase B'?  Does it matter to the programming model?"
        ),
        default_tasks=4,
        main=main,
        source=__name__,
    )
)
