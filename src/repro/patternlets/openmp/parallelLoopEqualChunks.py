"""parallelLoopEqualChunks patternlet (OpenMP-analogue) — Figure 13.

The default static schedule splits the loop's iterations into one
contiguous chunk per thread: with 8 iterations and 2 threads, thread 0
performs 0-3 and thread 1 performs 4-7 (Figures 14-15).

Exercise: vary the number of threads and iterations.  When iterations do
not divide evenly, which threads get the extra work?
"""

from repro.core.registry import Patternlet, RunConfig, register
from repro.core.toggles import Toggle


def main(cfg: RunConfig):
    reps = int(cfg.extra.get("reps", 8))
    rt = cfg.smp_runtime(
        num_threads=cfg.tasks if cfg.toggles["parallel_for"] else 1
    )

    def body(i, ctx):
        print(f"Thread {ctx.thread_num} performed iteration {i}")
        ctx.checkpoint()

    print()
    result = rt.parallel_for(reps, body, schedule="static")
    print()
    return result


PATTERNLET = register(
    Patternlet(
        name="openmp.parallelLoopEqualChunks",
        backend="openmp",
        summary="Static schedule: one contiguous equal chunk per thread.",
        patterns=("Parallel Loop", "Loop Schedule", "Data Decomposition"),
        figures=("Fig. 13", "Fig. 14", "Fig. 15"),
        toggles=(
            Toggle(
                "parallel_for",
                "#pragma omp parallel for",
                "Divide the loop among a thread team (off = sequential).",
                default=True,
            ),
        ),
        exercise=(
            "Run with 1, 2 and 4 threads and write down which thread did "
            "which iterations.  Derive the chunk-size formula."
        ),
        default_tasks=2,
        main=main,
        source=__name__,
    )
)
