"""reduction2 patternlet (OpenMP-analogue).

Beyond ``+``: OpenMP permits *, min, max, the bitwise and logical
operators, and (since 4.0) user-defined reductions.  Each thread
contributes a record; a user-defined associative op merges them — here a
running (min, max, count) summary combined pairwise.

Exercise: prove the merge op is associative.  What goes wrong in the tree
combine if it is not?
"""

from repro.core.registry import Patternlet, RunConfig, register
from repro.ops import Op


def summarize(a, b):
    """Merge two (min, max, count) summaries (associative, commutative)."""
    return (min(a[0], b[0]), max(a[1], b[1]), a[2] + b[2])


SUMMARY = Op.create(summarize, name="SUMMARY")


def main(cfg: RunConfig):
    rt = cfg.smp_runtime()

    def region(ctx):
        me = ctx.thread_num
        value = (me + 1) * (me + 1)  # this thread's local measurement
        print(f"Thread {me} contributes {value}")
        ctx.checkpoint()
        lo, hi, n = ctx.reduce((value, value, 1), SUMMARY)
        product = ctx.reduce(value, "*")
        any_odd = ctx.reduce(value % 2 == 1, "||")
        if me == 0:
            print()
            print(f"min of squares: {lo}")
            print(f"max of squares: {hi}")
            print(f"count:          {n}")
            print(f"product:        {product}")
            print(f"any odd?        {any_odd}")
        return (lo, hi, n)

    print()
    return rt.parallel(region)


PATTERNLET = register(
    Patternlet(
        name="openmp.reduction2",
        backend="openmp",
        summary="Built-in operator menagerie plus a user-defined reduction.",
        patterns=("Reduction",),
        toggles=(),
        exercise=(
            "Add an 'average' field to the summary.  Why must you carry "
            "(sum, count) through the tree rather than averaging early?"
        ),
        default_tasks=4,
        main=main,
        source=__name__,
    )
)
