"""single patternlet (OpenMP-analogue).

``single`` lets exactly one thread — whichever arrives first — execute a
block, with the rest waiting at its implicit barrier; ``master`` pins the
block to thread 0 and implies no barrier.  The prints expose both
differences.

Exercise: run several seeds.  Which thread executes the single block?
Which executes the master block?  Where do the other threads wait in each
case?
"""

from repro.core.registry import Patternlet, RunConfig, register


def main(cfg: RunConfig):
    rt = cfg.smp_runtime()
    chosen = {}

    def region(ctx):
        me = ctx.thread_num

        def announce():
            chosen["single"] = me
            print(f"single block executed by thread {me} (first to arrive)")
            return me

        winner = ctx.single(announce)
        ctx.master(lambda: print(f"master block executed by thread {me} (always 0)"))
        print(f"Thread {me} proceeds knowing the single ran on thread {winner}")
        ctx.checkpoint()
        return winner

    print()
    result = rt.parallel(region)
    print()
    return {"chosen": chosen, "team": result}


PATTERNLET = register(
    Patternlet(
        name="openmp.single",
        backend="openmp",
        summary="single (first arrival + barrier) contrasted with master.",
        patterns=("Synchronisation", "Fork-Join"),
        toggles=(),
        exercise=(
            "Why does single imply a barrier but master does not?  Give one "
            "use where each choice is the only correct one."
        ),
        default_tasks=4,
        main=main,
        source=__name__,
    )
)
