"""critical2 patternlet (OpenMP-analogue) — the paper's Figure 29.

Times the same million-deposit loop twice: once guarded by ``atomic``,
once by ``critical``.  Both produce the exact balance, but ``critical`` is
markedly more expensive per deposit (Figure 30 reports a ~16.5x ratio on
the authors' machine; the exact ratio is machine- and runtime-specific,
but critical should clearly cost more).

Exercise: why is the hardware-level atomic cheaper than a general lock?
What limits which statements ``atomic`` can guard?
"""

from repro.core.registry import Patternlet, RunConfig, register
from repro.smp import SharedCell, get_wtime
from repro.trace import muted


def main(cfg: RunConfig):
    reps = int(cfg.extra.get("reps", 2000))
    rt = cfg.smp_runtime(mode="thread")  # wall-clock comparison needs real threads

    def deposit_run(kind):
        balance = SharedCell(0.0)

        def body(i, ctx):
            if kind == "atomic":
                balance.atomic_add(1.0, ctx)
            else:
                balance.critical_add(1.0, ctx)

        # Tracing a per-deposit event would cost as much as the atomic
        # update being timed; mute it so the measured ratio reflects the
        # primitives, not the observer.
        start = get_wtime()
        with muted():
            rt.parallel_for(reps, body, schedule="static", work_per_iteration=0.0)
        elapsed = get_wtime() - start
        return balance.value, elapsed

    print("Your starting bank account balance is 0.00")
    print()
    atomic_balance, atomic_time = deposit_run("atomic")
    print(f"After {reps} $1 deposits using 'atomic':")
    print(f" - balance = {atomic_balance:.2f},")
    print(f" - total time = {atomic_time:.9f},")
    print(f" - average time per deposit = {atomic_time / reps:.12f}")
    print()
    critical_balance, critical_time = deposit_run("critical")
    print(f"After {reps} $1 deposits using 'critical':")
    print(f" - balance = {critical_balance:.2f},")
    print(f" - total time = {critical_time:.9f},")
    print(f" - average time per deposit = {critical_time / reps:.12f}")
    print()
    ratio = critical_time / atomic_time if atomic_time > 0 else float("inf")
    print(f"criticalTime / atomicTime ratio: {ratio:.12f}")
    return {
        "atomic": (atomic_balance, atomic_time),
        "critical": (critical_balance, critical_time),
        "ratio": ratio,
        "reps": reps,
    }


PATTERNLET = register(
    Patternlet(
        name="openmp.critical2",
        backend="openmp",
        summary="Atomic vs critical: same correctness, different cost.",
        patterns=("Mutual Exclusion", "Atomic Update", "Critical Section"),
        figures=("Fig. 29", "Fig. 30"),
        toggles=(),
        exercise=(
            "Record the ratio for 2, 4 and 8 threads.  Does contention "
            "change it?  Which directive would you use for a histogram "
            "update, and why?"
        ),
        default_tasks=4,
        main=main,
        source=__name__,
    )
)
