"""parallelLoopChunksOf1 patternlet (OpenMP-analogue).

``schedule(static,1)`` deals iterations to threads round-robin — thread t
performs iterations t, t+T, t+2T, ... — the cyclic/striped counterpart of
the equal-chunks deal.

Exercise: compare the iteration→thread maps of this patternlet and
parallelLoopEqualChunks for 8 iterations on 2 threads.  For an image-
processing loop where nearby pixels cost similar work, which deal balances
better?  Which uses caches better?
"""

from repro.core.registry import Patternlet, RunConfig, register


def main(cfg: RunConfig):
    reps = int(cfg.extra.get("reps", 8))
    rt = cfg.smp_runtime()

    def body(i, ctx):
        print(f"Thread {ctx.thread_num} performed iteration {i}")
        ctx.checkpoint()

    print()
    result = rt.parallel_for(reps, body, schedule="static,1")
    print()
    return result


PATTERNLET = register(
    Patternlet(
        name="openmp.parallelLoopChunksOf1",
        backend="openmp",
        summary="Cyclic schedule(static,1): iterations dealt round-robin.",
        patterns=("Parallel Loop", "Loop Schedule"),
        toggles=(),
        exercise=(
            "With 8 iterations on 2 threads, list each thread's "
            "iterations.  Now change the chunk to 2; predict the map before "
            "running."
        ),
        default_tasks=2,
        main=main,
        source=__name__,
    )
)
