"""sections patternlet (OpenMP-analogue).

Task decomposition: the program has a few *different* jobs rather than one
loop, and ``sections`` deals each job to some thread.  With more jobs than
threads, threads take several; with more threads than jobs, some idle.

Exercise: run with 2 and then 6 threads for the 4 sections below.  Which
threads ran which sections?  What pattern would you use if the number of
jobs were data-dependent?
"""

from repro.core.registry import Patternlet, RunConfig, register


def main(cfg: RunConfig):
    rt = cfg.smp_runtime()
    jobs = ("parse the input", "index the corpus", "render the report",
            "compress the archive")
    ran_by = {}

    def make_section(label):
        def section():
            from repro.sched.base import current_task_label

            who = current_task_label() or "?"
            ran_by[label] = who
            print(f"Section '{label}' handled by {who}")
            return label

        return section

    print()
    results = rt.sections([make_section(j) for j in jobs])
    print()
    print(f"All {len(results)} sections completed.")
    return {"results": results, "ran_by": ran_by}


PATTERNLET = register(
    Patternlet(
        name="openmp.sections",
        backend="openmp",
        summary="Distinct jobs dealt to threads: task decomposition.",
        patterns=("Task Decomposition", "Fork-Join"),
        toggles=(),
        exercise=(
            "Make one section artificially slow (ctx.work).  How does the "
            "deal adapt, and what would a static assignment have cost?"
        ),
        default_tasks=2,
        main=main,
        source=__name__,
    )
)
