"""atomic patternlet (OpenMP-analogue).

The same lost-update race as the critical patternlet, fixed with the
cheaper ``atomic`` directive — hardware-assisted mutual exclusion limited
to a single simple update.

Exercise: replace the guarded line with two updates.  Why can ``atomic``
not protect both while ``critical`` can?
"""

from repro.core.registry import Patternlet, RunConfig, register
from repro.core.toggles import Toggle
from repro.smp import SharedCell


def main(cfg: RunConfig):
    reps = int(cfg.extra.get("reps", 50))
    rt = cfg.smp_runtime()
    protect = cfg.toggles["atomic"]
    counter = SharedCell(0)

    def region(ctx):
        for _ in range(reps):
            if protect:
                counter.atomic_add(1, ctx)
            else:
                counter.unsafe_add(1, ctx)

    print()
    expected = reps * cfg.tasks
    rt.parallel(region)
    print(f"Expected count: {expected}")
    print(f"Actual count:   {counter.value}")
    print()
    return counter.value


PATTERNLET = register(
    Patternlet(
        name="openmp.atomic",
        backend="openmp",
        summary="The lost-update race fixed with the atomic directive.",
        patterns=("Atomic Update", "Mutual Exclusion", "Shared Data"),
        toggles=(
            Toggle(
                "atomic",
                "#pragma omp atomic",
                "Make each increment a single indivisible update.",
            ),
        ),
        exercise=(
            "With the toggle off, how low can the count go for 4 threads x "
            "50 increments?  Construct (on paper) the interleaving that "
            "achieves the minimum."
        ),
        default_tasks=4,
        main=main,
        source=__name__,
    )
)
