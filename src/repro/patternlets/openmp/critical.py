"""critical patternlet (OpenMP-analogue).

The bank-balance demo: every thread deposits $1 REPS times into a shared
balance.  Unprotected, deposits are lost to the read-modify-write race
("the resulting race condition costs them imaginary money"); with the
``critical`` toggle the total is exact.

Exercise: with the toggle off, is the final balance ever *more* than the
expected total?  Explain using the interleaving of loads and stores.
"""

from repro.core.registry import Patternlet, RunConfig, register
from repro.core.toggles import Toggle
from repro.smp import SharedCell


def main(cfg: RunConfig):
    reps = int(cfg.extra.get("reps", 50))
    rt = cfg.smp_runtime()
    protect = cfg.toggles["critical"]
    balance = SharedCell(0)

    def region(ctx):
        for _ in range(reps):
            if protect:
                balance.critical_add(1, ctx)
            else:
                balance.unsafe_add(1, ctx)

    print()
    expected = reps * cfg.tasks
    result = rt.parallel(region)
    print(f"After {expected} one-dollar deposits, the balance is {balance.value}.")
    if balance.value != expected:
        print(f"The race condition lost {expected - balance.value} deposits!")
    else:
        print("Every deposit survived.")
    print()
    return balance.value


PATTERNLET = register(
    Patternlet(
        name="openmp.critical",
        backend="openmp",
        summary="Lost bank deposits from an unprotected shared update.",
        patterns=("Mutual Exclusion", "Critical Section", "Shared Data"),
        toggles=(
            Toggle(
                "critical",
                "#pragma omp critical",
                "Protect the balance update with a critical section.",
            ),
        ),
        exercise=(
            "Run with 2, 4 and 8 threads with the toggle off and plot lost "
            "deposits against thread count.  Then enable the toggle and "
            "confirm the loss is always zero."
        ),
        default_tasks=4,
        main=main,
        source=__name__,
    )
)
