"""deadlock patternlet (MPI-analogue).

Everyone receives before sending — the classic circular wait.  With the
``fix`` toggle, even ranks send first, which breaks the cycle.  The
runtime's deadlock detector names each stuck process and what it awaits,
turning the usual silent hang into a teachable diagnosis.

Exercise: draw the wait-for graph for np=4 with the fix off.  Why does
parity-based ordering break every cycle, for any even or odd np > 1?
"""

from repro.core.registry import Patternlet, RunConfig, register
from repro.core.toggles import Toggle
from repro.errors import DeadlockError


def main(cfg: RunConfig):
    fix = cfg.toggles["fix"]

    def rank_main(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        token = f"token from {comm.rank}"
        if fix and comm.rank % 2 == 0:
            comm.ssend(token, dest=right, tag=4)
            got = comm.recv(source=left, tag=4)
        else:
            got = comm.recv(source=left, tag=4)
            comm.ssend(token, dest=right, tag=4)
        print(f"Process {comm.rank} received {got!r}")
        return got

    try:
        return cfg.mpirun(rank_main)
    except DeadlockError as exc:
        print("DEADLOCK detected: the ring is a circular wait.")
        for who, what in sorted(exc.blocked.items()):
            print(f"  {who} is waiting for: {what}")
        return exc


PATTERNLET = register(
    Patternlet(
        name="mpi.deadlock",
        backend="mpi",
        summary="Receive-before-send ring: a circular wait, diagnosed.",
        patterns=("Message Passing", "Synchronisation"),
        toggles=(
            Toggle(
                "fix",
                "if (rank % 2 == 0) { send; recv } else { recv; send }",
                "Break the cycle by alternating send/receive order by parity.",
            ),
        ),
        exercise=(
            "With the fix off, the detector lists every process waiting on "
            "its left neighbour.  Explain why eager (buffered) sends would "
            "also 'fix' this ring — and why relying on that is dangerous."
        ),
        default_tasks=4,
        main=main,
        source=__name__,
    )
)
