"""reduction2 patternlet (MPI-analogue).

The located reductions (MINLOC/MAXLOC pair a value with its owner) and a
user-defined associative op (componentwise vector add), exercising the
parts of the MPI reduction menu the basic patternlet skips.

Exercise: MINLOC ties resolve to the lower rank.  Construct inputs that
hit a tie and verify.  What must Op.create's function satisfy?
"""

from repro.core.registry import Patternlet, RunConfig, register
from repro.ops import Op

VECTOR_ADD = Op.create(
    lambda a, b: tuple(x + y for x, y in zip(a, b)), name="VECTOR_ADD"
)


def main(cfg: RunConfig):
    def rank_main(comm):
        measurement = abs(comm.rank - comm.size // 2) + 1  # V-shaped data
        print(f"Process {comm.rank} measured {measurement}")
        comm.world.executor.checkpoint()
        lo = comm.reduce((measurement, comm.rank), op="MINLOC", root=0)
        hi = comm.reduce((measurement, comm.rank), op="MAXLOC", root=0)
        histogram = comm.reduce(
            tuple(1 if i == comm.rank % 3 else 0 for i in range(3)),
            op=VECTOR_ADD,
            root=0,
        )
        if comm.rank == 0:
            print()
            print(f"smallest measurement {lo[0]} came from rank {lo[1]}")
            print(f"largest  measurement {hi[0]} came from rank {hi[1]}")
            print(f"rank%3 histogram: {list(histogram)}")
            return (lo, hi, histogram)
        return None

    return cfg.mpirun(rank_main)


PATTERNLET = register(
    Patternlet(
        name="mpi.reduction2",
        backend="mpi",
        summary="MINLOC/MAXLOC and a user-defined vector-add reduction.",
        patterns=("Reduction",),
        toggles=(),
        exercise=(
            "Replace the histogram op with one that is NOT associative "
            "(e.g. subtraction) and run at several np values.  Explain the "
            "inconsistent results."
        ),
        default_tasks=5,
        main=main,
        source=__name__,
    )
)
