"""barrier patternlet (MPI-analogue) — the paper's Figure 10.

Because distributed stdout does not preserve cross-process write order,
the MPI barrier demo routes worker output through the master: each worker
sends its BEFORE/AFTER lines to rank 0, which prints them in arrival
order.  With the barrier toggle off the phases interleave (Figure 11);
with MPI_Barrier uncommented every BEFORE precedes every AFTER
(Figure 12).

Exercise: why is the master-printing arrangement needed here when the
OpenMP version just printed directly?
"""

from repro.core.registry import Patternlet, RunConfig, register
from repro.core.toggles import Toggle
from repro.mp import ANY_SOURCE


def main(cfg: RunConfig):
    use_barrier = cfg.toggles["barrier"]

    def rank_main(comm):
        if comm.size == 1:
            print("Need at least 2 processes for the master-printing barrier demo.")
            return None
        workers = comm.size - 1
        # Workers get their own communicator for the barrier; rank 0 opts
        # out (split is collective, so it still participates in the call).
        sub = comm.split(color=None if comm.rank == 0 else 1, key=comm.rank)
        if comm.rank == 0:
            printed = []
            for _ in range(2 * workers):
                line = comm.recv(source=ANY_SOURCE, tag=9)
                print(line)
                printed.append(line)
            return printed
        me = comm.rank
        comm.send(f"Process {me} of {comm.size} is BEFORE the barrier.", dest=0, tag=9)
        comm.world.executor.checkpoint()
        if use_barrier:
            sub.barrier()
        comm.send(f"Process {me} of {comm.size} is AFTER the barrier.", dest=0, tag=9)
        return me

    return cfg.mpirun(rank_main)


PATTERNLET = register(
    Patternlet(
        name="mpi.barrier",
        backend="mpi",
        summary="Worker BEFORE/AFTER lines printed by the master, with a toggleable barrier.",
        patterns=("Barrier", "Master-Worker", "Message Passing"),
        figures=("Fig. 10", "Fig. 11", "Fig. 12"),
        toggles=(
            Toggle(
                "barrier",
                "MPI_Barrier(workerComm);",
                "Hold every worker until all workers have sent BEFORE.",
            ),
        ),
        exercise=(
            "The workers' barrier excludes rank 0.  What would happen if "
            "rank 0 joined it while also printing everyone's lines?"
        ),
        default_tasks=4,
        main=main,
        source=__name__,
    )
)
