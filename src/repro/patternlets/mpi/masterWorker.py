"""masterWorker patternlet (MPI-analogue).

Rank 0 (the master) hands each worker a distinct assignment by message and
collects a result back — coordination by explicit message passing rather
than a shared queue.

Exercise: compare this to the OpenMP masterWorker patternlet.  Where did
the shared queue go?  What replaces the critical section?
"""

from repro.core.registry import Patternlet, RunConfig, register
from repro.mp import ANY_SOURCE


def main(cfg: RunConfig):
    def rank_main(comm):
        if comm.rank == 0:
            if comm.size == 1:
                print("Master has no workers; add processes with -np.")
                return []
            for worker in range(1, comm.size):
                comm.send(f"assignment #{worker}", dest=worker, tag=1)
            print(f"Master sent {comm.size - 1} assignments")
            replies = []
            for _ in range(1, comm.size):
                reply, status = comm.recv(source=ANY_SOURCE, tag=2, status=True)
                print(f"Master received {reply!r} from worker {status.source}")
                replies.append((status.source, reply))
            return sorted(replies)
        job = comm.recv(source=0, tag=1)
        print(f"Worker {comm.rank} working on {job!r}")
        comm.send(f"done: {job}", dest=0, tag=2)
        return job

    return cfg.mpirun(rank_main)


PATTERNLET = register(
    Patternlet(
        name="mpi.masterWorker",
        backend="mpi",
        summary="Master assigns work by message; workers reply with results.",
        patterns=("Master-Worker", "Message Passing"),
        toggles=(),
        exercise=(
            "The master receives replies with ANY_SOURCE.  What changes in "
            "the output if you force replies to be received in rank order "
            "instead, and when would that matter for performance?"
        ),
        default_tasks=4,
        main=main,
        source=__name__,
    )
)
