"""messagePassing2 patternlet (MPI-analogue).

A head-to-head exchange between two processes, with a toggle selecting
*synchronous* sends.  Buffered (eager) sends complete immediately, so the
naive send-then-receive order works; synchronous sends block until the
matching receive starts, so the same order deadlocks — both processes
stand at ssend waiting for a receiver who is also stuck at ssend.

Exercise: with ssend enabled, fix the deadlock without removing the
synchronous sends (hint: one process must receive first — or use
sendrecv).  Why does the buffered version merely *hide* the hazard?
"""

from repro.core.registry import Patternlet, RunConfig, register
from repro.core.toggles import Toggle
from repro.errors import DeadlockError


def main(cfg: RunConfig):
    synchronous = cfg.toggles["ssend"]

    def rank_main(comm):
        partner = 1 - comm.rank
        payload = f"hello from {comm.rank}"
        if synchronous:
            comm.ssend(payload, dest=partner, tag=3)
        else:
            comm.send(payload, dest=partner, tag=3)
        got = comm.recv(source=partner, tag=3)
        print(f"Process {comm.rank} exchanged messages; got: {got}")
        return got

    try:
        return cfg.mpirun(rank_main)
    except DeadlockError as exc:
        print("DEADLOCK: every process is blocked.")
        for who, what in sorted(exc.blocked.items()):
            print(f"  {who} is waiting for: {what}")
        print("Each ssend waits for a matching recv that can never be posted.")
        return exc


PATTERNLET = register(
    Patternlet(
        name="mpi.messagePassing2",
        backend="mpi",
        summary="Head-to-head exchange; synchronous sends expose the deadlock.",
        patterns=("Message Passing", "Synchronisation"),
        toggles=(
            Toggle(
                "ssend",
                "MPI_Ssend(...)",
                "Use synchronous sends that wait for the matching receive.",
            ),
        ),
        exercise=(
            "List three distinct fixes for the synchronous deadlock "
            "(ordering, sendrecv, nonblocking) and the trade-offs of each."
        ),
        default_tasks=2,
        main=main,
        source=__name__,
    )
)
