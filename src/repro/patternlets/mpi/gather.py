"""gather patternlet (MPI-analogue) — the paper's Figure 25.

Each process builds a small array of distinct values (rank*10 + i) and
prints it; MPI_Gather assembles all of them, rank-ordered, at the master,
which prints the combined array (Figures 26-28).

Exercise: run with 2, 4 and 6 processes.  How does the gathered array
relate to the per-process arrays?  Who allocates the space for it, and why
only there?
"""

from repro.core.registry import Patternlet, RunConfig, register

SIZE = 3


def _print_arr(rank, name, arr):
    print(f"Process {rank}, {name}: " + " ".join(str(v) for v in arr))


def main(cfg: RunConfig):
    size_each = int(cfg.extra.get("size", SIZE))

    def rank_main(comm):
        compute_array = [comm.rank * 10 + i for i in range(size_each)]
        _print_arr(comm.rank, "computeArray", compute_array)
        comm.world.executor.checkpoint()
        gathered = comm.gather(compute_array, root=0)
        if comm.rank == 0:
            flat = [v for chunk in gathered for v in chunk]
            _print_arr(comm.rank, "gatherArray", flat)
            return flat
        return None

    return cfg.mpirun(rank_main)


PATTERNLET = register(
    Patternlet(
        name="mpi.gather",
        backend="mpi",
        summary="Per-process arrays collected rank-ordered at the master.",
        patterns=("Gather", "Collective Communication"),
        figures=("Fig. 25", "Fig. 26", "Fig. 27", "Fig. 28"),
        toggles=(),
        exercise=(
            "Predict the gathered array for np=6 before running (Figure "
            "28).  Then change each process's values to rank*100+i and "
            "verify your updated prediction."
        ),
        default_tasks=2,
        main=main,
        source=__name__,
    )
)
