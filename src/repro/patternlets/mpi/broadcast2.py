"""broadcast2 patternlet (MPI-analogue).

Broadcast of a structured configuration object (the usual reason real
programs broadcast): rank 0 "reads" settings, everyone else receives a
private copy and acts on it.

Exercise: in the C version the struct must be packed into an MPI datatype.
What does the pickle-based transport do instead, and what does that cost?
"""

from repro.core.registry import Patternlet, RunConfig, register


def main(cfg: RunConfig):
    def rank_main(comm):
        if comm.rank == 0:
            config = {
                "input": "corpus.txt",
                "iterations": 25,
                "tolerance": 1e-6,
                "verbose": False,
            }
            print(f"Process 0 read configuration: {sorted(config)}")
        else:
            config = None
        config = comm.bcast(config, root=0)
        print(
            f"Process {comm.rank} will run {config['iterations']} iterations "
            f"on {config['input']!r}"
        )
        return config

    return cfg.mpirun(rank_main)


PATTERNLET = register(
    Patternlet(
        name="mpi.broadcast2",
        backend="mpi",
        summary="Broadcast of a structured config object to all processes.",
        patterns=("Broadcast", "Collective Communication"),
        toggles=(),
        exercise=(
            "Add a field to the config.  How many other lines must change?  "
            "Compare with adding a field to an MPI derived datatype."
        ),
        default_tasks=4,
        main=main,
        source=__name__,
    )
)
