"""sequence patternlet (MPI-analogue).

Interleaved output is fine for hello-worlds but real reports need order.
This patternlet enforces rank order two ways (toggle ``token_ring``):
funnelling lines through rank 0, or passing a "your turn" token around the
ring so each process prints in sequence.

Exercise: compare the two strategies' message counts and their span as the
world grows.  Which centralises load, and where?
"""

from repro.core.registry import Patternlet, RunConfig, register
from repro.core.toggles import Toggle


def main(cfg: RunConfig):
    token_ring = cfg.toggles["token_ring"]

    def rank_main(comm):
        line = f"Process {comm.rank} of {comm.size} reporting in order."
        if token_ring:
            if comm.rank > 0:
                comm.recv(source=comm.rank - 1, tag=5)  # wait for my turn
            print(line)
            if comm.rank < comm.size - 1:
                comm.send("your turn", dest=comm.rank + 1, tag=5)
        else:
            lines = comm.gather(line, root=0)
            if comm.rank == 0:
                for text in lines:
                    print(text)
        return comm.rank

    return cfg.mpirun(rank_main)


PATTERNLET = register(
    Patternlet(
        name="mpi.sequence",
        backend="mpi",
        summary="Rank-ordered output via gather-at-master or a turn token.",
        patterns=("Message Passing", "Synchronisation", "Gather"),
        toggles=(
            Toggle(
                "token_ring",
                "MPI_Recv(...); print; MPI_Send(...)",
                "Pass a turn token instead of gathering lines at rank 0.",
            ),
        ),
        exercise=(
            "Measure the span of both strategies at np=16 (use the "
            "WorldResult).  Explain the difference using the message "
            "dependency chains."
        ),
        default_tasks=4,
        main=main,
        source=__name__,
    )
)
