"""broadcast patternlet (MPI-analogue).

Rank 0 fills an array; MPI_Bcast delivers a copy to everyone.  Each
process prints its array before and after so the delivery is visible.

Exercise: how many messages does a naive root-sends-to-all broadcast use,
and how many rounds does the tree use?  Print the world's span to check.
"""

from repro.core.registry import Patternlet, RunConfig, register


def main(cfg: RunConfig):
    length = int(cfg.extra.get("length", 4))

    def rank_main(comm):
        array = [i * 11 for i in range(length)] if comm.rank == 0 else None
        print(f"Process {comm.rank} BEFORE broadcast: {array}")
        comm.world.executor.checkpoint()
        array = comm.bcast(array, root=0)
        print(f"Process {comm.rank} AFTER  broadcast: {array}")
        return array

    return cfg.mpirun(rank_main)


PATTERNLET = register(
    Patternlet(
        name="mpi.broadcast",
        backend="mpi",
        summary="Root's array delivered to every process.",
        patterns=("Broadcast", "Collective Communication"),
        toggles=(),
        exercise=(
            "Mutate the received array in one process and print everyone's "
            "copy again.  Why are the other processes unaffected?"
        ),
        default_tasks=4,
        main=main,
        source=__name__,
    )
)
