"""parallelLoopChunksOf1 patternlet (MPI-analogue).

The cyclic deal in message-passing form: process r performs iterations
r, r+P, r+2P, ... — one line of loop header instead of the equal-chunk
arithmetic.

Exercise: why is the cyclic deal *simpler* to write than equal chunks in
MPI, when in OpenMP both are just schedule clauses?
"""

from repro.core.registry import Patternlet, RunConfig, register


def main(cfg: RunConfig):
    reps = int(cfg.extra.get("reps", 8))

    def rank_main(comm):
        mine = []
        for i in range(comm.rank, reps, comm.size):
            print(f"Process {comm.rank} performed iteration {i}")
            comm.world.executor.checkpoint()
            mine.append(i)
        return mine

    return cfg.mpirun(rank_main)


PATTERNLET = register(
    Patternlet(
        name="mpi.parallelLoopChunksOf1",
        backend="mpi",
        summary="Cyclic loop deal: for (i = rank; i < REPS; i += size).",
        patterns=("Parallel Loop", "Data Decomposition"),
        toggles=(),
        exercise=(
            "For a loop whose iteration i costs i units, compare the load "
            "balance of the cyclic deal against equal chunks at np=4."
        ),
        default_tasks=2,
        main=main,
        source=__name__,
    )
)
