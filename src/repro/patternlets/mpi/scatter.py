"""scatter patternlet (MPI-analogue).

Rank 0 builds one big array and MPI_Scatter deals an equal slice to each
process — data decomposition by collective, the distributed-memory twin of
the equal-chunks loop.

Exercise: scatter then gather; does every value come home to its original
position?  What invariant of scatter/gather guarantees that?
"""

from repro.core.registry import Patternlet, RunConfig, register


def main(cfg: RunConfig):
    per_rank = int(cfg.extra.get("per_rank", 2))

    def rank_main(comm):
        if comm.rank == 0:
            whole = list(range(100, 100 + per_rank * comm.size))
            slices = [
                whole[r * per_rank : (r + 1) * per_rank] for r in range(comm.size)
            ]
            print(f"Process 0 scatters: {whole}")
        else:
            slices = None
        mine = comm.scatter(slices, root=0)
        print(f"Process {comm.rank} received slice: {mine}")
        return mine

    return cfg.mpirun(rank_main)


PATTERNLET = register(
    Patternlet(
        name="mpi.scatter",
        backend="mpi",
        summary="Root deals equal slices of one array to all processes.",
        patterns=("Scatter", "Collective Communication", "Data Decomposition"),
        toggles=(),
        exercise=(
            "Make the array length indivisible by np and adapt the slicing "
            "(scatterv-style).  Which ranks get the longer slices?"
        ),
        default_tasks=4,
        main=main,
        source=__name__,
    )
)
