"""parallelLoopEqualChunks patternlet (MPI-analogue) — the paper's Figure 16.

MPI has no worksharing directive, so the pattern is implemented by hand
with the ceiling-division arithmetic of the paper's C code: chunkSize =
ceil(REPS / numProcesses), each process takes [id*chunkSize, (id+1)*chunkSize),
and the last process absorbs the remainder (Figures 17-18).

Exercise: for REPS=8, np=3, compute each process's range by hand.  Which
process does the least work?  Rewrite using the cyclic deal instead.
"""

import math

from repro.core.registry import Patternlet, RunConfig, register


def main(cfg: RunConfig):
    reps = int(cfg.extra.get("reps", 8))

    def rank_main(comm):
        chunk = math.ceil(reps / comm.size)
        start = comm.rank * chunk
        stop = (comm.rank + 1) * chunk if comm.rank < comm.size - 1 else reps
        start = min(start, reps)
        stop = max(min(stop, reps), start)
        mine = []
        for i in range(start, stop):
            print(f"Process {comm.rank} performed iteration {i}")
            comm.world.executor.checkpoint()
            mine.append(i)
        return mine

    return cfg.mpirun(rank_main)


PATTERNLET = register(
    Patternlet(
        name="mpi.parallelLoopEqualChunks",
        backend="mpi",
        summary="Hand-rolled equal-chunk loop split across processes.",
        patterns=("Parallel Loop", "Data Decomposition", "SPMD"),
        figures=("Fig. 16", "Fig. 17", "Fig. 18"),
        toggles=(),
        exercise=(
            "Run with np=1, 2, 4 on 8 iterations and verify the splits "
            "match the OpenMP static schedule.  What happens with np=5?"
        ),
        default_tasks=2,
        main=main,
        source=__name__,
    )
)
