"""mpi patternlet family (modules auto-discovered by the parent package)."""
