"""reduction patternlet (MPI-analogue) — the paper's Figure 23.

Each process computes the square of (rank+1); MPI_Reduce combines the
squares twice — once with MPI_SUM and once with MPI_MAX — delivering both
results to the master (Figure 24: with 10 processes, sum 385 and max 100).

Exercise: which other built-in operations does MPI_Reduce support?  Why
must a user-defined operation be associative?
"""

from repro.core.registry import Patternlet, RunConfig, register

MASTER = 0


def main(cfg: RunConfig):
    def rank_main(comm):
        square = (comm.rank + 1) * (comm.rank + 1)
        print(f"Process {comm.rank} computed {square}")
        comm.world.executor.checkpoint()
        total = comm.reduce(square, op="SUM", root=MASTER)
        biggest = comm.reduce(square, op="MAX", root=MASTER)
        if comm.rank == MASTER:
            print()
            print(f"The sum of the squares is {total}")
            print(f"The max of the squares is {biggest}")
            return (total, biggest)
        return None

    return cfg.mpirun(rank_main)


PATTERNLET = register(
    Patternlet(
        name="mpi.reduction",
        backend="mpi",
        summary="Sum and max of per-process squares, reduced to the master.",
        patterns=("Reduction", "Collective Communication"),
        figures=("Fig. 23", "Fig. 24"),
        toggles=(),
        exercise=(
            "Run with np=10 and check the results against the closed forms "
            "n(n+1)(2n+1)/6 and n^2.  Then reduce with PROD — why does it "
            "overflow so quickly in C but not here?"
        ),
        default_tasks=10,
        main=main,
        source=__name__,
    )
)
