"""allgather patternlet (MPI-analogue).

Every process contributes one block and *every* process receives the
assembled whole — gather's symmetric sibling, the backbone of the parallel
matrix-vector product in the mpi4py tutorial.

Exercise: express allgather as gather+bcast.  Count the message rounds of
each formulation; when is the fused collective worth it?
"""

from repro.core.registry import Patternlet, RunConfig, register


def main(cfg: RunConfig):
    def rank_main(comm):
        block = [comm.rank * 10 + i for i in range(2)]
        print(f"Process {comm.rank} contributes {block}")
        comm.world.executor.checkpoint()
        whole = comm.allgather(block)
        flat = [v for chunk in whole for v in chunk]
        print(f"Process {comm.rank} assembled {flat}")
        return flat

    return cfg.mpirun(rank_main)


PATTERNLET = register(
    Patternlet(
        name="mpi.allgather",
        backend="mpi",
        summary="Everyone contributes a block; everyone gets the whole.",
        patterns=("Gather", "Broadcast", "Collective Communication"),
        toggles=(),
        exercise=(
            "Verify every process assembled an identical list.  Why does a "
            "distributed matrix-vector product need allgather rather than "
            "gather?"
        ),
        default_tasks=4,
        main=main,
        source=__name__,
    )
)
