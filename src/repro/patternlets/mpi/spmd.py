"""spmd patternlet (MPI-analogue) — the paper's Figure 4.

Each process reports its rank, the world size, and the cluster node it
runs on — the distributed-memory hello (Figures 5-6).  The node names make
the difference between distributed and non-distributed computation visible.

Exercise: run with -np 1 and -np 4.  Which values differ between the
processes, and which call produced each?  What does the node name tell you
that the rank does not?
"""

from repro.core.registry import Patternlet, RunConfig, register


def main(cfg: RunConfig):
    def rank_main(comm):
        print(
            f"Hello from process {comm.rank} of {comm.size} "
            f"on {comm.Get_processor_name()}"
        )
        comm.world.executor.checkpoint()
        return comm.rank

    return cfg.mpirun(rank_main)


PATTERNLET = register(
    Patternlet(
        name="mpi.spmd",
        backend="mpi",
        summary="Distributed hello: rank, size and hosting node per process.",
        patterns=("SPMD", "Message Passing"),
        figures=("Fig. 4", "Fig. 5", "Fig. 6"),
        toggles=(),
        exercise=(
            "Run with 1, 2 and 4 processes.  Explain why MPI_Comm_rank and "
            "MPI_Get_processor_name return different values in different "
            "processes even though every process runs the same program."
        ),
        default_tasks=4,
        main=main,
        source=__name__,
    )
)
