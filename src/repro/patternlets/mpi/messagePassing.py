"""messagePassing patternlet (MPI-analogue).

The basic send/receive pair, arranged in a ring: each process sends a
greeting to its right neighbour and receives one from its left neighbour.

Exercise: what guarantees that the receive gets the neighbour's greeting
and not some other message?  Change the tags so they mismatch — what
happens, and why is that better than silently matching?
"""

from repro.core.registry import Patternlet, RunConfig, register


def main(cfg: RunConfig):
    def rank_main(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        comm.send(f"greetings from rank {comm.rank}", dest=right, tag=7)
        msg = comm.recv(source=left, tag=7)
        print(f"Process {comm.rank} received: {msg}")
        return msg

    return cfg.mpirun(rank_main)


PATTERNLET = register(
    Patternlet(
        name="mpi.messagePassing",
        backend="mpi",
        summary="Ring exchange: everyone sends right, receives from the left.",
        patterns=("Message Passing", "SPMD"),
        toggles=(),
        exercise=(
            "Reverse the ring direction.  Which two lines change, and does "
            "the output order change deterministically?"
        ),
        default_tasks=4,
        main=main,
        source=__name__,
    )
)
