"""mutex patternlet (Pthreads-analogue).

The bank-balance race, fixed (or not, per the toggle) with an explicit
pthread mutex the program creates, passes to its threads, locks and
unlocks itself.

Exercise: lock around the whole loop instead of one deposit.  Still
correct?  What did it cost?
"""

from repro.core.registry import Patternlet, RunConfig, register
from repro.core.toggles import Toggle
from repro.pthreads import PthreadsRuntime


def main(cfg: RunConfig):
    rt = PthreadsRuntime(mode=cfg.mode, seed=cfg.seed, policy=cfg.policy)
    n = cfg.tasks
    reps = int(cfg.extra.get("reps", 25))
    protect = cfg.toggles["mutex"]

    def program(pt):
        lock = pt.mutex("balance")
        account = {"balance": 0}

        def depositor(tid):
            for _ in range(reps):
                if protect:
                    with lock:
                        account["balance"] += 1
                else:
                    tmp = account["balance"]
                    pt.race_window()
                    account["balance"] = tmp + 1
            return tid

        handles = [pt.create(depositor, t) for t in range(n)]
        for h in handles:
            pt.join(h)
        return account["balance"]

    expected = n * reps
    balance = rt.run(program)
    print(f"Expected balance: {expected}")
    print(f"Actual balance:   {balance}")
    if balance != expected:
        print(f"The race lost {expected - balance} deposits.")
    return balance


PATTERNLET = register(
    Patternlet(
        name="pthreads.mutex",
        backend="pthreads",
        summary="Bank-balance race fixed with an explicit mutex.",
        patterns=("Mutual Exclusion", "Shared Data"),
        toggles=(
            Toggle(
                "mutex",
                "pthread_mutex_lock(&lock); ... pthread_mutex_unlock(&lock);",
                "Protect each deposit with the mutex.",
            ),
        ),
        exercise=(
            "Compare this patternlet to openmp.critical line by line: what "
            "does the directive hide that the mutex makes explicit?"
        ),
        default_tasks=4,
        main=main,
        source=__name__,
    )
)
