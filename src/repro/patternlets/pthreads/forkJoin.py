"""forkJoin patternlet (Pthreads-analogue).

One child thread, created and joined around sequential prints — the
minimal fork-join, exposing that join is what makes the child's work
*happen-before* the parent's continuation.

Exercise: move the join after the final print.  Which orderings become
possible that were impossible before?
"""

from repro.core.registry import Patternlet, RunConfig, register
from repro.pthreads import PthreadsRuntime


def main(cfg: RunConfig):
    rt = PthreadsRuntime(mode=cfg.mode, seed=cfg.seed, policy=cfg.policy)

    def program(pt):
        print("Parent: before fork")

        def child():
            print("Child: doing my work")
            pt.checkpoint()
            return "child result"

        handle = pt.create(child)
        got = pt.join(handle)
        print(f"Parent: after join, child returned {got!r}")
        return got

    return rt.run(program)


PATTERNLET = register(
    Patternlet(
        name="pthreads.forkJoin",
        backend="pthreads",
        summary="Create one thread, join it: the minimal fork-join.",
        patterns=("Fork-Join",),
        toggles=(),
        exercise=(
            "What does pthread_join return and through which parameter in "
            "C?  What plays that role here?"
        ),
        default_tasks=2,
        main=main,
        source=__name__,
    )
)
