"""semaphore patternlet (Pthreads-analogue).

A bounded buffer with two counting semaphores: ``slots`` (free capacity)
gates the producer, ``filled`` (available items) gates the consumer; a
mutex guards the buffer itself.

Exercise: delete the mutex but keep both semaphores.  With one producer
and one consumer, is the buffer still safe?  With two producers?
"""

from repro.core.registry import Patternlet, RunConfig, register
from repro.pthreads import PthreadsRuntime


def main(cfg: RunConfig):
    rt = PthreadsRuntime(mode=cfg.mode, seed=cfg.seed, policy=cfg.policy)
    items = int(cfg.extra.get("items", 5))
    capacity = int(cfg.extra.get("capacity", 2))

    def program(pt):
        slots = pt.semaphore(capacity, "slots")
        filled = pt.semaphore(0, "filled")
        guard = pt.mutex("buffer")
        buffer = []
        high_water = {"max": 0}

        def producer():
            for k in range(items):
                slots.wait()
                with guard:
                    buffer.append(k)
                    high_water["max"] = max(high_water["max"], len(buffer))
                print(f"Produced {k} (buffer size {len(buffer)})")
                filled.post()
                pt.checkpoint()

        def consumer():
            got = []
            for _ in range(items):
                filled.wait()
                with guard:
                    got.append(buffer.pop(0))
                print(f"Consumed {got[-1]}")
                slots.post()
                pt.checkpoint()
            return got

        p = pt.create(producer, name="producer")
        c = pt.create(consumer, name="consumer")
        pt.join(p)
        got = pt.join(c)
        return {"consumed": got, "high_water": high_water["max"]}

    result = rt.run(program)
    print(
        f"Consumed {result['consumed']}; buffer never exceeded "
        f"{result['high_water']} of capacity {capacity}."
    )
    return result


PATTERNLET = register(
    Patternlet(
        name="pthreads.semaphore",
        backend="pthreads",
        summary="Bounded buffer gated by two counting semaphores.",
        patterns=("Synchronisation", "Shared Data"),
        toggles=(),
        exercise=(
            "Verify from the output that the buffer never exceeds its "
            "capacity.  Which semaphore enforces that bound, and what does "
            "the other one prevent?"
        ),
        default_tasks=2,
        main=main,
        source=__name__,
    )
)
