"""forkJoin2 patternlet (Pthreads-analogue).

Two waves of threads with a join wall between them: wave B must not start
until every wave-A thread has finished — phased computation built from
bare create/join.

Exercise: replace the join wall with a barrier shared by both waves.  What
changes about thread creation cost?
"""

from repro.core.registry import Patternlet, RunConfig, register
from repro.pthreads import PthreadsRuntime


def main(cfg: RunConfig):
    rt = PthreadsRuntime(mode=cfg.mode, seed=cfg.seed, policy=cfg.policy)
    n = max(2, cfg.tasks // 2)

    def program(pt):
        def worker(wave, tid):
            print(f"Wave {wave}: thread {tid} running")
            pt.checkpoint()
            return (wave, tid)

        first = [pt.create(worker, "A", t) for t in range(n)]
        done_a = [pt.join(h) for h in first]
        print("--- all of wave A joined ---")
        second = [pt.create(worker, "B", t) for t in range(n)]
        done_b = [pt.join(h) for h in second]
        return done_a + done_b

    return rt.run(program)


PATTERNLET = register(
    Patternlet(
        name="pthreads.forkJoin2",
        backend="pthreads",
        summary="Two thread waves separated by a join wall.",
        patterns=("Fork-Join", "Synchronisation"),
        toggles=(),
        exercise=(
            "Can a 'Wave B' line ever print above the separator?  Point to "
            "the exact calls that forbid it."
        ),
        default_tasks=4,
        main=main,
        source=__name__,
    )
)
