"""masterWorker patternlet (Pthreads-analogue).

The initial thread plays master: it queues assignments, signals workers
through a condition variable, and collects results by joining.  A sentinel
per worker (None) signals shutdown — the part directive-based models hide.

Exercise: what goes wrong if the master enqueues fewer sentinels than
workers?  Run it and read the deadlock report.
"""

from repro.core.registry import Patternlet, RunConfig, register
from repro.pthreads import PthreadsRuntime


def main(cfg: RunConfig):
    rt = PthreadsRuntime(mode=cfg.mode, seed=cfg.seed, policy=cfg.policy)
    n_workers = max(1, cfg.tasks - 1)
    items = int(cfg.extra.get("items", 6))

    def program(pt):
        lock = pt.mutex("jobs")
        avail = pt.cond(lock, "jobs-available")
        jobs = []
        completed = []

        def worker(wid):
            count = 0
            while True:
                with lock:
                    while not jobs:
                        avail.wait()
                    job = jobs.pop(0)
                if job is None:
                    break
                completed.append((job, wid))
                print(f"Worker {wid} finished {job}")
                pt.checkpoint()
                count += 1
            return count

        handles = [pt.create(worker, w, name=f"worker:{w}") for w in range(n_workers)]
        print(f"Master queues {items} jobs for {n_workers} workers")
        for k in range(items):
            with lock:
                jobs.append(f"job#{k}")
                avail.signal()
            pt.checkpoint()
        for _ in range(n_workers):  # one shutdown sentinel per worker
            with lock:
                jobs.append(None)
                avail.signal()
        counts = [pt.join(h) for h in handles]
        return {"completed": completed, "per_worker": counts}

    result = rt.run(program)
    print(f"Jobs done: {len(result['completed'])}; per-worker: {result['per_worker']}")
    return result


PATTERNLET = register(
    Patternlet(
        name="pthreads.masterWorker",
        backend="pthreads",
        summary="Master thread feeds a condvar-guarded job queue; sentinels stop workers.",
        patterns=("Master-Worker", "Synchronisation", "Task Decomposition"),
        toggles=(),
        exercise=(
            "Why signal rather than broadcast after each enqueue?  When "
            "would broadcast be required?"
        ),
        default_tasks=4,
        main=main,
        source=__name__,
    )
)
