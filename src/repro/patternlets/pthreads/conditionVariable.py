"""conditionVariable patternlet (Pthreads-analogue).

A producer/consumer pair coordinated by a condition variable: the consumer
waits (releasing the mutex) until the producer signals that the shared
queue is non-empty.  The while-loop re-check around wait is the part
students always want to delete — the exercise explains why they must not.

Exercise: replace 'while not queue' with 'if not queue'.  Under what
scheduling is the consumer now wrong, even without spurious wakeups?
"""

from repro.core.registry import Patternlet, RunConfig, register
from repro.pthreads import PthreadsRuntime


def main(cfg: RunConfig):
    rt = PthreadsRuntime(mode=cfg.mode, seed=cfg.seed, policy=cfg.policy)
    items = int(cfg.extra.get("items", 3))

    def program(pt):
        lock = pt.mutex("queue")
        nonempty = pt.cond(lock, "nonempty")
        queue = []
        consumed = []

        def consumer():
            for _ in range(items):
                with lock:
                    while not queue:
                        nonempty.wait()
                    item = queue.pop(0)
                consumed.append(item)
                print(f"Consumer took {item!r}")
                pt.checkpoint()
            return consumed

        def producer():
            for k in range(items):
                pt.checkpoint()
                with lock:
                    queue.append(f"item#{k}")
                    nonempty.signal()
                print(f"Producer queued item#{k}")
            return items

        c = pt.create(consumer, name="consumer")
        p = pt.create(producer, name="producer")
        pt.join(p)
        got = pt.join(c)
        return got

    result = rt.run(program)
    print(f"All consumed, in order: {result}")
    return result


PATTERNLET = register(
    Patternlet(
        name="pthreads.conditionVariable",
        backend="pthreads",
        summary="Producer/consumer hand-off via a condition variable.",
        patterns=("Synchronisation", "Shared Data"),
        toggles=(),
        exercise=(
            "Why must the consumer hold the mutex when calling wait, and "
            "who owns it when wait returns?"
        ),
        default_tasks=2,
        main=main,
        source=__name__,
    )
)
