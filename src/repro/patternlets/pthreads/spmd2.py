"""spmd2 patternlet (Pthreads-analogue).

Thread arguments done properly: each thread receives a small argument
record (id, total, shared results slot) instead of a bare integer — the
pthreads idiom for passing multiple values through the single void*.

Exercise: why does the C version heap-allocate one args struct per thread
instead of reusing one?  Reproduce the bug that reuse causes (hint: the
race_window helper).
"""

from repro.core.registry import Patternlet, RunConfig, register
from repro.pthreads import PthreadsRuntime


def main(cfg: RunConfig):
    rt = PthreadsRuntime(mode=cfg.mode, seed=cfg.seed, policy=cfg.policy)
    n = cfg.tasks
    shared_args = cfg.extra.get("share_args", False)  # the classic bug, opt-in

    def program(pt):
        results = [None] * n
        handles = []
        reused = {"tid": None}
        for tid in range(n):
            if shared_args:
                reused["tid"] = tid  # every thread sees ONE mutable record
                args = reused
            else:
                args = {"tid": tid}  # fresh record per thread

            def worker(a=args):
                pt.race_window()
                mine = a["tid"]
                results[mine] = f"thread {mine} of {n} checked in"
                print(f"Hello from thread {mine} of {n}")
                return mine

            handles.append(pt.create(worker))
        joined = [pt.join(h) for h in handles]
        return {"joined": joined, "results": results}

    print()
    result = rt.run(program)
    print()
    missing = sum(1 for r in result["results"] if r is None)
    if missing:
        print(f"{missing} thread slot(s) never checked in - argument race!")
    return result


PATTERNLET = register(
    Patternlet(
        name="pthreads.spmd2",
        backend="pthreads",
        summary="Per-thread argument records, and the bug when they are shared.",
        patterns=("SPMD", "Private Data"),
        toggles=(),
        exercise=(
            "Run with extra share_args=True at several seeds.  Which ids "
            "get duplicated, which get lost, and why does the heap-per-"
            "thread version never show this?"
        ),
        default_tasks=4,
        main=main,
        source=__name__,
    )
)
