"""spmd patternlet (Pthreads-analogue).

The raw-threads hello: the program explicitly creates each thread, passes
it its id as an argument, and joins them all.  Everything OpenMP's
``parallel`` directive did implicitly is now visible code.

Exercise: list each line of this program that the OpenMP spmd patternlet
did not need.  What did you gain for that extra code?
"""

from repro.core.registry import Patternlet, RunConfig, register
from repro.pthreads import PthreadsRuntime


def main(cfg: RunConfig):
    rt = PthreadsRuntime(mode=cfg.mode, seed=cfg.seed, policy=cfg.policy)
    n = cfg.tasks

    def program(pt):
        def worker(tid):
            print(f"Hello from thread {tid} of {n}")
            pt.checkpoint()
            return tid

        handles = [pt.create(worker, tid) for tid in range(n)]
        return [pt.join(h) for h in handles]

    print()
    result = rt.run(program)
    print()
    return result


PATTERNLET = register(
    Patternlet(
        name="pthreads.spmd",
        backend="pthreads",
        summary="Explicit create/join hello: SPMD without directives.",
        patterns=("SPMD", "Fork-Join"),
        toggles=(),
        exercise=(
            "Where does each thread's id come from here, compared to "
            "omp_get_thread_num()?  What happens if you forget one join?"
        ),
        default_tasks=4,
        main=main,
        source=__name__,
    )
)
