"""barrier patternlet (Pthreads-analogue).

The BEFORE/AFTER demo again, but with an explicit pthread_barrier_t the
program must size correctly itself.  The wait returns True on exactly one
thread per cycle (PTHREAD_BARRIER_SERIAL_THREAD), which this patternlet
uses to print the separator.

Exercise: initialise the barrier for n-1 parties instead of n.  What
happens, and how does the deadlock report identify the mistake?
"""

from repro.core.registry import Patternlet, RunConfig, register
from repro.core.toggles import Toggle
from repro.pthreads import PthreadsRuntime


def main(cfg: RunConfig):
    rt = PthreadsRuntime(mode=cfg.mode, seed=cfg.seed, policy=cfg.policy)
    n = cfg.tasks
    use_barrier = cfg.toggles["barrier"]

    def program(pt):
        bar = pt.barrier(n)

        def worker(tid):
            print(f"Thread {tid} of {n} is BEFORE the barrier.")
            pt.checkpoint()
            serial = bar.wait() if use_barrier else False
            if serial:
                print("--- barrier crossed (serial thread speaking) ---")
            print(f"Thread {tid} of {n} is AFTER the barrier.")
            pt.checkpoint()
            return tid

        handles = [pt.create(worker, t) for t in range(n)]
        return [pt.join(h) for h in handles]

    print()
    result = rt.run(program)
    print()
    return result


PATTERNLET = register(
    Patternlet(
        name="pthreads.barrier",
        backend="pthreads",
        summary="Explicit pthread barrier with the serial-thread convention.",
        patterns=("Barrier",),
        toggles=(
            Toggle(
                "barrier",
                "pthread_barrier_wait(&bar);",
                "Hold every thread until all have arrived.",
            ),
        ),
        exercise=(
            "Exactly one thread prints the separator line per cycle.  "
            "Which one is it across seeds, and what does POSIX guarantee "
            "about that choice?"
        ),
        default_tasks=4,
        main=main,
        source=__name__,
    )
)
