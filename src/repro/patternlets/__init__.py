"""The patternlet collection.

Importing this package imports every patternlet module, which registers it
with :mod:`repro.core.registry`.  The collection mirrors the paper's
inventory: 17 OpenMP-analogue, 16 MPI-analogue, 9 Pthreads-analogue and 2
heterogeneous patternlets — 44 in all.

Modules are discovered dynamically so adding a patternlet is a single new
file; the registry's duplicate/metadata checks run at import time.
"""

import importlib
import pkgutil

__all__ = ["load_all"]


def load_all() -> None:
    """Import every patternlet module under this package (idempotent)."""
    for pkg in pkgutil.iter_modules(__path__, prefix=f"{__name__}."):
        sub = importlib.import_module(pkg.name)
        subpath = getattr(sub, "__path__", None)
        if subpath is None:
            continue
        for mod in pkgutil.iter_modules(subpath, prefix=f"{pkg.name}."):
            importlib.import_module(mod.name)


load_all()
