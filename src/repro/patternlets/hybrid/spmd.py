"""spmd patternlet (heterogeneous MPI+OpenMP-analogue).

The MPI+X hello: mpirun places one process per node, and each process
forks a thread team sized to its node's cores.  Every thread reports the
full hierarchy — thread t of T, inside process r of R, on node-XX — making
the two levels of parallelism visible at once.

Exercise: with 2 processes x 3 threads, how many lines print?  Which
parts of each line come from MPI calls and which from OpenMP calls?
"""

from repro.core.registry import Patternlet, RunConfig, register


def main(cfg: RunConfig):
    threads_per = int(cfg.extra.get("threads_per_process", 2))

    def rank_main(comm):
        node = comm.Get_processor_name()
        smp = comm.smp_runtime(num_threads=threads_per)

        def region(ctx):
            print(
                f"Hello from thread {ctx.thread_num} of {ctx.num_threads} "
                f"in process {comm.rank} of {comm.size} on {node}"
            )
            ctx.checkpoint()
            return (comm.rank, ctx.thread_num)

        team = smp.parallel(region)
        return team.results

    # Default cluster: one process per node, so each team is one node's cores.
    return cfg.mpirun(rank_main)


PATTERNLET = register(
    Patternlet(
        name="hybrid.spmd",
        backend="hybrid",
        summary="MPI+OpenMP hello: thread t of T in process r of R on node-XX.",
        patterns=("SPMD", "Fork-Join", "Message Passing"),
        toggles=(),
        exercise=(
            "Total tasks = processes x threads.  Sketch which pairs share "
            "memory and which can only exchange messages."
        ),
        default_tasks=2,
        main=main,
        source=__name__,
    )
)
