"""reduction patternlet (heterogeneous MPI+OpenMP-analogue).

Two-level reduction, the canonical MPI+X composition: each process's
thread team tree-reduces its local values in shared memory, then the
per-process partials cross the network in an MPI reduce.  Only P messages
ever hit the network for P*T contributions.

Exercise: count combines at each level for P=2, T=4.  Why is doing the
whole reduction in MPI (P*T single-value messages) wasteful?
"""

from repro.core.registry import Patternlet, RunConfig, register


def main(cfg: RunConfig):
    threads_per = int(cfg.extra.get("threads_per_process", 2))

    def rank_main(comm):
        smp = comm.smp_runtime(num_threads=threads_per)

        def region(ctx):
            # Globally unique task id across the whole machine:
            gid = comm.rank * threads_per + ctx.thread_num
            value = (gid + 1) * (gid + 1)
            print(f"Process {comm.rank} thread {ctx.thread_num} contributes {value}")
            ctx.checkpoint()
            return ctx.reduce(value, "+")  # level 1: shared-memory tree

        team = smp.parallel(region)
        local_sum = team.results[0]
        print(f"Process {comm.rank} local sum: {local_sum}")
        total = comm.reduce(local_sum, op="SUM", root=0)  # level 2: network
        if comm.rank == 0:
            n = comm.size * threads_per
            print()
            print(f"Global sum of squares 1..{n}: {total}")
            return total
        return None

    # Default cluster: one process per node, so each team is one node's cores.
    return cfg.mpirun(rank_main)


PATTERNLET = register(
    Patternlet(
        name="hybrid.reduction",
        backend="hybrid",
        summary="Two-level reduction: shared-memory trees feeding an MPI reduce.",
        patterns=("Reduction", "Collective Communication", "Fork-Join"),
        toggles=(),
        exercise=(
            "Verify the total against n(n+1)(2n+1)/6 for n = P*T.  Then "
            "swap the levels conceptually - why can't the network level "
            "go first?"
        ),
        default_tasks=2,
        main=main,
        source=__name__,
    )
)
