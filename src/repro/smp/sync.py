"""Synchronisation primitives for SMP thread teams.

These implement the paper's synchronisation patterns:

- :class:`TeamBarrier` — the *Barrier* pattern (Figures 7-9): a reusable,
  generation-counted barrier.  It also synchronises the team's *virtual
  clocks*: every thread leaves the barrier at the max of the arrival clocks,
  which is what makes span (critical-path) measurements meaningful.
- :class:`TicketLock` — the *Mutual Exclusion* pattern as OpenMP's
  ``critical`` directive: a named, FIFO-fair lock.  Its acquire path goes
  through the executor's wait machinery, which costs a condition-variable
  round trip per acquisition — deliberately heavier than :class:`AtomicGuard`,
  reproducing the critical-vs-atomic cost gap of Figure 30.
- :class:`AtomicGuard` — OpenMP's ``atomic`` directive: the cheapest mutual
  exclusion available (a bare ``threading.Lock`` under real threads).  Like
  the real directive it must only guard a single small update: bodies must
  not print, block, or hit scheduler checkpoints.

All primitives observe their team's ``broken`` flag so a crashed teammate
unblocks everyone with :class:`~repro.errors.TeamBrokenError` instead of a
hang.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.errors import TeamBrokenError
from repro.obs import live as _live
from repro.sched.base import current_task_label as _task_label
from repro.trace.events import active as _trace_active, emit as _trace_emit

if TYPE_CHECKING:  # pragma: no cover
    from repro.smp.runtime import ExecutionContext, Team

__all__ = ["TeamBarrier", "TicketLock", "AtomicGuard", "OrderedCursor"]


class TeamBarrier:
    """Reusable generation-counted barrier for one team."""

    def __init__(self, team: "Team"):
        self._team = team
        self._lock = threading.Lock()
        self._count = 0
        self._generation = 0
        self._gen_vmax: dict[int, float] = {}

    @property
    def generation(self) -> int:
        """How many times the whole team has passed the barrier."""
        return self._generation

    def wait(self, ctx: "ExecutionContext") -> None:
        """Block until every teammate has arrived; synchronise virtual clocks."""
        team = self._team
        ex = team.executor
        with self._lock:
            gen = self._generation
            prev = self._gen_vmax.get(gen, 0.0)
            self._gen_vmax[gen] = max(prev, ctx.vtime)
            # Publish this arrival before the count flips: the departing
            # edge below must see every arrival of its generation.
            _trace_emit(
                "barrier.arrive",
                scope=team.scope,
                generation=gen,
                vtime=ctx.vtime,
                hb_rel=("barrier", team.scope, gen),
            )
            p = _live.probe
            if p is not None:
                p.barrier(_task_label() or "main")
            self._count += 1
            last = self._count == team.size
            if last:
                self._count = 0
                self._generation += 1
                self._gen_vmax.pop(gen - 2, None)
        if last:
            ex.notify()
        else:
            ex.wait_until(
                lambda: self._generation != gen or team.broken,
                describe=f"barrier #{gen} of team {team.label!r}",
            )
        if team.broken:
            raise TeamBrokenError(
                f"barrier #{gen} of team {team.label!r} aborted: a teammate failed"
            )
        release = self._gen_vmax.get(gen, ctx.vtime)
        ctx._advance_to(release + team.runtime.costs.barrier)
        _trace_emit(
            "barrier.depart",
            scope=team.scope,
            generation=gen,
            vtime=ctx.vtime,
            hb_acq=("barrier", team.scope, gen),
        )


class TicketLock:
    """FIFO-fair named lock backing the ``critical`` directive.

    Tickets are handed out in arrival order; ``now_serving`` advances on
    release.  Waiting goes through ``executor.wait_until``, so blocked
    threads appear in deadlock diagnostics by critical-section name.
    """

    def __init__(self, team: "Team", name: str):
        self._team = team
        self.name = name
        self._lock = threading.Lock()
        self._next_ticket = 0
        self._now_serving = 0
        #: Total acquisitions (teaching/diagnostic counter).
        self.acquisitions = 0

    def acquire(self, ctx: "ExecutionContext") -> None:
        """Take a ticket; wait until it is served (FIFO order)."""
        team = self._team
        with self._lock:
            ticket = self._next_ticket
            self._next_ticket += 1
        team.executor.wait_until(
            lambda: self._now_serving == ticket or team.broken,
            describe=f"critical section {self.name!r} (ticket {ticket})",
        )
        if team.broken:
            raise TeamBrokenError(
                f"critical section {self.name!r} aborted: a teammate failed"
            )
        ctx._advance_by(team.runtime.costs.critical)
        if _trace_active():
            _trace_emit(
                "critical.acquire",
                scope=team.scope,
                name=self.name,
                vtime=ctx.vtime,
                hb_acq=("critical", team.scope, self.name),
            )
        p = _live.probe
        if p is not None:
            p.critical(_task_label() or "main")

    def release(self, ctx: "ExecutionContext") -> None:
        """Serve the next ticket and wake its holder."""
        # Emit before advancing now_serving: the next holder's acquire
        # event must come after this release in stream order.
        if _trace_active():
            _trace_emit(
                "critical.release",
                scope=self._team.scope,
                name=self.name,
                vtime=ctx.vtime,
                hb_rel=("critical", self._team.scope, self.name),
            )
        with self._lock:
            self._now_serving += 1
            self.acquisitions += 1
        self._team.executor.notify()

    @property
    def held(self) -> bool:
        with self._lock:
            return self._now_serving < self._next_ticket


class AtomicGuard:
    """Cheapest mutual exclusion, backing the ``atomic`` directive.

    Under real threads this is a bare ``threading.Lock`` — one uncontended
    atomic RMW to take, no scheduler interaction.  Under lockstep the lock
    can never be contended (only one task runs at a time and atomic bodies
    contain no checkpoints), so acquisition is effectively free there; the
    Figure 30 cost-comparison bench therefore runs in thread mode.
    """

    def __init__(self, team: "Team"):
        self._team = team
        self._lock = threading.Lock()
        self._held = False  # lockstep-mode ownership flag
        #: Total guarded updates (teaching/diagnostic counter).
        self.updates = 0

    def acquire(self, ctx: "ExecutionContext") -> None:
        """Take the guard (bare lock under threads, flag under lockstep)."""
        team = self._team
        if team.executor.mode == "lockstep":
            # A raw lock would be invisible to the lockstep scheduler: if a
            # body ever hit a checkpoint while holding it, the next task to
            # contend would block the whole world.  Route through the
            # executor instead; with one task running at a time this is
            # still contention-free in the common case.
            team.executor.wait_until(
                lambda: not self._held or team.broken, describe="atomic guard"
            )
            if team.broken:
                raise TeamBrokenError("atomic guard aborted: a teammate failed")
            self._held = True
        else:
            self._lock.acquire()
        ctx._advance_by(team.runtime.costs.atomic)
        if _trace_active():
            _trace_emit(
                "atomic.acquire",
                scope=team.scope,
                vtime=ctx.vtime,
                hb_acq=("atomic", team.scope),
            )

    def release(self, ctx: "ExecutionContext") -> None:
        """Release the guard, counting the completed update."""
        self.updates += 1
        p = _live.probe
        if p is not None:
            p.atomic(_task_label() or "main")
        # Emit while still holding the guard so the next acquire event
        # cannot precede this release in stream order.
        if _trace_active():
            _trace_emit(
                "atomic.release",
                scope=self._team.scope,
                vtime=ctx.vtime,
                hb_rel=("atomic", self._team.scope),
            )
        if self._team.executor.mode == "lockstep":
            self._held = False
            self._team.executor.notify()
        else:
            self._lock.release()


class OrderedCursor:
    """OpenMP's ``ordered`` construct: sections run in iteration order.

    Inside a worksharing loop, each thread wraps its order-sensitive code
    in ``with cursor.turn(i):`` — the body for iteration ``i`` runs only
    after iterations ``start..i-1`` have completed theirs, regardless of
    which threads own which iterations.  Create one per loop via
    ``ctx.ordered_cursor()`` (all threads share the same cursor).
    """

    def __init__(self, team: "Team", start: int = 0, step: int = 1):
        if step == 0:
            raise ValueError("step must be non-zero")
        self._team = team
        self._next = start
        self._step = step
        self._lock = threading.Lock()

    @property
    def next_turn(self) -> int:
        return self._next

    def turn(self, iteration: int) -> "_OrderedTurn":
        """Context manager running its body when ``iteration``'s turn comes."""
        return _OrderedTurn(self, iteration)

    def _enter(self, iteration: int) -> None:
        team = self._team
        team.executor.wait_until(
            lambda: self._next == iteration or team.broken,
            describe=f"ordered section turn {iteration}",
        )
        if team.broken:
            raise TeamBrokenError("ordered section aborted: a teammate failed")
        _trace_emit(
            "ordered.enter",
            scope=team.scope,
            iteration=iteration,
            hb_acq=("ordered", team.scope, id(self)),
        )

    def _exit(self) -> None:
        _trace_emit(
            "ordered.exit",
            scope=self._team.scope,
            iteration=self._next,
            hb_rel=("ordered", self._team.scope, id(self)),
        )
        with self._lock:
            self._next += self._step
        self._team.executor.notify()


class _OrderedTurn:
    __slots__ = ("_cursor", "_iteration")

    def __init__(self, cursor: OrderedCursor, iteration: int):
        self._cursor = cursor
        self._iteration = iteration

    def __enter__(self) -> None:
        self._cursor._enter(self._iteration)

    def __exit__(self, *exc: object) -> None:
        self._cursor._exit()
