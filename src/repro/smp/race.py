"""Shared mutable state with honest data races.

The paper uses races twice: the reduction patternlet's wrong sums when the
``reduction`` clause is commented out (Figure 22), and the bank-balance
mutual-exclusion patternlets ("the resulting race condition costs them
imaginary money").  Both hinge on an unprotected read-modify-write of a
shared variable.

:class:`SharedCell` keeps that RMW genuinely unprotected — ``unsafe_add``
really does ``tmp = value; ...; value = tmp + delta`` — and inserts a *race
window* between the read and the write:

- under the lockstep executor the window is a scheduler checkpoint, so a
  seeded run interleaves two threads inside each other's RMW and the lost
  update is **deterministically reproducible**;
- under real threads the window optionally yields the GIL
  (``race_jitter``), which makes lost updates overwhelmingly likely at the
  iteration counts the patternlets use — just like the C original on a
  multicore machine.

The protected counterparts (``atomic_add``, ``critical_add``) route through
the team's :class:`~repro.smp.sync.AtomicGuard` / named
:class:`~repro.smp.sync.TicketLock` and always produce the correct total.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import TYPE_CHECKING, Any

from repro.trace.events import active as _trace_active, emit as _trace_emit

if TYPE_CHECKING:  # pragma: no cover
    from repro.smp.runtime import ExecutionContext

__all__ = ["SharedCell"]

_cell_ids = itertools.count()


class SharedCell:
    """A shared variable whose update discipline is chosen per call.

    Every access is mirrored onto the run's trace as a ``mem.read`` /
    ``mem.write`` event tagged with the cell's ``name``, which is what the
    happens-before race detector (:mod:`repro.trace.hb`) analyses.
    """

    def __init__(self, value: Any = 0, *, name: str | None = None):
        self.value = value
        self.name = name if name is not None else f"cell{next(_cell_ids)}"
        self._fallback_lock = threading.Lock()
        #: How many times a race window was actually crossed by another
        #: writer (detected post hoc: the value moved while we held tmp).
        self.torn_updates = 0

    def read(self) -> Any:
        """Plain read (itself unsynchronised, like the demos)."""
        if _trace_active():
            _trace_emit("mem.read", cell=self.name)
        return self.value

    def unsafe_add(self, delta: Any, ctx: "ExecutionContext | None" = None) -> None:
        """The bug the patternlets demonstrate: unprotected read-modify-write."""
        if _trace_active():
            _trace_emit("mem.read", cell=self.name)
        tmp = self.value
        if ctx is not None:
            ctx.race_window()
        if self.value != tmp:
            # Another writer got in between our read and our write; our
            # store below will clobber its update.  Count it so tests can
            # assert the race actually happened rather than inferring it
            # from the final total alone.
            self.torn_updates += 1
        if _trace_active():
            _trace_emit("mem.write", cell=self.name)
        self.value = tmp + delta

    def atomic_add(self, delta: Any, ctx: "ExecutionContext | None" = None) -> None:
        """The ``#pragma omp atomic`` fix: cheapest correct update."""
        if ctx is not None:
            with ctx.atomic():
                if _trace_active():
                    _trace_emit("mem.read", cell=self.name)
                    _trace_emit("mem.write", cell=self.name)
                self.value = self.value + delta
        else:
            with self._fallback_lock:
                self.value = self.value + delta

    def critical_add(
        self,
        delta: Any,
        ctx: "ExecutionContext",
        name: str = "",
    ) -> None:
        """The ``#pragma omp critical`` fix: named-lock protected update."""
        with ctx.critical(name):
            if _trace_active():
                _trace_emit("mem.read", cell=self.name)
                _trace_emit("mem.write", cell=self.name)
            self.value = self.value + delta


def thread_race_window(jitter: float) -> None:
    """Real-thread race window: yield the GIL, optionally nap.

    ``jitter <= 0`` still does a bare ``sleep(0)`` — enough to invite a
    context switch without distorting timings much; positive jitter sleeps
    that many seconds, making lost updates near-certain for demos.
    """
    if jitter > 0:
        time.sleep(jitter)
    else:
        time.sleep(0)
