"""Shared-memory (OpenMP-analogue) runtime.

Public surface::

    from repro.smp import SmpRuntime, Schedule, SharedCell

    rt = SmpRuntime(num_threads=4)
    rt.parallel(lambda ctx: print(ctx.thread_num))
    total = rt.parallel_for(8, lambda i, ctx: i, reduction="+").reduction

See :mod:`repro.smp.runtime` for the full directive vocabulary and the
DESIGN.md substitution table for how this maps onto the paper's C+OpenMP
patternlets.
"""

from repro.smp.race import SharedCell
from repro.smp.runtime import (
    ExecutionContext,
    SmpCosts,
    SmpRuntime,
    Team,
    TeamResult,
    get_wtime,
)
from repro.smp.schedule import Schedule, equal_chunk_bounds, static_iterations
from repro.smp.sync import AtomicGuard, OrderedCursor, TeamBarrier, TicketLock

__all__ = [
    "SmpRuntime",
    "SmpCosts",
    "Team",
    "TeamResult",
    "ExecutionContext",
    "Schedule",
    "SharedCell",
    "TeamBarrier",
    "TicketLock",
    "AtomicGuard",
    "OrderedCursor",
    "static_iterations",
    "equal_chunk_bounds",
    "get_wtime",
]
