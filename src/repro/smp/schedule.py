"""Loop schedules for the *Parallel Loop* pattern.

The paper demonstrates two static variants (``parallelLoopEqualChunks``,
``parallelLoopChunksOf1``) and mentions patternlets for "different chunk
sizes or scheduling algorithms".  This module implements the full OpenMP
schedule family:

- ``static`` (no chunk): iterations split into one contiguous chunk per
  thread, as equal as possible — thread 0 gets iterations ``0..⌈n/t⌉-1``
  and so on, reproducing Figure 15's 0-3 / 4-7 split.
- ``static, chunk``: fixed-size chunks dealt round-robin; chunk 1 is the
  cyclic/striped deal of ``parallelLoopChunksOf1``.
- ``dynamic, chunk``: first-come-first-served chunks from a shared counter.
- ``guided, chunk``: like dynamic, but each grab takes ``⌈remaining/t⌉``
  iterations (never below ``chunk``), shrinking exponentially.

Static assignments are pure functions (:func:`static_iterations`), which is
what the property-based tests exercise: for every ``(n, t, schedule)`` the
per-thread index sets must partition ``range(n)`` exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import ScheduleError

__all__ = [
    "Schedule",
    "static_iterations",
    "equal_chunk_bounds",
    "chunk_starts",
]


@dataclass(frozen=True)
class Schedule:
    """A loop schedule specification.

    Build one with the class methods (``Schedule.static()``,
    ``Schedule.static(chunk=1)``, ``Schedule.dynamic(2)``,
    ``Schedule.guided()``) or parse an OpenMP-style string with
    :meth:`parse` (``"static"``, ``"static,4"``, ``"dynamic"``,
    ``"guided,2"``).
    """

    kind: str
    chunk: int | None = None

    _KINDS = ("static", "dynamic", "guided")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ScheduleError(
                f"unknown schedule kind {self.kind!r} (known: {self._KINDS})"
            )
        if self.chunk is not None and self.chunk <= 0:
            raise ScheduleError(f"chunk must be positive, got {self.chunk}")
        if self.kind == "dynamic" and self.chunk is None:
            object.__setattr__(self, "chunk", 1)
        if self.kind == "guided" and self.chunk is None:
            object.__setattr__(self, "chunk", 1)

    # -- constructors --------------------------------------------------------

    @classmethod
    def static(cls, chunk: int | None = None) -> "Schedule":
        """Equal contiguous chunks (default) or round-robin chunks of ``chunk``."""
        return cls("static", chunk)

    @classmethod
    def dynamic(cls, chunk: int = 1) -> "Schedule":
        """First-come-first-served chunks of ``chunk`` iterations."""
        return cls("dynamic", chunk)

    @classmethod
    def guided(cls, chunk: int = 1) -> "Schedule":
        """Exponentially shrinking self-scheduled chunks (min size ``chunk``)."""
        return cls("guided", chunk)

    @classmethod
    def parse(cls, text: str) -> "Schedule":
        """Parse ``"kind"`` or ``"kind,chunk"`` (OpenMP clause spelling)."""
        parts = [p.strip() for p in text.split(",")]
        if len(parts) == 1:
            return cls(parts[0], None)
        if len(parts) == 2:
            try:
                chunk = int(parts[1])
            except ValueError:
                raise ScheduleError(f"bad chunk in schedule {text!r}") from None
            return cls(parts[0], chunk)
        raise ScheduleError(f"bad schedule spec {text!r}")

    @property
    def is_static(self) -> bool:
        return self.kind == "static"

    def __str__(self) -> str:
        if self.chunk is None:
            return self.kind
        return f"{self.kind},{self.chunk}"


def equal_chunk_bounds(n: int, num_threads: int, tid: int) -> tuple[int, int]:
    """The ``[start, stop)`` bounds of thread ``tid``'s equal chunk.

    This is exactly the arithmetic of the paper's MPI
    ``parallelLoopEqualChunks.c`` (Figure 16): ``chunkSize = ⌈n / t⌉``,
    ``start = tid * chunkSize``, and the *last* thread absorbs the remainder
    (its stop is clamped to ``n``).  Threads whose start falls beyond ``n``
    get an empty range.
    """
    if num_threads <= 0:
        raise ScheduleError("num_threads must be positive")
    if not 0 <= tid < num_threads:
        raise ScheduleError(f"tid {tid} out of range for {num_threads} threads")
    if n <= 0:
        return (0, 0)
    chunk_size = math.ceil(n / num_threads)
    start = tid * chunk_size
    if tid < num_threads - 1:
        stop = (tid + 1) * chunk_size
    else:
        stop = n
    start = min(start, n)
    stop = min(max(stop, start), n)
    return (start, stop)


def chunk_starts(n: int, chunk: int) -> Iterator[int]:
    """Start offsets of consecutive ``chunk``-sized blocks covering ``range(n)``."""
    return iter(range(0, max(n, 0), chunk))


def static_iterations(
    schedule: Schedule, n: int, num_threads: int, tid: int
) -> list[int]:
    """The iteration indices thread ``tid`` executes under a static schedule.

    Raises :class:`~repro.errors.ScheduleError` for dynamic/guided schedules,
    whose assignment depends on runtime arrival order.
    """
    if not schedule.is_static:
        raise ScheduleError(
            f"{schedule} is not static; its assignment is decided at run time"
        )
    if num_threads <= 0:
        raise ScheduleError("num_threads must be positive")
    if not 0 <= tid < num_threads:
        raise ScheduleError(f"tid {tid} out of range for {num_threads} threads")
    if n <= 0:
        return []
    if schedule.chunk is None:
        start, stop = equal_chunk_bounds(n, num_threads, tid)
        return list(range(start, stop))
    out: list[int] = []
    for block_index, start in enumerate(chunk_starts(n, schedule.chunk)):
        if block_index % num_threads == tid:
            out.extend(range(start, min(start + schedule.chunk, n)))
    return out


def coverage(schedule: Schedule, n: int, num_threads: int) -> Sequence[list[int]]:
    """Per-thread static assignments for all threads (testing helper)."""
    return [static_iterations(schedule, n, num_threads, t) for t in range(num_threads)]
