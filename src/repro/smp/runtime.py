"""The shared-memory (OpenMP-analogue) runtime: teams, regions, loops.

This is the substrate the OpenMP patternlets run on.  Where the paper's C
programs write::

    #pragma omp parallel
    {
        int id = omp_get_thread_num();
        ...
    }

the Python analogue is::

    rt = SmpRuntime(num_threads=4)

    def region(ctx):
        print(f"Hello from thread {ctx.thread_num} of {ctx.num_threads}")

    rt.parallel(region)

The :class:`ExecutionContext` passed to each team thread carries the whole
directive vocabulary as methods: ``barrier()``, ``critical()``, ``atomic()``,
``single()``, ``master()``, ``for_range()`` (with every OpenMP schedule),
``reduce()`` and ``sections()``.  The *comment/uncomment* pedagogy maps to
plain keyword arguments: running a region with ``num_threads=1`` is the
commented-out pragma; flipping a patternlet's ``barrier=True`` toggle is
uncommenting ``#pragma omp barrier``.

Every context also carries a **virtual clock** advanced by ``work(cost)``
and synchronised at barriers; a team's *span* (max final clock) is the
critical-path length under the declared cost model, which is how the
scaling figures are reproduced deterministically on a single-core host.

Team threads are leased from the process-wide rank pool
(:mod:`repro.sched.pool`) by whichever executor backs the runtime, so
large teams (``num_threads=64`` and beyond, for classroom scaling demos)
and back-to-back regions reuse parked OS threads rather than paying
thread creation per fork-join.
"""

from __future__ import annotations

import itertools
import math
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro import trace as _trace
from repro.errors import ReductionError, ScheduleError
from repro.ops import Op, resolve_op
from repro.sched import Executor, make_executor
from repro.sched.base import TaskGroup, current_task_label, task_label_scope
from repro.smp.race import thread_race_window
from repro.smp.schedule import Schedule, static_iterations
from repro.smp.sync import AtomicGuard, OrderedCursor, TeamBarrier, TicketLock

__all__ = [
    "SmpCosts",
    "SmpRuntime",
    "Team",
    "TeamResult",
    "ExecutionContext",
    "get_wtime",
]

_NO_VALUE = object()

#: Globally unique fork-join scope ids; see repro.trace.span.
_scope_ids = itertools.count()


def get_wtime() -> float:
    """Wall-clock seconds (the ``omp_get_wtime()`` analogue)."""
    return time.perf_counter()


@dataclass(frozen=True)
class SmpCosts:
    """Virtual-time costs charged by the runtime's own operations.

    Units are arbitrary "work units"; user compute is charged explicitly
    via ``ctx.work(cost)``.  Defaults make one barrier or one reduction
    combine cost one unit, matching the unit-cost model of Figure 19.
    """

    barrier: float = 1.0
    combine: float = 1.0
    critical: float = 0.0
    atomic: float = 0.0


class TeamResult:
    """Outcome of one fork-join region."""

    def __init__(
        self,
        *,
        label: str,
        size: int,
        results: list[Any],
        span: float,
        wall: float,
        reduction: Any = None,
    ):
        #: Per-thread return values of the region body, indexed by thread id.
        self.results = results
        #: Critical-path length in virtual work units (max final clock).
        self.span = span
        #: Real elapsed seconds for the whole region.
        self.wall = wall
        self.label = label
        self.size = size
        #: Combined value when the region ran with a reduction, else None.
        self.reduction = reduction

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TeamResult(label={self.label!r}, size={self.size}, "
            f"span={self.span:.3g}, wall={self.wall:.3g}s)"
        )


class Team:
    """Shared state of one thread team (one parallel region)."""

    def __init__(self, runtime: "SmpRuntime", size: int, label: str):
        if size <= 0:
            raise ValueError("team size must be positive")
        self.runtime = runtime
        self.size = size
        self.label = label
        #: Trace scope id for this region's events (unique per region).
        self.scope = f"{label}#{next(_scope_ids)}"
        self.barrier = TeamBarrier(self)
        self.atomic_guard = AtomicGuard(self)
        self.group: TaskGroup | None = None  # set once tasks launch
        self._lock = threading.Lock()
        self._criticals: dict[str, TicketLock] = {}
        self._reduce_slots: dict[int, list[Any]] = {}
        self._single_states: dict[int, dict[str, Any]] = {}
        self._loop_states: dict[int, dict[str, int]] = {}

    @property
    def executor(self) -> Executor:
        return self.runtime.executor

    @property
    def broken(self) -> bool:
        return self.group is not None and self.group.failed

    def critical_lock(self, name: str) -> TicketLock:
        """The team's named critical-section lock, created on first use."""
        with self._lock:
            lock = self._criticals.get(name)
            if lock is None:
                lock = TicketLock(self, name)
                self._criticals[name] = lock
            return lock


class ExecutionContext:
    """Per-thread handle inside a parallel region (the ``ctx`` argument).

    Mirrors the OpenMP runtime-library + directive vocabulary; see the
    module docstring for the mapping.
    """

    def __init__(self, team: Team, thread_num: int):
        self._team = team
        #: This thread's id within the team (``omp_get_thread_num()``).
        self.thread_num = thread_num
        #: The team size (``omp_get_num_threads()``).
        self.num_threads = team.size
        self._vclock = 0.0
        self._single_seq = 0
        self._reduce_seq = 0
        self._loop_seq = 0

    # -- identity & time ----------------------------------------------------

    @property
    def team(self) -> Team:
        return self._team

    @property
    def vtime(self) -> float:
        """This thread's virtual clock, in work units."""
        return self._vclock

    def work(self, cost: float = 1.0) -> None:
        """Charge ``cost`` virtual work units of compute to this thread."""
        if cost < 0:
            raise ValueError("work cost must be non-negative")
        self._vclock += cost

    def _advance_by(self, cost: float) -> None:
        self._vclock += cost

    def _advance_to(self, t: float) -> None:
        if t > self._vclock:
            self._vclock = t

    def wtime(self) -> float:
        """Wall-clock seconds (``omp_get_wtime()``)."""
        return get_wtime()

    # -- scheduling hooks -----------------------------------------------------

    def checkpoint(self) -> None:
        """Offer the scheduler a switch point (no-op under real threads)."""
        self._team.executor.checkpoint()

    def race_window(self) -> None:
        """The injectable gap inside an unprotected read-modify-write."""
        if self._team.executor.mode == "lockstep":
            self._team.executor.checkpoint()
        else:
            thread_race_window(self._team.runtime.race_jitter)

    # -- synchronisation directives -------------------------------------------

    def barrier(self) -> None:
        """``#pragma omp barrier``: wait for the whole team."""
        self._team.barrier.wait(self)

    @contextmanager
    def critical(self, name: str = "") -> Iterator[None]:
        """``#pragma omp critical [(name)]``: FIFO-fair named mutual exclusion."""
        lock = self._team.critical_lock(name)
        lock.acquire(self)
        try:
            yield
        finally:
            lock.release(self)

    @contextmanager
    def atomic(self) -> Iterator[None]:
        """``#pragma omp atomic``: cheapest mutual exclusion for one update.

        Like the directive, the guarded body must be a single small update:
        no prints, no blocking, no nested synchronisation.
        """
        guard = self._team.atomic_guard
        guard.acquire(self)
        try:
            yield
        finally:
            guard.release(self)

    def ordered_cursor(self, start: int = 0, step: int = 1) -> OrderedCursor:
        """``#pragma omp ordered``: a shared in-iteration-order turnstile.

        Collective: every team thread must call it at the same point; all
        receive the same cursor.  Wrap order-sensitive loop code in
        ``with cursor.turn(i):`` and iterations execute that code in
        ``start, start+step, ...`` order even though the loop itself runs
        out of order.
        """
        return self.single(lambda: OrderedCursor(self._team, start, step))

    def master(self, fn: Callable[[], Any]) -> Any:
        """``#pragma omp master``: thread 0 runs ``fn``; no implied barrier."""
        if self.thread_num == 0:
            return fn()
        return None

    def single(self, fn: Callable[[], Any], *, nowait: bool = False) -> Any:
        """``#pragma omp single``: first arrival runs ``fn``; others skip.

        Unless ``nowait``, an implied barrier follows and — like OpenMP's
        ``copyprivate`` extension — every thread returns ``fn``'s result.
        With ``nowait``, non-executing threads return ``None`` immediately.
        """
        team = self._team
        seq = self._single_seq
        self._single_seq += 1
        with team._lock:
            state = team._single_states.setdefault(
                seq, {"owner": None, "result": None}
            )
            if state["owner"] is None:
                state["owner"] = self.thread_num
            owner = state["owner"]
        result = None
        if owner == self.thread_num:
            result = fn()
            state["result"] = result
            team.executor.notify()
        if nowait:
            return result
        self.barrier()
        result = state["result"]
        self.barrier()  # nobody re-reads state after the owner cleans up
        if owner == self.thread_num:
            with team._lock:
                team._single_states.pop(seq, None)
        return result

    # -- worksharing ------------------------------------------------------------

    def for_range(
        self,
        n: int,
        schedule: Schedule | str | None = None,
    ) -> Iterator[int]:
        """``#pragma omp for``: this thread's share of ``range(n)``.

        Static schedules are computed arithmetically; dynamic and guided
        schedules pull chunks from a team-shared counter in arrival order.
        Every team thread must execute the same ``for_range`` calls in the
        same order (the usual OpenMP worksharing rule).
        """
        sched = self._resolve_schedule(schedule)
        seq = self._loop_seq
        self._loop_seq += 1
        if sched.is_static:
            mine = static_iterations(sched, n, self.num_threads, self.thread_num)
            if mine:
                _trace.emit(
                    "loop.assign",
                    scope=self._team.scope,
                    loop=seq,
                    schedule=sched.kind,
                    first=mine[0],
                    last=mine[-1],
                    count=len(mine),
                )
            return iter(mine)
        return self._dynamic_iter(n, sched, seq)

    def _resolve_schedule(self, schedule: Schedule | str | None) -> Schedule:
        if schedule is None:
            return Schedule.static()
        if isinstance(schedule, str):
            return Schedule.parse(schedule)
        if isinstance(schedule, Schedule):
            return schedule
        raise ScheduleError(f"bad schedule {schedule!r}")

    def _dynamic_iter(self, n: int, sched: Schedule, seq: int) -> Iterator[int]:
        team = self._team
        with team._lock:
            state = team._loop_states.setdefault(seq, {"next": 0, "done": 0})
        while True:
            with team._lock:
                start = state["next"]
                if start >= n:
                    state["done"] += 1
                    if state["done"] == team.size:
                        team._loop_states.pop(seq, None)
                    break
                if sched.kind == "guided":
                    grab = max(sched.chunk or 1, math.ceil((n - start) / team.size))
                else:
                    grab = sched.chunk or 1
                stop = min(n, start + grab)
                state["next"] = stop
            _trace.emit(
                "loop.chunk",
                scope=team.scope,
                loop=seq,
                schedule=sched.kind,
                first=start,
                last=stop - 1,
                count=stop - start,
            )
            for i in range(start, stop):
                yield i
            team.executor.checkpoint()

    def sections(self, fns: Sequence[Callable[[], Any]]) -> list[Any]:
        """``#pragma omp sections``: deal the given tasks out dynamically.

        Returns the per-section results (same order as ``fns``) on every
        thread, after an implied barrier.
        """
        team = self._team
        seq = self._loop_seq  # share the worksharing sequence space
        self._loop_seq += 1
        with team._lock:
            state = team._loop_states.setdefault(
                seq, {"next": 0, "done": 0}
            )
            if "results" not in state:
                state["results"] = [None] * len(fns)
        results = state["results"]
        while True:
            with team._lock:
                k = state["next"]
                if k >= len(fns):
                    break
                state["next"] = k + 1
            results[k] = fns[k]()
            team.executor.checkpoint()
        self.barrier()
        out = list(results)
        self.barrier()
        with team._lock:
            team._loop_states.pop(seq, None)
        return out

    # -- reduction ---------------------------------------------------------------

    def reduce(self, value: Any, op: Op | str = "+") -> Any:
        """The *Reduction* pattern: tree-combine one value per thread.

        All threads must call this collectively; all receive the combined
        result.  Combines happen pairwise up a binary tree — ``⌈lg t⌉``
        levels separated by barriers — so the span cost is
        ``O(lg t) · (combine + barrier)`` exactly as Figure 19 depicts,
        while the total number of combines is ``t - 1``, the same as a
        sequential sum ("the Reduction pattern performs the same number of
        total additions as a sequential summing").
        """
        rop = resolve_op(op)
        team = self._team
        t = team.size
        tid = self.thread_num
        seq = self._reduce_seq
        self._reduce_seq += 1
        with team._lock:
            slots = team._reduce_slots.setdefault(seq, [_NO_VALUE] * t)
        slots[tid] = value
        self.barrier()
        step = 1
        while step < t:
            if tid % (2 * step) == 0 and tid + step < t:
                left, right = slots[tid], slots[tid + step]
                if left is _NO_VALUE or right is _NO_VALUE:
                    raise ReductionError("reduction slot missing a contribution")
                slots[tid] = rop(left, right)
                self.work(team.runtime.costs.combine)
                _trace.emit(
                    "reduce.combine",
                    scope=team.scope,
                    left=tid,
                    right=tid + step,
                    step=step,
                    vtime=self.vtime,
                )
            step *= 2
            self.barrier()
        result = slots[0]
        self.barrier()
        if tid == 0:
            with team._lock:
                team._reduce_slots.pop(seq, None)
        return result


class SmpRuntime:
    """Factory and policy holder for SMP parallel regions.

    Parameters
    ----------
    num_threads:
        Default team size (``OMP_NUM_THREADS``); overridable per region.
    mode / seed / policy:
        Execution mode: ``"thread"`` for real OS threads, ``"lockstep"``
        for the deterministic seeded scheduler (see ``repro.sched``).
    deadlock_timeout:
        Watchdog for thread mode.
    race_jitter:
        Thread-mode race-window nap in seconds (0 = bare GIL yield).
    costs:
        Virtual-time cost model (see :class:`SmpCosts`).
    """

    def __init__(
        self,
        num_threads: int = 4,
        *,
        mode: str = "thread",
        seed: int = 0,
        policy: str = "random",
        deadlock_timeout: float = 30.0,
        race_jitter: float = 0.0,
        costs: SmpCosts | None = None,
        executor: Executor | None = None,
    ):
        if num_threads <= 0:
            raise ValueError("num_threads must be positive")
        self.executor = executor or make_executor(
            mode, seed=seed, policy=policy, deadlock_timeout=deadlock_timeout
        )
        self.default_num_threads = num_threads
        self.race_jitter = race_jitter
        self.costs = costs or SmpCosts()
        #: The event spine of the most recent run: the ambient recorder if
        #: one was installed (e.g. by capture_run), else this private one.
        self.trace = _trace.TraceRecorder()
        self._region_counter = 0
        self._counter_lock = threading.Lock()

    # -- OpenMP runtime-library analogues ------------------------------------

    def set_num_threads(self, n: int) -> None:
        """``omp_set_num_threads()``."""
        if n <= 0:
            raise ValueError("num_threads must be positive")
        self.default_num_threads = n

    def get_max_threads(self) -> int:
        """``omp_get_max_threads()``."""
        return self.default_num_threads

    # -- regions ---------------------------------------------------------------

    def parallel(
        self,
        body: Callable[[ExecutionContext], Any],
        *,
        num_threads: int | None = None,
        label: str | None = None,
    ) -> TeamResult:
        """``#pragma omp parallel``: fork a team, run ``body(ctx)`` in each.

        Joins the whole team before returning.  Thread labels nest under
        the caller's task label, so SMP regions forked inside MP ranks are
        attributed ``"mpi:1/omp:0"`` in captured output.
        """
        size = num_threads if num_threads is not None else self.default_num_threads
        if size <= 0:
            raise ValueError("num_threads must be positive")
        with self._counter_lock:
            self._region_counter += 1
            region_id = self._region_counter
        team_label = label or f"region{region_id}"
        team = Team(self, size, team_label)
        scope = team.scope
        parent = current_task_label()
        prefix = f"{parent}/" if parent else ""

        def make_thunk(tid: int) -> Callable[[], Any]:
            def thunk() -> Any:
                _trace.emit("task.start", scope=scope, hb_acq=("fork", scope))
                ctx = ExecutionContext(team, tid)
                try:
                    return body(ctx)
                finally:
                    _trace.emit(
                        "task.end",
                        scope=scope,
                        vtime=ctx.vtime,
                        hb_rel=("join", scope),
                    )

            return thunk

        labels = [f"{prefix}omp:{tid}" for tid in range(size)]
        t0 = get_wtime()
        def publish(group: TaskGroup) -> None:
            team.group = group

        # Emission goes to the ambient recorder; install this runtime's
        # private one only when no harness (capture_run, an enclosing MP
        # world, ...) has already installed a spine for this run.
        recorder = _trace.current_recorder()
        pushed = recorder is None
        if pushed:
            recorder = _trace.TraceRecorder()
            _trace.push_recorder(recorder)
        self.trace = recorder
        try:
            _trace.emit(
                "region.fork",
                scope=scope,
                label=team_label,
                tasks=size,
                hb_rel=("fork", scope),
            )
            group = self.executor.run_tasks(
                [make_thunk(tid) for tid in range(size)],
                labels,
                group_label=team_label,
                on_group=publish,
            )
            _trace.emit(
                "region.join", scope=scope, label=team_label, hb_acq=("join", scope)
            )
        finally:
            if pushed:
                _trace.pop_recorder(recorder)
        wall = get_wtime() - t0
        return TeamResult(
            label=team_label,
            size=size,
            results=group.results(),
            span=_trace.span_of(recorder, scope=scope),
            wall=wall,
        )

    def parallel_for(
        self,
        n: int,
        body: Callable[[int, ExecutionContext], Any],
        *,
        num_threads: int | None = None,
        schedule: Schedule | str | None = None,
        reduction: Op | str | None = None,
        work_per_iteration: float = 1.0,
        label: str | None = None,
    ) -> TeamResult:
        """``#pragma omp parallel for [schedule(...)] [reduction(op: x)]``.

        Runs ``body(i, ctx)`` for every ``i in range(n)``, divided among the
        team per ``schedule``.  With ``reduction=op`` the per-iteration
        return values are combined — thread-locally first, then by the team
        tree — and the total is available as ``TeamResult.reduction`` (this
        is precisely the two-level structure students are led to discover
        in Section III.D).  Each iteration charges ``work_per_iteration``
        virtual units.
        """
        rop = resolve_op(reduction) if reduction is not None else None

        def region(ctx: ExecutionContext) -> Any:
            local: Any = _NO_VALUE
            for i in ctx.for_range(n, schedule):
                v = body(i, ctx)
                ctx.work(work_per_iteration)
                if rop is not None:
                    local = v if local is _NO_VALUE else rop(local, v)
            if rop is None:
                return None
            return ctx.reduce(_Partial(local), _partial_op(rop)).value

        result = self.parallel(region, num_threads=num_threads, label=label)
        if rop is not None:
            combined = result.results[0]
            result.reduction = combined
        return result

    def sections(
        self,
        fns: Sequence[Callable[[], Any]],
        *,
        num_threads: int | None = None,
        label: str | None = None,
    ) -> list[Any]:
        """``#pragma omp parallel sections`` in one call."""
        out: list[Any] = []

        def region(ctx: ExecutionContext) -> None:
            results = ctx.sections(list(fns))
            if ctx.thread_num == 0:
                out.extend(results)

        self.parallel(region, num_threads=num_threads, label=label)
        return out


class _Partial:
    """Wrapper distinguishing "no contribution" from a real value.

    Threads that draw zero iterations under a skewed schedule must not
    poison a reduction that lacks an identity element.
    """

    __slots__ = ("value", "empty")

    def __init__(self, value: Any):
        self.empty = value is _NO_VALUE
        self.value = None if self.empty else value


def _partial_op(op: Op) -> Op:
    def combine(a: _Partial, b: _Partial) -> _Partial:
        if a.empty:
            return b
        if b.empty:
            return a
        return _Partial(op(a.value, b.value))

    return Op(name=f"partial({op.name})", fn=combine, commutative=op.commutative)
