"""Trapezoidal-rule integration: the classic first parallel program.

Every parallel-programming course integrates something; the pattern
content is Parallel Loop (split the subintervals) + Reduction (sum the
local areas).  Both runtimes get a version, and both must agree with the
sequential rule exactly — the subinterval-to-task map is deterministic, so
even floating-point sums match when combined in index order.
"""

from __future__ import annotations

from typing import Callable

from repro.mp.runtime import MpRuntime
from repro.smp.runtime import SmpRuntime
from repro.smp.schedule import equal_chunk_bounds

__all__ = ["trapezoid_sequential", "trapezoid_smp", "trapezoid_mp"]


def trapezoid_sequential(
    f: Callable[[float], float], a: float, b: float, n: int
) -> float:
    """Composite trapezoidal rule with ``n`` subintervals."""
    if n <= 0:
        raise ValueError("need at least one subinterval")
    h = (b - a) / n
    total = 0.5 * (f(a) + f(b))
    for i in range(1, n):
        total += f(a + i * h)
    return total * h


def _interior_sum(f: Callable[[float], float], a: float, h: float, lo: int, hi: int) -> float:
    """Sum of f at interior nodes lo..hi-1 (1-based interior indexing)."""
    total = 0.0
    for i in range(lo, hi):
        total += f(a + i * h)
    return total


def trapezoid_smp(
    f: Callable[[float], float],
    a: float,
    b: float,
    n: int,
    *,
    num_threads: int = 4,
    rt: SmpRuntime | None = None,
) -> tuple[float, float]:
    """Shared-memory version; returns ``(integral, span)``."""
    if n <= 0:
        raise ValueError("need at least one subinterval")
    rt = rt or SmpRuntime(num_threads=num_threads, mode="thread")
    h = (b - a) / n
    interior = n - 1  # nodes 1..n-1

    def region(ctx):
        lo, hi = equal_chunk_bounds(interior, ctx.num_threads, ctx.thread_num)
        local = _interior_sum(f, a, h, lo + 1, hi + 1)
        ctx.work(float(hi - lo))
        return ctx.reduce(local, "+")

    team = rt.parallel(region, num_threads=num_threads)
    integral = (team.results[0] + 0.5 * (f(a) + f(b))) * h
    return integral, team.span


def trapezoid_mp(
    f: Callable[[float], float],
    a: float,
    b: float,
    n: int,
    *,
    num_ranks: int = 4,
    runtime: MpRuntime | None = None,
) -> tuple[float, float]:
    """Message-passing version; returns ``(integral, span)``."""
    if n <= 0:
        raise ValueError("need at least one subinterval")
    runtime = runtime or MpRuntime(mode="thread")
    h = (b - a) / n
    interior = n - 1

    def rank_main(comm):
        lo, hi = equal_chunk_bounds(interior, comm.size, comm.rank)
        local = _interior_sum(f, a, h, lo + 1, hi + 1)
        comm.work(float(hi - lo))
        total = comm.reduce(local, op="SUM", root=0)
        if comm.rank == 0:
            return (total + 0.5 * (f(a) + f(b))) * h
        return None

    result = runtime.run(num_ranks, rank_main)
    return result.results[0], result.span
