"""A software pipeline: stages as threads, bounded buffers between them.

The *Pipeline* application pattern built from patternlet parts: each
stage is a pthread, each inter-stage queue a semaphore-gated bounded
buffer (the semaphore patternlet's structure), and a sentinel flows
through to shut the line down.  Items leave the pipe transformed by every
stage in order, whatever the interleaving.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.pthreads.api import PthreadContext, PthreadsRuntime

__all__ = ["run_pipeline"]

_DONE = object()


class _Channel:
    """Bounded buffer between adjacent stages (semaphores + mutex)."""

    def __init__(self, pt: PthreadContext, capacity: int, name: str):
        self._slots = pt.semaphore(capacity, f"{name}.slots")
        self._filled = pt.semaphore(0, f"{name}.filled")
        self._guard = pt.mutex(f"{name}.guard")
        self._items: list[Any] = []

    def put(self, item: Any) -> None:
        self._slots.wait()
        with self._guard:
            self._items.append(item)
        self._filled.post()

    def get(self) -> Any:
        self._filled.wait()
        with self._guard:
            item = self._items.pop(0)
        self._slots.post()
        return item


def run_pipeline(
    items: Iterable[Any],
    stages: Sequence[Callable[[Any], Any]],
    *,
    capacity: int = 2,
    rt: PthreadsRuntime | None = None,
) -> list[Any]:
    """Push ``items`` through ``stages`` running concurrently.

    Returns the fully transformed items in their original order (a
    pipeline preserves order by construction — each channel is FIFO).
    """
    if not stages:
        return list(items)
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    rt = rt or PthreadsRuntime(mode="thread")
    items = list(items)

    def program(pt: PthreadContext) -> list[Any]:
        channels = [
            _Channel(pt, capacity, f"ch{i}") for i in range(len(stages) + 1)
        ]
        out: list[Any] = []

        def feeder():
            for item in items:
                channels[0].put(item)
            channels[0].put(_DONE)

        def stage_worker(k: int):
            fn = stages[k]
            while True:
                item = channels[k].get()
                if item is _DONE:
                    channels[k + 1].put(_DONE)
                    return
                channels[k + 1].put(fn(item))

        def drain():
            while True:
                item = channels[-1].get()
                if item is _DONE:
                    return
                out.append(item)

        handles = [pt.create(feeder, name="feeder")]
        handles += [
            pt.create(stage_worker, k, name=f"stage:{k}") for k in range(len(stages))
        ]
        handles.append(pt.create(drain, name="drain"))
        for h in handles:
            pt.join(h)
        return out

    return rt.run(program)
