"""N-body simulation: the paper's example of a top-layer pattern.

Section II.B names *N-body Problems* as a high-level pattern; this
exemplar shows how it decomposes into the patternlet-level pieces: SPMD
ranks own blocks of bodies, and the all-pairs force computation runs as a
**ring pipeline** — each rank's block of body positions circulates around
the ring in p-1 hops, accumulating force contributions at every stop, so
every pair interacts while each rank only ever talks to its neighbours.

A gravity-like inverse-square force with softening keeps the arithmetic
honest while staying dependency-free.  The distributed forces match the
sequential all-pairs reference exactly (same pairs, same order of
accumulation per body), and the span shows ring steps scaling with p
while per-rank arithmetic falls as n²/p.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from repro.errors import MpError
from repro.mp.runtime import MpRuntime

__all__ = [
    "Body",
    "make_bodies",
    "forces_sequential",
    "forces_mp",
    "step_bodies",
]

#: Softening length: keeps close encounters finite (standard practice).
SOFTENING = 0.05


class Body:
    """A point mass in 2-D."""

    __slots__ = ("x", "y", "vx", "vy", "mass")

    def __init__(self, x: float, y: float, vx: float = 0.0, vy: float = 0.0, mass: float = 1.0):
        self.x, self.y = x, y
        self.vx, self.vy = vx, vy
        self.mass = mass

    def position(self) -> tuple[float, float]:
        """The (x, y) coordinates as a tuple."""
        return (self.x, self.y)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Body({self.x:.3g}, {self.y:.3g}, m={self.mass:.3g})"


def make_bodies(n: int, *, seed: int = 0) -> list[Body]:
    """A reproducible random cluster of ``n`` unit-mass bodies."""
    rng = random.Random(seed)
    return [
        Body(rng.uniform(-1, 1), rng.uniform(-1, 1), mass=rng.uniform(0.5, 2.0))
        for _ in range(n)
    ]


def _pair_force(
    xi: float, yi: float, mi: float, xj: float, yj: float, mj: float
) -> tuple[float, float]:
    """Force on body i from body j: G·mi·mj·r̂/r² (G = 1, softened).

    Both masses appear, so F_ij = -F_ji exactly — Newton's third law —
    and a closed system's total momentum (hence centre of mass, from
    rest) is conserved to floating-point error.
    """
    dx, dy = xj - xi, yj - yi
    r2 = dx * dx + dy * dy + SOFTENING * SOFTENING
    inv_r3 = 1.0 / (r2 * math.sqrt(r2))
    return (mi * mj * dx * inv_r3, mi * mj * dy * inv_r3)


def forces_sequential(bodies: Sequence[Body]) -> list[tuple[float, float]]:
    """All-pairs forces, the O(n²) reference."""
    n = len(bodies)
    out = [(0.0, 0.0)] * n
    for i in range(n):
        fx = fy = 0.0
        bi = bodies[i]
        for j in range(n):
            if i != j:
                bj = bodies[j]
                dfx, dfy = _pair_force(bi.x, bi.y, bi.mass, bj.x, bj.y, bj.mass)
                fx += dfx
                fy += dfy
        out[i] = (fx, fy)
    return out


def forces_mp(
    bodies: Sequence[Body],
    *,
    num_ranks: int = 4,
    runtime: MpRuntime | None = None,
) -> tuple[list[tuple[float, float]], float]:
    """Ring-pipeline all-pairs forces; returns ``(forces, span)``.

    Bodies are block-distributed; each rank accumulates local-block
    interactions, then passes a travelling copy of its block around the
    periodic ring, accumulating the visitors' contributions at each of
    the p-1 hops.  Every rank sums contributions in the same
    (j ascending within visiting block) order as the sequential
    reference, so results match bit for bit.
    """
    runtime = runtime or MpRuntime(mode="thread")
    n = len(bodies)
    if num_ranks < 1:
        raise MpError("need at least one rank")
    if n < num_ranks:
        raise MpError(f"{num_ranks} ranks need at least {num_ranks} bodies")
    snapshot = [(b.x, b.y, b.mass) for b in bodies]
    base, extra = divmod(n, num_ranks)
    counts = [base + (1 if r < extra else 0) for r in range(num_ranks)]
    starts = [sum(counts[:r]) for r in range(num_ranks)]

    def rank_main(comm):
        cart = comm.create_cart([comm.size], periods=True)
        src, dest = cart.shift(0)
        mine = comm.scatterv(snapshot if comm.rank == 0 else None, counts)
        my_start = starts[comm.rank]
        # Partial force sums for my bodies, keyed by global index order:
        # accumulate per visiting block, blocks applied in ascending
        # origin-rank order to mirror the sequential j-ascending loop.
        contributions: dict[int, list[tuple[float, float]]] = {
            r: [] for r in range(comm.size)
        }

        def accumulate(block_origin: int, block_start: int, block):
            out = []
            for i, (xi, yi, mi) in enumerate(mine):
                gi = my_start + i
                fx = fy = 0.0
                for j, (xj, yj, mj) in enumerate(block):
                    if block_start + j != gi:
                        dfx, dfy = _pair_force(xi, yi, mi, xj, yj, mj)
                        fx += dfx
                        fy += dfy
                comm.work(len(mine) * len(block) * 0.01)
                out.append((fx, fy))
            contributions[block_origin] = out

        accumulate(comm.rank, my_start, mine)
        travelling = (comm.rank, mine)
        for _hop in range(comm.size - 1):
            travelling = cart.sendrecv(travelling, dest=dest, source=src)
            origin, block = travelling
            accumulate(origin, starts[origin], block)
        totals = []
        for i in range(len(mine)):
            fx = fy = 0.0
            for r in range(comm.size):  # ascending j order across blocks
                dfx, dfy = contributions[r][i]
                fx += dfx
                fy += dfy
            totals.append((fx, fy))
        return comm.gatherv(totals)

    result = runtime.run(num_ranks, rank_main)
    return result.results[0], result.span


def step_bodies(
    bodies: Sequence[Body],
    forces: Sequence[tuple[float, float]],
    dt: float = 0.01,
) -> list[Body]:
    """Leapfrog-ish Euler step producing fresh bodies (inputs untouched)."""
    out = []
    for b, (fx, fy) in zip(bodies, forces):
        ax, ay = fx / b.mass, fy / b.mass
        vx, vy = b.vx + ax * dt, b.vy + ay * dt
        out.append(Body(b.x + vx * dt, b.y + vy * dt, vx, vy, b.mass))
    return out
