"""Parallel merge sort: the CS2 Friday session's destination algorithm.

Divide and Conquer realised with Fork-Join: split the list, sort the
halves in parallel threads up to a depth limit (beyond which recursion
goes sequential — forking a thread for a ten-element slice costs more than
sorting it), then merge.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.pthreads.api import PthreadContext, PthreadsRuntime

__all__ = ["merge", "parallel_mergesort", "sequential_mergesort"]


def merge(left: Sequence[Any], right: Sequence[Any]) -> list[Any]:
    """Standard two-way merge of sorted sequences (stable)."""
    out: list[Any] = []
    i = j = 0
    while i < len(left) and j < len(right):
        if right[j] < left[i]:
            out.append(right[j])
            j += 1
        else:
            out.append(left[i])
            i += 1
    out.extend(left[i:])
    out.extend(right[j:])
    return out


def sequential_mergesort(data: Sequence[Any]) -> list[Any]:
    """The recursion the parallel version falls back to below max_depth."""
    if len(data) <= 1:
        return list(data)
    mid = len(data) // 2
    return merge(sequential_mergesort(data[:mid]), sequential_mergesort(data[mid:]))


def parallel_mergesort(
    data: Sequence[Any],
    *,
    max_depth: int = 2,
    rt: PthreadsRuntime | None = None,
) -> list[Any]:
    """Fork-join merge sort: 2^max_depth concurrent sorters at the leaves."""
    rt = rt or PthreadsRuntime(mode="thread")

    def program(pt: PthreadContext) -> list[Any]:
        def sort(chunk: Sequence[Any], depth: int) -> list[Any]:
            if len(chunk) <= 1:
                return list(chunk)
            if depth >= max_depth:
                return sequential_mergesort(chunk)
            mid = len(chunk) // 2
            handle = pt.create(sort, chunk[:mid], depth + 1)  # fork the left half
            right = sort(chunk[mid:], depth + 1)  # sort the right here
            left = pt.join(handle)  # join before merging
            return merge(left, right)

        return sort(data, 0)

    return rt.run(program)
