"""Exemplar parallel algorithms built on the public runtimes.

The paper argues that after a patternlet introduces a pattern, students
should see an *exemplar* — "a 'real world' problem whose solution uses the
same pattern(s)".  These modules are those exemplars:

- :mod:`repro.algorithms.red_pixels` — Section III.D's motivating example:
  count an image's red pixels with Parallel Loop + Reduction, in both
  shared-memory and message-passing form.
- :mod:`repro.algorithms.monte_carlo` — estimate pi by dart-throwing:
  SPMD + Reduction.
- :mod:`repro.algorithms.mergesort` — the CS2 Friday session's parallel
  merge sort: Divide and Conquer + Fork-Join.
- :mod:`repro.algorithms.search` — parallel minimum/membership search with
  located reductions.
- :mod:`repro.algorithms.histogram` — shared-counter strategies compared:
  racy, atomic, critical, and private-then-reduce.
- :mod:`repro.algorithms.heat` — 1-D heat diffusion: Geometric
  Decomposition with halo exchange over a Cartesian topology.
- :mod:`repro.algorithms.integrate` — trapezoidal integration: the
  classic Parallel Loop + Reduction first program.
- :mod:`repro.algorithms.pipeline` — the Pipeline pattern from pthread
  stages and semaphore-gated bounded buffers.
"""

from repro.algorithms.heat import (
    simulate2d_mp,
    simulate2d_sequential,
    simulate_mp,
    simulate_sequential,
    step2d_sequential,
    step_sequential,
)
from repro.algorithms.histogram import histogram
from repro.algorithms.integrate import (
    trapezoid_mp,
    trapezoid_sequential,
    trapezoid_smp,
)
from repro.algorithms.mergesort import merge, parallel_mergesort
from repro.algorithms.monte_carlo import estimate_pi_mp, estimate_pi_smp
from repro.algorithms.nbody import (
    Body,
    forces_mp,
    forces_sequential,
    make_bodies,
    step_bodies,
)
from repro.algorithms.red_pixels import (
    count_red_mp,
    count_red_sequential,
    count_red_smp,
    make_image,
)
from repro.algorithms.oddeven import odd_even_sort
from repro.algorithms.pipeline import run_pipeline
from repro.algorithms.search import parallel_find_min, parallel_membership

__all__ = [
    "make_image",
    "count_red_sequential",
    "count_red_smp",
    "count_red_mp",
    "estimate_pi_smp",
    "estimate_pi_mp",
    "parallel_mergesort",
    "merge",
    "parallel_find_min",
    "parallel_membership",
    "histogram",
    "step_sequential",
    "simulate_sequential",
    "simulate_mp",
    "trapezoid_sequential",
    "trapezoid_smp",
    "trapezoid_mp",
    "run_pipeline",
    "odd_even_sort",
    "Body",
    "make_bodies",
    "forces_sequential",
    "forces_mp",
    "step_bodies",
    "step2d_sequential",
    "simulate2d_sequential",
    "simulate2d_mp",
]
