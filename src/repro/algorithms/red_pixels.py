"""Counting red pixels: the paper's own Reduction motivation (Section III.D).

"Suppose that we need to determine how many red pixels an image contains,
and that we use the Parallel Loop pattern to divide the scanning of this
image among eight tasks, which respectively find 6, 8, 9, 1, 5, 7, 2, and
4 red pixels" — those partials must then be combined, which is where the
O(lg t) reduction tree earns its keep.

:func:`make_image` can build an image whose equal-chunk partials are
exactly the paper's 6, 8, 9, 1, 5, 7, 2, 4, so the worked example in the
text is runnable.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.mp.runtime import MpRuntime
from repro.smp.runtime import SmpRuntime

__all__ = [
    "PAPER_PARTIALS",
    "make_image",
    "count_red_sequential",
    "count_red_smp",
    "count_red_mp",
]

Pixel = tuple[int, int, int]

#: The per-task red counts in the paper's Figure 19 walk-through.
PAPER_PARTIALS = (6, 8, 9, 1, 5, 7, 2, 4)

RED: Pixel = (200, 30, 30)
GREY: Pixel = (90, 90, 90)


def is_red(pixel: Pixel) -> bool:
    """A pixel is 'red' when its red channel dominates both others 2:1."""
    r, g, b = pixel
    return r >= 2 * g and r >= 2 * b


def make_image(
    *,
    partials: Sequence[int] = PAPER_PARTIALS,
    chunk: int = 100,
    seed: int = 0,
) -> list[Pixel]:
    """A flat pixel buffer whose equal-chunk red counts match ``partials``.

    Chunk ``k`` (of ``len(partials)`` chunks, each ``chunk`` pixels) holds
    exactly ``partials[k]`` red pixels at seeded-random positions.
    """
    rng = random.Random(seed)
    image: list[Pixel] = []
    for want in partials:
        if want > chunk:
            raise ValueError(f"cannot fit {want} red pixels in a chunk of {chunk}")
        block = [GREY] * chunk
        for pos in rng.sample(range(chunk), want):
            block[pos] = RED
        image.extend(block)
    return image


def count_red_sequential(image: Sequence[Pixel]) -> int:
    """The baseline scan."""
    return sum(1 for p in image if is_red(p))


def count_red_smp(
    image: Sequence[Pixel], *, num_threads: int = 8, rt: SmpRuntime | None = None
) -> tuple[int, list[int], float]:
    """Parallel Loop + Reduction in shared memory.

    Returns ``(total, per_thread_partials, span)``; with the paper's image
    and 8 threads the partials are exactly (6, 8, 9, 1, 5, 7, 2, 4).
    """
    rt = rt or SmpRuntime(num_threads=num_threads, mode="thread")
    partials = [0] * num_threads

    def region(ctx):
        local = 0
        for i in ctx.for_range(len(image), "static"):
            if is_red(image[i]):
                local += 1
            ctx.work(1.0)
        partials[ctx.thread_num] = local
        return ctx.reduce(local, "+")

    team = rt.parallel(region, num_threads=num_threads)
    return team.results[0], partials, team.span


def count_red_mp(
    image: Sequence[Pixel], *, num_ranks: int = 8, runtime: MpRuntime | None = None
) -> tuple[int, list[int], float]:
    """Scatter + local scan + tree Reduce in message-passing form."""
    runtime = runtime or MpRuntime(mode="thread")
    image = list(image)

    def rank_main(comm):
        if comm.rank == 0:
            n = len(image)
            chunk = -(-n // comm.size)
            slices = [image[r * chunk : (r + 1) * chunk] for r in range(comm.size)]
        else:
            slices = None
        mine = comm.scatter(slices, root=0)
        local = sum(1 for p in mine if is_red(p))
        comm.work(float(len(mine)))
        total = comm.reduce(local, op="SUM", root=0)
        partials = comm.gather(local, root=0)
        return (total, partials)

    result = runtime.run(num_ranks, rank_main)
    total, partials = result.results[0]
    return total, partials, result.span
