"""Parallel search: located reductions doing real work.

Finding the minimum (and where it lives) across distributed data is the
textbook use of MINLOC; membership testing is a logical-or reduction.
Both divide the data with the equal-chunk deal the parallel-loop
patternlets teach.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.mp.runtime import MpRuntime
from repro.smp.schedule import equal_chunk_bounds

__all__ = ["parallel_find_min", "parallel_membership"]


def parallel_find_min(
    data: Sequence[Any], *, num_ranks: int = 4, runtime: MpRuntime | None = None
) -> tuple[Any, int]:
    """Global minimum and its index, via local scans + MINLOC.

    Ties resolve to the lowest index, matching the sequential
    ``min(range(len(data)), key=data.__getitem__)``.
    """
    if not data:
        raise ValueError("empty data")
    runtime = runtime or MpRuntime(mode="thread")
    data = list(data)

    def rank_main(comm):
        start, stop = equal_chunk_bounds(len(data), comm.size, comm.rank)
        best = None
        for i in range(start, stop):
            comm.work(1.0)
            if best is None or data[i] < data[best]:
                best = i
        if best is None:  # empty chunk: neutral element loses every tie
            local = (float("inf"), len(data))
        else:
            local = (data[best], best)
        value, index = comm.allreduce(local, op="MINLOC")
        return (value, index)

    result = runtime.run(num_ranks, rank_main)
    return result.results[0]


def parallel_membership(
    data: Sequence[Any],
    needle: Any,
    *,
    num_ranks: int = 4,
    runtime: MpRuntime | None = None,
) -> bool:
    """Does ``needle`` appear anywhere?  Local scans + logical-or reduce."""
    runtime = runtime or MpRuntime(mode="thread")
    data = list(data)

    def rank_main(comm):
        start, stop = equal_chunk_bounds(len(data), comm.size, comm.rank)
        found = any(data[i] == needle for i in range(start, stop))
        comm.work(float(stop - start))
        return comm.allreduce(found, op="LOR")

    result = runtime.run(num_ranks, rank_main)
    return result.results[0]
