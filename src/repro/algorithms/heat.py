"""1-D heat diffusion: Geometric Decomposition + halo exchange.

The classic "exemplar" for the message-passing patternlets: a rod's
temperature evolves by the explicit finite-difference stencil

    u'[i] = u[i] + alpha * (u[i-1] - 2 u[i] + u[i+1])

Each rank owns a contiguous slab of cells (scatterv handles uneven
splits) with one ghost cell per side; every step the ranks swap boundary
cells with their Cartesian neighbours via ``sendrecv`` — the deadlock-free
halo exchange — then update their interior.  The distributed result is
bit-identical to the sequential reference, and the LogP span shows the
per-step cost falling with more ranks until halo traffic dominates.

Fixed (Dirichlet) boundary conditions: the rod's end temperatures stay
pinned at their initial values.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import MpError
from repro.mp.runtime import MpRuntime

__all__ = [
    "step_sequential",
    "simulate_sequential",
    "simulate_mp",
    "step2d_sequential",
    "simulate2d_sequential",
    "simulate2d_mp",
]


def step_sequential(u: Sequence[float], alpha: float) -> list[float]:
    """One explicit stencil step with pinned ends."""
    n = len(u)
    if n < 2:
        return list(u)
    out = list(u)
    for i in range(1, n - 1):
        out[i] = u[i] + alpha * (u[i - 1] - 2.0 * u[i] + u[i + 1])
    return out


def simulate_sequential(
    initial: Sequence[float], *, steps: int, alpha: float = 0.25
) -> list[float]:
    """The reference the parallel version must match exactly."""
    u = list(initial)
    for _ in range(steps):
        u = step_sequential(u, alpha)
    return u


def simulate_mp(
    initial: Sequence[float],
    *,
    steps: int,
    alpha: float = 0.25,
    num_ranks: int = 4,
    runtime: MpRuntime | None = None,
) -> tuple[list[float], float]:
    """Distributed simulation; returns ``(final_rod, span)``.

    The rod is scattered in near-equal slabs; each step performs a halo
    exchange (two ``sendrecv`` shifts along the 1-D Cartesian grid) and a
    local stencil update charged to the LogP clock.
    """
    if num_ranks < 1:
        raise MpError("need at least one rank")
    runtime = runtime or MpRuntime(mode="thread")
    rod = list(initial)
    n = len(rod)
    if n < 2:
        raise MpError("rod needs at least two cells")

    base, extra = divmod(n, num_ranks)
    counts = [base + (1 if r < extra else 0) for r in range(num_ranks)]
    if min(counts) == 0:
        raise MpError(
            f"{num_ranks} ranks over {n} cells leaves empty slabs; use fewer ranks"
        )

    def rank_main(comm):
        cart = comm.create_cart([comm.size])  # non-periodic rod
        mine = comm.scatterv(rod if comm.rank == 0 else None, counts)
        lower, upper = cart.shift(0)  # (left neighbour, right neighbour)
        is_first = lower is None
        is_last = upper is None
        for _ in range(steps):
            # Halo exchange: ship my boundary cells, receive the ghosts.
            left_ghost = right_ghost = None
            if not is_first and not is_last:
                right_ghost = cart.sendrecv(mine[-1], dest=upper, source=upper)
                left_ghost = cart.sendrecv(mine[0], dest=lower, source=lower)
            elif is_first and not is_last:
                right_ghost = cart.sendrecv(mine[-1], dest=upper, source=upper)
            elif is_last and not is_first:
                left_ghost = cart.sendrecv(mine[0], dest=lower, source=lower)
            padded = (
                ([mine[0]] if is_first else [left_ghost])
                + mine
                + ([mine[-1]] if is_last else [right_ghost])
            )
            updated = step_sequential(padded, alpha)
            mine = updated[1:-1]
            # Pinned physical ends: restore them after the update.
            if is_first:
                mine[0] = rod[0]
            if is_last:
                mine[-1] = rod[-1]
            comm.work(float(len(mine)))
        return comm.gatherv(mine)

    result = runtime.run(num_ranks, rank_main)
    return result.results[0], result.span


# ---------------------------------------------------------------------------
# 2-D variant: the full Cartesian-grid geometric decomposition
# ---------------------------------------------------------------------------


def step2d_sequential(grid: list[list[float]], alpha: float) -> list[list[float]]:
    """One 5-point-stencil step on a 2-D plate with pinned edges."""
    rows, cols = len(grid), len(grid[0])
    out = [row[:] for row in grid]
    for i in range(1, rows - 1):
        for j in range(1, cols - 1):
            out[i][j] = grid[i][j] + alpha * (
                grid[i - 1][j]
                + grid[i + 1][j]
                + grid[i][j - 1]
                + grid[i][j + 1]
                - 4.0 * grid[i][j]
            )
    return out


def simulate2d_sequential(
    initial: list[list[float]], *, steps: int, alpha: float = 0.125
) -> list[list[float]]:
    """The 2-D reference the distributed version must match exactly."""
    grid = [row[:] for row in initial]
    for _ in range(steps):
        grid = step2d_sequential(grid, alpha)
    return grid


def simulate2d_mp(
    initial: list[list[float]],
    *,
    steps: int,
    alpha: float = 0.125,
    grid_shape: tuple[int, int] = (2, 2),
    runtime: MpRuntime | None = None,
) -> tuple[list[list[float]], float]:
    """2-D plate diffusion on a ``grid_shape`` Cartesian process grid.

    Each rank owns a rectangular tile; every step it swaps its boundary
    rows with its vertical neighbours and boundary columns with its
    horizontal neighbours (four ``sendrecv`` halo moves along the two
    grid dimensions), then applies the stencil to its tile.  Matches the
    sequential plate exactly.  Tile extents must divide the interior for
    clarity of the teaching code (a ValueError explains otherwise).
    """
    runtime = runtime or MpRuntime(mode="thread")
    prows, pcols = grid_shape
    nrank = prows * pcols
    rows, cols = len(initial), len(initial[0])
    if rows % prows or cols % pcols:
        raise MpError(
            f"plate {rows}x{cols} does not tile evenly over {grid_shape}; "
            "choose dividing extents"
        )
    tr, tc = rows // prows, cols // pcols
    plate = [row[:] for row in initial]

    def rank_main(comm):
        cart = comm.create_cart([prows, pcols])
        pr, pc = cart.coords
        up, down = cart.shift(0)  # lower/upper along rows
        left, right = cart.shift(1)
        r0, c0 = pr * tr, pc * tc
        if comm.rank == 0:
            tiles = []
            for rr in range(prows):
                for cc in range(pcols):
                    tiles.append(
                        [
                            plate[rr * tr + i][cc * tc : (cc + 1) * tc]
                            for i in range(tr)
                        ]
                    )
        else:
            tiles = None
        tile = comm.scatter(tiles, root=0)

        def exchange(t):
            # Halos travel as directional shifts: the ghost row I receive
            # from `up` is up's *bottom* row, so each phase pairs a send
            # one way with a receive from the other side (eager sends make
            # the naive order deadlock-free).
            top_halo = bottom_halo = left_halo = right_halo = None
            if down is not None:  # shift downward: bottom rows travel down
                cart.send(t[-1], dest=down, tag=2)
            if up is not None:
                top_halo = cart.recv(source=up, tag=2)
            if up is not None:  # shift upward: top rows travel up
                cart.send(t[0], dest=up, tag=1)
            if down is not None:
                bottom_halo = cart.recv(source=down, tag=1)
            if right is not None:  # shift rightward: right columns travel right
                cart.send([row[-1] for row in t], dest=right, tag=4)
            if left is not None:
                left_halo = cart.recv(source=left, tag=4)
            if left is not None:  # shift leftward
                cart.send([row[0] for row in t], dest=left, tag=3)
            if right is not None:
                right_halo = cart.recv(source=right, tag=3)
            return top_halo, bottom_halo, left_halo, right_halo

        for _ in range(steps):
            top, bottom, lefth, righth = exchange(tile)
            new = [row[:] for row in tile]
            for i in range(tr):
                gi = r0 + i
                if gi in (0, rows - 1):
                    continue  # pinned plate edge
                for j in range(tc):
                    gj = c0 + j
                    if gj in (0, cols - 1):
                        continue
                    north = tile[i - 1][j] if i > 0 else top[j]
                    south = tile[i + 1][j] if i < tr - 1 else bottom[j]
                    west = tile[i][j - 1] if j > 0 else lefth[i]
                    east = tile[i][j + 1] if j < tc - 1 else righth[i]
                    new[i][j] = tile[i][j] + alpha * (
                        north + south + west + east - 4.0 * tile[i][j]
                    )
            tile = new
            comm.work(float(tr * tc))
        flat = comm.gather(tile, root=0)
        if comm.rank == 0:
            out = [[0.0] * cols for _ in range(rows)]
            k = 0
            for rr in range(prows):
                for cc in range(pcols):
                    t = flat[k]
                    k += 1
                    for i in range(tr):
                        out[rr * tr + i][cc * tc : (cc + 1) * tc] = t[i]
            return out
        return None

    result = runtime.run(nrank, rank_main)
    return result.results[0], result.span
