"""Odd-even transposition sort: distributed sorting for CS3.

The curriculum map's CS3 course explores "parallel sorting"; merge sort
covers the shared-memory side, and this is its message-passing sibling —
the classic block odd-even transposition sort:

- each rank holds a sorted block;
- for p phases, alternating odd/even pairs of neighbouring ranks
  exchange whole blocks; the lower rank keeps the smaller half, the
  higher keeps the larger half (a compare-split);
- after p phases the concatenation of blocks, in rank order, is sorted.

The p-phase bound is the textbook guarantee, checked by a property test;
each phase is a single neighbour ``sendrecv``, so the communication
pattern is exactly the halo-exchange shape students have already seen.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from repro.errors import MpError
from repro.mp.runtime import MpRuntime

__all__ = ["odd_even_sort"]


def _compare_split(mine: list[Any], theirs: list[Any], keep_low: bool) -> list[Any]:
    """Merge two sorted blocks; keep the low or high half of my size."""
    merged = sorted(mine + theirs)  # both tiny and already sorted; fine
    if keep_low:
        return merged[: len(mine)]
    return merged[len(merged) - len(mine) :]


def odd_even_sort(
    data: Sequence[Any],
    *,
    num_ranks: int = 4,
    runtime: MpRuntime | None = None,
) -> tuple[list[Any], float]:
    """Sort ``data`` across ``num_ranks`` blocks; returns ``(sorted, span)``.

    Handles uneven block sizes via scatterv; requires at least one item
    per rank.
    """
    runtime = runtime or MpRuntime(mode="thread")
    items = list(data)
    n = len(items)
    if num_ranks < 1:
        raise MpError("need at least one rank")
    if n < num_ranks:
        raise MpError(f"{num_ranks} ranks need at least {num_ranks} items")
    base, extra = divmod(n, num_ranks)
    counts = [base + (1 if r < extra else 0) for r in range(num_ranks)]

    def rank_main(comm):
        mine = sorted(comm.scatterv(items if comm.rank == 0 else None, counts))
        # Local sort costs m·lg m; each later compare-split is linear.
        m = max(2, len(mine))
        comm.work(float(m * math.log2(m)))
        me = comm.rank
        for phase in range(comm.size):
            if phase % 2 == 0:  # even phase: pairs (0,1), (2,3), ...
                partner = me + 1 if me % 2 == 0 else me - 1
            else:  # odd phase: pairs (1,2), (3,4), ...
                partner = me + 1 if me % 2 == 1 else me - 1
            if 0 <= partner < comm.size:
                theirs = comm.sendrecv(
                    mine, dest=partner, sendtag=phase, recvtag=phase,
                    source=partner,
                )
                mine = _compare_split(mine, theirs, keep_low=me < partner)
                comm.work(float(len(mine) + len(theirs)))
        return comm.gatherv(mine)

    result = runtime.run(num_ranks, rank_main)
    return result.results[0], result.span
