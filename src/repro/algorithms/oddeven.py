"""Odd-even transposition sort: distributed sorting for CS3.

The curriculum map's CS3 course explores "parallel sorting"; merge sort
covers the shared-memory side, and this is its message-passing sibling —
the classic block odd-even transposition sort:

- each rank holds a sorted block;
- for p phases, alternating odd/even pairs of neighbouring ranks
  exchange whole blocks; the lower rank keeps the smaller half, the
  higher keeps the larger half (a compare-split);
- after p phases the concatenation of blocks, in rank order, is sorted.

The p-phase bound is the textbook guarantee, checked by a property test;
each phase is a single neighbour ``sendrecv``, so the communication
pattern is exactly the halo-exchange shape students have already seen.

The p-phase theorem assumes *equal* block sizes (with uneven blocks a
compare-split can strand an element that still needs to travel), so
uneven inputs are padded up to a multiple of p with a sentinel that
compares greater than every real item; the pads settle at the top ranks
and are stripped after the final gather.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from repro.errors import MpError
from repro.mp.runtime import MpRuntime

__all__ = ["odd_even_sort"]


class _Greatest:
    """Padding sentinel that sorts after every real item.

    Only ``__lt__``/``__gt__`` matter: ``sorted`` compares with ``<``, and
    for ``item < pad`` the item's ``__lt__`` returns ``NotImplemented`` so
    Python falls back to ``pad.__gt__(item)``.  Instances survive pickling
    through the transport, so identity checks don't work — strip pads by
    type instead.
    """

    __slots__ = ()

    def __lt__(self, other: Any) -> bool:
        return False

    def __gt__(self, other: Any) -> bool:
        return not isinstance(other, _Greatest)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<pad>"


_PAD = _Greatest()


def _compare_split(mine: list[Any], theirs: list[Any], keep_low: bool) -> list[Any]:
    """Merge two sorted blocks; keep the low or high half of my size."""
    merged = sorted(mine + theirs)  # both tiny and already sorted; fine
    if keep_low:
        return merged[: len(mine)]
    return merged[len(merged) - len(mine) :]


def odd_even_sort(
    data: Sequence[Any],
    *,
    num_ranks: int = 4,
    runtime: MpRuntime | None = None,
) -> tuple[list[Any], float]:
    """Sort ``data`` across ``num_ranks`` blocks; returns ``(sorted, span)``.

    Handles uneven block sizes via scatterv; requires at least one item
    per rank.
    """
    runtime = runtime or MpRuntime(mode="thread")
    items = list(data)
    n = len(items)
    if num_ranks < 1:
        raise MpError("need at least one rank")
    if n < num_ranks:
        raise MpError(f"{num_ranks} ranks need at least {num_ranks} items")
    # Equal blocks are required for the p-phase guarantee; pad and strip.
    items += [_PAD] * ((-n) % num_ranks)
    counts = [len(items) // num_ranks] * num_ranks

    def rank_main(comm):
        mine = sorted(comm.scatterv(items if comm.rank == 0 else None, counts))
        # Local sort costs m·lg m; each later compare-split is linear.
        m = max(2, len(mine))
        comm.work(float(m * math.log2(m)))
        me = comm.rank
        for phase in range(comm.size):
            if phase % 2 == 0:  # even phase: pairs (0,1), (2,3), ...
                partner = me + 1 if me % 2 == 0 else me - 1
            else:  # odd phase: pairs (1,2), (3,4), ...
                partner = me + 1 if me % 2 == 1 else me - 1
            if 0 <= partner < comm.size:
                theirs = comm.sendrecv(
                    mine, dest=partner, sendtag=phase, recvtag=phase,
                    source=partner,
                )
                mine = _compare_split(mine, theirs, keep_low=me < partner)
                comm.work(float(len(mine) + len(theirs)))
        everything = comm.gatherv(mine)
        if everything is None:  # non-root ranks
            return None
        return [x for x in everything if not isinstance(x, _Greatest)]

    result = runtime.run(num_ranks, rank_main)
    return result.results[0], result.span
