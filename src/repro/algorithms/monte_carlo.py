"""Monte Carlo estimation of pi: SPMD + Reduction.

Each task throws darts at the unit square with its own seeded generator
and counts hits inside the quarter circle; one reduction combines the
counts.  A high-level pattern (Monte Carlo Simulation) expressed entirely
with patternlet-level building blocks.
"""

from __future__ import annotations

import random

from repro.mp.runtime import MpRuntime
from repro.smp.runtime import SmpRuntime

__all__ = ["estimate_pi_smp", "estimate_pi_mp"]


def _hits(samples: int, seed: int) -> int:
    rng = random.Random(seed)
    hits = 0
    for _ in range(samples):
        x, y = rng.random(), rng.random()
        if x * x + y * y <= 1.0:
            hits += 1
    return hits


def estimate_pi_smp(
    samples: int,
    *,
    num_threads: int = 4,
    seed: int = 0,
    rt: SmpRuntime | None = None,
) -> tuple[float, float]:
    """Shared-memory estimate: returns (pi_estimate, span)."""
    rt = rt or SmpRuntime(num_threads=num_threads, mode="thread")
    per_task = samples // num_threads

    def region(ctx):
        local = _hits(per_task, seed * 1000 + ctx.thread_num)
        ctx.work(float(per_task))
        return ctx.reduce(local, "+")

    team = rt.parallel(region, num_threads=num_threads)
    total = team.results[0]
    return 4.0 * total / (per_task * num_threads), team.span


def estimate_pi_mp(
    samples: int,
    *,
    num_ranks: int = 4,
    seed: int = 0,
    runtime: MpRuntime | None = None,
) -> tuple[float, float]:
    """Message-passing estimate: returns (pi_estimate, span)."""
    runtime = runtime or MpRuntime(mode="thread")
    per_task = samples // num_ranks

    def rank_main(comm):
        local = _hits(per_task, seed * 1000 + comm.rank)
        comm.work(float(per_task))
        total = comm.allreduce(local, op="SUM")
        return 4.0 * total / (per_task * comm.size)

    result = runtime.run(num_ranks, rank_main)
    return result.results[0], result.span
