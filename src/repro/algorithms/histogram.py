"""Histogram strategies: every mutual-exclusion trade-off on one problem.

Binning a data set with multiple threads forces a choice the patternlets
only show in isolation:

- ``"racy"``      — unsynchronised bin increments (wrong, fast, and a
  reproducible demonstration of why the others exist);
- ``"atomic"``    — one atomic update per increment;
- ``"critical"``  — one critical section per increment (correct, slower);
- ``"private"``   — per-thread private histograms merged by a reduction
  (correct and usually fastest: the patternlet-recommended design).

Returns the bins plus which strategy was used, so tests and the ablation
bench can compare correctness and cost across strategies.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ReductionError
from repro.ops import Op
from repro.smp.race import SharedCell
from repro.smp.runtime import SmpRuntime

__all__ = ["histogram", "STRATEGIES"]

STRATEGIES = ("racy", "atomic", "critical", "private")

_MERGE_BINS = Op.create(
    lambda a, b: [x + y for x, y in zip(a, b)], name="MERGE_BINS"
)


def histogram(
    data: Sequence[float],
    *,
    bins: int = 10,
    lo: float = 0.0,
    hi: float = 1.0,
    strategy: str = "private",
    num_threads: int = 4,
    rt: SmpRuntime | None = None,
) -> tuple[list[int], float]:
    """Bin ``data`` into ``bins`` equal-width bins over [lo, hi).

    Returns ``(bins, span)``.  Out-of-range values clamp into the end
    bins, so every strategy sees identical bin targets.
    """
    if strategy not in STRATEGIES:
        raise ReductionError(f"unknown strategy {strategy!r} (use {STRATEGIES})")
    if bins <= 0 or hi <= lo:
        raise ValueError("need bins > 0 and hi > lo")
    rt = rt or SmpRuntime(num_threads=num_threads, mode="thread")
    width = (hi - lo) / bins
    data = list(data)

    def bin_of(x: float) -> int:
        k = int((x - lo) / width)
        return min(max(k, 0), bins - 1)

    if strategy == "private":

        def region(ctx):
            local = [0] * bins
            for i in ctx.for_range(len(data), "static"):
                local[bin_of(data[i])] += 1
                ctx.work(1.0)
            return ctx.reduce(local, _MERGE_BINS)

        team = rt.parallel(region, num_threads=num_threads)
        return list(team.results[0]), team.span

    cells = [SharedCell(0) for _ in range(bins)]

    def region(ctx):
        for i in ctx.for_range(len(data), "static"):
            cell = cells[bin_of(data[i])]
            if strategy == "racy":
                cell.unsafe_add(1, ctx)
            elif strategy == "atomic":
                cell.atomic_add(1, ctx)
            else:
                cell.critical_add(1, ctx, name="histogram")
            ctx.work(1.0)

    team = rt.parallel(region, num_threads=num_threads)
    return [c.value for c in cells], team.span
