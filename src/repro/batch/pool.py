"""The batch runner: a persistent worker pool with a serial twin.

Work arrives as picklable items plus a module-level function to apply
(:func:`map_calls`), or as :class:`~repro.batch.specs.RunSpec` grids
(:func:`run_specs`).  Execution strategy:

- ``max_workers=None`` picks ``min(cpu_count, items, 8)``; ``1`` (or a
  single item) runs **in-process** — no pool, no pickling, the baseline
  the batch layer must never be slower than on a cold cache.
- Otherwise items fan across one *persistent*
  ``concurrent.futures.ProcessPoolExecutor``: workers are created once
  (forked where the platform allows — they inherit a warm ``repro``
  import), re-initialised with a fresh ambient trace state
  (:func:`repro.trace.reset_ambient` — a worker must never emit into its
  parent's recorder), and reused across calls and batches.
- Pool creation or a mid-batch pool collapse degrades to the serial
  twin; results are identical either way (the equivalence tests pin
  this), so the fallback is silent.

Every worker call runs inside :class:`~repro.batch.cache.caching_runs`,
so deterministic runs are computed at most once across the whole fleet:
the on-disk store is the coordination point, and its atomic writes make
concurrent workers safe (worst case two workers race to compute the
same key once).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence

from repro.batch.cache import RunCache, cache_enabled, caching_runs
from repro.batch.results import BatchReport, RunOutcome
from repro.batch.specs import RunSpec, spec_key

__all__ = [
    "default_workers",
    "map_calls",
    "run_specs",
    "shutdown_pool",
    "submit_one",
]

_POOL: ProcessPoolExecutor | None = None
_POOL_WORKERS = 0


def default_workers(n_items: int) -> int:
    """The auto worker count: ``min(cpu_count, n_items, 8)``, at least 1.

    ``REPRO_JOBS=<n>`` overrides the CPU heuristic (still clamped to the
    item count — more workers than items is pure overhead), so CI and
    classroom environments can pin both the in-process pool and the
    sweep fleet to a deterministic size without threading CLI flags
    through every entry point.  Unparsable or non-positive values fall
    back to the heuristic.
    """
    raw = os.environ.get("REPRO_JOBS")
    if raw:
        try:
            forced = int(raw)
        except ValueError:
            forced = 0
        if forced >= 1:
            return max(1, min(forced, max(1, n_items)))
    return max(1, min(os.cpu_count() or 1, n_items, 8))


def _worker_init() -> None:
    # Fresh ambient trace state and a fresh rank-thread pool (forked
    # children also get both via their at-fork hooks, but spawn-based
    # platforms need them here: the parent's parked pool threads do not
    # exist in the child), then one warm registry import that every spec
    # on this worker reuses.
    from repro.sched.pool import reset_pool
    from repro.trace import reset_ambient

    reset_ambient()
    reset_pool()
    import repro.patternlets  # noqa: F401


def _get_pool(workers: int) -> ProcessPoolExecutor | None:
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS == workers:
        return _POOL
    shutdown_pool()
    import multiprocessing

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # platform without fork
        ctx = multiprocessing.get_context()
    try:
        _POOL = ProcessPoolExecutor(
            max_workers=workers, mp_context=ctx, initializer=_worker_init
        )
        _POOL_WORKERS = workers
    except (OSError, ValueError, NotImplementedError):
        _POOL = None
        _POOL_WORKERS = 0
    return _POOL


def shutdown_pool() -> None:
    """Tear down the persistent pool (tests; end-of-process hygiene)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = None
        _POOL_WORKERS = 0


_ZERO_STATS = {"hits": 0, "misses": 0, "stores": 0, "evictions": 0}


def _merge_stats(into: "dict[str, int] | None", stats: dict[str, int]) -> None:
    if into is None:
        return
    for key in _ZERO_STATS:
        into[key] = into.get(key, 0) + int(stats.get(key, 0))


def _entry(
    payload: tuple[Callable[[Any], Any], Any, str | None, bool]
) -> tuple[Any, dict[str, int]]:
    # Runs on a worker: apply fn to one item under the run cache.  The
    # cache's own hit/miss/store counters ride back with the result so
    # the parent can aggregate telemetry across the fleet.
    fn, item, cache_dir, use_cache = payload
    cache = RunCache(cache_dir) if (use_cache and cache_dir is not None) else None
    cm = caching_runs(cache, enabled=use_cache)
    with cm:
        result = fn(item)
    stats = cm.cache.stats() if cm.cache is not None else dict(_ZERO_STATS)
    return result, stats


def submit_one(
    fn: Callable[[Any], Any],
    item: Any,
    *,
    workers: int,
    use_cache: bool | None = None,
    cache_dir: str | None = None,
) -> "Any | None":
    """Submit one call to the persistent pool without blocking on it.

    The serve daemon's entry point: unlike :func:`map_calls` (one
    blocking barrier per batch) this hands back the
    ``concurrent.futures.Future`` for a single item — resolving to the
    same ``(result, cache_stats)`` pair :func:`_entry` returns — so an
    event loop can await many independent submissions concurrently.
    Returns ``None`` when pooling is unavailable (``workers <= 1`` or
    the pool cannot be built/has collapsed); the caller then runs the
    item on its own serial path, mirroring :func:`map_calls`' silent
    degradation.
    """
    if workers <= 1:
        return None
    use = cache_enabled() if use_cache is None else use_cache
    pool = _get_pool(workers)
    if pool is None:
        return None
    try:
        return pool.submit(_entry, (fn, item, cache_dir, use))
    except Exception:  # noqa: BLE001 - a broken pool degrades, never fails
        shutdown_pool()
        return None


def _run_serial(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    cache_dir: str | None,
    use_cache: bool,
    stats_out: "dict[str, int] | None" = None,
) -> list[Any]:
    cache = RunCache(cache_dir) if (use_cache and cache_dir is not None) else None
    cm = caching_runs(cache, enabled=use_cache)
    with cm:
        results = [fn(item) for item in items]
    if cm.cache is not None:
        _merge_stats(stats_out, cm.cache.stats())
    return results


def map_calls(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    *,
    max_workers: int | None = None,
    use_cache: bool | None = None,
    cache_dir: str | None = None,
    stats_out: "dict[str, int] | None" = None,
) -> tuple[list[Any], int, bool]:
    """Apply ``fn`` to every item through the batch layer, order preserved.

    ``fn`` must be a module-level callable (pickled by reference) that
    catches its own per-item failures — the pool treats an escaped
    exception as infrastructure failure and re-runs the batch serially.
    Returns ``(results, workers, pooled)``.  When ``stats_out`` is given,
    run-cache hit/miss/store counts (summed across every process that
    served the batch) are merged into it.
    """
    items = list(items)
    use = cache_enabled() if use_cache is None else use_cache
    workers = default_workers(len(items)) if max_workers is None else max(1, max_workers)
    if workers <= 1 or len(items) <= 1:
        return _run_serial(fn, items, cache_dir, use, stats_out), 1, False
    pool = _get_pool(workers)
    if pool is None:
        return _run_serial(fn, items, cache_dir, use, stats_out), 1, False
    payloads = [(fn, item, cache_dir, use) for item in items]
    try:
        pairs = list(pool.map(_entry, payloads))
    except Exception:  # noqa: BLE001 - a broken pool degrades, never fails
        shutdown_pool()
        return _run_serial(fn, items, cache_dir, use, stats_out), 1, False
    for _, stats in pairs:
        _merge_stats(stats_out, stats)
    return [result for result, _ in pairs], workers, True


def _exec_spec(spec: RunSpec) -> RunOutcome:
    """Run one spec (on whichever process) and summarise it."""
    from repro.core.registry import run_patternlet
    from repro.obs.derive import run_summary
    from repro.trace import detect_races

    try:
        key = spec_key(spec)
    except Exception:  # noqa: BLE001 - an unkeyable spec may still run (or fail)
        key = None
    try:
        run = run_patternlet(
            spec.patternlet,
            tasks=spec.tasks,
            toggles=spec.toggle_dict or None,
            mode=spec.mode,
            seed=spec.seed,
            policy=spec.policy,
            topology=spec.topology,
            **spec.extra_dict,
        )
    except Exception as exc:  # noqa: BLE001 - reported per-outcome
        return RunOutcome(
            spec=spec,
            key=key,
            cached=False,
            text="",
            span=None,
            wall=0.0,
            races=0,
            error=f"{type(exc).__name__}: {exc}",
        )
    from repro.obs.telemetry import current_context

    ctx = current_context()
    if ctx is not None:
        # Stamp lineage *after* the run (the cache record is already
        # stored, so the span never leaks into cached bytes or keys).
        labels = ctx.to_meta()
        run.meta["telemetry"] = labels
        try:
            run.trace.context = dict(labels)
        except AttributeError:
            pass  # a bare event list has nowhere to carry it
    return RunOutcome(
        spec=spec,
        key=key,
        cached=bool(run.meta.get("cached")),
        text=run.text,
        span=run.span,
        wall=run.wall,
        races=len(detect_races(run.trace)),
        metrics=run_summary(run.trace, tasks_hint=run.meta.get("tasks")),
    )


def run_specs(
    specs: Iterable[RunSpec],
    *,
    max_workers: int | None = None,
    use_cache: bool | None = None,
    cache_dir: str | None = None,
) -> BatchReport:
    """Execute a spec grid through the pool + cache; the tentpole entry point.

    Order of ``outcomes`` matches the order of ``specs``.  Each outcome
    carries the run's full printed text, span, happens-before race
    count, and whether it was served from the cache.
    """
    specs = list(specs)
    t0 = time.perf_counter()
    cache_stats: dict[str, int] = {}
    outcomes, workers, pooled = map_calls(
        _exec_spec,
        specs,
        max_workers=max_workers,
        use_cache=use_cache,
        cache_dir=cache_dir,
        stats_out=cache_stats,
    )
    return BatchReport(
        outcomes=outcomes,
        wall_s=time.perf_counter() - t0,
        workers=workers,
        pooled=pooled,
        cache_stats=cache_stats,
    )
