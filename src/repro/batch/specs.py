"""Run specifications and content-addressed cache keys.

A :class:`RunSpec` names one patternlet execution — ``(patternlet,
tasks, toggles, mode, seed, policy, extra, topology)`` — in a hashable,
picklable form, so grids of runs can be built, deduplicated, and shipped
to worker processes.

:func:`spec_key` derives the spec's *content address*: a SHA-256 over
everything that determines a deterministic run's output —

- the patternlet's **source text** (edit the patternlet, invalidate its
  cached runs);
- the **engine fingerprint**: the package version plus a hash of every
  non-patternlet ``repro`` source file (edit the scheduler or a runtime,
  invalidate everything);
- the **resolved toggle state** (defaults merged with overrides, sorted,
  so ``{"b": 1, "a": 0}`` and ``{"a": 0, "b": 1}`` — and an override
  that merely restates a default — all address the same record);
- the resolved **task count**, **scheduler identity** (mode + policy),
  **seed**, the **communicator topology** (resolved to its concrete name,
  so a spec that spells out the default and one that omits it address the
  same record — and two topologies can never collide), and any **extra**
  knobs (including a ``network`` profile).

Only lockstep-mode runs are keyable: a ``mode="thread"`` run is genuine
OS nondeterminism and must never be served from a cache.
"""

from __future__ import annotations

import hashlib
import importlib
import inspect
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro._version import __version__
from repro.core.registry import Patternlet, RunConfig, get_patternlet

__all__ = [
    "RunSpec",
    "engine_fingerprint",
    "figure_suite_specs",
    "key_for_config",
    "patternlet_source",
    "plan_shards",
    "spec_key",
    "sweep_fingerprint",
]


@dataclass(frozen=True)
class RunSpec:
    """One patternlet execution, as pure data.

    ``toggles`` and ``extra`` are stored as sorted item tuples so specs
    are hashable (usable as dict keys / in sets) and pickle cheaply;
    build instances through :meth:`make` to pass plain mappings.
    """

    patternlet: str
    tasks: int | None = None
    toggles: tuple[tuple[str, bool], ...] = ()
    mode: str = "lockstep"
    seed: int = 0
    policy: str = "random"
    extra: tuple[tuple[str, Any], ...] = ()
    topology: str | None = None

    @classmethod
    def make(
        cls,
        patternlet: str,
        *,
        tasks: int | None = None,
        toggles: Mapping[str, bool] | None = None,
        mode: str = "lockstep",
        seed: int = 0,
        policy: str = "random",
        topology: str | None = None,
        **extra: Any,
    ) -> "RunSpec":
        """Build a spec from the same keyword shape as ``run_patternlet``."""
        return cls(
            patternlet=patternlet,
            tasks=tasks,
            toggles=tuple(sorted((toggles or {}).items())),
            mode=mode,
            seed=seed,
            policy=policy,
            extra=tuple(sorted(extra.items())),
            topology=topology,
        )

    @property
    def toggle_dict(self) -> dict[str, bool]:
        """The toggle overrides as a plain mapping."""
        return dict(self.toggles)

    @property
    def extra_dict(self) -> dict[str, Any]:
        """The extra knobs as a plain mapping."""
        return dict(self.extra)

    @property
    def deterministic(self) -> bool:
        """True when this run replays exactly (and so may be cached)."""
        return self.mode == "lockstep"

    def label(self) -> str:
        """Compact human-readable identity for tables and progress lines."""
        bits = [self.patternlet]
        if self.tasks is not None:
            bits.append(f"np={self.tasks}")
        for name, on in self.toggles:
            bits.append(f"{name}={'on' if on else 'off'}")
        if self.topology is not None:
            bits.append(f"topo={self.topology}")
        bits.append(f"seed={self.seed}")
        if self.policy != "random":
            bits.append(self.policy)
        return " ".join(bits)


# -- source and engine identity ----------------------------------------------

_SOURCE_MEMO: dict[str, str] = {}


def patternlet_source(name: str) -> str:
    """The patternlet module's source text (memoised per process)."""
    text = _SOURCE_MEMO.get(name)
    if text is None:
        p = get_patternlet(name)
        module = importlib.import_module(p.source)
        text = _SOURCE_MEMO[name] = inspect.getsource(module)
    return text


_ENGINE_FP: str | None = None


def engine_fingerprint() -> str:
    """Version + hash of every non-patternlet ``repro`` source file.

    Part of every cache key: the engine's semantics (scheduler order,
    transport, trace vocabulary) determine run output just as much as the
    patternlet's own source, and the package version alone does not move
    on every engine edit.  Computed once per process (~a millisecond).
    """
    global _ENGINE_FP
    if _ENGINE_FP is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        h.update(__version__.encode())
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            if rel.startswith("patternlets/"):
                continue  # hashed per-spec via patternlet_source()
            h.update(rel.encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _ENGINE_FP = h.hexdigest()[:16]
    return _ENGINE_FP


# -- key derivation -----------------------------------------------------------


def _key_digest(
    *,
    patternlet: str,
    source: str,
    engine: str,
    tasks: int,
    toggles: Mapping[str, bool],
    mode: str,
    seed: int,
    policy: str,
    extra: Mapping[str, Any],
    topology: str,
) -> str:
    payload = {
        "engine": engine,
        "patternlet": patternlet,
        "source": source,
        "tasks": int(tasks),
        "toggles": {str(k): bool(v) for k, v in sorted(toggles.items())},
        "mode": mode,
        "seed": int(seed),
        "policy": policy,
        "extra": {str(k): extra[k] for k in sorted(extra)},
        "topology": str(topology),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def key_for_config(p: Patternlet, cfg: RunConfig) -> str | None:
    """Cache key for a resolved run, or ``None`` when it is not cacheable.

    Not cacheable: non-lockstep modes (real-thread nondeterminism) and
    extras that do not serialise to canonical JSON.
    """
    if cfg.mode != "lockstep":
        return None
    from repro.mp.communicators import default_topology

    try:
        return _key_digest(
            patternlet=p.name,
            source=patternlet_source(p.name),
            engine=engine_fingerprint(),
            tasks=cfg.tasks,
            toggles=cfg.toggles.as_dict(),
            mode=cfg.mode,
            seed=cfg.seed,
            policy=cfg.policy,
            extra=cfg.extra,
            topology=cfg.topology or default_topology(),
        )
    except (TypeError, ValueError):
        return None


def spec_key(spec: RunSpec) -> str | None:
    """Content address of a :class:`RunSpec` (``None`` when uncacheable).

    Toggles and tasks are *resolved* against the patternlet's registry
    entry first, so a spec that spells out a default and one that omits
    it address the same record.
    """
    if not spec.deterministic:
        return None
    p = get_patternlet(spec.patternlet)
    from repro.mp.communicators import default_topology

    try:
        return _key_digest(
            patternlet=p.name,
            source=patternlet_source(p.name),
            engine=engine_fingerprint(),
            tasks=spec.tasks if spec.tasks is not None else p.default_tasks,
            toggles=p.toggle_set(spec.toggle_dict).as_dict(),
            mode=spec.mode,
            seed=spec.seed,
            policy=spec.policy,
            extra=spec.extra_dict,
            topology=spec.topology or default_topology(),
        )
    except (TypeError, ValueError):
        return None


def sweep_fingerprint(specs: Iterable[RunSpec]) -> str:
    """Short stable digest of a grid's identity (its labels, in order).

    The telemetry plane builds ``sweep_id`` from this: two submissions of
    the same grid share the fingerprint, and the coordinator adds a pid +
    sequence suffix to keep concurrent sweeps distinguishable.
    """
    h = hashlib.sha256()
    for spec in specs:
        h.update(spec.label().encode())
        h.update(b"\0")
    return h.hexdigest()[:12]


# -- shard planning (the fleet's unit of work) --------------------------------


def plan_shards(
    n_items: int, workers: int, *, overshard: int = 2
) -> list[list[int]]:
    """Split ``range(n_items)`` into balanced contiguous index shards.

    The sweep fleet hands whole shards to worker processes, so the shard
    count trades messaging overhead against load balance: one shard per
    worker minimises file traffic but lets a single slow cell strand a
    worker's whole allotment, while per-cell jobs drown the messenger in
    tiny files.  ``workers * overshard`` shards (capped at one cell per
    shard) is the classic middle ground — pull-based claiming soaks up
    most imbalance, and the coordinator's work-stealing pass handles the
    residue inside a straggling shard.

    Every index appears in exactly one shard, shards are contiguous (so a
    shard's cells share warm patternlet sources), and sizes differ by at
    most one.
    """
    if n_items <= 0:
        return []
    shard_count = max(1, min(n_items, max(1, workers) * max(1, overshard)))
    base, rem = divmod(n_items, shard_count)
    out: list[list[int]] = []
    start = 0
    for i in range(shard_count):
        size = base + (1 if i < rem else 0)
        out.append(list(range(start, start + size)))
        start += size
    return out


# -- the deterministic figure-suite grid --------------------------------------

#: The deterministic (lockstep) runs behind the paper-figure self-checks:
#: ``(patternlet, tasks, toggle overrides)``.  Fig. 30's atomic-vs-critical
#: timing runs real threads and is deliberately absent — it can never be
#: served from a cache.
FIGURE_RUNS: tuple[tuple[str, int | None, dict[str, bool] | None], ...] = (
    ("openmp.spmd", None, {"parallel": False}),
    ("openmp.spmd", 4, None),
    ("mpi.spmd", 1, None),
    ("mpi.spmd", 4, None),
    ("openmp.barrier", None, {"barrier": False}),
    ("openmp.barrier", None, {"barrier": True}),
    ("mpi.barrier", 4, {"barrier": False}),
    ("mpi.barrier", 4, {"barrier": True}),
    ("openmp.parallelLoopEqualChunks", 2, None),
    ("mpi.parallelLoopEqualChunks", 4, None),
    ("openmp.reduction", None, {"parallel_for": True}),
    ("openmp.reduction", None, {"parallel_for": True, "reduction": True}),
    ("mpi.reduction", 10, None),
    ("mpi.gather", 6, None),
)


def figure_suite_specs(seeds: Iterable[int] = range(8)) -> list[RunSpec]:
    """Every deterministic figure run crossed with ``seeds``.

    The workload behind the batch equivalence guarantee (serial, pooled,
    and cache-served execution must agree byte-for-byte) and the batch
    throughput benchmarks.
    """
    return [
        RunSpec.make(name, tasks=tasks, toggles=toggles, seed=seed)
        for seed in seeds
        for name, tasks, toggles in FIGURE_RUNS
    ]
