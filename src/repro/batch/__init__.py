"""``repro.batch`` — parallel batch execution with a content-addressed run cache.

The paper's workflows are batch-shaped: an instructor (or the selfcheck
suite, or a grader) runs every patternlet across task counts, toggle
states, and seeds.  This package executes such fleets through a
persistent worker pool and never recomputes a deterministic run it has
already seen:

- :mod:`repro.batch.specs` — :class:`RunSpec` grids and SHA-256 content
  addresses over (patternlet source, engine fingerprint, toggles, np,
  scheduler identity, seed);
- :mod:`repro.batch.cache` — the on-disk LRU record store
  (``~/.cache/repro-runs``) and the ``run_patternlet`` interceptor that
  serves it;
- :mod:`repro.batch.results` — byte-faithful run records (full event
  trace, span, race verdict) and batch summaries;
- :mod:`repro.batch.pool` — the warm ``ProcessPoolExecutor`` fan-out
  with an in-process serial twin.

Consumers: ``patternlet selfcheck`` (figure checks as one batch),
``patternlet sweep`` (seed × np grids), and ``repro.perf.bench`` (the
``batch_throughput_runs_s`` / ``cache_hit_rate`` metrics).
"""

from repro.batch.cache import RunCache, cache_enabled, caching_runs, default_cache_dir
from repro.batch.pool import default_workers, map_calls, run_specs, shutdown_pool
from repro.batch.results import (
    BatchReport,
    RunOutcome,
    decode_value,
    encode_value,
    run_from_record,
    run_to_record,
)
from repro.batch.specs import (
    FIGURE_RUNS,
    RunSpec,
    engine_fingerprint,
    figure_suite_specs,
    key_for_config,
    spec_key,
)

__all__ = [
    "BatchReport",
    "FIGURE_RUNS",
    "RunCache",
    "RunOutcome",
    "RunSpec",
    "cache_enabled",
    "caching_runs",
    "decode_value",
    "default_cache_dir",
    "default_workers",
    "encode_value",
    "engine_fingerprint",
    "figure_suite_specs",
    "key_for_config",
    "map_calls",
    "run_from_record",
    "run_specs",
    "run_to_record",
    "shutdown_pool",
    "spec_key",
]
