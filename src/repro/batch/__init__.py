"""``repro.batch`` — parallel batch execution with a content-addressed run cache.

The paper's workflows are batch-shaped: an instructor (or the selfcheck
suite, or a grader) runs every patternlet across task counts, toggle
states, and seeds.  This package executes such fleets through a
persistent worker pool and never recomputes a deterministic run it has
already seen:

- :mod:`repro.batch.specs` — :class:`RunSpec` grids, SHA-256 content
  addresses over (patternlet source, engine fingerprint, toggles, np,
  scheduler identity, seed), and the fleet's shard planner;
- :mod:`repro.batch.cache` — the on-disk LRU record store
  (``~/.cache/repro-runs``) and the ``run_patternlet`` interceptor that
  serves it; multi-writer safe, so many processes share one root;
- :mod:`repro.batch.results` — byte-faithful run records (full event
  trace, span, race verdict), the fleet's spec/outcome wire codecs, and
  batch summaries;
- :mod:`repro.batch.pool` — the warm ``ProcessPoolExecutor`` fan-out
  with an in-process serial twin;
- :mod:`repro.batch.fleet` — persistent worker *processes* coordinated
  through a file-based job messenger (typed ``READY_FOR_JOB`` /
  ``NEW_JOB`` / ``JOB_DONE`` / ``NO_WORK_LEFT`` documents) with
  coordinator-side work stealing over straggling shards.

Consumers: ``patternlet selfcheck`` (figure checks as one batch),
``patternlet sweep`` (seed × np grids, ``--fleet`` for the sharded
path), and ``repro.perf.bench`` (the ``batch_throughput_runs_s`` /
``cache_hit_rate`` / ``fleet_sweep_runs_s`` metrics).
"""

from repro.batch.cache import RunCache, cache_enabled, caching_runs, default_cache_dir
from repro.batch.fleet import (
    Fleet,
    FleetError,
    fleet_advisory,
    fleet_size,
    run_specs_fleet,
    shutdown_fleet,
)
from repro.batch.pool import default_workers, map_calls, run_specs, shutdown_pool
from repro.batch.results import (
    BatchReport,
    RunOutcome,
    decode_value,
    encode_value,
    outcome_from_wire,
    outcome_to_wire,
    run_from_record,
    run_to_record,
    spec_from_wire,
    spec_to_wire,
)
from repro.batch.specs import (
    FIGURE_RUNS,
    RunSpec,
    engine_fingerprint,
    figure_suite_specs,
    key_for_config,
    plan_shards,
    spec_key,
    sweep_fingerprint,
)

__all__ = [
    "BatchReport",
    "FIGURE_RUNS",
    "Fleet",
    "FleetError",
    "RunCache",
    "RunOutcome",
    "RunSpec",
    "cache_enabled",
    "caching_runs",
    "decode_value",
    "default_cache_dir",
    "default_workers",
    "encode_value",
    "engine_fingerprint",
    "figure_suite_specs",
    "fleet_advisory",
    "fleet_size",
    "key_for_config",
    "map_calls",
    "outcome_from_wire",
    "outcome_to_wire",
    "plan_shards",
    "run_from_record",
    "run_specs",
    "run_specs_fleet",
    "run_to_record",
    "shutdown_fleet",
    "shutdown_pool",
    "spec_from_wire",
    "spec_key",
    "spec_to_wire",
    "sweep_fingerprint",
]
