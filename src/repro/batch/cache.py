"""The content-addressed run cache and its ``run_patternlet`` hook.

Records live under one root (default ``~/.cache/repro-runs/``) as
``<key[:2]>/<key>.json`` — the key is the SHA-256 from
:func:`repro.batch.specs.spec_key`, so a record is valid for exactly as
long as the patternlet source, engine, and run parameters it was derived
from; there is no TTL and no explicit invalidation, only keys that stop
being asked for.  A size cap (default 256 MiB) is enforced LRU-style:
reads touch the record's mtime, and pruning drops the stalest records
first.

Environment knobs (the escape hatches):

``REPRO_CACHE=0``
    Disable the cache entirely (every run executes live).
``REPRO_CACHE_DIR=<path>``
    Relocate the store (CI keeps it inside the workspace).
``REPRO_CACHE_MAX_MB=<n>``
    Resize the LRU cap.

Every filesystem touch is wrapped: a read-only HOME, a corrupt record,
or a concurrent writer degrade to cache misses, never to run failures.

The store is explicitly **multi-writer safe**: the sweep fleet points
many worker processes at one root.  Writes go through a temp file plus
atomic ``os.replace`` (a reader sees the old record or the new one,
never a torn one), the pruning walk tolerates records and whole fan-out
directories deleted mid-scan by a concurrent pruner, and an eviction is
only counted by the process whose ``unlink`` actually removed the file —
two caches pruning the same root cannot double-count one eviction
between them.

The disk store is the second of two tiers: content addresses make
records immutable-by-key, so each process also keeps a small decoded
memo (:mod:`repro.batch.results`) and repeat hits skip the JSON parse
and event rebuild entirely.  The memo is valid even where the disk is
not writable — it is filled on the store path regardless of ``put``'s
outcome.

:class:`caching_runs` is the consumer-facing hook: a context manager
that installs a :func:`~repro.core.registry.set_run_interceptor` serving
deterministic ``run_patternlet`` calls from the store and persisting the
misses.  The batch pool enters it around worker calls; ``patternlet
selfcheck`` and ``patternlet sweep`` enter it around whole passes.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.batch.results import (
    RECORD_SCHEMA,
    _memo_serve,
    memo_run,
    run_from_record,
    run_to_record,
)
from repro.batch.specs import key_for_config
from repro.core.capture import CapturedRun
from repro.core.registry import Patternlet, RunConfig, set_run_interceptor
from repro.errors import CacheUnserializable

__all__ = [
    "DEFAULT_MAX_BYTES",
    "RunCache",
    "cache_enabled",
    "caching_runs",
    "default_cache_dir",
]

DEFAULT_MAX_BYTES = 256 * 1024 * 1024


def cache_enabled() -> bool:
    """False when ``REPRO_CACHE=0`` (the environment escape hatch)."""
    return os.environ.get("REPRO_CACHE", "1") != "0"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro-runs``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-runs"


def _max_bytes_from_env() -> int:
    try:
        return int(os.environ["REPRO_CACHE_MAX_MB"]) * 1024 * 1024
    except (KeyError, ValueError):
        return DEFAULT_MAX_BYTES


class RunCache:
    """One on-disk record store (see module docstring for layout/policy)."""

    #: Prune every N stores, amortising the directory walk.
    PRUNE_EVERY = 32

    def __init__(self, root: str | Path | None = None, *, max_bytes: int | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.max_bytes = max_bytes if max_bytes is not None else _max_bytes_from_env()
        #: Served / missed / stored / pruned record counts for this instance.
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self._puts_since_prune = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """The record stored under ``key``, or ``None`` (miss).

        A hit touches the file's mtime (the LRU clock).  Unreadable,
        corrupt, or schema-mismatched records are misses (and corrupt
        files are removed so they cannot keep costing a parse attempt).
        """
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            if path.exists():
                _quiet_unlink(path)
            return None
        if not isinstance(record, dict) or record.get("schema") != RECORD_SCHEMA:
            self.misses += 1
            _quiet_unlink(path)
            return None
        self.hits += 1
        try:
            os.utime(path)
        except OSError:
            pass
        return record

    def put(self, key: str, record: Mapping[str, Any]) -> bool:
        """Persist ``record`` under ``key`` (atomic write; False on failure)."""
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(record, fh, separators=(",", ":"))
                os.replace(tmp, path)
            except BaseException:
                _quiet_unlink(Path(tmp))
                raise
        except (OSError, TypeError, ValueError):
            return False
        self.stores += 1
        self._puts_since_prune += 1
        if self._puts_since_prune >= self.PRUNE_EVERY:
            self.prune()
        return True

    def _records(self) -> list[tuple[float, int, Path]]:
        # Hand-rolled two-level walk instead of ``glob("*/*.json")``: a
        # concurrent pruner can delete a whole fan-out directory between
        # listing it and descending into it, and the glob iterator would
        # surface that as an exception mid-stream.  Here a vanished
        # directory or record is simply not a record any more.
        out: list[tuple[float, int, Path]] = []
        try:
            subdirs = list(self.root.iterdir())
        except OSError:
            return out
        for sub in subdirs:
            try:
                entries = list(sub.iterdir())
            except OSError:
                continue  # deleted (or unreadable) mid-scan
            for path in entries:
                if path.suffix != ".json":
                    continue
                try:
                    st = path.stat()
                except OSError:
                    continue  # deleted mid-scan
                out.append((st.st_mtime, st.st_size, path))
        return out

    def size_bytes(self) -> int:
        """Total bytes currently stored."""
        return sum(size for _, size, _ in self._records())

    def __len__(self) -> int:
        return len(self._records())

    def prune(self) -> int:
        """Drop least-recently-used records until under the size cap.

        Safe under concurrent pruners: a record that disappears between
        the scan and our ``unlink`` still shrinks the live total (its
        bytes are gone either way) but is *not* counted as our eviction —
        whoever actually removed it counts it, so ``stats()`` across all
        writers sums to the true eviction count.
        """
        self._puts_since_prune = 0
        records = sorted(self._records())  # oldest mtime first
        total = sum(size for _, size, _ in records)
        removed = 0
        for _, size, path in records:
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except FileNotFoundError:
                total -= size  # a concurrent pruner's eviction, not ours
                continue
            except OSError:
                continue  # undeletable: keep it in the total
            total -= size
            removed += 1
        self.evictions += removed
        return removed

    def clear(self) -> int:
        """Remove every record (returns the count removed)."""
        removed = 0
        for _, _, path in self._records():
            if _quiet_unlink(path):
                removed += 1
        return removed

    def stats(self) -> dict[str, int]:
        """This instance's hit/miss/store/eviction counters."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
        }


def _quiet_unlink(path: Path) -> bool:
    try:
        path.unlink()
        return True
    except OSError:
        return False


# -- in-process single flight -------------------------------------------------
#
# The disk store already makes concurrent *processes* safe (worst case
# two workers race to compute one key once); this closes the same gap
# for concurrent *threads* in one process: the first thread to miss a
# key becomes its flight leader and computes it, any other thread
# missing the same key waits for the leader and then re-reads the memo/
# store instead of computing a duplicate.  The serve daemon leans on
# this around its cache get/put path, and any embedding application
# whose threads share one installed ``caching_runs`` context gets it
# for free.  (Enter the context once — the interceptor slot is
# process-global, so concurrent per-thread enter/exit would race its
# save/restore.)

#: Longest a follower waits on a flight leader before running live — a
#: liveness backstop, not a correctness bound (duplicated computation of
#: a deterministic key is merely wasted work).
FLIGHT_WAIT_S = 60.0

_FLIGHT_LOCK = threading.Lock()
_FLIGHTS: dict[tuple[str, str], threading.Event] = {}


def _begin_flight(scope: str, key: str) -> "threading.Event | None":
    """Open (or join) the flight for ``key``: ``None`` means *you lead*."""
    with _FLIGHT_LOCK:
        ev = _FLIGHTS.get((scope, key))
        if ev is None:
            _FLIGHTS[(scope, key)] = threading.Event()
            return None
        return ev


def _end_flight(scope: str, key: str) -> None:
    """Close the flight for ``key`` and release every waiting follower."""
    with _FLIGHT_LOCK:
        ev = _FLIGHTS.pop((scope, key), None)
    if ev is not None:
        ev.set()


class caching_runs:
    """Serve deterministic ``run_patternlet`` calls from a :class:`RunCache`.

    ::

        with caching_runs(RunCache(tmpdir)):
            run_selfcheck()          # lockstep runs computed at most once

    ``enabled=None`` defers to :func:`cache_enabled` (the ``REPRO_CACHE``
    escape hatch); when disabled the context is a no-op.  Nesting is
    safe: the previous interceptor is saved and restored.
    """

    def __init__(self, cache: RunCache | None = None, *, enabled: bool | None = None):
        self.enabled = cache_enabled() if enabled is None else enabled
        self.cache = cache if cache is not None else (RunCache() if self.enabled else None)
        self._prev: Any = None
        self._installed = False

    def __enter__(self) -> "caching_runs":
        if self.enabled:
            self._prev = set_run_interceptor(self._intercept)
            self._installed = True
        return self

    def __exit__(self, *exc: object) -> None:
        if self._installed:
            set_run_interceptor(self._prev)
            self._installed = False

    def _intercept(
        self, p: Patternlet, cfg: RunConfig, execute: Callable[[], CapturedRun]
    ) -> CapturedRun:
        assert self.cache is not None
        key = key_for_config(p, cfg)
        if key is None:  # thread-mode or unkeyable extras: always live
            return execute()
        scope = str(self.cache.root)
        run = self._serve(scope, key)
        if run is not None:
            return run
        follow = _begin_flight(scope, key)
        if follow is not None:
            # Another thread is already computing this key: wait it out,
            # then re-read the tiers it filled.  A leader that failed (or
            # outran the backstop) leaves us computing live — duplicated
            # work on a deterministic key, never a wrong answer.
            follow.wait(FLIGHT_WAIT_S)
            run = self._serve(scope, key)
            if run is not None:
                return run
            return self._compute(scope, key, execute)
        try:
            return self._compute(scope, key, execute)
        finally:
            _end_flight(scope, key)

    def _serve(self, scope: str, key: str) -> CapturedRun | None:
        """Serve ``key`` from the memo or the disk store (``None`` = miss)."""
        assert self.cache is not None
        served = _memo_serve(scope, key)  # already decoded in this process
        if served is not None:
            self.cache.hits += 1
            return served
        record = self.cache.get(key)
        if record is not None:
            try:
                run = run_from_record(record)
            except (CacheUnserializable, KeyError, TypeError, ValueError):
                pass  # unreadable record: fall through to a live run
            else:
                memo_run(scope, key, run, record)
                return run
        return None

    def _compute(
        self, scope: str, key: str, execute: Callable[[], CapturedRun]
    ) -> CapturedRun:
        """Run live and persist the result under ``key`` (memo + disk)."""
        assert self.cache is not None
        run = execute()
        try:
            record = run_to_record(run, key=key)
        except CacheUnserializable:
            return run  # run not expressible as a record: stays uncached
        memo_run(scope, key, run, record)  # memo is valid even if disk isn't
        self.cache.put(key, record)
        return run
