"""Run records and batch results: how a captured run crosses a boundary.

A cached (or pooled) run must survive two hostile crossings — process →
process and process → disk → process — **byte-identically**: the figure
checks read not just the printed text but the full event trace (the
Fig. 22 check re-proves its race from the happens-before edges), so a
served run must rebuild the *entire* stream with perfect fidelity.

JSON alone cannot do that (it collapses tuples — happens-before keys
like ``("mutex", 3)`` — into lists, which are unhashable and would
silently break the race detector).  The codec here closes the gap with a
tagged canonical form:

========  =====================================
value     encoding
========  =====================================
scalar    itself (``None``/bool/int/float/str)
tuple     ``{"t": [...]}``
list      ``{"l": [...]}``
dict      ``{"d": [[key, value], ...]}``
========  =====================================

Every container is tagged, so the decode is unambiguous; anything
outside the vocabulary raises :class:`~repro.errors.CacheUnserializable`
and the run simply executes live instead of being cached.

:func:`run_to_record` / :func:`run_from_record` turn a
:class:`~repro.core.capture.CapturedRun` into one JSON document (events,
span, wall, metadata, result when expressible, and the happens-before
race verdict) and back.  :class:`RunOutcome` / :class:`BatchReport` are
the batch runner's per-run and per-batch summaries.

Above the disk store sits a small in-process memo: because keys are
content addresses (same key ⇒ same record, by construction), a record
decoded once per process never needs decoding again — repeat hits share
the same frozen :class:`~repro.trace.events.Event` objects and skip both
the JSON parse and the event rebuild.  Only the mutable per-run bits
(``meta``, ``result``) are re-decoded from their wire form on each
serve, so served runs never alias each other's mutable state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.capture import CapturedRun
from repro.errors import CacheUnserializable
from repro.trace import detect_races
from repro.trace.events import Event

__all__ = [
    "RECORD_SCHEMA",
    "BatchReport",
    "RunOutcome",
    "decode_value",
    "encode_value",
    "memo_run",
    "outcome_from_wire",
    "outcome_to_wire",
    "run_from_record",
    "run_to_record",
    "spec_from_wire",
    "spec_to_wire",
]

#: Bumped whenever the record layout changes; mismatched records are
#: treated as cache misses, never as errors.
RECORD_SCHEMA = 1


def _pct(values: list[float], q: float) -> float:
    """Nearest-rank percentile (deterministic; no interpolation)."""
    ordered = sorted(values)
    rank = max(1, -(-int(q * 100) * len(ordered) // 100))  # ceil(q*n)
    return ordered[min(rank, len(ordered)) - 1]

_TAGS = ("t", "l", "d")


def encode_value(value: Any) -> Any:
    """Canonical-JSON encoding of ``value`` (see module docstring).

    Raises :class:`~repro.errors.CacheUnserializable` for anything
    outside the vocabulary (arbitrary objects, sets, bytes, ...).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {"t": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return {"l": [encode_value(v) for v in value]}
    if isinstance(value, dict):
        return {"d": [[encode_value(k), encode_value(v)] for k, v in value.items()]}
    raise CacheUnserializable(
        f"value of type {type(value).__name__} is outside the record vocabulary"
    )


def decode_value(wire: Any) -> Any:
    """Inverse of :func:`encode_value`.

    Only containers are dict-tagged, so scalars pass straight through —
    the recursion (and its fast paths below) only ever descends into
    genuine containers, which keeps the cache-hit decode cheap.
    """
    if isinstance(wire, dict):
        if len(wire) != 1:
            raise CacheUnserializable(f"malformed container tag: {wire!r}")
        tag, body = next(iter(wire.items()))
        if tag == "t":
            return tuple(
                decode_value(v) if type(v) is dict else v for v in body
            )
        if tag == "l":
            return [decode_value(v) if type(v) is dict else v for v in body]
        if tag == "d":
            return {
                (decode_value(k) if type(k) is dict else k): (
                    decode_value(v) if type(v) is dict else v
                )
                for k, v in body
            }
        raise CacheUnserializable(f"unknown container tag {tag!r}")
    return wire


def _event_to_wire(ev: Event) -> list[Any]:
    # Variable-length row: [seq, task, kind, vtime?, hb_acq?, hb_rel?,
    # payload?] with trailing empties trimmed.  Most events are bare
    # [seq, task, kind] rows, which keeps records small and — more
    # importantly — keeps the hit-path decode allocation-light.
    payload = encode_value(ev.payload) if ev.payload else None
    wire = [
        ev.seq,
        ev.task,
        ev.kind,
        ev.vtime,
        encode_value(ev.hb_acq),
        encode_value(ev.hb_rel),
        payload,
    ]
    while len(wire) > 3 and wire[-1] is None:
        wire.pop()
    return wire


def _event_from_wire(wire: list[Any]) -> Event:
    n = len(wire)
    vtime = wire[3] if n > 3 else None
    hb_acq = wire[4] if n > 4 else None
    hb_rel = wire[5] if n > 5 else None
    payload = wire[6] if n > 6 else None
    # Containers are always dict-tagged on the wire, so a non-dict field
    # is already its decoded self — the overwhelmingly common case.
    if type(hb_acq) is dict:
        hb_acq = decode_value(hb_acq)
    if type(hb_rel) is dict:
        hb_rel = decode_value(hb_rel)
    return Event(
        wire[0],
        wire[1],
        wire[2],
        vtime,
        hb_acq,
        hb_rel,
        decode_value(payload) if payload is not None else {},
    )


def run_to_record(run: CapturedRun, *, key: str) -> dict[str, Any]:
    """Serialise a captured run as one content-addressed cache record.

    Raises :class:`~repro.errors.CacheUnserializable` when the trace is
    incomplete (events were dropped or evicted — a partial stream must
    not masquerade as the run) or carries out-of-vocabulary values.  The
    ``result`` field is best-effort: runtime handles (``WorldResult``,
    ``TeamResult``) do not serialise, and no deterministic figure check
    reads them, so an inexpressible result is recorded as absent rather
    than blocking the cache.
    """
    trace = run.trace
    if trace.dropped or trace.evicted:
        raise CacheUnserializable("trace is incomplete (dropped/evicted events)")
    events = [_event_to_wire(ev) for ev in trace.events()]
    try:
        result: dict[str, Any] | None = {"value": encode_value(run.result)}
    except CacheUnserializable:
        result = None
    return {
        "schema": RECORD_SCHEMA,
        "key": key,
        "events": events,
        "wall": run.wall,
        "span": run.span,
        "meta": encode_value(run.meta),
        "result": result,
        "races": len(detect_races(trace)),
    }


def run_from_record(record: Mapping[str, Any]) -> CapturedRun:
    """Rebuild a :class:`CapturedRun` from a cache record.

    The trace is preloaded verbatim, so every view — printed text,
    per-task records, span, the happens-before analyses — behaves
    exactly as it did on the original run.  ``meta["cached"]`` marks the
    run as served.
    """
    events = tuple(_event_from_wire(w) for w in record["events"])
    return _run_from_entry(
        (
            events,
            record["wall"],
            record["span"],
            record["meta"],
            record.get("result"),
        )
    )


# -- the in-process decoded-record memo ---------------------------------------

#: Entry cap; eviction is insertion-ordered (oldest first), which is fine
#: for a per-process working set this size.
_MEMO_CAP = 512

_memo: dict[tuple[str, str], tuple[Any, ...]] = {}


def _memo_put(scope: str, key: str, entry: tuple[Any, ...]) -> None:
    k = (scope, key)
    if len(_memo) >= _MEMO_CAP and k not in _memo:
        _memo.pop(next(iter(_memo)))
    _memo[k] = entry


def _memo_serve(scope: str, key: str) -> CapturedRun | None:
    entry = _memo.get((scope, key))
    return _run_from_entry(entry) if entry is not None else None


def _memo_clear() -> None:
    _memo.clear()


def memo_run(
    scope: str, key: str, run: CapturedRun, record: Mapping[str, Any]
) -> None:
    """Memoize a run under its content ``key``, scoped to one store.

    ``scope`` is the owning cache's root path: the memo mirrors a
    *store*, so two caches at different roots stay fully isolated even
    inside one process (``--cache-dir`` must mean what it says).  The
    run's frozen events are shared directly — no decode ever happens
    again for this key — while ``meta``/``result`` stay in wire form so
    serves cannot alias each other's mutable state.
    """
    _memo_put(
        scope,
        key,
        (
            tuple(run.trace.events()),
            record["wall"],
            record["span"],
            record["meta"],
            record.get("result"),
        ),
    )


def _run_from_entry(entry: tuple[Any, ...]) -> CapturedRun:
    events, wall, span, meta_wire, result_wire = entry
    run = CapturedRun()
    run.trace.preload(events)
    run.wall = wall
    run.span = span
    run.meta = decode_value(meta_wire)
    run.meta["cached"] = True
    if result_wire is not None:
        run.result = decode_value(result_wire["value"])
    return run


# -- spec and outcome wire forms (the fleet's file messenger) -----------------


def spec_to_wire(spec: Any) -> dict[str, Any]:
    """A :class:`~repro.batch.specs.RunSpec` as one plain-JSON document.

    The fleet coordinator ships shards of specs to worker *processes*
    through job files, so specs must cross as canonical JSON rather than
    pickles — the same codec discipline as cache records.  Raises
    :class:`~repro.errors.CacheUnserializable` for extras outside the
    record vocabulary (the coordinator then keeps the whole batch
    in-process instead of shipping it).
    """
    return {
        "patternlet": spec.patternlet,
        "tasks": spec.tasks,
        "toggles": [[k, bool(v)] for k, v in spec.toggles],
        "mode": spec.mode,
        "seed": spec.seed,
        "policy": spec.policy,
        "extra": encode_value(spec.extra_dict),
        "topology": spec.topology,
    }


def spec_from_wire(wire: Mapping[str, Any]) -> Any:
    """Inverse of :func:`spec_to_wire`."""
    from repro.batch.specs import RunSpec

    return RunSpec(
        patternlet=wire["patternlet"],
        tasks=wire["tasks"],
        toggles=tuple((k, bool(v)) for k, v in wire["toggles"]),
        mode=wire["mode"],
        seed=wire["seed"],
        policy=wire["policy"],
        extra=tuple(sorted(decode_value(wire["extra"]).items())),
        topology=wire["topology"],
    )


def outcome_to_wire(outcome: "RunOutcome") -> dict[str, Any]:
    """A :class:`RunOutcome` as one plain-JSON document (fleet results).

    ``metrics`` is best-effort like a record's ``result`` field: a
    summary that will not serialise is shipped as absent rather than
    failing the cell — every consumer of per-cell metrics already
    tolerates ``None`` (uncacheable thread-mode runs have no metrics
    either).
    """
    try:
        metrics = encode_value(outcome.metrics) if outcome.metrics is not None else None
    except CacheUnserializable:
        metrics = None
    return {
        "spec": spec_to_wire(outcome.spec),
        "key": outcome.key,
        "cached": outcome.cached,
        "text": outcome.text,
        "span": outcome.span,
        "wall": outcome.wall,
        "races": outcome.races,
        "error": outcome.error,
        "metrics": metrics,
    }


def outcome_from_wire(wire: Mapping[str, Any]) -> "RunOutcome":
    """Inverse of :func:`outcome_to_wire`."""
    metrics = wire.get("metrics")
    return RunOutcome(
        spec=spec_from_wire(wire["spec"]),
        key=wire["key"],
        cached=bool(wire["cached"]),
        text=wire["text"],
        span=wire["span"],
        wall=wire["wall"],
        races=wire["races"],
        error=wire.get("error"),
        metrics=decode_value(metrics) if metrics is not None else None,
    )


# -- batch summaries ----------------------------------------------------------


@dataclass
class RunOutcome:
    """One spec's outcome inside a batch: output, verdicts, provenance."""

    spec: Any  # RunSpec; typed loosely to avoid an import cycle
    key: str | None
    cached: bool
    text: str
    span: float | None
    wall: float
    races: int
    error: str | None = None
    #: The run's :func:`repro.obs.derive.run_summary` dict (pure function
    #: of the trace — identical whether the run executed or was served).
    metrics: dict[str, Any] | None = None

    @property
    def ok(self) -> bool:
        """True when the run completed (racy output still counts as ran)."""
        return self.error is None


@dataclass
class BatchReport:
    """Everything a batch produced, plus the numbers the CLI/bench report."""

    outcomes: list[RunOutcome] = field(default_factory=list)
    wall_s: float = 0.0
    workers: int = 1
    pooled: bool = False
    #: Aggregated run-cache counters (hits/misses/stores) across every
    #: process that served this batch, when the runner collected them.
    cache_stats: dict[str, int] | None = None
    #: Fleet execution summary (worker count, shards, steals, reposts and
    #: per-shard completion provenance) when the batch ran on the
    #: multi-process sweep fleet; ``None`` for in-process batches.
    fleet: dict[str, Any] | None = None
    #: Telemetry-export summary (sweep id, merged-journal record count,
    #: export directory) when the fleet ran with journals enabled.
    telemetry: dict[str, Any] | None = None

    @property
    def runs(self) -> int:
        """Total specs processed."""
        return len(self.outcomes)

    @property
    def hits(self) -> int:
        """Runs served from the content-addressed cache."""
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def executed(self) -> int:
        """Runs actually computed (misses plus uncacheable specs)."""
        return self.runs - self.hits

    @property
    def errors(self) -> list[RunOutcome]:
        """Outcomes whose run raised."""
        return [o for o in self.outcomes if not o.ok]

    @property
    def hit_rate(self) -> float:
        """Cache hits over total runs (0.0 for an empty batch)."""
        return self.hits / self.runs if self.runs else 0.0

    @property
    def throughput_runs_s(self) -> float:
        """Completed runs per wall second."""
        return self.runs / self.wall_s if self.wall_s > 0 else 0.0

    def cell_stats(self) -> dict[str, dict[str, Any]]:
        """Per-grid-cell metric percentiles across seeds.

        A *cell* is one (patternlet, tasks, toggles, topology, extras)
        combination; the seeds inside it form the sample.  For each
        derived metric the cell reports nearest-rank p50/p90 and the max
        — the numbers a grader scans to spot the one seed whose schedule
        collapsed, or (in a ``--topology a,b`` sweep) to compare span
        across communicator topologies at one np.
        """
        cells: dict[str, list[RunOutcome]] = {}
        for o in self.outcomes:
            if o.metrics is None:
                continue
            label = o.spec.patternlet
            if o.spec.tasks is not None:
                label += f" np={o.spec.tasks}"
            for t, on in o.spec.toggles:
                label += f" {t}={'on' if on else 'off'}"
            if o.spec.topology is not None:
                label += f" topo={o.spec.topology}"
            for k, v in o.spec.extra:
                label += f" {k}={v}"
            cells.setdefault(label, []).append(o)
        out: dict[str, dict[str, Any]] = {}
        for label in sorted(cells):
            outs = cells[label]
            series = {
                "span": [o.metrics["span"] for o in outs],
                "speedup": [o.metrics["speedup"] for o in outs],
                "efficiency": [o.metrics["efficiency"] for o in outs],
                "blocked_steps": [
                    sum(sum(per.values()) for per in o.metrics["blocked"].values())
                    for o in outs
                ],
                "messages": [o.metrics["messages"]["total"] for o in outs],
            }
            cell: dict[str, Any] = {"seeds": len(outs)}
            for name, values in series.items():
                cell[name] = {
                    "p50": _pct(values, 0.50),
                    "p90": _pct(values, 0.90),
                    "max": max(values),
                }
            out[label] = cell
        return out

    def stats(self) -> dict[str, Any]:
        """The report as one flat JSON-able dict (CI artifacts, bench)."""
        out: dict[str, Any] = {
            "runs": self.runs,
            "executed": self.executed,
            "hits": self.hits,
            "hit_rate": round(self.hit_rate, 4),
            "errors": len(self.errors),
            "wall_s": round(self.wall_s, 4),
            "throughput_runs_s": round(self.throughput_runs_s, 1),
            "workers": self.workers,
            "pooled": self.pooled,
        }
        if self.cache_stats is not None:
            out["cache_hits"] = self.cache_stats.get("hits", 0)
            out["cache_misses"] = self.cache_stats.get("misses", 0)
            out["cache_stores"] = self.cache_stats.get("stores", 0)
            out["cache_evictions"] = self.cache_stats.get("evictions", 0)
        if self.fleet is not None:
            out["fleet"] = self.fleet
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry
        cells = self.cell_stats()
        if cells:
            out["cells"] = cells
        return out
