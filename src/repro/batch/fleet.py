"""The sweep fleet: persistent worker processes over a file-based messenger.

The in-process pool (:mod:`repro.batch.pool`) fans a batch across a
``ProcessPoolExecutor`` — fine for one batch, but every item crosses a
pickled pipe, the pool is married to one parent interpreter, and nothing
rebalances a worker stuck behind a slow cell.  This module is the
substrate the ROADMAP's classroom service daemon sits on: a **fleet** of
long-lived worker processes coordinated *purely through the filesystem*,
layered on the same content-addressed :class:`~repro.batch.cache.RunCache`
every other consumer shares.

The message protocol is panda-yoda's Yoda/Droid shared-file messenger,
re-expressed as files instead of MPI messages (typed JSON documents, one
atomic rename per transition):

========================  ====================================================
message                   carrier
========================  ====================================================
``READY_FOR_JOB``         ``status/worker-<w>.json`` (idle heartbeat)
``NEW_JOB``               ``jobs/shard-<s>.json`` — a shard of grid cells;
                          *claiming* is ``os.replace`` into ``claimed/``,
                          so exactly one worker wins a job, no locks
``RUNNING_JOB``           ``status/worker-<w>.json`` — per-cell progress
                          (``done``/``total``), the coordinator's straggler
                          telemetry
``JOB_DONE``              ``results/shard-<s>.json`` — the shard's outcomes
                          plus the worker's cache counters
``NO_WORK_LEFT``          ``control/NO_WORK_LEFT`` sentinel (shutdown)
========================  ====================================================

Work stealing is coordinator-side and cooperative: when every job is
claimed and a worker sits idle, the coordinator picks the claimed shard
with the most cells still ahead of its worker, writes a *revocation*
(``revoke/shard-<s>.json`` with ``{"keep": K}`` — "finish your first K
cells, the tail is reassigned"), and posts the stolen tail as a fresh
job.  The victim checks the revocation before each cell, so it gives up
the tail at its next cell boundary.  The one race — the victim starting
cell K just as the revocation lands — is *allowed*: grid cells are
deterministic and content-addressed, so a doubly-executed cell produces
the identical outcome twice and the coordinator's first-wins merge drops
the duplicate.  Idempotence is what lets the whole protocol run without
a single lock.

Fault model: a worker that dies mid-shard is detected by the coordinator
(dead process + claimed shard without a result) and its unmerged cells
are reposted; if the whole fleet dies, or a deadline passes,
:func:`run_specs_fleet` falls back to the in-process path — at worst the
cells already computed are served back from the shared run cache, so no
work is lost.  Results merged from any mix of workers, thieves and
reposts are byte-identical to the serial path (the equivalence suite
pins a ``fleet`` leg next to serial/pooled/cache-served).

Escape hatches: ``REPRO_FLEET_WORKERS=<n>`` turns the fleet on for
``patternlet sweep`` without flags (``--fleet N`` wins when given;
``--fleet 0`` sizes automatically, honouring ``REPRO_JOBS``), and
``REPRO_FLEET_STALL=<substr>:<ms>`` makes workers stall that long before
any cell whose label contains the substring — the deterministic
straggler injector the work-stealing tests and classroom demos use.

Observability: the coordinator mints a ``sweep_id`` per submitted grid
and threads a span context (sweep → shard → cell → worker lineage)
through every job document; with ``telemetry=True`` each participant
additionally appends typed JSONL records to ``telemetry/`` (see
:mod:`repro.obs.telemetry`), the coordinator merges them into an export
directory after the batch, and ``patternlet metrics-serve`` /
``sweep --telemetry`` expose the live OpenMetrics scrape surface.
"""

from __future__ import annotations

import atexit
import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.batch.cache import RunCache, cache_enabled, caching_runs
from repro.batch.results import (
    BatchReport,
    RunOutcome,
    outcome_from_wire,
    outcome_to_wire,
    spec_from_wire,
    spec_to_wire,
)
from repro.batch.specs import RunSpec, plan_shards, sweep_fingerprint
from repro.errors import CacheUnserializable
from repro.obs.telemetry import (
    COORDINATOR,
    SpanContext,
    WorkerJournal,
    span_context,
    write_export,
)

__all__ = [
    "FLEET_AMORTISE_CELLS",
    "MSG_JOB_DONE",
    "MSG_NEW_JOB",
    "MSG_NO_WORK_LEFT",
    "MSG_READY",
    "MSG_RUNNING",
    "Fleet",
    "FleetError",
    "default_fleet_workers",
    "fleet_advisory",
    "fleet_size",
    "run_specs_fleet",
    "shutdown_fleet",
]

MSG_READY = "READY_FOR_JOB"
MSG_RUNNING = "RUNNING_JOB"
MSG_NEW_JOB = "NEW_JOB"
MSG_JOB_DONE = "JOB_DONE"
MSG_NO_WORK_LEFT = "NO_WORK_LEFT"

#: Seconds between empty job scans on a worker (doubles up to the max —
#: a busy fleet polls tightly, an idle one backs off to a gentle tick).
_POLL_S = 0.002
_BACKOFF_MAX_S = 0.02

#: Coordinator poll interval while waiting on results.
_COORD_POLL_S = 0.002

_DIRS = ("jobs", "claimed", "revoke", "results", "status", "control",
         "telemetry")

#: Cells per worker below which the file messenger's fixed costs tend to
#: swamp the parallel win (the committed baseline measures
#: ``fleet_speedup_vs_pool`` ≈ 0.2 on the 14-cell quick grid).
FLEET_AMORTISE_CELLS = 32


def fleet_advisory(n_cells: int, workers: int) -> str | None:
    """One-line note when a grid is too small to amortise the fleet.

    The fleet is not "broken" on small grids — per-job file messaging
    plus worker polling is a fixed cost each cell must outweigh.  The
    CLI prints this (to stderr) so students see *why* a tiny
    ``--fleet`` sweep can lose to the in-process pool.
    """
    if workers >= 1 and 0 < n_cells < workers * FLEET_AMORTISE_CELLS:
        return (
            f"note: {n_cells} cells across {workers} fleet workers is under "
            f"the ~{FLEET_AMORTISE_CELLS} cells/worker amortisation "
            "threshold; file-messenger overhead can outweigh the parallel "
            "win (fleet_speedup_vs_pool < 1) — the in-process pool is "
            "usually faster for grids this small"
        )
    return None


class FleetError(RuntimeError):
    """The fleet cannot finish this batch (dead workers, deadline, ...)."""


# -- env hatches --------------------------------------------------------------


def default_fleet_workers() -> int | None:
    """``REPRO_FLEET_WORKERS`` as an int, or ``None`` (fleet not requested)."""
    raw = os.environ.get("REPRO_FLEET_WORKERS")
    if not raw:
        return None
    try:
        n = int(raw)
    except ValueError:
        return None
    return n if n >= 1 else None


def fleet_size(requested: int | None, n_items: int) -> int | None:
    """Resolve the effective fleet size for a batch of ``n_items``.

    ``requested`` is the CLI's ``--fleet`` value: an explicit ``N >= 1``
    wins outright, ``0`` means "auto" (the :func:`~repro.batch.pool.
    default_workers` heuristic, which honours ``REPRO_JOBS``), and
    ``None`` defers to the ``REPRO_FLEET_WORKERS`` hatch — returning
    ``None`` when that is unset too, i.e. the fleet stays off.
    """
    if requested is None:
        requested = default_fleet_workers()
        if requested is None:
            return None
    if requested == 0:
        from repro.batch.pool import default_workers

        return default_workers(n_items)
    return max(1, requested)


def _stall_hook() -> tuple[str, float] | None:
    """The ``REPRO_FLEET_STALL`` straggler injector, parsed (or ``None``)."""
    raw = os.environ.get("REPRO_FLEET_STALL")
    if not raw or ":" not in raw:
        return None
    substr, _, ms = raw.rpartition(":")
    try:
        delay = float(ms) / 1000.0
    except ValueError:
        return None
    return (substr, delay) if substr and delay > 0 else None


# -- atomic file documents ----------------------------------------------------


def _write_doc(path: Path, doc: Mapping[str, Any]) -> bool:
    """Atomically publish ``doc`` at ``path`` (temp file + ``os.replace``)."""
    try:
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except (OSError, TypeError, ValueError):
        return False
    return True


def _read_doc(path: Path) -> dict[str, Any] | None:
    """Read a message document; ``None`` for absent/torn/foreign files."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return None
    return doc if isinstance(doc, dict) else None


# -- the worker process -------------------------------------------------------


def _claim_job(root: Path, worker_id: int) -> Path | None:
    """Try to claim one unclaimed job via atomic rename; ``None`` if none.

    ``os.replace`` into ``claimed/`` is the whole mutual-exclusion story:
    exactly one worker's rename succeeds, every loser gets
    ``FileNotFoundError`` and moves on.  The claimed filename carries the
    worker id so the coordinator can attribute shards to processes.
    """
    jobs = root / "jobs"
    try:
        candidates = sorted(p for p in jobs.iterdir() if p.suffix == ".json")
    except OSError:
        return None
    for path in candidates:
        target = root / "claimed" / f"{path.stem}.w{worker_id}.json"
        try:
            os.replace(path, target)
        except OSError:
            continue  # another worker won this one
        return target
    return None


def _run_job(
    root: Path,
    worker_id: int,
    job: Mapping[str, Any],
    cache_dir: str | None,
    use_cache: bool,
    stall: tuple[str, float] | None,
    journal: WorkerJournal | None = None,
) -> None:
    """Execute one claimed shard cell-by-cell and publish its JOB_DONE."""
    from repro.batch.pool import _exec_spec

    shard = job["shard"]
    cells = job["cells"]  # [[grid_index, spec_wire], ...]
    job_span = job.get("span") if isinstance(job.get("span"), dict) else None
    sweep = str((job_span or {}).get("sweep", ""))
    stolen_from = job.get("stolen_from")
    revoke_path = root / "revoke" / f"shard-{shard}.json"
    status_path = root / "status" / f"worker-{worker_id}.json"
    if journal is not None:
        journal.write(
            "claim",
            span=SpanContext(sweep, shard=shard, worker=worker_id,
                             stolen_from=stolen_from),
            shard=shard,
            cells=len(cells),
            stolen_from=stolen_from,
        )
    _write_doc(
        status_path,
        {
            "type": MSG_RUNNING,
            "worker": worker_id,
            "shard": shard,
            "done": 0,
            "total": len(cells),
            "pid": os.getpid(),
        },
    )
    out: list[list[Any]] = []
    cache = RunCache(cache_dir) if (use_cache and cache_dir is not None) else None
    cm = caching_runs(cache, enabled=use_cache)
    with cm:
        for local, (gidx, wire) in enumerate(cells):
            revoke = _read_doc(revoke_path)
            if revoke is not None and local >= int(revoke.get("keep", len(cells))):
                if journal is not None:
                    journal.write(
                        "steal.honoured",
                        span=SpanContext(sweep, shard=shard, worker=worker_id),
                        shard=shard,
                        keep=int(revoke.get("keep", 0)),
                        dropped=len(cells) - local,
                    )
                break  # the tail was stolen; stop at this cell boundary
            spec = spec_from_wire(wire)
            ctx = SpanContext(sweep, shard=shard, cell=gidx, worker=worker_id,
                              stolen_from=stolen_from)
            if journal is not None:
                journal.write("cell.start", span=ctx, shard=shard, cell=gidx,
                              label=spec.label())
            t_cell = time.perf_counter()
            if stall is not None and stall[0] in spec.label():
                time.sleep(stall[1])
            with span_context(ctx):
                outcome = _exec_spec(spec)
            if journal is not None:
                journal.write(
                    "cell.finish",
                    span=ctx,
                    shard=shard,
                    cell=gidx,
                    cached=outcome.cached,
                    wall=round(time.perf_counter() - t_cell, 6),
                    races=outcome.races,
                    error=outcome.error,
                    ranks=list((outcome.metrics or {}).get("tasks", ()))[:16],
                )
            out.append([gidx, outcome_to_wire(outcome)])
            _write_doc(
                status_path,
                {
                    "type": MSG_RUNNING,
                    "worker": worker_id,
                    "shard": shard,
                    "done": local + 1,
                    "total": len(cells),
                    "pid": os.getpid(),
                },
            )
    stats = cm.cache.stats() if cm.cache is not None else {}
    _write_doc(
        root / "results" / f"shard-{shard}.json",
        {
            "type": MSG_JOB_DONE,
            "shard": shard,
            "worker": worker_id,
            "stolen_from": stolen_from,
            "outcomes": out,
            "stats": stats,
        },
    )
    if journal is not None:
        journal.write(
            "job.done",
            span=SpanContext(sweep, shard=shard, worker=worker_id),
            shard=shard,
            cells=len(out),
        )


#: Seconds between idle-worker heartbeat journal records (live-only
#: liveness signal; merges drop them).
_HEARTBEAT_S = 1.0


def _fleet_worker_main(
    root_s: str,
    worker_id: int,
    cache_dir: str | None,
    use_cache: bool,
    telemetry: bool = False,
) -> None:
    """A worker process's whole life: poll → claim → run → repeat.

    Top-level and argued only with scalars, so it is spawn-safe as well
    as fork-safe.  Fresh ambient trace state and a fresh rank-thread
    pool first (forked children also get both via their at-fork hooks;
    spawned ones need the explicit calls), then one warm registry import
    every shard on this worker reuses.
    """
    from repro.sched.pool import reset_pool
    from repro.trace import reset_ambient

    reset_ambient()
    reset_pool()
    import repro.patternlets  # noqa: F401

    root = Path(root_s)
    status_path = root / "status" / f"worker-{worker_id}.json"
    sentinel = root / "control" / MSG_NO_WORK_LEFT
    stall = _stall_hook()
    journal = (
        WorkerJournal(root / "telemetry" / f"worker-{worker_id}.jsonl", worker_id)
        if telemetry
        else None
    )
    if journal is not None:
        journal.write("worker.start", pid=os.getpid())
    backoff = _POLL_S
    ready_written = False
    last_beat = time.monotonic()
    while True:
        claimed = _claim_job(root, worker_id)
        if claimed is None:
            # READY is written on transition (or when the coordinator's
            # post-batch cleanup swept the file), not every poll tick —
            # an idle fleet must not grind the message directory.
            if not ready_written or not status_path.exists():
                _write_doc(
                    status_path,
                    {"type": MSG_READY, "worker": worker_id, "pid": os.getpid()},
                )
                ready_written = True
            if journal is not None and time.monotonic() - last_beat >= _HEARTBEAT_S:
                journal.write("heartbeat", state="ready")
                last_beat = time.monotonic()
            if sentinel.exists():
                if journal is not None:
                    journal.write("worker.exit", pid=os.getpid())
                    journal.close()
                try:
                    os.unlink(status_path)  # leave nothing behind on exit
                except OSError:
                    pass
                return
            time.sleep(backoff)
            backoff = min(backoff * 2, _BACKOFF_MAX_S)
            continue
        backoff = _POLL_S
        ready_written = False  # _run_job overwrote the status with RUNNING
        job = _read_doc(claimed)
        if job is None:
            continue  # torn claim (should not happen: writes are atomic)
        try:
            _run_job(root, worker_id, job, cache_dir, use_cache, stall, journal)
        except Exception:  # noqa: BLE001 - a poisoned shard must not kill the worker
            # Publish an empty JOB_DONE so the coordinator reposts the
            # shard's cells instead of waiting for a dead man's result.
            _write_doc(
                root / "results" / f"shard-{job['shard']}.json",
                {
                    "type": MSG_JOB_DONE,
                    "shard": job["shard"],
                    "worker": worker_id,
                    "stolen_from": job.get("stolen_from"),
                    "outcomes": [],
                    "stats": {},
                },
            )


# -- the coordinator ----------------------------------------------------------


@dataclass
class _Shard:
    """Coordinator-side bookkeeping for one posted job."""

    cells: list[int]  # grid indices, in shard order
    worker: int | None = None  # claimer, once visible in claimed/
    keep: int | None = None  # revocation watermark (None = whole shard)
    completed: bool = False
    stolen_from: int | None = None

    @property
    def effective_total(self) -> int:
        return self.keep if self.keep is not None else len(self.cells)


class Fleet:
    """A persistent set of worker processes plus their message directory.

    Construction spawns the workers (fork where the platform has it,
    spawn otherwise) and creates the fleet directory; :meth:`submit`
    runs one spec grid through them; :meth:`shutdown` posts
    ``NO_WORK_LEFT`` and removes the directory.  One fleet serves many
    batches back-to-back — that persistence is the point: worker
    processes with warm imports, warm rank-thread pools, and warm
    decoded-record memos are what make repeated sweeps (grading a
    section, a service daemon's request stream) cheap.
    """

    def __init__(
        self,
        workers: int,
        *,
        use_cache: bool,
        cache_dir: str | None,
        root: str | Path | None = None,
        telemetry: bool = False,
        keep_dir: bool = False,
    ):
        self.workers = max(1, workers)
        self.use_cache = use_cache
        self.cache_dir = cache_dir
        self.telemetry = telemetry
        self.keep_dir = keep_dir
        self._own_root = root is None
        self.root = Path(root) if root is not None else Path(
            tempfile.mkdtemp(prefix="repro-fleet-")
        )
        for name in _DIRS:
            (self.root / name).mkdir(parents=True, exist_ok=True)
        self._next_shard = 0
        self._sweep_seq = 0
        self._sweep_id = ""
        self._journal = (
            WorkerJournal(self.root / "telemetry" / "coordinator.jsonl",
                          COORDINATOR)
            if telemetry
            else None
        )
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # platform without fork
            ctx = multiprocessing.get_context()
        self._procs = []
        for i in range(self.workers):
            p = ctx.Process(
                target=_fleet_worker_main,
                args=(str(self.root), i, cache_dir, use_cache, telemetry),
                daemon=True,
            )
            p.start()
            self._procs.append(p)

    # -- liveness --------------------------------------------------------

    def alive_workers(self) -> list[int]:
        """Ids of workers whose processes are still running."""
        return [i for i, p in enumerate(self._procs) if p.is_alive()]

    # -- job posting -----------------------------------------------------

    def _post_job(
        self,
        wires: list[dict[str, Any]],
        indices: list[int],
        shards: dict[int, _Shard],
        *,
        stolen_from: int | None = None,
    ) -> int:
        shard_id = self._next_shard
        self._next_shard += 1
        doc: dict[str, Any] = {
            "type": MSG_NEW_JOB,
            "shard": shard_id,
            "cells": [[g, wires[g]] for g in indices],
            # Lineage every downstream consumer (worker journals, run
            # metadata, the merged trace) inherits.
            "span": {"sweep": self._sweep_id, "shard": shard_id},
        }
        if stolen_from is not None:
            doc["stolen_from"] = stolen_from
        if not _write_doc(self.root / "jobs" / f"shard-{shard_id}.json", doc):
            raise FleetError(f"cannot post job for shard {shard_id}")
        shards[shard_id] = _Shard(cells=list(indices), stolen_from=stolen_from)
        if self._journal is not None:
            self._journal.write(
                "job.post",
                span=SpanContext(self._sweep_id, shard=shard_id),
                shard=shard_id,
                cells=len(indices),
                stolen_from=stolen_from,
            )
        return shard_id

    # -- coordinator passes ----------------------------------------------

    def _scan_claims(self, shards: dict[int, _Shard]) -> None:
        try:
            entries = list((self.root / "claimed").iterdir())
        except OSError:
            return
        for path in entries:
            # "shard-<id>.w<worker>.json"
            parts = path.name.split(".")
            if len(parts) != 3 or not parts[1].startswith("w"):
                continue
            try:
                shard_id = int(parts[0].rpartition("-")[2])
                worker = int(parts[1][1:])
            except ValueError:
                continue
            sh = shards.get(shard_id)
            if sh is not None and sh.worker is None:
                sh.worker = worker

    def _drain_results(
        self,
        shards: dict[int, _Shard],
        merged: dict[int, RunOutcome],
        stats: dict[str, int],
        completed: list[dict[str, Any]],
        seen: set[str],
    ) -> bool:
        """Merge any new JOB_DONE files; True when something landed."""
        try:
            entries = sorted((self.root / "results").iterdir())
        except OSError:
            return False
        progressed = False
        for path in entries:
            if path.name in seen or path.suffix != ".json":
                continue
            doc = _read_doc(path)
            if doc is None:
                continue  # results are atomic; absent-or-whole
            seen.add(path.name)
            sh = shards.get(doc.get("shard"))
            if sh is None:
                continue  # a previous batch's stragglers, if any
            for gidx, wire in doc.get("outcomes", ()):
                if gidx not in merged:  # first-wins: duplicates are identical
                    try:
                        merged[gidx] = outcome_from_wire(wire)
                    except (KeyError, TypeError, ValueError, CacheUnserializable):
                        continue  # unreadable cell: left for a repost
            for key, value in doc.get("stats", {}).items():
                stats[key] = stats.get(key, 0) + int(value)
            sh.completed = True
            completed.append(
                {
                    "shard": doc.get("shard"),
                    "worker": doc.get("worker"),
                    "cells": len(doc.get("outcomes", ())),
                    "stolen_from": doc.get("stolen_from"),
                }
            )
            progressed = True
        return progressed

    def _unclaimed_jobs(self) -> bool:
        try:
            return any(
                p.suffix == ".json" for p in (self.root / "jobs").iterdir()
            )
        except OSError:
            return False

    def _read_statuses(self) -> dict[int, dict[str, Any]]:
        out: dict[int, dict[str, Any]] = {}
        try:
            entries = list((self.root / "status").iterdir())
        except OSError:
            return out
        for path in entries:
            doc = _read_doc(path)
            if doc is not None and isinstance(doc.get("worker"), int):
                out[doc["worker"]] = doc
        return out

    def _steal_pass(
        self, wires: list[dict[str, Any]], shards: dict[int, _Shard]
    ) -> int:
        """One work-stealing decision: split the worst straggler's tail.

        Preconditions for acting: no unclaimed jobs (else the idle worker
        should just claim one) and at least one live idle worker.  The
        victim is the running shard with the most cells still ahead of
        its worker's progress; it keeps its in-flight cell plus half the
        tail, and the rest becomes a fresh job.  Repeated passes halve
        the remainder again, so a permanently slow worker converges to
        holding only the cell it is stuck in — tail latency tracks the
        slowest *cell*, not the slowest shard.
        """
        if self._unclaimed_jobs():
            return 0
        statuses = self._read_statuses()
        alive = set(self.alive_workers())
        idle = [
            w
            for w, st in statuses.items()
            if st.get("type") == MSG_READY and w in alive
        ]
        if not idle:
            return 0
        victim_id, victim, done_now, stealable = None, None, 0, 0
        for shard_id, sh in shards.items():
            if sh.completed or sh.worker is None:
                continue
            st = statuses.get(sh.worker)
            if not st or st.get("type") != MSG_RUNNING or st.get("shard") != shard_id:
                continue  # not demonstrably inside this shard right now
            done = int(st.get("done", 0))
            margin = sh.effective_total - done - 1  # cells behind the in-flight one
            if margin > stealable:
                victim_id, victim, done_now, stealable = shard_id, sh, done, margin
        if victim is None or stealable < 1:
            return 0
        new_keep = done_now + 1 + (stealable // 2)
        if victim.keep is not None and new_keep >= victim.keep:
            return 0  # nothing genuinely new to take
        stolen = victim.cells[new_keep : victim.effective_total]
        if not stolen:
            return 0
        if not _write_doc(
            self.root / "revoke" / f"shard-{victim_id}.json", {"keep": new_keep}
        ):
            return 0
        victim.keep = new_keep
        new_shard = self._post_job(wires, stolen, shards, stolen_from=victim_id)
        if self._journal is not None:
            self._journal.write(
                "steal",
                span=SpanContext(self._sweep_id, shard=victim_id),
                victim=victim_id,
                keep=new_keep,
                cells=len(stolen),
                reposted_as=new_shard,
            )
        return 1

    def _reap_dead(
        self,
        wires: list[dict[str, Any]],
        shards: dict[int, _Shard],
        merged: dict[int, RunOutcome],
    ) -> int:
        """Repost the unmerged cells of shards whose claimer died."""
        alive = set(self.alive_workers())
        reposts = 0
        for shard_id, sh in list(shards.items()):
            if sh.completed or sh.worker is None or sh.worker in alive:
                continue
            sh.completed = True  # abandoned; a ghost result would still merge
            remaining = [
                g for g in sh.cells[: sh.effective_total] if g not in merged
            ]
            if remaining:
                new_shard = self._post_job(wires, remaining, shards)
                if self._journal is not None:
                    self._journal.write(
                        "repost",
                        span=SpanContext(self._sweep_id, shard=shard_id),
                        dead_shard=shard_id,
                        dead_worker=sh.worker,
                        cells=len(remaining),
                        reposted_as=new_shard,
                    )
                reposts += 1
        return reposts

    # -- the batch entry point -------------------------------------------

    def submit(
        self,
        specs: Iterable[RunSpec],
        *,
        steal: bool = True,
        timeout: float | None = None,
        export_dir: str | Path | None = None,
    ) -> BatchReport:
        """Run one spec grid across the fleet; outcomes in spec order.

        Raises :class:`FleetError` when the fleet cannot finish (every
        worker dead with work outstanding, an unpostable job, or the
        deadline passing) — :func:`run_specs_fleet` turns that into an
        in-process fallback.  With telemetry on and ``export_dir`` given,
        the batch's merged journal + fleet summary are exported there and
        surfaced as ``report.telemetry``.
        """
        specs = list(specs)
        t0 = time.perf_counter()
        # The sweep id every span in this batch descends from: the grid's
        # content fingerprint plus a coordinator-unique serial, so two
        # submissions of the same grid stay distinguishable.
        self._sweep_id = (
            f"{sweep_fingerprint(specs)}-{os.getpid()}-{self._sweep_seq}"
        )
        self._sweep_seq += 1
        if self._journal is not None:
            self._journal.write(
                "sweep.start",
                span=SpanContext(self._sweep_id),
                cells=len(specs),
                workers=self.workers,
            )
        wires = [spec_to_wire(s) for s in specs]
        shards: dict[int, _Shard] = {}
        planned = plan_shards(len(specs), self.workers)
        for indices in planned:
            self._post_job(wires, indices, shards)
        merged: dict[int, RunOutcome] = {}
        stats: dict[str, int] = {}
        completed: list[dict[str, Any]] = []
        seen: set[str] = set()
        steals = 0
        reposts = 0
        deadline = time.monotonic() + timeout if timeout is not None else None
        while len(merged) < len(specs):
            progressed = self._drain_results(shards, merged, stats, completed, seen)
            if len(merged) >= len(specs):
                break
            self._scan_claims(shards)
            reposts += self._reap_dead(wires, shards, merged)
            if not self.alive_workers():
                raise FleetError("every fleet worker died with work outstanding")
            if steal:
                steals += self._steal_pass(wires, shards)
            if deadline is not None and time.monotonic() > deadline:
                raise FleetError(
                    f"fleet batch exceeded its {timeout:.0f}s deadline "
                    f"({len(merged)}/{len(specs)} cells merged)"
                )
            if not progressed:
                time.sleep(_COORD_POLL_S)
        wall_s = time.perf_counter() - t0
        fleet_summary: dict[str, Any] = {
            "workers": self.workers,
            "planned_shards": len(planned),
            "completed_shards": len(completed),
            "steals": steals,
            "reposts": reposts,
            "sweep_id": self._sweep_id,
            "shards": completed,
        }
        if self.keep_dir:
            fleet_summary["root"] = str(self.root)
        report = BatchReport(
            outcomes=[merged[i] for i in range(len(specs))],
            wall_s=wall_s,
            workers=self.workers,
            pooled=True,
            cache_stats=stats,
            fleet=fleet_summary,
        )
        if self._journal is not None:
            self._journal.write(
                "sweep.finish",
                span=SpanContext(self._sweep_id),
                cells=len(merged),
                steals=steals,
                reposts=reposts,
                wall=round(wall_s, 6),
            )
            if export_dir is not None:
                summary = write_export(
                    self.root / "telemetry",
                    export_dir,
                    sweep_id=self._sweep_id,
                    fleet=fleet_summary,
                )
                summary["dir"] = str(export_dir)
                report.telemetry = summary
        if not self.keep_dir:
            self._sweep_cleanup()
        return report

    def _sweep_cleanup(self) -> None:
        """Sweep the finished batch's message files out of the directory.

        A merged batch's ``jobs``/``claimed``/``revoke``/``results``
        documents are dead weight — worse, a stolen-tail job posted but
        never claimed would be claimed (and pointlessly recomputed) at
        the start of the *next* batch.  Status files go too; workers
        rewrite READY the moment they notice theirs missing.
        ``telemetry/`` and ``control/`` survive: journals span batches
        and the sentinel is the shutdown signal.  Late writers racing
        this sweep are harmless — a straggling thief's result file is
        ignored by the next batch's merge (stale shard id) and swept by
        its cleanup.
        """
        for name in ("jobs", "claimed", "revoke", "results", "status"):
            try:
                entries = list((self.root / name).iterdir())
            except OSError:
                continue
            for path in entries:
                if path.name.startswith(("shard-", "worker-")):
                    try:
                        os.unlink(path)
                    except OSError:
                        pass

    def shutdown(self) -> None:
        """Post NO_WORK_LEFT, reap the workers, remove the directory."""
        try:
            (self.root / "control" / MSG_NO_WORK_LEFT).touch()
        except OSError:
            pass
        for p in self._procs:
            p.join(timeout=1.0)
        for p in self._procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=1.0)
        self._procs = []
        if self._journal is not None:
            self._journal.close()
        if self._own_root and not self.keep_dir:
            shutil.rmtree(self.root, ignore_errors=True)


# -- the persistent module-level fleet ----------------------------------------

_FLEET: Fleet | None = None
_FLEET_KEY: tuple[int, bool, str | None, bool, bool] | None = None
_ATEXIT_ARMED = False


def _get_fleet(
    workers: int,
    use_cache: bool,
    cache_dir: str | None,
    *,
    telemetry: bool = False,
    keep_dir: bool = False,
) -> Fleet | None:
    """The process-wide fleet, (re)built when the shape changes or workers die."""
    global _FLEET, _FLEET_KEY, _ATEXIT_ARMED
    key = (workers, use_cache, cache_dir, telemetry, keep_dir)
    if (
        _FLEET is not None
        and _FLEET_KEY == key
        and len(_FLEET.alive_workers()) == _FLEET.workers
    ):
        return _FLEET
    shutdown_fleet()
    try:
        _FLEET = Fleet(
            workers,
            use_cache=use_cache,
            cache_dir=cache_dir,
            telemetry=telemetry,
            keep_dir=keep_dir,
        )
        _FLEET_KEY = key
    except (OSError, ValueError, NotImplementedError):
        _FLEET = None
        _FLEET_KEY = None
    if _FLEET is not None and not _ATEXIT_ARMED:
        atexit.register(shutdown_fleet)
        _ATEXIT_ARMED = True
    return _FLEET


def shutdown_fleet() -> None:
    """Tear down the persistent fleet (tests; end-of-process hygiene)."""
    global _FLEET, _FLEET_KEY
    if _FLEET is not None:
        _FLEET.shutdown()
        _FLEET = None
        _FLEET_KEY = None


def run_specs_fleet(
    specs: Iterable[RunSpec],
    *,
    workers: int | None = None,
    use_cache: bool | None = None,
    cache_dir: str | None = None,
    steal: bool = True,
    timeout: float | None = 300.0,
    telemetry_dir: str | Path | None = None,
    serve_port: int | None = None,
    keep_fleet_dir: bool = False,
    announce: "Any | None" = None,
) -> BatchReport:
    """Execute a spec grid on the persistent fleet; the sharded entry point.

    The fleet-shaped sibling of :func:`repro.batch.pool.run_specs`, with
    the same contract (outcome order matches spec order; per-outcome
    text/span/races; merged cache stats) plus a ``fleet`` summary on the
    report.  Degrades rather than fails: single-cell batches, specs the
    wire codec cannot ship, an unspawnable fleet, or a mid-batch fleet
    collapse all land on the in-process path, whose results are
    identical by the equivalence guarantee.

    ``telemetry_dir`` turns worker journals on and exports the merged
    batch telemetry there (``report.telemetry`` summarises it); with
    ``serve_port`` additionally set (0 = ephemeral), a live OpenMetrics
    endpoint over the fleet directory runs for the duration of the batch
    and its URL is passed to ``announce`` (a ``str`` callback).
    ``keep_fleet_dir`` preserves the message directory — per-batch
    cleanup *and* shutdown removal are skipped — for post-mortems.
    Degraded (in-process) paths have no journals; the report simply
    lacks the ``telemetry`` block.
    """
    specs = list(specs)
    use = cache_enabled() if use_cache is None else use_cache
    telemetry = telemetry_dir is not None
    from repro.batch.pool import default_workers, run_specs

    n = workers if workers is not None and workers >= 1 else fleet_size(0, len(specs))
    if n is None:
        n = default_workers(len(specs))
    if len(specs) <= 1:
        return run_specs(specs, max_workers=1, use_cache=use, cache_dir=cache_dir)
    try:
        [spec_to_wire(s) for s in specs]
    except CacheUnserializable:
        return run_specs(specs, max_workers=None, use_cache=use, cache_dir=cache_dir)
    fleet = _get_fleet(
        n, use, cache_dir, telemetry=telemetry, keep_dir=keep_fleet_dir
    )
    if fleet is None:
        return run_specs(specs, max_workers=None, use_cache=use, cache_dir=cache_dir)
    server = None
    if telemetry and serve_port is not None:
        from repro.obs.telemetry import serve_metrics

        try:
            server = serve_metrics(fleet.root, port=serve_port)
        except OSError:
            server = None  # port taken: the sweep still runs, just unscraped
        if server is not None and announce is not None:
            announce(server.url)
    try:
        return fleet.submit(
            specs,
            steal=steal,
            timeout=timeout,
            export_dir=telemetry_dir if telemetry else None,
        )
    except FleetError:
        shutdown_fleet()
        return run_specs(specs, max_workers=None, use_cache=use, cache_dir=cache_dir)
    finally:
        if server is not None:
            server.stop()
