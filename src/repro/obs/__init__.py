"""Observability layer: metrics registry, derivation, probes, reports.

Two populations of the same registry vocabulary:

- :mod:`repro.obs.live` — probes fed by hook sites on the scheduler and
  transport hot paths (one ``None`` test when disabled);
- :mod:`repro.obs.derive` — a pure post-hoc pass over any trace, so
  cache-served and pickled runs yield byte-identical metrics.

Plus :mod:`repro.obs.report`, the self-contained HTML run report.
"""

from repro.obs.derive import (
    blocked_intervals,
    derive_metrics,
    metrics_dict,
    run_metrics,
    run_summary,
)
from repro.obs.live import Probe, probing
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_openmetrics,
)
from repro.obs.report import render_report, write_report

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Probe",
    "blocked_intervals",
    "derive_metrics",
    "metrics_dict",
    "parse_openmetrics",
    "probing",
    "render_report",
    "run_metrics",
    "run_summary",
    "write_report",
]
