"""Observability layer: metrics registry, derivation, probes, reports.

Two populations of the same registry vocabulary:

- :mod:`repro.obs.live` — probes fed by hook sites on the scheduler and
  transport hot paths (one ``None`` test when disabled);
- :mod:`repro.obs.derive` — a pure post-hoc pass over any trace, so
  cache-served and pickled runs yield byte-identical metrics.

Plus :mod:`repro.obs.report`, the self-contained HTML run report;
:mod:`repro.obs.telemetry`, the fleet telemetry plane (span contexts,
worker journals, the live OpenMetrics scrape server); and
:mod:`repro.obs.fleet_report`, the fleet dashboard rendered from an
exported telemetry directory.
"""

from repro.obs.derive import (
    blocked_intervals,
    derive_metrics,
    metrics_dict,
    run_metrics,
    run_summary,
)
from repro.obs.fleet_report import render_fleet_report, write_fleet_report
from repro.obs.live import Probe, probing
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_registries,
    parse_openmetrics,
)
from repro.obs.report import render_report, write_report
from repro.obs.telemetry import (
    MetricsServer,
    SpanContext,
    WorkerJournal,
    current_context,
    fleet_registry,
    load_export,
    merge_journals,
    read_journals,
    serve_metrics,
    span_context,
    write_export,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "Probe",
    "SpanContext",
    "WorkerJournal",
    "blocked_intervals",
    "current_context",
    "derive_metrics",
    "fleet_registry",
    "load_export",
    "merge_journals",
    "merge_registries",
    "metrics_dict",
    "parse_openmetrics",
    "probing",
    "read_journals",
    "render_fleet_report",
    "render_report",
    "run_metrics",
    "run_summary",
    "serve_metrics",
    "span_context",
    "write_export",
    "write_report",
]
