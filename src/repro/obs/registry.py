"""The metrics registry: counters, gauges, histograms, and their exports.

One :class:`MetricsRegistry` describes one run (or one aggregation over
many runs) as a set of *metric families*.  A family has a name, a type
(``counter`` / ``gauge`` / ``histogram``), one line of help text, and a
set of samples keyed by label sets; a counter sample may additionally
carry an *exemplar* — a label set pointing back into the run's trace
(``{"trace_seq": "17"}``), which is how a number in a dashboard stays
one click away from the event that produced it.

Two deterministic serialisations:

- :meth:`MetricsRegistry.to_openmetrics` — the OpenMetrics text format
  (``# TYPE``/``# HELP`` headers, ``_total`` counter suffix, exemplar
  ``# {...}`` syntax, ``# EOF`` terminator).  :func:`parse_openmetrics`
  is the matching reader; the CLI's ``--metrics`` output round-trips
  through it in the tests.
- :meth:`MetricsRegistry.to_json` — a nested plain-dict form for
  ``--metrics-out file.json`` and for the byte-identity tests (the dict
  is fully ordered: families, samples, and labels are all sorted).

Determinism is a load-bearing property here, not a nicety: the batch
layer's guarantee is that a cache-served run is indistinguishable from a
live one, and that extends to metrics — so every export sorts every
level and no export embeds a timestamp or an unordered id.
"""

from __future__ import annotations

import math
import re
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_registries",
    "parse_openmetrics",
]

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bucket bounds (powers of four: wide dynamic range
#: with few buckets; run quantities here span 1..~10^5 trace steps).
DEFAULT_BUCKETS = (1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0)


def _labels_key(labels: Mapping[str, Any] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _fmt_value(v: float) -> str:
    if v != v:  # NaN
        return "NaN"
    if v == math.inf:
        return "+Inf"
    if v == -math.inf:
        return "-Inf"
    if isinstance(v, bool):
        return "1" if v else "0"
    if isinstance(v, int) or (isinstance(v, float) and v.is_integer()):
        return str(int(v))
    return repr(float(v))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_labels(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in key)
    return "{" + inner + "}"


class _Family:
    """Shared machinery of one metric family (name, help, samples)."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, unit: str = ""):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help_text
        self.unit = unit
        #: label-key tuple -> value (floats; counters stay monotone).
        self.samples: dict[tuple[tuple[str, str], ...], float] = {}

    def labels_seen(self) -> list[tuple[tuple[str, str], ...]]:
        """Every label-key tuple with a sample, sorted (the export order)."""
        return sorted(self.samples)

    def value(self, labels: Mapping[str, Any] | None = None) -> float:
        """This family's sample for ``labels`` (0.0 when absent)."""
        return self.samples.get(_labels_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every label set (the family's scalar collapse)."""
        return sum(self.samples.values())


class Counter(_Family):
    """Monotone event count, optionally with per-sample exemplars."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, unit: str = ""):
        super().__init__(name, help_text, unit)
        #: label-key tuple -> (exemplar labels, exemplar value).
        self.exemplars: dict[
            tuple[tuple[str, str], ...], tuple[tuple[tuple[str, str], ...], float]
        ] = {}

    def inc(
        self,
        labels: Mapping[str, Any] | None = None,
        amount: float = 1.0,
        *,
        exemplar: Mapping[str, Any] | None = None,
    ) -> None:
        """Add ``amount`` (>= 0) to the sample for ``labels``.

        The first call that supplies an ``exemplar`` pins it; later
        exemplars for the same label set are ignored (first-wins keeps
        the export deterministic).
        """
        if amount < 0:
            raise ValueError("counters only go up")
        key = _labels_key(labels)
        self.samples[key] = self.samples.get(key, 0.0) + amount
        if exemplar is not None and key not in self.exemplars:
            # First exemplar wins: it names the *earliest* linked trace
            # event, which is the deterministic choice.
            self.exemplars[key] = (_labels_key(exemplar), amount)


class Gauge(_Family):
    """A value that can go anywhere (fractions, ratios, sizes)."""

    kind = "gauge"

    def set(self, value: float, labels: Mapping[str, Any] | None = None) -> None:
        """Replace the sample for ``labels`` with ``value``."""
        self.samples[_labels_key(labels)] = float(value)

    def add(self, amount: float, labels: Mapping[str, Any] | None = None) -> None:
        """Shift the sample for ``labels`` by ``amount`` (may be negative)."""
        key = _labels_key(labels)
        self.samples[key] = self.samples.get(key, 0.0) + amount


class Histogram:
    """Cumulative-bucket histogram (OpenMetrics semantics).

    Stored per label set as ``(bucket_counts, sum, count)``; bucket
    bounds are fixed at construction and shared by every label set (the
    OpenMetrics text format requires it).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        *,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        unit: str = "",
    ):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help_text
        self.unit = unit
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds: tuple[float, ...] = tuple(bounds)
        self.samples: dict[
            tuple[tuple[str, str], ...], tuple[list[int], float, int]
        ] = {}

    def observe(self, value: float, labels: Mapping[str, Any] | None = None) -> None:
        """Record ``value``: bump every cumulative bucket it fits in."""
        key = _labels_key(labels)
        entry = self.samples.get(key)
        if entry is None:
            entry = ([0] * len(self.bounds), 0.0, 0)
        counts, total, n = entry
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                counts[i] += 1
        self.samples[key] = (counts, total + float(value), n + 1)

    def labels_seen(self) -> list[tuple[tuple[str, str], ...]]:
        """Every label-key tuple with a sample, sorted (the export order)."""
        return sorted(self.samples)

    def count(self, labels: Mapping[str, Any] | None = None) -> int:
        """How many observations the ``labels`` sample holds (0 if none)."""
        entry = self.samples.get(_labels_key(labels))
        return entry[2] if entry else 0

    def sum(self, labels: Mapping[str, Any] | None = None) -> float:
        """Sum of every value observed for ``labels`` (0.0 if none)."""
        entry = self.samples.get(_labels_key(labels))
        return entry[1] if entry else 0.0


class MetricsRegistry:
    """An ordered collection of metric families for one run/aggregation.

    ``info`` carries identity labels (engine version and fingerprint,
    patternlet, seed, ...) exported as the conventional OpenMetrics
    ``<prefix>_engine_info`` gauge-valued info metric and as the JSON
    header — every artifact stays attributable to an exact engine build.
    """

    def __init__(self, *, prefix: str = "patternlet"):
        if not _NAME_RE.match(prefix):
            raise ValueError(f"invalid metric prefix {prefix!r}")
        self.prefix = prefix
        self.info: dict[str, str] = {}
        self._families: dict[str, Counter | Gauge | Histogram] = {}

    # -- construction --------------------------------------------------------

    def _add(self, family: Counter | Gauge | Histogram) -> Any:
        if family.name in self._families:
            raise ValueError(f"duplicate metric family {family.name!r}")
        self._families[family.name] = family
        return family

    def counter(self, name: str, help_text: str, unit: str = "") -> Counter:
        """Get or create the :class:`Counter` family called ``name``."""
        existing = self._families.get(name)
        if isinstance(existing, Counter):
            return existing
        return self._add(Counter(name, help_text, unit))

    def gauge(self, name: str, help_text: str, unit: str = "") -> Gauge:
        """Get or create the :class:`Gauge` family called ``name``."""
        existing = self._families.get(name)
        if isinstance(existing, Gauge):
            return existing
        return self._add(Gauge(name, help_text, unit))

    def histogram(
        self,
        name: str,
        help_text: str,
        *,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        unit: str = "",
    ) -> Histogram:
        """Get or create the :class:`Histogram` family called ``name``."""
        existing = self._families.get(name)
        if isinstance(existing, Histogram):
            return existing
        return self._add(Histogram(name, help_text, buckets=buckets, unit=unit))

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """The family called ``name``, or None if never registered."""
        return self._families.get(name)

    def families(self) -> list[Counter | Gauge | Histogram]:
        """Every family, name-sorted (the export order)."""
        return [self._families[k] for k in sorted(self._families)]

    def __len__(self) -> int:
        return len(self._families)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    # -- exports -------------------------------------------------------------

    def to_openmetrics(self) -> str:
        """The registry in OpenMetrics text format (``# EOF``-terminated)."""
        out: list[str] = []
        if self.info:
            name = f"{self.prefix}_engine"
            out.append(f"# TYPE {name} info")
            out.append(f"# HELP {name} Engine build identity.")
            key = _labels_key(self.info)
            out.append(f"{name}_info{_fmt_labels(key)} 1")
        for fam in self.families():
            full = f"{self.prefix}_{fam.name}"
            out.append(f"# TYPE {full} {fam.kind}")
            if fam.unit:
                out.append(f"# UNIT {full} {fam.unit}")
            out.append(f"# HELP {full} {_escape(fam.help)}")
            if isinstance(fam, Histogram):
                for key in fam.labels_seen():
                    counts, total, n = fam.samples[key]
                    for bound, c in zip(fam.bounds, counts):
                        bkey = key + (("le", _fmt_value(bound)),)
                        out.append(f"{full}_bucket{_fmt_labels(bkey)} {c}")
                    ikey = key + (("le", "+Inf"),)
                    out.append(f"{full}_bucket{_fmt_labels(ikey)} {n}")
                    out.append(f"{full}_count{_fmt_labels(key)} {n}")
                    out.append(f"{full}_sum{_fmt_labels(key)} {_fmt_value(total)}")
                continue
            suffix = "_total" if fam.kind == "counter" else ""
            for key in fam.labels_seen():
                line = f"{full}{suffix}{_fmt_labels(key)} {_fmt_value(fam.samples[key])}"
                if isinstance(fam, Counter):
                    ex = fam.exemplars.get(key)
                    if ex is not None:
                        ex_labels, ex_value = ex
                        line += f" # {_fmt_labels(ex_labels)} {_fmt_value(ex_value)}"
                out.append(line)
        out.append("# EOF")
        return "\n".join(out) + "\n"

    def to_json(self) -> dict[str, Any]:
        """Nested plain-dict export; fully ordered, so byte-stable."""
        families: dict[str, Any] = {}
        for fam in self.families():
            entry: dict[str, Any] = {"type": fam.kind, "help": fam.help}
            if fam.unit:
                entry["unit"] = fam.unit
            if isinstance(fam, Histogram):
                entry["buckets"] = list(fam.bounds)
                entry["samples"] = [
                    {
                        "labels": dict(key),
                        "bucket_counts": list(fam.samples[key][0]),
                        "sum": fam.samples[key][1],
                        "count": fam.samples[key][2],
                    }
                    for key in fam.labels_seen()
                ]
            else:
                samples = []
                for key in fam.labels_seen():
                    sample: dict[str, Any] = {
                        "labels": dict(key),
                        "value": fam.samples[key],
                    }
                    if isinstance(fam, Counter):
                        ex = fam.exemplars.get(key)
                        if ex is not None:
                            sample["exemplar"] = {
                                "labels": dict(ex[0]),
                                "value": ex[1],
                            }
                    samples.append(sample)
                entry["samples"] = samples
            families[fam.name] = entry
        return {
            "schema": 1,
            "prefix": self.prefix,
            "engine": dict(sorted(self.info.items())),
            "families": families,
        }


def merge_registries(*registries: MetricsRegistry) -> MetricsRegistry:
    """Fold many registries into one, deterministically.

    Counters sum (exemplars stay first-wins in argument order), gauges
    are last-writer-wins per label set, histograms merge bucket-wise
    (bounds must match), and ``info`` labels are later-wins.  Because
    the merge is order-insensitive for everything except ties that the
    caller already ordered, merging the same inputs always yields the
    same export bytes — the property the fleet scrape endpoint leans on.
    """
    if not registries:
        return MetricsRegistry()
    out = MetricsRegistry(prefix=registries[0].prefix)
    for reg in registries:
        if reg.prefix != out.prefix:
            raise ValueError(
                f"cannot merge prefixes {out.prefix!r} and {reg.prefix!r}"
            )
        out.info.update(reg.info)
        for fam in reg.families():
            if isinstance(fam, Histogram):
                merged = out.histogram(
                    fam.name, fam.help, buckets=fam.bounds, unit=fam.unit
                )
                if merged.bounds != fam.bounds:
                    raise ValueError(
                        f"histogram {fam.name!r}: bucket bounds differ"
                    )
                for key, (counts, total, n) in fam.samples.items():
                    have = merged.samples.get(key)
                    if have is None:
                        merged.samples[key] = (list(counts), total, n)
                    else:
                        hc, ht, hn = have
                        merged.samples[key] = (
                            [a + b for a, b in zip(hc, counts)],
                            ht + total,
                            hn + n,
                        )
                continue
            if isinstance(fam, Counter):
                merged = out.counter(fam.name, fam.help, fam.unit)
                for key, value in fam.samples.items():
                    merged.samples[key] = merged.samples.get(key, 0.0) + value
                for key, ex in fam.exemplars.items():
                    merged.exemplars.setdefault(key, ex)
                continue
            merged = out.gauge(fam.name, fam.help, fam.unit)
            for key, value in fam.samples.items():
                merged.samples[key] = value
    return out


# -- the OpenMetrics reader ---------------------------------------------------

# The label-set groups must not stop at a literal ``}`` *inside* a
# quoted label value, so they consume whole quoted strings as units.
_LABELS_BODY = r'(?:[^{}"]|"(?:[^"\\]|\\.)*")*'
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"
    r"(?:\{(?P<labels>" + _LABELS_BODY + r")\})?"
    r"\s+(?P<value>[^\s#]+)"
    r"(?:\s+#\s+\{(?P<ex_labels>" + _LABELS_BODY + r")\}\s+(?P<ex_value>\S+))?"
    r"\s*$"
)

_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

_UNESCAPES = {"\\": "\\", '"': '"', "n": "\n"}
_ESCAPE_SEQ_RE = re.compile(r"\\(.)")


def _unescape(value: str) -> str:
    # One pass, so ``\\n`` (escaped backslash, then a literal n) decodes
    # to ``\n`` the two characters — not to a newline, which is what a
    # chain of str.replace calls would produce.
    return _ESCAPE_SEQ_RE.sub(
        lambda m: _UNESCAPES.get(m.group(1), "\\" + m.group(1)), value
    )


def _parse_labels(body: str | None) -> dict[str, str]:
    if not body:
        return {}
    return {m.group(1): _unescape(m.group(2)) for m in _LABEL_RE.finditer(body)}


def _parse_num(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def parse_openmetrics(text: str) -> dict[str, Any]:
    """Parse OpenMetrics text into ``{name: {type, help, samples}}``.

    ``samples`` is a list of ``{labels, value[, exemplar]}`` dicts in
    file order, with counter ``_total`` / histogram ``_bucket``/``_count``
    /``_sum`` suffixes folded back onto their family (the suffix is kept
    per-sample as ``suffix``).  Raises :class:`ValueError` on any line
    that is neither a comment, a blank, nor a well-formed sample, and on
    a missing ``# EOF`` terminator — the CI smoke step relies on this
    strictness to catch a malformed export.
    """
    families: dict[str, Any] = {}
    declared: dict[str, str] = {}  # full metric name -> type
    saw_eof = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if saw_eof:
            raise ValueError(f"line {lineno}: content after # EOF")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] in ("TYPE", "HELP", "UNIT"):
                _, keyword, name, rest = parts
                fam = families.setdefault(
                    name, {"type": "untyped", "help": "", "unit": "", "samples": []}
                )
                if keyword == "TYPE":
                    fam["type"] = rest
                    declared[name] = rest
                elif keyword == "HELP":
                    fam["help"] = _unescape(rest)
                else:
                    fam["unit"] = rest
                continue
            raise ValueError(f"line {lineno}: malformed comment {raw!r}")
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample {raw!r}")
        name = m.group("name")
        suffix = ""
        base = name
        for cand in ("_total", "_bucket", "_count", "_sum", "_info"):
            trimmed = name[: -len(cand)]
            if name.endswith(cand) and (
                trimmed in declared or trimmed in families
            ):
                base, suffix = trimmed, cand
                break
        fam = families.setdefault(
            base, {"type": "untyped", "help": "", "unit": "", "samples": []}
        )
        try:
            sample: dict[str, Any] = {
                "labels": _parse_labels(m.group("labels")),
                "value": _parse_num(m.group("value")),
            }
            if suffix:
                sample["suffix"] = suffix
            if m.group("ex_labels") is not None:
                sample["exemplar"] = {
                    "labels": _parse_labels(m.group("ex_labels")),
                    "value": _parse_num(m.group("ex_value")),
                }
        except ValueError as exc:
            raise ValueError(f"line {lineno}: malformed sample {raw!r}") from exc
        fam["samples"].append(sample)
    if not saw_eof:
        raise ValueError("missing # EOF terminator")
    return families
