"""Self-contained single-file HTML run report.

``patternlet report NAME`` renders one captured run into one HTML file
with zero external references: inline CSS, inline SVG, system fonts.
The report shows the run the way a grader reads it —

- a per-rank **Gantt** built from the trace event stream (lockstep runs
  own the timeline one task at a time; blocked intervals are drawn in
  gray with their wait reason in the tooltip), lanes labelled with the
  same friendly rank/thread names the Chrome trace export uses;
- the **message matrix** (source rank × destination rank) as a
  sequential-blue heatmap with message and byte counts;
- the **blocked-time breakdown** as one stacked bar per task, colored by
  wait reason (fixed reason→color slots, so "barrier" is the same hue in
  every report ever rendered);
- the per-task **work histogram** for worksharing loops — the load
  balance the three loop-schedule patternlets teach;
- the **race verdict** inline (status color + icon + label, never color
  alone), plus summary stat tiles and the full metrics table.

Everything visual follows the reference dataviz palette: categorical
slots in fixed order, one-hue sequential ramp, status colors reserved
for the race verdict, text always in ink tokens, dark mode as selected
steps under both the OS media query and a ``data-theme`` override, and a
table view beside every chart.
"""

from __future__ import annotations

import html
from typing import Any, Iterable

from repro.obs.derive import blocked_intervals, run_metrics, run_summary
from repro.trace.events import Event, as_events
from repro.trace.export import display_task_name

__all__ = ["render_report", "write_report"]

#: Wait reason → fixed categorical slot (CSS class).  Color follows the
#: reason (the entity), never its rank in a particular run.
_REASON_SLOTS = {
    "barrier": "c1",
    "recv": "c2",
    "critical": "c3",
    "semaphore": "c4",
    "atomic": "c5",
    "mutex": "c1",
    "condvar": "c2",
    "ordered": "c3",
    "other": "cx",
}
_REASON_ORDER = ("barrier", "recv", "critical", "semaphore", "atomic",
                 "mutex", "condvar", "ordered", "other")


def _esc(text: Any) -> str:
    return html.escape(str(text), quote=True)


def _task_sort_key(label: str) -> tuple:
    if label == "main":
        return ()
    key: list[tuple[str, int]] = []
    for part in label.split("/"):
        prefix, _, num = part.partition(":")
        key.append((prefix, int(num)) if num.isdigit() else (part, -1))
    return tuple(key)


def _run_segments(events: list[Event]) -> list[tuple[str, int, int]]:
    """Timeline ownership as ``(task, start_seq, end_seq)`` segments.

    Lockstep interleaves one task at a time, so consecutive events with
    the same task label form one running segment.
    """
    segments: list[tuple[str, int, int]] = []
    for ev in events:
        if segments and segments[-1][0] == ev.task:
            segments[-1] = (ev.task, segments[-1][1], ev.seq)
        else:
            segments.append((ev.task, ev.seq, ev.seq))
    return segments


def _svg_gantt(events: list[Event]) -> str:
    if not events:
        return "<p class='muted'>No trace events recorded.</p>"
    segments = _run_segments(events)
    blocked = blocked_intervals(events)
    tasks = sorted({s[0] for s in segments}, key=_task_sort_key)
    lo, hi = events[0].seq, events[-1].seq
    extent = max(hi - lo, 1)
    width, label_w, lane_h, bar_h = 900, 150, 26, 14
    plot_w = width - label_w - 20
    height = lane_h * len(tasks) + 34

    def x(seq: int) -> float:
        return label_w + (seq - lo) / extent * plot_w

    rows = {t: i for i, t in enumerate(tasks)}
    parts = [
        f"<svg viewBox='0 0 {width} {height}' role='img' "
        f"aria-label='Per-rank Gantt over trace steps'>"
    ]
    for t, i in rows.items():
        y = i * lane_h + 4
        parts.append(
            f"<text x='{label_w - 8}' y='{y + bar_h - 3}' class='lane-label' "
            f"text-anchor='end'>{_esc(display_task_name(t))}</text>"
        )
        parts.append(
            f"<line x1='{label_w}' y1='{y + bar_h + 2}' x2='{width - 20}' "
            f"y2='{y + bar_h + 2}' class='grid'/>"
        )
    for task, start, end, reason in blocked:
        i = rows.get(task)
        if i is None:
            continue
        y = i * lane_h + 4
        w = max(x(end) - x(start), 1.5)
        parts.append(
            f"<rect x='{x(start):.1f}' y='{y + 3}' width='{w:.1f}' "
            f"height='{bar_h - 6}' class='blocked' rx='2'>"
            f"<title>{_esc(display_task_name(task))} blocked on "
            f"{_esc(reason)} (steps {start}–{end})</title></rect>"
        )
    for task, start, end in segments:
        i = rows.get(task)
        if i is None:
            continue
        y = i * lane_h + 4
        w = max(x(end) - x(start), 2.0)
        parts.append(
            f"<rect x='{x(start):.1f}' y='{y}' width='{w:.1f}' "
            f"height='{bar_h}' class='run' rx='2'>"
            f"<title>{_esc(display_task_name(task))} running "
            f"(steps {start}–{end})</title></rect>"
        )
    axis_y = lane_h * len(tasks) + 10
    parts.append(
        f"<line x1='{label_w}' y1='{axis_y}' x2='{width - 20}' y2='{axis_y}' "
        f"class='axis'/>"
    )
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        seq = lo + int(frac * extent)
        parts.append(
            f"<text x='{x(seq):.1f}' y='{axis_y + 16}' class='tick' "
            f"text-anchor='middle'>{seq}</text>"
        )
    parts.append("</svg>")
    legend = (
        "<div class='legend'>"
        "<span><i class='swatch run-sw'></i>running</span>"
        "<span><i class='swatch blocked-sw'></i>blocked (reason in tooltip)</span>"
        "<span class='muted'>x-axis: trace steps (event sequence)</span>"
        "</div>"
    )
    return "".join(parts) + legend


def _heatmap(summary: dict[str, Any]) -> str:
    matrix: dict[str, dict[str, int]] = summary["messages"]["matrix"]
    if not matrix:
        return "<p class='muted'>No point-to-point messages in this run.</p>"
    srcs = sorted({k.split("->")[0] for k in matrix}, key=_task_sort_key)
    dsts = sorted({k.split("->")[1] for k in matrix}, key=_task_sort_key)
    peak = max(cell["msgs"] for cell in matrix.values())
    head = "".join(f"<th scope='col'>to {_esc(d)}</th>" for d in dsts)
    rows = []
    for s in srcs:
        cells = []
        for d in dsts:
            cell = matrix.get(f"{s}->{d}")
            if cell is None:
                cells.append("<td class='ramp-0'>–</td>")
            else:
                bin_ = 1 + min(3, (cell["msgs"] * 4 - 1) // max(peak, 1))
                cells.append(
                    f"<td class='ramp-{bin_}' title='{cell['msgs']} msgs, "
                    f"{cell['bytes']} bytes'>{cell['msgs']}"
                    f"<span class='sub'>{cell['bytes']} B</span></td>"
                )
        rows.append(f"<tr><th scope='row'>from {_esc(s)}</th>{''.join(cells)}</tr>")
    return (
        "<table class='heatmap'><thead><tr><th></th>" + head + "</tr></thead>"
        "<tbody>" + "".join(rows) + "</tbody></table>"
        "<div class='legend'><span class='muted'>cell: messages sent "
        "(bytes below), darker = more</span></div>"
    )


def _blocked_chart(summary: dict[str, Any]) -> str:
    blocked: dict[str, dict[str, int]] = summary["blocked"]
    if not blocked:
        return "<p class='muted'>No task ever blocked — fully independent work.</p>"
    tasks = sorted(blocked, key=_task_sort_key)
    peak = max(sum(per.values()) for per in blocked.values())
    reasons = [r for r in _REASON_ORDER if any(r in per for per in blocked.values())]
    bars = []
    for t in tasks:
        per = blocked[t]
        spans = []
        for r in reasons:
            steps = per.get(r, 0)
            if not steps:
                continue
            pct = steps / max(peak, 1) * 100
            spans.append(
                f"<i class='seg {_REASON_SLOTS[r]}' style='width:{pct:.2f}%' "
                f"title='{_esc(r)}: {steps} steps'></i>"
            )
        total = sum(per.values())
        bars.append(
            f"<div class='hrow'><span class='hlabel'>"
            f"{_esc(display_task_name(t))}</span>"
            f"<span class='hbar'>{''.join(spans)}</span>"
            f"<span class='hval'>{total}</span></div>"
        )
    legend = "".join(
        f"<span><i class='swatch {_REASON_SLOTS[r]}'></i>{_esc(r)}</span>"
        for r in reasons
    )
    table_rows = "".join(
        f"<tr><th scope='row'>{_esc(display_task_name(t))}</th>"
        + "".join(f"<td>{blocked[t].get(r, 0)}</td>" for r in reasons)
        + f"<td>{sum(blocked[t].values())}</td></tr>"
        for t in tasks
    )
    table = (
        "<details><summary>table view</summary><table><thead><tr><th></th>"
        + "".join(f"<th scope='col'>{_esc(r)}</th>" for r in reasons)
        + "<th scope='col'>total</th></tr></thead><tbody>"
        + table_rows
        + "</tbody></table></details>"
    )
    return (
        "<div class='hchart'>" + "".join(bars) + "</div>"
        + f"<div class='legend'>{legend}"
        "<span class='muted'>blocked trace steps per task</span></div>" + table
    )


def _work_histogram(summary: dict[str, Any]) -> str:
    iters: dict[str, int] = summary["loop"]["iterations"]
    if not iters:
        return "<p class='muted'>No worksharing loop in this run.</p>"
    schedules = ", ".join(summary["loop"]["schedules"])
    tasks = sorted(iters, key=_task_sort_key)
    peak = max(iters.values())
    bars = []
    for t in tasks:
        pct = iters[t] / max(peak, 1) * 100
        bars.append(
            f"<div class='hrow'><span class='hlabel'>"
            f"{_esc(display_task_name(t))}</span>"
            f"<span class='hbar'><i class='seg c1' style='width:{pct:.2f}%' "
            f"title='{iters[t]} iterations'></i></span>"
            f"<span class='hval'>{iters[t]}</span></div>"
        )
    table = (
        "<details><summary>table view</summary><table><thead><tr>"
        "<th></th><th scope='col'>iterations</th></tr></thead><tbody>"
        + "".join(
            f"<tr><th scope='row'>{_esc(display_task_name(t))}</th>"
            f"<td>{iters[t]}</td></tr>"
            for t in tasks
        )
        + "</tbody></table></details>"
    )
    return (
        f"<p class='muted'>schedule: {_esc(schedules)}</p>"
        "<div class='hchart'>" + "".join(bars) + "</div>"
        "<div class='legend'><span class='muted'>loop iterations executed "
        "per task — the load-balance picture</span></div>" + table
    )


def _race_banner(summary: dict[str, Any]) -> str:
    races = summary["races"]
    if races:
        return (
            f"<div class='status critical'><span class='icon'>✕</span>"
            f"race detected — {races} unordered conflicting access"
            f"{'es' if races != 1 else ''} (happens-before verdict)</div>"
        )
    return (
        "<div class='status good'><span class='icon'>✓</span>"
        "no races — every conflicting access pair is ordered</div>"
    )


def _stat_tiles(summary: dict[str, Any]) -> str:
    tiles = [
        ("span", f"{summary['span']:g}", "critical-path virtual time"),
        ("speedup", f"{summary['speedup']:g}×", "total work / span"),
        ("efficiency", f"{summary['efficiency'] * 100:.0f}%", "speedup / tasks"),
        ("barrier imbalance", f"{summary['barrier']['imbalance_fraction'] * 100:.1f}%",
         "mean arrival spread / span"),
        ("critical serialisation",
         f"{summary['critical']['serialisation_fraction'] * 100:.1f}%",
         "steps inside critical sections"),
    ]
    out = []
    for label, value, sub in tiles:
        out.append(
            f"<div class='tile'><div class='tile-value'>{_esc(value)}</div>"
            f"<div class='tile-label'>{_esc(label)}</div>"
            f"<div class='tile-sub'>{_esc(sub)}</div></div>"
        )
    return "<div class='tiles'>" + "".join(out) + "</div>"


def _metrics_table(reg: Any) -> str:
    rows = []
    for fam in reg.families():
        if fam.kind == "histogram":
            for key in fam.labels_seen():
                _, total, count = fam.samples[key]
                labels = ", ".join(f"{k}={v}" for k, v in key) or "–"
                rows.append(
                    f"<tr><td>{_esc(fam.name)}</td><td>histogram</td>"
                    f"<td>{_esc(labels)}</td>"
                    f"<td>count={count:g} sum={total:g}</td></tr>"
                )
            continue
        for key in fam.labels_seen():
            labels = ", ".join(f"{k}={v}" for k, v in key) or "–"
            value = fam.samples[key]
            rows.append(
                f"<tr><td>{_esc(fam.name)}</td><td>{_esc(fam.kind)}</td>"
                f"<td>{_esc(labels)}</td><td>{value:g}</td></tr>"
            )
    return (
        "<details><summary>all metrics</summary><table><thead>"
        "<tr><th>family</th><th>type</th><th>labels</th><th>value</th></tr>"
        "</thead><tbody>" + "".join(rows) + "</tbody></table></details>"
    )


_CSS = """
:root {
  color-scheme: light;
  --surface: #fcfcfb; --page: #f9f9f7;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --c1: #2a78d6; --c2: #eb6834; --c3: #1baf7a; --c4: #eda100; --c5: #e87ba4;
  --blocked: #e1e0d9;
  --ramp-0: transparent; --ramp-1: #cde2fb; --ramp-2: #9ec5f4;
  --ramp-3: #6da7ec; --ramp-4: #3987e5; --ramp-ink-4: #fcfcfb;
  --good: #0ca30c; --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) {
    color-scheme: dark;
    --surface: #1a1a19; --page: #0d0d0d;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835;
    --border: rgba(255,255,255,0.10);
    --c1: #3987e5; --c2: #d95926; --c3: #199e70; --c4: #c98500; --c5: #d55181;
    --blocked: #2c2c2a;
    --ramp-1: #104281; --ramp-2: #1c5cab; --ramp-3: #256abf; --ramp-4: #3987e5;
    --ramp-ink-4: #ffffff;
  }
}
:root[data-theme="dark"] {
  color-scheme: dark;
  --surface: #1a1a19; --page: #0d0d0d;
  --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
  --grid: #2c2c2a; --axis: #383835;
  --border: rgba(255,255,255,0.10);
  --c1: #3987e5; --c2: #d95926; --c3: #199e70; --c4: #c98500; --c5: #d55181;
  --blocked: #2c2c2a;
  --ramp-1: #104281; --ramp-2: #1c5cab; --ramp-3: #256abf; --ramp-4: #3987e5;
  --ramp-ink-4: #ffffff;
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page); color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 960px; margin: 0 auto; }
section {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 20px; margin: 16px 0;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 0 0 12px; color: var(--ink); }
.meta { color: var(--ink-2); font-size: 12px; }
.meta code { color: var(--ink-2); }
.muted { color: var(--muted); font-size: 12px; }
svg { width: 100%; height: auto; display: block; }
svg .lane-label, svg .tick { font: 11px system-ui, sans-serif; fill: var(--ink-2); }
svg .grid { stroke: var(--grid); stroke-width: 1; }
svg .axis { stroke: var(--axis); stroke-width: 1; }
svg .run { fill: var(--c1); }
svg .run:hover { opacity: 0.8; }
svg .blocked { fill: var(--blocked); }
.legend { display: flex; gap: 16px; flex-wrap: wrap; margin-top: 8px;
  font-size: 12px; color: var(--ink-2); align-items: center; }
.legend .swatch { display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 5px; }
.run-sw { background: var(--c1); } .blocked-sw { background: var(--blocked); }
.c1 { background: var(--c1); } .c2 { background: var(--c2); }
.c3 { background: var(--c3); } .c4 { background: var(--c4); }
.c5 { background: var(--c5); } .cx { background: var(--muted); }
.hchart { display: flex; flex-direction: column; gap: 6px; }
.hrow { display: flex; align-items: center; gap: 10px; }
.hlabel { flex: 0 0 140px; text-align: right; font-size: 12px; color: var(--ink-2); }
.hbar { flex: 1; display: flex; gap: 2px; height: 14px; }
.hbar .seg { display: block; height: 100%; border-radius: 0 4px 4px 0; }
.hbar .seg:hover { opacity: 0.8; }
.hval { flex: 0 0 70px; font-size: 12px; color: var(--ink-2);
  font-variant-numeric: tabular-nums; }
table { border-collapse: collapse; font-size: 12px; margin-top: 8px; }
th, td { padding: 4px 10px; text-align: right; border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums; color: var(--ink); }
th { color: var(--ink-2); font-weight: 600; }
thead th { border-bottom: 1px solid var(--axis); }
tbody th { text-align: right; }
.heatmap td { min-width: 72px; }
.heatmap td .sub { display: block; font-size: 10px; opacity: 0.75; }
.heatmap .ramp-0 { background: var(--ramp-0); color: var(--muted); }
.heatmap .ramp-1 { background: var(--ramp-1); }
.heatmap .ramp-2 { background: var(--ramp-2); }
.heatmap .ramp-3 { background: var(--ramp-3); }
.heatmap .ramp-4 { background: var(--ramp-4); color: var(--ramp-ink-4); }
.tiles { display: flex; gap: 12px; flex-wrap: wrap; }
.tile { flex: 1 1 150px; border: 1px solid var(--border); border-radius: 8px;
  padding: 10px 14px; }
.tile-value { font-size: 24px; font-weight: 600; }
.tile-label { font-size: 12px; color: var(--ink-2); margin-top: 2px; }
.tile-sub { font-size: 11px; color: var(--muted); }
.status { display: flex; align-items: center; gap: 8px; font-weight: 600;
  padding: 8px 0; }
.status .icon { font-size: 14px; }
.status.good .icon { color: var(--good); }
.status.critical .icon { color: var(--critical); }
details summary { cursor: pointer; font-size: 12px; color: var(--ink-2);
  margin-top: 8px; }
"""


def render_report(run: Any) -> str:
    """Render one :class:`CapturedRun` into self-contained HTML text."""
    events = as_events(run.trace)
    summary = run_summary(events, tasks_hint=run.meta.get("tasks"))
    reg = run_metrics(run)
    info = reg.info
    meta_bits = []
    for field in ("patternlet", "backend", "mode", "tasks", "seed"):
        value = run.meta.get(field)
        if value is not None:
            meta_bits.append(f"{field} <code>{_esc(value)}</code>")
    meta_bits.append(f"engine <code>{_esc(info.get('version', '?'))}"
                     f"+{_esc(info.get('fingerprint', '?'))}</code>")
    meta_bits.append(f"wall <code>{run.wall * 1000:.1f} ms</code> (informational "
                     "— not part of canonical metrics)")
    title = run.meta.get("patternlet", "run")
    body = f"""<main>
<section>
<h1>patternlet run report — {_esc(title)}</h1>
<p class='meta'>{' · '.join(meta_bits)}</p>
{_race_banner(summary)}
{_stat_tiles(summary)}
</section>
<section><h2>Per-rank timeline (Gantt)</h2>{_svg_gantt(events)}</section>
<section><h2>Worksharing load balance</h2>{_work_histogram(summary)}</section>
<section><h2>Blocked-time breakdown</h2>{_blocked_chart(summary)}</section>
<section><h2>Message matrix</h2>{_heatmap(summary)}</section>
<section><h2>Metrics</h2>{_metrics_table(reg)}</section>
</main>"""
    return (
        "<!DOCTYPE html>\n<html lang='en'>\n<head>\n<meta charset='utf-8'>\n"
        f"<title>patternlet report — {_esc(title)}</title>\n"
        "<meta name='viewport' content='width=device-width, initial-scale=1'>\n"
        f"<style>{_CSS}</style>\n</head>\n<body>\n{body}\n</body>\n</html>\n"
    )


def write_report(run: Any, path: Any) -> None:
    """Write the HTML report for ``run`` to ``path`` (UTF-8)."""
    text = render_report(run)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
