"""Post-hoc metric derivation: a pure function of the event trace.

Everything here reads a finished event stream (any
:class:`~repro.trace.events.TraceRecorder` or event iterable) and never
touches live runtime state.  That purity is the layer's core invariant:
a cache-served or pickled run rebuilds its trace byte-identically (the
batch codec guarantees it), so :func:`derive_metrics` /
:func:`run_summary` yield **byte-identical metrics** for serial, pooled,
and cache-served executions of the same spec — asserted by tests, relied
on by graders and CI.

Wall-clock time is deliberately *not* a canonical metric: it differs
between a live run and a cache serve by construction.  It appears only
informationally in reports.

Derived quantities:

- per-task scheduler counters (switches in, blocks, wakes) from the
  ``sched.*`` stream;
- per-task message counters and byte volumes (LogP packet sizes) from
  ``msg.send``/``msg.recv``, plus the source→destination message matrix;
- blocked-time accounting: a ``sched.block`` → next ``sched.run`` pair
  for the same task is one blocked interval, measured in trace steps
  (the deterministic timeline) and classified by the first semantic
  event the task emits after resuming (barrier / message / critical /
  semaphore / ...);
- critical-section hold time and the serialisation fraction it implies;
- barrier imbalance from per-generation arrival-clock spread;
- per-task work histograms for worksharing loops (``loop.assign`` /
  ``loop.chunk`` iteration counts — the Fig. 15/16/17 load-balance
  comparison, as numbers);
- span/LogP speedup and efficiency estimates from final virtual clocks.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.obs.registry import MetricsRegistry
from repro.trace.events import Event, TraceRecorder, as_events
from repro.trace.span import final_vtimes

__all__ = [
    "blocked_intervals",
    "derive_metrics",
    "metrics_dict",
    "run_metrics",
    "run_summary",
]

#: Blocked-interval classification: first path component of the first
#: semantic (non-``sched.*``) event a task emits after resuming.
_REASONS = {
    "barrier": "barrier",
    "pbar": "barrier",
    "msg": "recv",
    "critical": "critical",
    "atomic": "atomic",
    "sem": "semaphore",
    "mutex": "mutex",
    "cond": "condvar",
    "ordered": "ordered",
}


def _classify(kind: str) -> str:
    return _REASONS.get(kind.split(".", 1)[0], "other")


def blocked_intervals(
    source: "Iterable[Event] | TraceRecorder",
) -> list[tuple[str, int, int, str]]:
    """Every blocked interval as ``(task, start_seq, end_seq, reason)``.

    An interval opens at a task's ``sched.block`` and closes at its next
    ``sched.run``; its length in trace steps is the deterministic analog
    of time spent waiting.  The reason is the classification of the
    first semantic event the task emits after resuming (a task that
    blocks at a barrier departs through ``barrier.depart`` first, a
    blocked receive completes through ``msg.recv``, ...).
    """
    events = as_events(source)
    open_block: dict[str, int] = {}
    pending: list[tuple[str, int, int]] = []  # closed, reason not yet known
    out: list[tuple[str, int, int, str]] = []
    awaiting: dict[str, int] = {}  # task -> index into pending
    for ev in events:
        if ev.kind == "sched.block":
            open_block[ev.task] = ev.seq
        elif ev.kind == "sched.run":
            start = open_block.pop(ev.task, None)
            if start is not None:
                awaiting[ev.task] = len(pending)
                pending.append((ev.task, start, ev.seq))
        elif not ev.kind.startswith("sched."):
            idx = awaiting.pop(ev.task, None)
            if idx is not None:
                task, start, end = pending[idx]
                out.append((task, start, end, _classify(ev.kind)))
                pending[idx] = ("", -1, -1)  # consumed
    for task, idx in sorted(awaiting.items()):
        t, start, end = pending[idx]
        if start >= 0:
            out.append((t, start, end, "other"))
    out.sort(key=lambda iv: iv[1])
    return out


def _rank_pair(ev: Event) -> tuple[str, str] | None:
    """(src, dst) rank indices for a ``msg.send`` event, as strings."""
    dest = ev.payload.get("dest")
    if dest is None:
        return None
    # The sender's rank is the trailing mpi:N component of its label.
    src = None
    for part in reversed(ev.task.split("/")):
        if part.startswith("mpi:"):
            src = part[4:]
            break
    if src is None:
        src = ev.task
    return src, str(dest)


def derive_metrics(
    source: "Iterable[Event] | TraceRecorder",
    *,
    registry: MetricsRegistry | None = None,
) -> MetricsRegistry:
    """Populate a :class:`MetricsRegistry` purely from an event stream."""
    reg = registry if registry is not None else MetricsRegistry()
    events = as_events(source)

    switches = reg.counter(
        "sched_switches", "Scheduler switches into each task (sched.run events)."
    )
    blocks = reg.counter("sched_blocks", "Times each task blocked at a switch point.")
    wakes = reg.counter("sched_wakes", "Times each blocked task was woken.")
    msgs_sent = reg.counter("messages_sent", "Point-to-point messages sent per task.")
    bytes_sent = reg.counter(
        "message_bytes_sent", "Message payload bytes sent per task (LogP sizes).",
        unit="bytes",
    )
    msgs_recvd = reg.counter(
        "messages_received", "Point-to-point messages received per task."
    )
    bytes_recvd = reg.counter(
        "message_bytes_received",
        "Message payload bytes received per task (LogP sizes).",
        unit="bytes",
    )
    barriers = reg.counter("barrier_arrivals", "Barrier arrivals per task.")
    criticals = reg.counter(
        "critical_acquisitions", "Critical-section acquisitions per task."
    )
    atomics = reg.counter("atomic_updates", "Atomic guarded updates per task.")
    loop_iters = reg.counter(
        "loop_iterations", "Worksharing-loop iterations executed per task."
    )
    prints = reg.counter("lines_printed", "Completed stdout lines per task.")
    blocked = reg.gauge(
        "blocked_steps",
        "Trace steps spent blocked, by task and wait reason.",
        unit="steps",
    )
    hold = reg.gauge(
        "critical_hold_steps",
        "Trace steps spent inside critical sections, per task.",
        unit="steps",
    )
    sizes = reg.histogram(
        "message_size_bytes", "Distribution of sent message sizes.", unit="bytes"
    )
    waits = reg.histogram(
        "blocked_interval_steps",
        "Distribution of blocked-interval lengths, by wait reason.",
        unit="steps",
    )

    crit_open: dict[str, int] = {}
    for ev in events:
        kind = ev.kind
        task = {"task": ev.task}
        if kind == "sched.run":
            switches.inc(task)
        elif kind == "sched.block":
            blocks.inc(task)
        elif kind == "sched.wake":
            wakes.inc(task)
        elif kind == "msg.send":
            size = ev.payload.get("size", 0)
            msgs_sent.inc(task, exemplar={"trace_seq": ev.seq})
            bytes_sent.inc(task, size)
            sizes.observe(size, {"task": ev.task})
        elif kind == "msg.recv":
            msgs_recvd.inc(task, exemplar={"trace_seq": ev.seq})
            bytes_recvd.inc(task, ev.payload.get("size", 0))
        elif kind == "barrier.arrive":
            barriers.inc(task)
        elif kind == "critical.acquire":
            criticals.inc(task, exemplar={"trace_seq": ev.seq})
            crit_open[ev.task] = ev.seq
        elif kind == "critical.release":
            start = crit_open.pop(ev.task, None)
            if start is not None:
                hold.add(ev.seq - start, task)
        elif kind == "atomic.release":
            atomics.inc(task)
        elif kind in ("loop.assign", "loop.chunk"):
            loop_iters.inc(
                {"task": ev.task, "schedule": ev.payload.get("schedule", "?")},
                ev.payload.get("count", 0),
                exemplar={"trace_seq": ev.seq},
            )
        elif kind == "io.print":
            prints.inc(task)

    for task_label, start, end, reason in blocked_intervals(events):
        steps = end - start
        blocked.add(steps, {"task": task_label, "reason": reason})
        waits.observe(steps, {"reason": reason})
    return reg


def run_summary(
    source: "Iterable[Event] | TraceRecorder",
    *,
    tasks_hint: int | None = None,
) -> dict[str, Any]:
    """Parallel-performance summary of one run, as one ordered plain dict.

    All values are pure functions of the trace (wall time is excluded on
    purpose — see the module docstring).  ``tasks_hint`` supplies the
    configured task count for the efficiency estimate when the trace
    alone cannot name it (e.g. a run whose region never forked).
    """
    events = as_events(source)
    finals = final_vtimes(events)
    span = max(finals.values()) if finals else 0.0
    total_work = sum(finals.values())
    n_tasks = tasks_hint if tasks_hint else len(finals)
    speedup = (total_work / span) if span > 0 else 1.0
    efficiency = (speedup / n_tasks) if n_tasks else 1.0

    # Barrier imbalance: arrival-clock spread per (scope, generation).
    arrivals: dict[tuple[Any, Any], list[float]] = {}
    for ev in events:
        if ev.kind == "barrier.arrive" and ev.vtime is not None:
            key = (ev.payload.get("scope"), ev.payload.get("generation"))
            arrivals.setdefault(key, []).append(ev.vtime)
    spreads = [max(v) - min(v) for v in arrivals.values() if len(v) > 1]
    mean_spread = sum(spreads) / len(spreads) if spreads else 0.0
    imbalance = (mean_spread / span) if span > 0 else 0.0

    # Critical-section serialisation: held trace steps over stream extent.
    crit_open: dict[str, int] = {}
    hold_steps = 0
    acquisitions = 0
    for ev in events:
        if ev.kind == "critical.acquire":
            acquisitions += 1
            crit_open[ev.task] = ev.seq
        elif ev.kind == "critical.release":
            start = crit_open.pop(ev.task, None)
            if start is not None:
                hold_steps += ev.seq - start
    extent = (events[-1].seq - events[0].seq) if len(events) > 1 else 0
    serial_fraction = (hold_steps / extent) if extent > 0 else 0.0

    # Worksharing loops: the per-task work histogram.
    loop_counts: dict[str, int] = {}
    schedules: set[str] = set()
    for ev in events:
        if ev.kind in ("loop.assign", "loop.chunk"):
            loop_counts[ev.task] = loop_counts.get(ev.task, 0) + int(
                ev.payload.get("count", 0)
            )
            schedules.add(str(ev.payload.get("schedule", "?")))

    # Message matrix: src rank -> dst rank, message and byte counts.
    matrix: dict[str, dict[str, int]] = {}
    total_msgs = 0
    total_bytes = 0
    for ev in events:
        if ev.kind != "msg.send":
            continue
        pair = _rank_pair(ev)
        if pair is None:
            continue
        cell = matrix.setdefault(f"{pair[0]}->{pair[1]}", {"msgs": 0, "bytes": 0})
        size = int(ev.payload.get("size", 0))
        cell["msgs"] += 1
        cell["bytes"] += size
        total_msgs += 1
        total_bytes += size

    blocked: dict[str, dict[str, int]] = {}
    for task_label, start, end, reason in blocked_intervals(events):
        per = blocked.setdefault(task_label, {})
        per[reason] = per.get(reason, 0) + (end - start)

    from repro.trace import detect_races

    races = len(detect_races(events))

    return {
        "tasks": sorted(finals),
        "span": span,
        "total_work": total_work,
        "speedup": round(speedup, 6),
        "efficiency": round(efficiency, 6),
        "barrier": {
            "generations": len(arrivals),
            "mean_arrival_spread": round(mean_spread, 6),
            "imbalance_fraction": round(imbalance, 6),
        },
        "critical": {
            "acquisitions": acquisitions,
            "hold_steps": hold_steps,
            "serialisation_fraction": round(serial_fraction, 6),
        },
        "loop": {
            "schedules": sorted(schedules),
            "iterations": {k: loop_counts[k] for k in sorted(loop_counts)},
        },
        "messages": {
            "total": total_msgs,
            "bytes": total_bytes,
            "matrix": {k: matrix[k] for k in sorted(matrix)},
        },
        "blocked": {
            t: {r: blocked[t][r] for r in sorted(blocked[t])}
            for t in sorted(blocked)
        },
        "races": races,
    }


#: run.meta fields that may label metrics.  ``cached`` (and anything else
#: that differs between a live and a served run) must never appear here —
#: the serial / pooled / cache-served byte-identity depends on it.
_IDENTITY_META = ("patternlet", "backend", "tasks", "mode", "seed", "topology")


def run_metrics(run: Any) -> MetricsRegistry:
    """The full metrics registry for one :class:`CapturedRun`.

    Derived counters and histograms from the trace, summary gauges, and
    the engine-identity info labels (version + fingerprint) every
    metrics artifact must carry.
    """
    from repro._version import __version__
    from repro.batch.specs import engine_fingerprint

    reg = MetricsRegistry()
    reg.info["version"] = __version__
    reg.info["fingerprint"] = engine_fingerprint()
    for field in _IDENTITY_META:
        value = run.meta.get(field)
        if value is not None:
            reg.info[field] = str(value)
    derive_metrics(run.trace, registry=reg)
    summary = run_summary(run.trace, tasks_hint=run.meta.get("tasks"))
    g = reg.gauge("run_span", "Critical-path virtual time of the run.", unit="work")
    g.set(summary["span"])
    reg.gauge("run_total_work", "Sum of final task clocks.", unit="work").set(
        summary["total_work"]
    )
    reg.gauge("run_speedup", "Estimated speedup: total work over span.").set(
        summary["speedup"]
    )
    reg.gauge("run_efficiency", "Speedup over task count.").set(
        summary["efficiency"]
    )
    reg.gauge(
        "barrier_imbalance_fraction",
        "Mean barrier arrival spread over span.",
    ).set(summary["barrier"]["imbalance_fraction"])
    reg.gauge(
        "critical_serialisation_fraction",
        "Trace steps inside critical sections over stream extent.",
    ).set(summary["critical"]["serialisation_fraction"])
    reg.gauge("races_detected", "Happens-before race verdict count.").set(
        summary["races"]
    )
    return reg


def metrics_dict(run: Any) -> dict[str, Any]:
    """Canonical JSON-able metrics document for one run.

    This is the object the determinism tests compare byte-for-byte
    (after ``json.dumps(..., sort_keys=True)``): registry families,
    engine identity, and the summary — and nothing wall-clock-shaped.
    """
    reg = run_metrics(run)
    doc = reg.to_json()
    doc["summary"] = run_summary(run.trace, tasks_hint=run.meta.get("tasks"))
    return doc
