"""Live instrumentation probes for the scheduler and transport hot paths.

The engine's hot paths (lockstep switch points, `Comm.send`/`recv`) each
carry one probe hook shaped like the trace fast path::

    p = _live.probe
    if p is not None:
        p.sent(label, size)

``probe`` is a module global read at call time (never bound at import,
so installing a probe mid-process takes effect everywhere immediately,
mirroring ``repro.trace.events._top``).  When no probe is installed the
cost is one attribute read and a ``None`` test; the bench suite gates
that overhead via the ``metrics_overhead_pct`` metric.

This module imports nothing from the engine — it is pure stdlib — so
scheduler/transport/sync modules can import it without cycles.

Live counters and the post-hoc derivation pass (:mod:`repro.obs.derive`)
intentionally share counter names; the hypothesis suite asserts they
agree event-for-event on traced runs.
"""

from __future__ import annotations

from typing import Any, Iterator

from contextlib import contextmanager

__all__ = ["Probe", "probe", "probing"]

#: The installed probe, or None.  Hot paths read ``_live.probe`` through
#: the module (not ``from repro.obs.live import probe``) so reinstalls
#: are visible without rebinding.
probe: "Probe | None" = None


class Probe:
    """Per-task counters fed directly by engine hook sites.

    Keys are task labels (``"main"``, ``"omp:2"``, ``"mpi:1/omp:0"`` —
    the same vocabulary the trace spine uses), so live snapshots line up
    with trace-derived metrics label-for-label.
    """

    __slots__ = (
        "switches",
        "blocks",
        "wakes",
        "msgs_sent",
        "bytes_sent",
        "msgs_recvd",
        "bytes_recvd",
        "barrier_arrivals",
        "critical_acquisitions",
        "atomic_updates",
    )

    def __init__(self) -> None:
        self.switches: dict[str, int] = {}
        self.blocks: dict[str, int] = {}
        self.wakes: dict[str, int] = {}
        self.msgs_sent: dict[str, int] = {}
        self.bytes_sent: dict[str, int] = {}
        self.msgs_recvd: dict[str, int] = {}
        self.bytes_recvd: dict[str, int] = {}
        self.barrier_arrivals: dict[str, int] = {}
        self.critical_acquisitions: dict[str, int] = {}
        self.atomic_updates: dict[str, int] = {}

    # -- hook entry points (one per engine site) ------------------------
    def run(self, task: str) -> None:
        """The scheduler switched into ``task`` (a ``sched.run``)."""
        self.switches[task] = self.switches.get(task, 0) + 1

    def block(self, task: str) -> None:
        """``task`` blocked at a switch point (a ``sched.block``)."""
        self.blocks[task] = self.blocks.get(task, 0) + 1

    def wake(self, task: str) -> None:
        """A blocked ``task`` was promoted to runnable (a ``sched.wake``)."""
        self.wakes[task] = self.wakes.get(task, 0) + 1

    def sent(self, task: str, size: int) -> None:
        """``task`` sent one message of ``size`` LogP bytes."""
        self.msgs_sent[task] = self.msgs_sent.get(task, 0) + 1
        self.bytes_sent[task] = self.bytes_sent.get(task, 0) + size

    def received(self, task: str, size: int) -> None:
        """``task`` completed one receive of ``size`` LogP bytes."""
        self.msgs_recvd[task] = self.msgs_recvd.get(task, 0) + 1
        self.bytes_recvd[task] = self.bytes_recvd.get(task, 0) + size

    def barrier(self, task: str) -> None:
        """``task`` arrived at a barrier."""
        self.barrier_arrivals[task] = self.barrier_arrivals.get(task, 0) + 1

    def critical(self, task: str) -> None:
        """``task`` acquired a critical section."""
        self.critical_acquisitions[task] = (
            self.critical_acquisitions.get(task, 0) + 1
        )

    def atomic(self, task: str) -> None:
        """``task`` completed one atomic guarded update."""
        self.atomic_updates[task] = self.atomic_updates.get(task, 0) + 1

    # -- views ----------------------------------------------------------
    def snapshot(self) -> dict[str, dict[str, int]]:
        """All counters as one ordered plain dict (stable for asserts)."""
        out: dict[str, dict[str, int]] = {}
        for name in self.__slots__:
            table: dict[str, int] = getattr(self, name)
            out[name] = {k: table[k] for k in sorted(table)}
        return out

    def to_registry(self, registry: Any = None) -> Any:
        """Export counters into a :class:`MetricsRegistry`.

        Family names match :func:`repro.obs.derive.derive_metrics` so a
        live snapshot and a trace derivation are directly comparable.
        """
        from repro.obs.registry import MetricsRegistry

        reg = registry if registry is not None else MetricsRegistry()
        spec = {
            "switches": ("sched_switches", "Scheduler switches into each task (sched.run events).", None),
            "blocks": ("sched_blocks", "Times each task blocked at a switch point.", None),
            "wakes": ("sched_wakes", "Times each blocked task was woken.", None),
            "msgs_sent": ("messages_sent", "Point-to-point messages sent per task.", None),
            "bytes_sent": ("message_bytes_sent", "Message payload bytes sent per task (LogP sizes).", "bytes"),
            "msgs_recvd": ("messages_received", "Point-to-point messages received per task.", None),
            "bytes_recvd": ("message_bytes_received", "Message payload bytes received per task (LogP sizes).", "bytes"),
            "barrier_arrivals": ("barrier_arrivals", "Barrier arrivals per task.", None),
            "critical_acquisitions": ("critical_acquisitions", "Critical-section acquisitions per task.", None),
            "atomic_updates": ("atomic_updates", "Atomic guarded updates per task.", None),
        }
        for attr, (name, help_text, unit) in spec.items():
            counter = reg.counter(name, help_text, unit=unit)
            table: dict[str, int] = getattr(self, attr)
            for task in sorted(table):
                counter.inc({"task": task}, table[task])
        return reg


@contextmanager
def probing(p: Probe | None = None) -> Iterator[Probe]:
    """Install ``p`` (or a fresh :class:`Probe`) for the dynamic extent.

    Probes do not nest — the engine feeds exactly one — so installing
    over an existing probe raises rather than silently splitting counts.
    """
    global probe
    if probe is not None:
        raise RuntimeError("a live metrics probe is already installed")
    installed = p if p is not None else Probe()
    probe = installed
    try:
        yield installed
    finally:
        probe = None


def cache_counters(registry: Any, stats: dict[str, int]) -> None:
    """Record run-cache hit/miss/store stats as registry counters."""
    names = {
        "hits": ("cache_hits", "Run-cache hits."),
        "misses": ("cache_misses", "Run-cache misses."),
        "stores": ("cache_stores", "Run records written to the cache."),
    }
    for key, (name, help_text) in names.items():
        registry.counter(name, help_text).inc(None, int(stats.get(key, 0)))
