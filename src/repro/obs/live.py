"""Live instrumentation probes for the scheduler and transport hot paths.

The engine's hot paths (lockstep switch points, `Comm.send`/`recv`) each
carry one probe hook shaped like the trace fast path::

    p = _live.probe
    if p is not None:
        p.run(label)

``probe`` is a module global read at call time (never bound at import,
so installing a probe mid-process takes effect everywhere immediately,
mirroring ``repro.trace.events._top``).  When no probe is installed the
cost is one attribute read and a ``None`` test; the bench suite gates
that overhead via the ``metrics_overhead_pct`` metric.

When a probe *is* installed, each hook attribute is a bound
``list.append`` — a C call with no Python frame, no dict hashing, no
integer boxing on the hot path.  The messaging hooks go one step
further: a :class:`~repro.mp.comm.Comm` asks for
``sent_for(label)``/``received_for(label)`` *once at construction*
(communicators run on their owning rank task, so the label is fixed)
and the per-event call is then a bare ``append(size)`` — no tuple, no
label resolution.  Consequence: a probe only counts traffic of
communicators created while it was installed, which every consumer
(``probing()`` wraps whole runs) already satisfies.  Aggregation into
per-task counter tables is deferred to first read
(``snapshot()``/``to_registry()``/any counter property), which is why
probed runs stay within the documented ~3-5% overhead envelope instead
of paying a Python-level dict update per event.

This module imports nothing from the engine — it is pure stdlib — so
scheduler/transport/sync modules can import it without cycles.

Live counters and the post-hoc derivation pass (:mod:`repro.obs.derive`)
intentionally share counter names; the hypothesis suite asserts they
agree event-for-event on traced runs.
"""

from __future__ import annotations

from typing import Any, Iterator

from contextlib import contextmanager

__all__ = ["Probe", "probe", "probing"]

#: The installed probe, or None.  Hot paths read ``_live.probe`` through
#: the module (not ``from repro.obs.live import probe``) so reinstalls
#: are visible without rebinding.
probe: "Probe | None" = None


class Probe:
    """Per-task counters fed directly by engine hook sites.

    Keys are task labels (``"main"``, ``"omp:2"``, ``"mpi:1/omp:0"`` —
    the same vocabulary the trace spine uses), so live snapshots line up
    with trace-derived metrics label-for-label.

    The hook attributes (``run``, ``block``, ``wake``, ``barrier``,
    ``critical``, ``atomic``) are bound ``list.append`` methods over
    per-kind event buffers.  Message traffic goes through
    :meth:`sent_for`/:meth:`received_for`: a communicator binds its
    task's size-list append once at construction, so the per-event call
    carries no label and allocates nothing.  Buffers are folded into the
    counter tables lazily, on first read of any counter view — hot
    paths never touch a Python-level dict update.
    """

    #: (buffer attr, public counter view fed by it)
    _TABLES = (
        ("_run_buf", "switches"),
        ("_block_buf", "blocks"),
        ("_wake_buf", "wakes"),
        ("_barrier_buf", "barrier_arrivals"),
        ("_critical_buf", "critical_acquisitions"),
        ("_atomic_buf", "atomic_updates"),
    )

    #: Counter-view names in export order (mirrors the old slot order).
    _COUNTERS = (
        "switches",
        "blocks",
        "wakes",
        "msgs_sent",
        "bytes_sent",
        "msgs_recvd",
        "bytes_recvd",
        "barrier_arrivals",
        "critical_acquisitions",
        "atomic_updates",
    )

    __slots__ = (
        "_run_buf",
        "_block_buf",
        "_wake_buf",
        "_sent_by",
        "_recv_by",
        "_barrier_buf",
        "_critical_buf",
        "_atomic_buf",
        "_tables",
        "run",
        "block",
        "wake",
        "barrier",
        "critical",
        "atomic",
    )

    def __init__(self) -> None:
        self._run_buf: list[str] = []
        self._block_buf: list[str] = []
        self._wake_buf: list[str] = []
        self._sent_by: dict[str, list[int]] = {}
        self._recv_by: dict[str, list[int]] = {}
        self._barrier_buf: list[str] = []
        self._critical_buf: list[str] = []
        self._atomic_buf: list[str] = []
        self._tables: dict[str, dict[str, int]] = {
            name: {} for name in self._COUNTERS
        }
        # Hook entry points: bound C appends, no Python frame per event.
        self.run = self._run_buf.append
        self.block = self._block_buf.append
        self.wake = self._wake_buf.append
        self.barrier = self._barrier_buf.append
        self.critical = self._critical_buf.append
        self.atomic = self._atomic_buf.append

    # -- per-task messaging hooks ----------------------------------------
    def sent_for(self, task: str):
        """Bound per-event hook for one task's sends: ``hook(size)``.

        A communicator calls this once at construction; every send then
        costs one C-level ``list.append`` of an already-boxed int.
        """
        return self._sent_by.setdefault(task, []).append

    def received_for(self, task: str):
        """Bound per-event hook for one task's receives: ``hook(size)``."""
        return self._recv_by.setdefault(task, []).append

    # -- aggregation -----------------------------------------------------
    def _flush(self) -> None:
        """Fold buffered events into the counter tables.

        Safe against concurrent appends (thread-mode runs): the copied
        prefix is deleted by exact length, so an event appended mid-fold
        survives for the next flush.
        """
        tables = self._tables
        for buf_name, view in self._TABLES:
            buf: list = getattr(self, buf_name)
            if not buf:
                continue
            items = buf[:]
            del buf[: len(items)]
            tab = tables[view]
            for task in items:
                tab[task] = tab.get(task, 0) + 1
        for by, msgs_view, bytes_view in (
            (self._sent_by, "msgs_sent", "bytes_sent"),
            (self._recv_by, "msgs_recvd", "bytes_recvd"),
        ):
            msgs, size_tab = tables[msgs_view], tables[bytes_view]
            # list() guards against a communicator binding a new task's
            # hook (sent_for) concurrently with this fold.
            for task in list(by):
                sizes = by[task]
                if not sizes:
                    continue
                items = sizes[:]
                del sizes[: len(items)]
                msgs[task] = msgs.get(task, 0) + len(items)
                size_tab[task] = size_tab.get(task, 0) + sum(items)

    def _table(self, name: str) -> dict[str, int]:
        self._flush()
        return self._tables[name]

    # -- counter views (aggregate on read) -------------------------------
    @property
    def switches(self) -> dict[str, int]:
        """Scheduler switches into each task (``sched.run`` events)."""
        return self._table("switches")

    @property
    def blocks(self) -> dict[str, int]:
        """Times each task blocked at a switch point."""
        return self._table("blocks")

    @property
    def wakes(self) -> dict[str, int]:
        """Times each blocked task was promoted to runnable."""
        return self._table("wakes")

    @property
    def msgs_sent(self) -> dict[str, int]:
        """Point-to-point messages sent per task."""
        return self._table("msgs_sent")

    @property
    def bytes_sent(self) -> dict[str, int]:
        """Message payload bytes sent per task (LogP sizes)."""
        return self._table("bytes_sent")

    @property
    def msgs_recvd(self) -> dict[str, int]:
        """Point-to-point messages received per task."""
        return self._table("msgs_recvd")

    @property
    def bytes_recvd(self) -> dict[str, int]:
        """Message payload bytes received per task (LogP sizes)."""
        return self._table("bytes_recvd")

    @property
    def barrier_arrivals(self) -> dict[str, int]:
        """Barrier arrivals per task."""
        return self._table("barrier_arrivals")

    @property
    def critical_acquisitions(self) -> dict[str, int]:
        """Critical-section acquisitions per task."""
        return self._table("critical_acquisitions")

    @property
    def atomic_updates(self) -> dict[str, int]:
        """Atomic guarded updates per task."""
        return self._table("atomic_updates")

    # -- views ----------------------------------------------------------
    def snapshot(self) -> dict[str, dict[str, int]]:
        """All counters as one ordered plain dict (stable for asserts)."""
        self._flush()
        out: dict[str, dict[str, int]] = {}
        for name in self._COUNTERS:
            table = self._tables[name]
            out[name] = {k: table[k] for k in sorted(table)}
        return out

    def to_registry(self, registry: Any = None) -> Any:
        """Export counters into a :class:`MetricsRegistry`.

        Family names match :func:`repro.obs.derive.derive_metrics` so a
        live snapshot and a trace derivation are directly comparable.
        """
        from repro.obs.registry import MetricsRegistry

        reg = registry if registry is not None else MetricsRegistry()
        spec = {
            "switches": ("sched_switches", "Scheduler switches into each task (sched.run events).", None),
            "blocks": ("sched_blocks", "Times each task blocked at a switch point.", None),
            "wakes": ("sched_wakes", "Times each blocked task was woken.", None),
            "msgs_sent": ("messages_sent", "Point-to-point messages sent per task.", None),
            "bytes_sent": ("message_bytes_sent", "Message payload bytes sent per task (LogP sizes).", "bytes"),
            "msgs_recvd": ("messages_received", "Point-to-point messages received per task.", None),
            "bytes_recvd": ("message_bytes_received", "Message payload bytes received per task (LogP sizes).", "bytes"),
            "barrier_arrivals": ("barrier_arrivals", "Barrier arrivals per task.", None),
            "critical_acquisitions": ("critical_acquisitions", "Critical-section acquisitions per task.", None),
            "atomic_updates": ("atomic_updates", "Atomic guarded updates per task.", None),
        }
        for attr, (name, help_text, unit) in spec.items():
            counter = reg.counter(name, help_text, unit=unit)
            table: dict[str, int] = getattr(self, attr)
            for task in sorted(table):
                counter.inc({"task": task}, table[task])
        return reg


@contextmanager
def probing(p: Probe | None = None) -> Iterator[Probe]:
    """Install ``p`` (or a fresh :class:`Probe`) for the dynamic extent.

    Probes do not nest — the engine feeds exactly one — so installing
    over an existing probe raises rather than silently splitting counts.
    """
    global probe
    if probe is not None:
        raise RuntimeError("a live metrics probe is already installed")
    installed = p if p is not None else Probe()
    probe = installed
    try:
        yield installed
    finally:
        probe = None


def cache_counters(registry: Any, stats: dict[str, int]) -> None:
    """Record run-cache hit/miss/store stats as registry counters."""
    names = {
        "hits": ("cache_hits", "Run-cache hits."),
        "misses": ("cache_misses", "Run-cache misses."),
        "stores": ("cache_stores", "Run records written to the cache."),
    }
    for key, (name, help_text) in names.items():
        registry.counter(name, help_text).inc(None, int(stats.get(key, 0)))
