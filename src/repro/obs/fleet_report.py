"""Self-contained single-file HTML fleet dashboard.

``patternlet fleet-report DIR`` renders one exported fleet-telemetry
directory (the merged worker journals plus the batch's fleet summary —
see :func:`repro.obs.telemetry.write_export`) into one HTML file with
zero external references, on the same chassis as the per-run report:
inline CSS (shared palette, dark mode, table view beside every chart),
inline SVG, system fonts.  The dashboard shows the batch the way the
coordinator saw it —

- a per-worker **lane Gantt** over wall time built from matched
  ``cell.start``/``cell.finish`` journal records: computed cells colored
  by shard, cache-served cells in gray, and a marker on every claim of a
  stolen tail (the ``stolen_from`` provenance in the tooltip) — the
  work-stealing story readable straight off the lanes;
- the **straggler heatmap** (worker × shard, total cell wall time) — the
  shard that pinned a worker down is the dark cell;
- per-worker **cache-hit bars** — who computed and who was served;
- summary stat tiles (workers, cells, shards, steals, reposts, hit
  rate) plus the raw journal-record counts per kind.

Wall time, not trace steps, is the x-axis: unlike a single deterministic
run, a fleet's interesting axis *is* real time — that is where
stragglers and steals live.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.obs.report import _CSS, _esc
from repro.obs.telemetry import load_export

__all__ = ["render_fleet_report", "write_fleet_report"]

_EXTRA_CSS = """
svg .steal-mark { fill: var(--c2); }
svg .cell-cached { fill: var(--blocked); }
svg .cell-cached:hover, svg .cell-run:hover { opacity: 0.8; }
.shard-c1 { fill: var(--c1); } .shard-c2 { fill: var(--c2); }
.shard-c3 { fill: var(--c3); } .shard-c4 { fill: var(--c4); }
.shard-c5 { fill: var(--c5); }
"""

#: Shard id → fixed categorical slot; color follows the shard identity,
#: cycling through the five palette slots.
_SHARD_SLOTS = ("c1", "c2", "c3", "c4", "c5")


def _shard_class(shard: Any) -> str:
    try:
        return "shard-" + _SHARD_SLOTS[int(shard) % len(_SHARD_SLOTS)]
    except (TypeError, ValueError):
        return "shard-c1"


def _worker_name(worker: Any) -> str:
    try:
        w = int(worker)
    except (TypeError, ValueError):
        return str(worker)
    return "coordinator" if w < 0 else f"worker {w}"


def _cell_spans(records: Iterable[Mapping[str, Any]]) -> list[dict[str, Any]]:
    """Matched ``cell.start``/``cell.finish`` pairs as renderable spans."""
    starts: dict[tuple[Any, Any, Any], Mapping[str, Any]] = {}
    spans: list[dict[str, Any]] = []
    for rec in records:
        kind = rec.get("kind")
        key = (rec.get("worker"), rec.get("shard"), rec.get("cell"))
        if kind == "cell.start":
            starts[key] = rec
        elif kind == "cell.finish":
            start = starts.pop(key, None)
            t1 = rec.get("ts")
            t0 = start.get("ts") if start is not None else t1
            if not isinstance(t0, (int, float)) or not isinstance(t1, (int, float)):
                continue
            spans.append(
                {
                    "worker": rec.get("worker"),
                    "shard": rec.get("shard"),
                    "cell": rec.get("cell"),
                    "t0": min(t0, t1),
                    "t1": max(t0, t1),
                    "cached": bool(rec.get("cached")),
                    "label": (start or rec).get("label")
                    or f"cell {rec.get('cell')}",
                    "error": rec.get("error"),
                }
            )
    return spans


def _claims(records: Iterable[Mapping[str, Any]]) -> list[Mapping[str, Any]]:
    return [r for r in records if r.get("kind") == "claim"]


def _fleet_gantt(records: list[dict[str, Any]]) -> str:
    spans = _cell_spans(records)
    claims = [
        c for c in _claims(records) if isinstance(c.get("ts"), (int, float))
    ]
    if not spans:
        return ("<p class='muted'>No cell activity in the journals — was the "
                "fleet run with telemetry on?</p>")
    workers = sorted(
        {s["worker"] for s in spans} | {c.get("worker") for c in claims},
        key=lambda w: (not isinstance(w, int), w),
    )
    lo = min(min(s["t0"] for s in spans), min((c["ts"] for c in claims), default=spans[0]["t0"]))
    hi = max(s["t1"] for s in spans)
    extent = max(hi - lo, 1e-6)
    width, label_w, lane_h, bar_h = 900, 150, 26, 14
    plot_w = width - label_w - 20
    height = lane_h * len(workers) + 34

    def x(ts: float) -> float:
        return label_w + (ts - lo) / extent * plot_w

    rows = {w: i for i, w in enumerate(workers)}
    parts = [
        f"<svg viewBox='0 0 {width} {height}' role='img' "
        f"aria-label='Per-worker cell timeline over wall time'>"
    ]
    for w, i in rows.items():
        y = i * lane_h + 4
        parts.append(
            f"<text x='{label_w - 8}' y='{y + bar_h - 3}' class='lane-label' "
            f"text-anchor='end'>{_esc(_worker_name(w))}</text>"
        )
        parts.append(
            f"<line x1='{label_w}' y1='{y + bar_h + 2}' x2='{width - 20}' "
            f"y2='{y + bar_h + 2}' class='grid'/>"
        )
    for s in spans:
        i = rows.get(s["worker"])
        if i is None:
            continue
        y = i * lane_h + 4
        w_px = max(x(s["t1"]) - x(s["t0"]), 2.0)
        cls = "cell-cached" if s["cached"] else f"cell-run {_shard_class(s['shard'])}"
        ms = (s["t1"] - s["t0"]) * 1000
        state = "cached" if s["cached"] else "computed"
        if s.get("error"):
            state = "error"
        parts.append(
            f"<rect x='{x(s['t0']):.1f}' y='{y}' width='{w_px:.1f}' "
            f"height='{bar_h}' class='{cls}' rx='2'>"
            f"<title>{_esc(s['label'])} — shard {_esc(s['shard'])} "
            f"cell {_esc(s['cell'])} on {_esc(_worker_name(s['worker']))}: "
            f"{state}, {ms:.1f} ms</title></rect>"
        )
    for c in claims:
        i = rows.get(c.get("worker"))
        if i is None or c.get("stolen_from") is None:
            continue
        y = i * lane_h + 4
        cx = x(c["ts"])
        parts.append(
            f"<path d='M {cx:.1f} {y - 2} l 4 7 l -8 0 z' class='steal-mark'>"
            f"<title>steal honoured: {_esc(_worker_name(c.get('worker')))} "
            f"claimed shard {_esc(c.get('shard'))} "
            f"(stolen from worker {_esc(c.get('stolen_from'))}, "
            f"{_esc(c.get('cells'))} cells)</title></path>"
        )
    axis_y = lane_h * len(workers) + 10
    parts.append(
        f"<line x1='{label_w}' y1='{axis_y}' x2='{width - 20}' y2='{axis_y}' "
        f"class='axis'/>"
    )
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        ts = lo + frac * extent
        parts.append(
            f"<text x='{x(ts):.1f}' y='{axis_y + 16}' class='tick' "
            f"text-anchor='middle'>{(ts - lo) * 1000:.0f} ms</text>"
        )
    parts.append("</svg>")
    legend = (
        "<div class='legend'>"
        "<span><i class='swatch c1'></i>computed (colored by shard)</span>"
        "<span><i class='swatch blocked-sw'></i>cache-served</span>"
        "<span><i class='swatch c2'></i>▾ stolen-tail claim "
        "(provenance in tooltip)</span>"
        "<span class='muted'>x-axis: wall time since first cell</span>"
        "</div>"
    )
    return "".join(parts) + legend


def _straggler_heatmap(records: list[dict[str, Any]]) -> str:
    spans = _cell_spans(records)
    if not spans:
        return "<p class='muted'>No cell activity to aggregate.</p>"
    totals: dict[tuple[Any, Any], float] = {}
    counts: dict[tuple[Any, Any], int] = {}
    for s in spans:
        key = (s["worker"], s["shard"])
        totals[key] = totals.get(key, 0.0) + (s["t1"] - s["t0"])
        counts[key] = counts.get(key, 0) + 1
    workers = sorted({k[0] for k in totals})
    shards = sorted({k[1] for k in totals})
    peak = max(totals.values())
    head = "".join(f"<th scope='col'>shard {_esc(s)}</th>" for s in shards)
    rows = []
    for w in workers:
        cells = []
        for s in shards:
            total = totals.get((w, s))
            if total is None:
                cells.append("<td class='ramp-0'>–</td>")
            else:
                ms = total * 1000
                bin_ = 1 + min(3, int(total / max(peak, 1e-9) * 4 - 1e-9))
                cells.append(
                    f"<td class='ramp-{bin_}' title='{counts[(w, s)]} cells, "
                    f"{ms:.1f} ms'>{ms:.0f}<span class='sub'>ms</span></td>"
                )
        rows.append(
            f"<tr><th scope='row'>{_esc(_worker_name(w))}</th>{''.join(cells)}</tr>"
        )
    return (
        "<table class='heatmap'><thead><tr><th></th>" + head + "</tr></thead>"
        "<tbody>" + "".join(rows) + "</tbody></table>"
        "<div class='legend'><span class='muted'>cell: wall time a worker "
        "spent inside a shard, darker = longer — the straggler is the "
        "dark cell</span></div>"
    )


def _cache_bars(records: list[dict[str, Any]]) -> str:
    hits: dict[Any, int] = {}
    misses: dict[Any, int] = {}
    for rec in records:
        if rec.get("kind") != "cell.finish":
            continue
        w = rec.get("worker")
        if rec.get("cached"):
            hits[w] = hits.get(w, 0) + 1
        else:
            misses[w] = misses.get(w, 0) + 1
    workers = sorted(set(hits) | set(misses))
    if not workers:
        return "<p class='muted'>No finished cells in the journals.</p>"
    peak = max(hits.get(w, 0) + misses.get(w, 0) for w in workers)
    bars = []
    for w in workers:
        h, m = hits.get(w, 0), misses.get(w, 0)
        spans = []
        for count, cls, label in ((h, "c3", "cache hits"), (m, "c2", "computed")):
            if not count:
                continue
            pct = count / max(peak, 1) * 100
            spans.append(
                f"<i class='seg {cls}' style='width:{pct:.2f}%' "
                f"title='{label}: {count}'></i>"
            )
        bars.append(
            f"<div class='hrow'><span class='hlabel'>"
            f"{_esc(_worker_name(w))}</span>"
            f"<span class='hbar'>{''.join(spans)}</span>"
            f"<span class='hval'>{h}/{h + m}</span></div>"
        )
    table = (
        "<details><summary>table view</summary><table><thead><tr><th></th>"
        "<th scope='col'>hits</th><th scope='col'>computed</th>"
        "<th scope='col'>total</th></tr></thead><tbody>"
        + "".join(
            f"<tr><th scope='row'>{_esc(_worker_name(w))}</th>"
            f"<td>{hits.get(w, 0)}</td><td>{misses.get(w, 0)}</td>"
            f"<td>{hits.get(w, 0) + misses.get(w, 0)}</td></tr>"
            for w in workers
        )
        + "</tbody></table></details>"
    )
    return (
        "<div class='hchart'>" + "".join(bars) + "</div>"
        "<div class='legend'>"
        "<span><i class='swatch c3'></i>cache hits</span>"
        "<span><i class='swatch c2'></i>computed</span>"
        "<span class='hval'>hits/total per worker</span></div>" + table
    )


def _fleet_tiles(records: list[dict[str, Any]], fleet: Mapping[str, Any]) -> str:
    finishes = [r for r in records if r.get("kind") == "cell.finish"]
    cached = sum(1 for r in finishes if r.get("cached"))
    rate = cached / len(finishes) if finishes else 0.0
    tiles = [
        ("workers", f"{fleet.get('workers', '?')}", "fleet processes"),
        ("cells", f"{len(finishes)}", "cell executions journalled"),
        ("shards", f"{fleet.get('completed_shards', '?')}",
         f"of {fleet.get('planned_shards', '?')} planned"),
        ("steals", f"{fleet.get('steals', 0)}", "tails rebalanced"),
        ("reposts", f"{fleet.get('reposts', 0)}", "dead shards recovered"),
        ("cache hit rate", f"{rate * 100:.0f}%", "cells served, not computed"),
    ]
    out = []
    for label, value, sub in tiles:
        out.append(
            f"<div class='tile'><div class='tile-value'>{_esc(value)}</div>"
            f"<div class='tile-label'>{_esc(label)}</div>"
            f"<div class='tile-sub'>{_esc(sub)}</div></div>"
        )
    return "<div class='tiles'>" + "".join(out) + "</div>"


def _kind_table(records: list[dict[str, Any]]) -> str:
    counts: dict[str, int] = {}
    for rec in records:
        kind = str(rec.get("kind", "?"))
        counts[kind] = counts.get(kind, 0) + 1
    rows = "".join(
        f"<tr><th scope='row'>{_esc(kind)}</th><td>{counts[kind]}</td></tr>"
        for kind in sorted(counts)
    )
    return (
        "<details><summary>journal record counts</summary><table><thead>"
        "<tr><th>kind</th><th>records</th></tr></thead><tbody>"
        + rows + "</tbody></table></details>"
    )


def render_fleet_report(
    records: list[dict[str, Any]], summary: Mapping[str, Any] | None = None
) -> str:
    """Render a merged fleet journal into self-contained HTML text."""
    summary = summary or {}
    fleet = summary.get("fleet") or {}
    sweep_id = summary.get("sweep_id") or fleet.get("sweep_id") or "?"
    meta_bits = [
        f"sweep <code>{_esc(sweep_id)}</code>",
        f"journal records <code>{len(records)}</code>",
    ]
    steals = fleet.get("steals", 0)
    status = (
        f"<div class='status good'><span class='icon'>⇄</span>"
        f"{steals} steal{'s' if steals != 1 else ''} rebalanced this batch"
        "</div>"
        if steals
        else ""
    )
    body = f"""<main>
<section>
<h1>patternlet fleet report — sweep {_esc(sweep_id)}</h1>
<p class='meta'>{' · '.join(meta_bits)}</p>
{status}
{_fleet_tiles(records, fleet)}
</section>
<section><h2>Per-worker cell timeline</h2>{_fleet_gantt(records)}</section>
<section><h2>Straggler heatmap (worker × shard wall time)</h2>
{_straggler_heatmap(records)}</section>
<section><h2>Cache hits per worker</h2>{_cache_bars(records)}</section>
<section><h2>Journal</h2>{_kind_table(records)}</section>
</main>"""
    return (
        "<!DOCTYPE html>\n<html lang='en'>\n<head>\n<meta charset='utf-8'>\n"
        f"<title>patternlet fleet report — {_esc(sweep_id)}</title>\n"
        "<meta name='viewport' content='width=device-width, initial-scale=1'>\n"
        f"<style>{_CSS}{_EXTRA_CSS}</style>\n</head>\n<body>\n{body}\n"
        "</body>\n</html>\n"
    )


def write_fleet_report(export_dir: str | Path, path: str | Path) -> str:
    """Load an export directory and write its dashboard HTML; returns path."""
    records, summary = load_export(export_dir)
    text = render_fleet_report(records, summary)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return str(path)
