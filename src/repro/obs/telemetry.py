"""Fleet-wide telemetry plane: spans, worker journals, live scraping.

The sweep fleet (:mod:`repro.batch.fleet`) is a distributed system —
persistent worker processes coordinated through atomic JSON files — and
until this module its behaviour (claims, steals, reposts, stragglers)
was invisible except through post-hoc totals.  Three pieces fix that:

**Span propagation.**  The coordinator mints one ``sweep_id`` per
submitted grid and a :class:`SpanContext` per (shard, cell, worker).
The context rides inside the fleet's job documents, is re-established
ambiently in the worker around each cell (:func:`span_context`), and is
stamped onto the finished run's metadata and its
:class:`~repro.trace.events.TraceRecorder` — so every trace export from
every worker process carries its lineage.  The span **never** enters
the cache key and never injects trace events: cached records and
derived metrics stay byte-identical to serial runs.

**Structured worker journals.**  Each worker appends typed JSONL
records (``worker.start``, ``claim``, ``cell.start``, ``cell.finish``,
``steal.honoured``, ``job.done``, ``heartbeat``, ``worker.exit``) to
``telemetry/worker-<w>.jsonl``; the coordinator writes its own
(``sweep.start``, ``job.post``, ``steal``, ``repost``,
``sweep.finish``) to ``telemetry/coordinator.jsonl``.  One record is
one ``O_APPEND`` line write + flush — readers tolerate a torn tail the
same way the fleet's document reader tolerates a half-written claim.
Merging sorts by ``(worker, seq, kind)`` where ``seq`` is a per-journal
monotone counter, so the merged stream is deterministic no matter when
the journals are tailed.

**Live scrape surface.**  :func:`fleet_registry` folds the journals
(plus the live fleet dirs, when present) into one
:class:`~repro.obs.registry.MetricsRegistry` — per-worker cell/claim/
cache counters, a cell-wall histogram, and fleet gauges (queue depth,
busy/idle workers, steals, cache hit rate).  The registry's fully
sorted OpenMetrics export makes two scrapes of a quiesced fleet
byte-identical; :class:`MetricsServer` mounts it on a stdlib HTTP
endpoint (``patternlet metrics-serve``) — the same ``/metrics`` route
the ROADMAP-1 serve daemon will reuse unchanged.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

__all__ = [
    "COORDINATOR",
    "JOURNAL_SCHEMA",
    "MetricsServer",
    "SpanContext",
    "WorkerJournal",
    "current_context",
    "fleet_registry",
    "load_export",
    "merge_journals",
    "read_journal",
    "read_journals",
    "serve_metrics",
    "span_context",
    "write_export",
]

#: Version stamp every journal record carries (``"v"``).
JOURNAL_SCHEMA = 1

#: Worker id the coordinator journals under.
COORDINATOR = -1

#: Record kinds that belong to the worker's lifecycle, not to any one
#: sweep — kept when merging with a ``sweep_id`` filter.
_LIFECYCLE_KINDS = frozenset({"worker.start", "worker.exit"})

_CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"


# ---------------------------------------------------------------------------
# Span context


@dataclass(frozen=True, slots=True)
class SpanContext:
    """Lineage of one unit of fleet work: sweep → shard → cell → worker."""

    sweep: str
    shard: int | None = None
    cell: int | None = None
    worker: int | None = None
    stolen_from: int | None = None

    def to_wire(self) -> dict[str, Any]:
        """JSON-safe form with unset fields dropped (job-doc payload)."""
        doc: dict[str, Any] = {"sweep": self.sweep}
        for field in ("shard", "cell", "worker", "stolen_from"):
            value = getattr(self, field)
            if value is not None:
                doc[field] = value
        return doc

    @classmethod
    def from_wire(cls, doc: dict[str, Any]) -> "SpanContext":
        return cls(
            sweep=str(doc.get("sweep", "")),
            shard=doc.get("shard"),
            cell=doc.get("cell"),
            worker=doc.get("worker"),
            stolen_from=doc.get("stolen_from"),
        )

    def to_meta(self) -> dict[str, str]:
        """String-valued form for run metadata / trace-export labels."""
        return {k: str(v) for k, v in self.to_wire().items()}


_CTX: SpanContext | None = None


def current_context() -> SpanContext | None:
    """The ambient :class:`SpanContext`, or ``None`` outside a span."""
    return _CTX


@contextlib.contextmanager
def span_context(ctx: SpanContext | None) -> Iterator[SpanContext | None]:
    """Install ``ctx`` as the ambient span for the dynamic extent."""
    global _CTX
    prev = _CTX
    _CTX = ctx
    try:
        yield ctx
    finally:
        _CTX = prev


# ---------------------------------------------------------------------------
# Journals


class WorkerJournal:
    """Append-only typed JSONL journal for one fleet participant.

    One record is one line: ``json.dumps(..., sort_keys=True)`` +
    newline, written through an ``O_APPEND`` handle and flushed — the
    same crash discipline as the fleet's atomic documents, minus the
    rename (appends to distinct files never collide).  Telemetry is
    advisory: every I/O error is swallowed (``write`` returns ``False``)
    so a full disk can never take a worker down.
    """

    def __init__(self, path: str | os.PathLike, worker: int) -> None:
        self.path = Path(path)
        self.worker = int(worker)
        self.seq = 0
        self._fh: Any = None

    def write(self, kind: str, *, span: SpanContext | None = None,
              **fields: Any) -> bool:
        """Append one typed record; ``False`` if the write was lost."""
        doc: dict[str, Any] = {
            "v": JOURNAL_SCHEMA,
            "kind": kind,
            "worker": self.worker,
            "seq": self.seq,
            "ts": round(time.time(), 6),
        }
        if span is not None:
            doc["span"] = span.to_wire()
        doc.update(fields)
        try:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(
                json.dumps(doc, separators=(",", ":"), sort_keys=True) + "\n"
            )
            self._fh.flush()
        except OSError:
            return False
        self.seq += 1
        return True

    def close(self) -> None:
        """Release the append handle (records already on disk stay put)."""
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None


def read_journal(path: str | os.PathLike) -> list[dict[str, Any]]:
    """All well-formed records in one journal file (torn tail tolerated)."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return []
    out: list[dict[str, Any]] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
        except ValueError:
            continue  # torn tail or foreign junk — skip, don't fail
        if isinstance(doc, dict) and isinstance(doc.get("kind"), str):
            out.append(doc)
    return out


def read_journals(telemetry_dir: str | os.PathLike) -> list[dict[str, Any]]:
    """Deterministic merge of every ``*.jsonl`` journal in a directory.

    Sorted by ``(worker, seq, kind)`` — worker ids and per-journal
    sequence numbers, never wall clocks — so the merged stream is
    identical however the journals were interleaved on disk.
    """
    root = Path(telemetry_dir)
    records: list[dict[str, Any]] = []
    try:
        paths = sorted(root.glob("*.jsonl"))
    except OSError:
        return []
    for path in paths:
        records.extend(read_journal(path))
    records.sort(key=lambda r: (r.get("worker", 0), r.get("seq", 0),
                                r.get("kind", "")))
    return records


def merge_journals(
    telemetry_dir: str | os.PathLike,
    *,
    sweep_id: str | None = None,
    heartbeats: bool = False,
) -> list[dict[str, Any]]:
    """The merged journal stream, optionally filtered to one sweep.

    With a ``sweep_id``, records are kept when their span names that
    sweep or when they are sweep-scoped coordinator records
    (``sweep.*``) for it; worker lifecycle records survive the filter.
    Heartbeats are live-scrape fodder and dropped from exports unless
    asked for.
    """
    out: list[dict[str, Any]] = []
    for rec in read_journals(telemetry_dir):
        if not heartbeats and rec.get("kind") == "heartbeat":
            continue
        if sweep_id is not None:
            span = rec.get("span")
            rec_sweep = span.get("sweep") if isinstance(span, dict) else None
            if rec_sweep is None:
                rec_sweep = rec.get("sweep")
            if rec_sweep != sweep_id and rec.get("kind") not in _LIFECYCLE_KINDS:
                continue
        out.append(rec)
    return out


def write_export(
    telemetry_dir: str | os.PathLike,
    out_dir: str | os.PathLike,
    *,
    sweep_id: str,
    fleet: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Persist one sweep's merged journal + summary to ``out_dir``.

    Writes ``journal.jsonl`` (the deterministic merge) and
    ``fleet.json`` (schema, sweep id, record count, the coordinator's
    fleet summary) and returns the summary document.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    records = merge_journals(telemetry_dir, sweep_id=sweep_id)
    with open(out / "journal.jsonl", "w", encoding="utf-8") as fh:
        for rec in records:
            fh.write(json.dumps(rec, separators=(",", ":"), sort_keys=True))
            fh.write("\n")
    summary = {
        "schema": JOURNAL_SCHEMA,
        "sweep_id": sweep_id,
        "records": len(records),
        "fleet": fleet,
    }
    with open(out / "fleet.json", "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return summary


def load_export(export_dir: str | os.PathLike) -> tuple[
    list[dict[str, Any]], dict[str, Any]
]:
    """Read back a :func:`write_export` directory → (records, summary)."""
    root = Path(export_dir)
    records = read_journal(root / "journal.jsonl")
    summary: dict[str, Any] = {}
    try:
        loaded = json.loads((root / "fleet.json").read_text(encoding="utf-8"))
        if isinstance(loaded, dict):
            summary = loaded
    except (OSError, ValueError):
        pass
    return records, summary


# ---------------------------------------------------------------------------
# Metrics


def _journal_source(root: Path) -> Path:
    """Resolve a fleet root / export dir / bare journal dir to journals."""
    if (root / "telemetry").is_dir():
        return root / "telemetry"
    return root


def fleet_registry(root: str | os.PathLike, *, prefix: str = "patternlet"):
    """Fold journals (and live fleet dirs, if present) into one registry.

    ``root`` may be a live fleet directory (containing ``telemetry/``
    and the messenger dirs), a :func:`write_export` output directory, or
    any directory of ``*.jsonl`` journals.  Counters and histograms come
    from the journals alone, so a quiesced fleet scrapes byte-identically
    every time; the queue-depth / busy-worker gauges are added only when
    the live messenger dirs exist.
    """
    from repro._version import __version__
    from repro.batch.specs import engine_fingerprint
    from repro.obs.registry import MetricsRegistry

    root = Path(root)
    reg = MetricsRegistry(prefix=prefix)
    reg.info["version"] = __version__
    reg.info["fingerprint"] = engine_fingerprint()

    records = read_journals(_journal_source(root))
    cells = reg.counter(
        "fleet_worker_cells", "Grid cells finished per fleet worker."
    )
    hits = reg.counter(
        "fleet_worker_cache_hits", "Cache-served cells per fleet worker."
    )
    misses = reg.counter(
        "fleet_worker_cache_misses", "Executed (uncached) cells per fleet worker."
    )
    claims = reg.counter(
        "fleet_worker_claims", "Shard claims won per fleet worker."
    )
    steals = reg.counter(
        "fleet_steals", "Coordinator work-steal revocations issued."
    )
    reposts = reg.counter(
        "fleet_reposts", "Dead-worker shards reposted by the coordinator."
    )
    walls = reg.histogram(
        "fleet_cell_wall", "Distribution of per-cell wall times.", unit="ms"
    )
    hit_count = miss_count = 0
    for rec in records:
        kind = rec.get("kind")
        worker = {"worker": str(rec.get("worker", "?"))}
        if kind == "cell.finish":
            cells.inc(worker)
            if rec.get("cached"):
                hits.inc(worker)
                hit_count += 1
            else:
                misses.inc(worker)
                miss_count += 1
            wall = rec.get("wall")
            if isinstance(wall, (int, float)):
                walls.observe(round(wall * 1000.0, 3), worker)
        elif kind == "claim":
            claims.inc(worker)
        elif kind == "steal":
            steals.inc()
        elif kind == "repost":
            reposts.inc()
    rate = reg.gauge(
        "fleet_cache_hit_rate", "Cache-served fraction of finished cells."
    )
    rate.set(round(hit_count / (hit_count + miss_count), 6)
             if hit_count + miss_count else 0.0)

    jobs_dir = root / "jobs"
    status_dir = root / "status"
    if jobs_dir.is_dir() and status_dir.is_dir():
        try:
            depth = len([p for p in jobs_dir.iterdir()
                         if p.name.startswith("shard-")])
        except OSError:
            depth = 0
        busy = idle = 0
        for path in sorted(status_dir.glob("worker-*.json")):
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if isinstance(doc, dict) and doc.get("type") == "RUNNING":
                busy += 1
            else:
                idle += 1
        reg.gauge(
            "fleet_queue_depth", "Unclaimed jobs waiting in the fleet queue."
        ).set(depth)
        reg.gauge(
            "fleet_busy_workers", "Workers currently running a job."
        ).set(busy)
        reg.gauge(
            "fleet_idle_workers", "Workers heartbeating READY."
        ).set(idle)
    return reg


# ---------------------------------------------------------------------------
# Live scrape endpoint


class MetricsServer:
    """Stdlib HTTP endpoint serving OpenMetrics from a render callable.

    ``render`` is invoked per request, so scraping a live fleet sees the
    journals as they are *now*; once the fleet quiesces the render is a
    pure function of settled files and consecutive scrapes are
    byte-identical.  This is the ``/metrics`` surface the serve daemon
    (ROADMAP item 1) mounts unchanged.
    """

    def __init__(self, render: Callable[[], str], *,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.render = render

        class _Handler(BaseHTTPRequestHandler):
            server_version = "patternlet-metrics/1"
            # HTTP/1.1 so connections persist between scrapes: the
            # handler always sends Content-Length, which is what the
            # stdlib needs to keep the socket open instead of closing
            # it after every response (HTTP/1.0's only framing).  A
            # Prometheus-style scraper or bench swarm then pays
            # connection setup once, not per request.
            protocol_version = "HTTP/1.1"

            def do_GET(handler) -> None:  # noqa: N805 — stdlib idiom
                if handler.path not in ("/", "/metrics"):
                    handler.send_error(404, "try /metrics")
                    return
                try:
                    body = self.render().encode("utf-8")
                except Exception as exc:  # render must never kill the server
                    handler.send_error(500, f"render failed: {exc}")
                    return
                handler.send_response(200)
                handler.send_header("Content-Type", _CONTENT_TYPE)
                handler.send_header("Content-Length", str(len(body)))
                handler.end_headers()
                handler.wfile.write(body)

            def log_message(self, *args: Any) -> None:  # silence stderr
                pass

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="patternlet-metrics",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down and join the serving thread."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


def serve_metrics(root: str | os.PathLike, *, host: str = "127.0.0.1",
                  port: int = 0) -> MetricsServer:
    """A started :class:`MetricsServer` scraping ``root``'s fleet telemetry."""
    root = Path(root)
    server = MetricsServer(
        lambda: fleet_registry(root).to_openmetrics(), host=host, port=port
    )
    return server.start()
