"""patternlets-repro: a Python reproduction of *Patternlets: A Teaching
Tool for Introducing Students to Parallel Design Patterns* (Adams, 2015).

The package reproduces the paper's whole system in pure Python:

- :mod:`repro.sched` — the execution substrate: real OS threads, or a
  deterministic seeded *lockstep* scheduler that makes interleavings,
  races, and deadlocks replayable;
- :mod:`repro.smp` — an OpenMP-analogue shared-memory runtime (teams,
  schedules, barrier/critical/atomic, reductions);
- :mod:`repro.mp` — an MPI-analogue message-passing runtime (isolated
  ranks, collectives over binomial trees, simulated cluster nodes, LogP
  virtual-time cost model);
- :mod:`repro.pthreads` — a Pthreads-analogue create/join layer;
- :mod:`repro.core` — the patternlet framework: pattern catalog,
  registry, comment/uncomment toggles, task-attributed output capture;
- :mod:`repro.patternlets` — the collection itself: 44 patternlets
  (17 OpenMP + 16 MPI + 9 Pthreads + 2 heterogeneous);
- :mod:`repro.education` — the CS2 study (exam statistics, matrix lab,
  curriculum map);
- :mod:`repro.algorithms` — exemplar algorithms using the public API.

Quick start::

    from repro import run_patternlet

    print(run_patternlet("openmp.spmd", tasks=4, seed=7).text)

See README.md for the architecture tour and EXPERIMENTS.md for the
figure-by-figure reproduction record.
"""

from repro._version import __version__
from repro.core.capture import CapturedRun, capture_run
from repro.core.registry import (
    Patternlet,
    all_patternlets,
    get_patternlet,
    inventory,
    run_patternlet,
)
from repro.errors import ReproError
from repro.mp.runtime import MpRuntime, mpirun
from repro.pthreads.api import PthreadsRuntime
from repro.smp.runtime import SmpRuntime

__all__ = [
    "__version__",
    "ReproError",
    "SmpRuntime",
    "MpRuntime",
    "mpirun",
    "PthreadsRuntime",
    "Patternlet",
    "run_patternlet",
    "get_patternlet",
    "all_patternlets",
    "inventory",
    "CapturedRun",
    "capture_run",
]
