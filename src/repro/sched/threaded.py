"""Real-OS-thread executor.

Each task of a fork-join group runs on a genuine OS thread — leased from
the process-wide rank pool (:mod:`repro.sched.pool`) so back-to-back runs
skip thread setup/teardown — and interleavings are decided by the
operating system exactly as they are for the paper's C programs.  The
only additions over raw threads are:

- a single global condition variable implementing ``wait_until``/``notify``
  (every state change wakes every waiter, which then re-check their
  predicates — simple and correct at teaching scale);
- a watchdog inside ``wait_until``: if a predicate stays false for
  ``deadlock_timeout`` seconds with *no* intervening ``notify`` anywhere in
  the runtime, the wait aborts with :class:`~repro.errors.DeadlockError`
  instead of hanging the test suite.  Legitimate long waits keep being fed
  by notifies (message arrivals, barrier arrivals) and never trip it.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

from repro.errors import DeadlockError
from repro.sched.base import (
    Executor,
    TaskGroup,
    TaskHandle,
    TaskRecord,
    resolve_describe,
    set_task_label,
)
from repro.sched.pool import lease as _pool_lease

__all__ = ["ThreadExecutor"]


class ThreadExecutor(Executor):
    """Executor backed by real OS threads (nondeterministic interleavings)."""

    mode = "thread"

    def __init__(self, *, deadlock_timeout: float = 30.0):
        if deadlock_timeout <= 0:
            raise ValueError("deadlock_timeout must be positive")
        #: Seconds of notify-free blocking after which a wait is declared dead.
        self.deadlock_timeout = deadlock_timeout
        self._cond = threading.Condition()
        self._progress = 0  # bumped by every notify()

    # -- Executor interface -------------------------------------------------

    def run_tasks(
        self,
        thunks: Sequence[Callable[[], Any]],
        labels: Sequence[str],
        *,
        group_label: str = "group",
        on_group: Callable[[TaskGroup], None] | None = None,
    ) -> TaskGroup:
        if len(thunks) != len(labels):
            raise ValueError("thunks and labels must have equal length")
        group = TaskGroup(label=group_label)
        group.records = [TaskRecord(i, labels[i]) for i in range(len(thunks))]
        if on_group is not None:
            on_group(group)

        def runner(record: TaskRecord, thunk: Callable[[], Any]) -> None:
            set_task_label(record.label)
            try:
                record.result = thunk()
            except BaseException as exc:  # noqa: BLE001 - reported via group
                record.exception = exc
                group.failed = True
                self.notify()  # unblock teammates so they can observe failure
            finally:
                set_task_label(None)

        leases = [
            _pool_lease(runner, (rec, thunk), name=f"{group_label}:{rec.label}")
            for rec, thunk in zip(group.records, thunks)
        ]
        for l in leases:
            l.join()
        self._raise_group_failures(group)
        return group

    def spawn(self, thunk: Callable[[], Any], label: str) -> TaskHandle:
        record = TaskRecord(0, label)

        def runner() -> None:
            set_task_label(label)
            try:
                record.result = thunk()
            except BaseException as exc:  # noqa: BLE001 - reported via handle
                record.exception = exc
                self.notify()
            finally:
                set_task_label(None)

        task_lease = _pool_lease(runner, name=f"spawn:{label}")
        return TaskHandle(record, task_lease.join)

    def checkpoint(self) -> None:
        # The OS preempts wherever it likes; nothing to do.  (A sleep(0)
        # here would only distort the timing patternlets.)
        pass

    def wait_until(
        self,
        pred: Callable[[], bool],
        *,
        describe: str | Callable[[], str] = "condition",
    ) -> None:
        deadline_window = self.deadlock_timeout
        with self._cond:
            while not pred():
                seen = self._progress
                waited = 0.0
                # Wait in short slices so a notify that raced with our
                # predicate check is picked up quickly.
                while not pred() and self._progress == seen:
                    slice_ = min(0.5, deadline_window - waited)
                    if slice_ <= 0:
                        what = resolve_describe(describe)
                        raise DeadlockError(
                            f"no progress for {self.deadlock_timeout:.1f}s "
                            f"while waiting for: {what}",
                            blocked={what: "timed out"},
                        )
                    self._cond.wait(slice_)
                    waited += slice_

    def notify(self) -> None:
        with self._cond:
            self._progress += 1
            self._cond.notify_all()
