"""Process-wide rank-thread pool: park worker threads between runs.

Both executors used to create, start, and join a fresh OS thread per rank
on every run.  At batch rates (thousands of runs per second) and at large
``np`` (the paper's "run it again with more tasks" mechanic) thread
setup/teardown dominated per-run cost.  This module keeps a pool of
parked daemon threads that rank bodies are *leased* onto instead:

- **Parking** is a held-by-default ``threading.Lock`` per worker (the
  same binary-semaphore trick the lockstep token uses): re-leasing a
  parked worker is one ``release``, parking is one ``acquire`` — no
  condition-variable broadcast, no new OS thread.
- **LIFO reuse**: the most recently parked worker is leased first, so a
  hot run-loop keeps hitting the same few cache-warm threads.
- **Leases, not threads**: callers get a :class:`Lease` whose
  :meth:`Lease.join` waits for the *body* to finish, not the thread to
  die.  A lease is reclaimed even when the body unwinds via abort or
  deadlock — the worker scrubs per-thread state and reparks — which
  replaces the old leak-prone ``Thread.join(timeout=5.0)`` abandonment:
  an aborted run no longer strands an OS thread per rank.
- **State hygiene**: between leases a worker resets its task label (the
  only engine thread-local that outlives a task body; the executors
  clear their own TLS in ``finally`` blocks and ``muted`` stacks unwind
  with the body).  Determinism therefore cannot leak between runs: a
  pooled thread is indistinguishable from a fresh one to the engine.
- **Fork safety**: ``os.register_at_fork`` swaps in a brand-new empty
  pool in forked children (pool threads do not survive ``fork``),
  mirroring ``repro.trace.events.reset_ambient``.

``REPRO_RANK_POOL=0`` disables pooling: every lease then runs on a fresh
thread.  The hypothesis suite uses this hatch to prove pooled and
fresh-thread execution produce identical traces.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, Sequence

from repro.sched.base import set_task_label

__all__ = [
    "Lease",
    "RankThreadPool",
    "get_pool",
    "lease",
    "prepare_many",
    "pool_enabled",
    "pool_stats",
    "reset_pool",
    "shutdown_pool",
]

#: Environment hatch: set to ``0`` to run every lease on a fresh thread.
POOL_ENV = "REPRO_RANK_POOL"

#: Parked workers beyond this are let die instead of reparked.  1024 ranks
#: plus headroom: one np=1024 run parks its whole team for the next run
#: (at 320 a warm np=1024 world still respawned ~700 OS threads per run,
#: which alone cost more than the np=1024 wall-time target).
MAX_IDLE = 1088


def pool_enabled() -> bool:
    """Whether leases go through the pool (``REPRO_RANK_POOL`` hatch)."""
    return os.environ.get(POOL_ENV, "1").lower() not in ("0", "false", "no", "off")


class Lease:
    """One rank body running on a pooled (or fresh) thread.

    ``join`` waits for the *body* to complete — the worker thread itself
    survives and reparks.  Unlike ``Thread.join`` this cannot strand an
    OS thread: the worker is back in the pool even if the body aborted.
    """

    __slots__ = ("name", "_done")

    def __init__(self, name: str):
        self.name = name
        self._done = threading.Event()

    def join(self, timeout: float | None = None) -> bool:
        """Wait until the leased body has finished; True if it has."""
        return self._done.wait(timeout)

    @property
    def done(self) -> bool:
        return self._done.is_set()


class _Worker:
    """A pooled thread: parked on its wake-lock until handed a job."""

    __slots__ = ("thread", "wake", "job")

    def __init__(self) -> None:
        # Held-by-default binary semaphore; releasing it is the handoff.
        self.wake = threading.Lock()
        self.wake.acquire()
        self.job: tuple[Callable[..., Any], Sequence[Any], Lease] | None = None
        self.thread: threading.Thread | None = None


class RankThreadPool:
    """LIFO pool of parked daemon threads rank bodies are leased onto."""

    def __init__(self, *, max_idle: int = MAX_IDLE):
        self._lock = threading.Lock()
        self._idle: list[_Worker] = []
        self.max_idle = max_idle
        # Lifetime counters (read by tests/benchmarks via stats()).
        self._spawned = 0  # OS threads ever created
        self._leases = 0  # lease() calls ever served
        self._active = 0  # leases currently running

    # -- leasing ---------------------------------------------------------

    def lease(
        self, fn: Callable[..., Any], args: Sequence[Any] = (), *, name: str = "rank"
    ) -> Lease:
        """Run ``fn(*args)`` on a pooled thread; returns immediately."""
        out = Lease(name)
        with self._lock:
            self._leases += 1
            self._active += 1
            w = self._idle.pop() if self._idle else None
            if w is None:
                w = _Worker()
                self._spawned += 1
        w.job = (fn, args, out)
        if w.thread is None:
            # First lease for this worker: the job is staged before the
            # thread starts, so _worker_main runs it straight away.
            w.thread = threading.Thread(
                target=self._worker_main, args=(w,), name=name, daemon=True
            )
            w.thread.start()
        else:
            w.thread.name = name
            w.wake.release()
        return out

    def prepare(
        self, fn: Callable[..., Any], args: Sequence[Any] = (), *, name: str = "rank"
    ) -> tuple[Lease, Callable[[], None]]:
        """Stage ``fn(*args)`` on a pooled worker without waking it.

        Returns ``(lease, start)``; the body runs only once ``start()`` is
        called.  This lets the lockstep executor fuse the pool wake with
        the first token grant: a plain lease wakes the worker just to park
        it again on the token semaphore — two OS wakeups per rank, which
        at np=1024 is the dominant setup cost.
        """
        out = Lease(name)
        with self._lock:
            self._leases += 1
            self._active += 1
            w = self._idle.pop() if self._idle else None
            if w is None:
                w = _Worker()
                self._spawned += 1
        w.job = (fn, args, out)
        return out, self._starter(w, name)

    def prepare_many(
        self,
        fn: Callable[..., Any],
        argss: Sequence[Sequence[Any]],
        names: Sequence[str],
    ) -> tuple[list[Lease], list[Callable[[], None]]]:
        """Batch :meth:`prepare`: one pool-lock acquisition for n workers.

        Per-lease locking was O(n) contended acquisitions against workers
        reparking from the previous run — measurably quadratic-feeling at
        np=1024 world setup.
        """
        n = len(argss)
        outs = [Lease(nm) for nm in names]
        with self._lock:
            self._leases += n
            self._active += n
            idle = self._idle
            k = min(len(idle), n)
            if k:
                # Reversed slice preserves the LIFO pop() order: hottest
                # (most recently parked) workers are leased first.
                workers = idle[-k:][::-1]
                del idle[-k:]
            else:
                workers = []
            for _ in range(n - k):
                workers.append(_Worker())
                self._spawned += 1
        starters = []
        for w, args, out, nm in zip(workers, argss, outs, names):
            w.job = (fn, args, out)
            starters.append(self._starter(w, nm))
        return outs, starters

    def _starter(self, w: _Worker, name: str) -> Callable[[], None]:
        def start() -> None:
            if w.thread is None:
                # First lease for this worker: the job is staged before
                # the thread starts, so _worker_main runs it straight away.
                w.thread = threading.Thread(
                    target=self._worker_main, args=(w,), name=name, daemon=True
                )
                w.thread.start()
            else:
                w.thread.name = name
                w.wake.release()

        return start

    def _worker_main(self, w: _Worker) -> None:
        while True:
            job, w.job = w.job, None
            if job is None:  # shutdown poke
                return
            fn, args, out = job
            try:
                fn(*args)
            except BaseException:  # noqa: BLE001 - bodies report via records
                # Executor task mains catch everything and report through
                # TaskRecord/TaskGroup; anything reaching here is a bug in
                # the executor itself, but a dead pool thread would only
                # compound it — scrub and repark regardless.
                pass
            # State hygiene: the task label is the one engine thread-local
            # that a body could leave behind (executors clear it in their
            # own finally blocks; this is the belt-and-braces for abort
            # paths that unwind through BaseException).
            set_task_label(None)
            reparked = self._repark(w)
            # Signal completion only after reparking: a caller that joins
            # and immediately starts the next run finds this worker back
            # in the pool, so serial run loops never over-spawn.
            out._done.set()
            if not reparked:
                return
            w.wake.acquire()

    def _repark(self, w: _Worker) -> bool:
        with self._lock:
            self._active -= 1
            if len(self._idle) >= self.max_idle:
                return False
            self._idle.append(w)
            return True

    # -- management ------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Lifetime counters: spawned/leases/active/idle (for tests)."""
        with self._lock:
            return {
                "spawned": self._spawned,
                "leases": self._leases,
                "active": self._active,
                "idle": len(self._idle),
            }

    def shutdown(self) -> None:
        """Let all parked workers exit (busy ones exit on repark)."""
        with self._lock:
            idle, self._idle = self._idle, []
            self.max_idle = 0
        for w in idle:
            w.job = None
            w.wake.release()


#: The process-wide pool.  Read through the module (``_pool.get_pool()``)
#: so fork resets are visible everywhere, mirroring ``obs.live.probe``.
_POOL = RankThreadPool()


def get_pool() -> RankThreadPool:
    """The current process-wide pool (rebound on fork/reset)."""
    return _POOL


def lease(
    fn: Callable[..., Any], args: Sequence[Any] = (), *, name: str = "rank"
) -> Lease:
    """Lease a rank body from the process pool (or a fresh thread).

    This is the one entry point the executors use; the env hatch and the
    current pool instance are resolved per call.
    """
    if not pool_enabled():
        out = Lease(name)

        def runner() -> None:
            try:
                fn(*args)
            except BaseException:  # noqa: BLE001 - bodies report via records
                pass
            finally:
                set_task_label(None)
                out._done.set()

        threading.Thread(target=runner, name=name, daemon=True).start()
        return out
    return _POOL.lease(fn, args, name=name)


def prepare_many(
    fn: Callable[..., Any],
    argss: Sequence[Sequence[Any]],
    names: Sequence[str],
) -> tuple[list[Lease], list[Callable[[], None]]]:
    """Stage n bodies without waking anyone; see :meth:`RankThreadPool.prepare_many`.

    With the pool disabled (``REPRO_RANK_POOL=0``) each ``start()`` spawns
    a fresh thread instead, so pooled and fresh execution stay
    observationally identical — including the deferred-start protocol.
    """
    if not pool_enabled():
        outs = []
        starters = []
        for args, nm in zip(argss, names):
            out = Lease(nm)

            def runner(fn=fn, args=args, out=out) -> None:
                try:
                    fn(*args)
                except BaseException:  # noqa: BLE001 - bodies report via records
                    pass
                finally:
                    set_task_label(None)
                    out._done.set()

            def start(runner=runner, nm=nm) -> None:
                threading.Thread(target=runner, name=nm, daemon=True).start()

            outs.append(out)
            starters.append(start)
        return outs, starters
    return _POOL.prepare_many(fn, argss, names)


def pool_stats() -> dict[str, int]:
    """Lifetime counters of the current pool (see :meth:`RankThreadPool.stats`)."""
    return _POOL.stats()


def reset_pool() -> None:
    """Install a fresh empty pool, abandoning the old object.

    Used in forked children, where the parent's pool threads do not
    exist and the old pool's lock may have been copied mid-held — so
    the old object must not be touched at all.
    """
    global _POOL
    _POOL = RankThreadPool()


def shutdown_pool() -> None:
    """Drain the current pool's parked workers and install a fresh one."""
    global _POOL
    old, _POOL = _POOL, RankThreadPool()
    old.shutdown()


if hasattr(os, "register_at_fork"):  # pragma: no branch
    # Pool threads do not survive fork; the child must not try to lease
    # from workers that only exist in the parent.  Same pattern as
    # repro.trace.events.reset_ambient.
    os.register_at_fork(after_in_child=reset_pool)
