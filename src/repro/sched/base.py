"""Executor interface and task bookkeeping shared by both execution modes.

An :class:`Executor` runs *fork-join groups* of tasks (an SMP thread team, or
the ranks of an MP world) and supplies the three primitives every blocking
synchronisation construct in this library is written in terms of:

``checkpoint()``
    A point at which the scheduler may switch tasks.  A no-op under real
    threads (the OS preempts wherever it likes); the *only* switch points
    under the lockstep executor.

``wait_until(pred)``
    Block the calling task until ``pred()`` is true.  Predicates must be
    cheap, side-effect free functions of runtime state protected by the
    caller; they may be evaluated any number of times.

``notify()``
    Signal that shared runtime state changed, so blocked predicates should
    be re-evaluated.  Under lockstep this is also a preemption opportunity.

    This is a *contract*, not a courtesy: any state change that can turn a
    blocked predicate true MUST be followed by ``notify()`` before the
    changing task next blocks or finishes.  The lockstep executor relies on
    it to skip predicate re-evaluation on switches where nothing changed
    (its dirty-flag fast path), and the threaded executor's watchdog only
    resets on notified progress.  Every synchronisation primitive in this
    library honours it (release/deposit/arrive are each followed by a
    ``notify()``).

Everything else — barriers, critical sections, mailboxes, collectives — is
plain data plus these three calls, which is what lets a single
implementation behave identically (modulo interleavings) under both
executors.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro.errors import ParallelError, TaskFailedError

__all__ = [
    "Executor",
    "TaskGroup",
    "TaskRecord",
    "TaskHandle",
    "current_task_label",
    "resolve_describe",
    "set_task_label",
    "task_label_scope",
]


def resolve_describe(describe: "str | Callable[[], str]") -> str:
    """Materialise a wait description.

    Hot blocking paths (every message receive) pass ``describe`` as a
    zero-argument callable so the diagnostic string is only formatted on
    the rare path that actually reports it (deadlock, watchdog timeout).
    """
    return describe() if callable(describe) else describe

# Thread-local identity used for output attribution (see repro.core.capture)
# and for the lockstep executor to recognise its own managed tasks.
_tls = threading.local()


def current_task_label() -> str | None:
    """The label of the task running on the current thread, or ``None``.

    Labels look like ``"omp:3"`` (SMP thread 3) or ``"mpi:2"`` (rank 2);
    nested contexts may refine them (``"mpi:1/omp:0"``).
    """
    return getattr(_tls, "label", None)


def set_task_label(label: str | None) -> None:
    """Set (or clear, with ``None``) the current thread's task label.

    This is the one engine thread-local that could outlive a task body;
    the rank pool (:mod:`repro.sched.pool`) clears it between leases so
    a reused worker thread is indistinguishable from a fresh one.
    """
    _tls.label = label


class task_label_scope:
    """Context manager that temporarily overrides the current task label.

    Used by nested runtimes: an SMP region forked from inside an MP rank
    relabels its threads ``"<rank label>/omp:<tid>"`` for the duration of
    the region.
    """

    def __init__(self, label: str | None):
        self._label = label
        self._saved: str | None = None

    def __enter__(self) -> "task_label_scope":
        self._saved = current_task_label()
        set_task_label(self._label)
        return self

    def __exit__(self, *exc: object) -> None:
        set_task_label(self._saved)


@dataclass
class TaskRecord:
    """Result slot for one task of a fork-join group."""

    index: int
    label: str
    result: Any = None
    exception: BaseException | None = None

    @property
    def ok(self) -> bool:
        return self.exception is None


@dataclass
class TaskGroup:
    """A fork-join group: shared failure flag plus per-task records.

    Synchronisation primitives capture a reference to their group and fold
    ``group.failed`` into their wait predicates, so a crash in one task
    promptly unblocks its teammates (who then raise
    :class:`~repro.errors.TeamBrokenError` / ``RankFailedError`` instead of
    hanging).
    """

    label: str
    records: list[TaskRecord] = field(default_factory=list)
    failed: bool = False

    @property
    def size(self) -> int:
        return len(self.records)

    def failures(self) -> list[TaskFailedError]:
        """Per-task failures, wrapped with their labels, in task order."""
        return [
            TaskFailedError(r.label, r.exception)
            for r in self.records
            if r.exception is not None
        ]

    def results(self) -> list[Any]:
        """Per-task return values, in task order."""
        return [r.result for r in self.records]


class TaskHandle:
    """Join handle for one dynamically spawned task (pthread analogue).

    ``join`` blocks until the task completes, then returns its result or
    re-raises its failure wrapped in
    :class:`~repro.errors.TaskFailedError`.  Joining twice is allowed and
    idempotent.
    """

    def __init__(self, record: TaskRecord, waiter: Callable[[], None]):
        self.record = record
        self._waiter = waiter
        self._joined = False

    @property
    def label(self) -> str:
        return self.record.label

    def join(self) -> Any:
        """Wait for the task; return its result or raise TaskFailedError."""
        self._waiter()
        self._joined = True
        if self.record.exception is not None:
            raise TaskFailedError(self.record.label, self.record.exception)
        return self.record.result


class Executor(ABC):
    """Abstract execution substrate for fork-join task groups."""

    #: Human-readable mode name ("thread" or "lockstep").
    mode: str = "abstract"

    @abstractmethod
    def run_tasks(
        self,
        thunks: Sequence[Callable[[], Any]],
        labels: Sequence[str],
        *,
        group_label: str = "group",
        on_group: Callable[[TaskGroup], None] | None = None,
    ) -> TaskGroup:
        """Run ``thunks[i]`` as task ``labels[i]``; join them all.

        ``on_group`` is invoked with the freshly created group *before* any
        task starts, so runtimes can publish it (a team's or world's
        ``broken`` flag must be observable by blocked teammates while the
        run is still in flight).

        Returns the completed :class:`TaskGroup`.  If any task raised, a
        :class:`~repro.errors.ParallelError` aggregating every failure is
        raised instead (after all tasks have been joined).  May be called
        from an unmanaged thread or, for nested parallelism, from inside a
        managed task.
        """

    @abstractmethod
    def spawn(self, thunk: Callable[[], Any], label: str) -> TaskHandle:
        """Start one task dynamically (the ``pthread_create`` analogue).

        The task runs concurrently with its spawner; collect it with
        ``handle.join()``.  Under the lockstep executor the spawner must
        itself be a managed task (wrap the program's main in
        ``run_tasks``), since an unmanaged thread cannot take part in
        deterministic scheduling.
        """

    @abstractmethod
    def checkpoint(self) -> None:
        """A possible task-switch point (no-op under real threads)."""

    @abstractmethod
    def wait_until(
        self,
        pred: Callable[[], bool],
        *,
        describe: str | Callable[[], str] = "condition",
    ) -> None:
        """Block the calling task until ``pred()`` is true.

        ``describe`` appears in deadlock diagnostics ("rank 2 waiting for:
        message from rank 1").  It may be a zero-argument callable, which
        is only invoked if the description is actually reported — blocking
        sites on hot paths use this to avoid formatting a string per wait.
        """

    @abstractmethod
    def notify(self) -> None:
        """Declare that shared state changed; re-evaluate blocked predicates."""

    # -- shared helpers ----------------------------------------------------

    def _raise_group_failures(self, group: TaskGroup) -> None:
        failures = group.failures()
        if failures:
            raise ParallelError(failures)

    def steps(self) -> Iterator[tuple[str, str]]:
        """Iterate over recorded scheduling events (lockstep only).

        The threaded executor records nothing and yields nothing; the
        lockstep executor yields ``(event, task_label)`` pairs in order,
        which the visualisation helpers use to draw interleaving diagrams.
        """
        return iter(())
