"""Deterministic lockstep executor.

Tasks are real threads, but exactly one holds the *token* at any moment and
control transfers only at explicit switch points:

- ``checkpoint()`` — called by the runtimes after every observable action
  (a print, a message send, a race-window entry);
- ``wait_until(pred)`` — the task blocks; the token moves on;
- task completion.

At each switch the executor first re-evaluates the predicates of blocked
tasks (promoting the satisfied ones to runnable), then asks its
:class:`~repro.sched.policy.Policy` which runnable task runs next.  With a
seeded :class:`~repro.sched.policy.RandomPolicy` the complete interleaving —
and therefore the output order, the outcome of a data race, whether a
deadlock manifests — is a pure function of the seed.  This gives the
patternlets a *replay* capability the paper's C versions lack: "run it again
with seed 7" shows the same lost update every time.

If the runnable set empties while blocked tasks remain, every task is woken
with a :class:`~repro.errors.DeadlockError` naming each blocked task and
what it was waiting for.

Limitations (documented, enforced): one lockstep world at a time per
executor — concurrent ``run_tasks`` calls from *different unmanaged threads*
are rejected; nested ``run_tasks`` from inside a managed task (hybrid
MPI+OpenMP patternlets) is fully supported.  Managed tasks must not block on
raw OS primitives the executor cannot see; the runtimes in this library
never do.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterator, Sequence

from repro.errors import DeadlockError, ParallelError, SchedulerError
from repro.sched.base import (
    Executor,
    TaskGroup,
    TaskHandle,
    TaskRecord,
    set_task_label,
)
from repro.sched.policy import Policy, RandomPolicy
from repro.trace.events import emit as _trace_emit

__all__ = ["LockstepExecutor"]

_NEW = "new"
_RUNNABLE = "runnable"
_RUNNING = "running"
_BLOCKED = "blocked"
_DONE = "done"


class _TaskState:
    __slots__ = (
        "tid",
        "label",
        "status",
        "event",
        "pred",
        "describe",
        "group",
        "record",
    )

    def __init__(self, tid: int, label: str, group: "_GroupState", record: TaskRecord):
        self.tid = tid
        self.label = label
        self.status = _NEW
        self.event = threading.Event()
        self.pred: Callable[[], bool] | None = None
        self.describe = ""
        self.group = group
        self.record = record


class _GroupState:
    __slots__ = ("group", "remaining", "done_event")

    def __init__(self, group: TaskGroup, size: int):
        self.group = group
        self.remaining = size
        self.done_event = threading.Event()


class LockstepExecutor(Executor):
    """Deterministic, seed-replayable cooperative executor."""

    mode = "lockstep"

    #: Trace entries beyond this are dropped (the trace is a teaching aid,
    #: not a log; unbounded growth would bloat long benchmark runs).
    TRACE_LIMIT = 200_000

    def __init__(self, *, policy: Policy | None = None, max_steps: int = 5_000_000):
        self.policy = policy if policy is not None else RandomPolicy(0)
        #: Hard cap on scheduler switches; a runaway loop aborts instead of
        #: hanging the session.
        self.max_steps = max_steps
        self._lock = threading.Lock()
        self._tasks: dict[int, _TaskState] = {}
        self._current: int | None = None
        self._next_tid = 0
        self._steps = 0
        self._aborted: BaseException | None = None
        self._trace: list[tuple[str, str]] = []
        self._tls = threading.local()

    # -- introspection -------------------------------------------------------

    def steps(self) -> Iterator[tuple[str, str]]:
        """Recorded ``(event, task_label)`` scheduling trace, in order."""
        return iter(list(self._trace))

    @property
    def step_count(self) -> int:
        return self._steps

    # -- Executor interface --------------------------------------------------

    def run_tasks(
        self,
        thunks: Sequence[Callable[[], Any]],
        labels: Sequence[str],
        *,
        group_label: str = "group",
        on_group: Callable[[TaskGroup], None] | None = None,
    ) -> TaskGroup:
        if len(thunks) != len(labels):
            raise ValueError("thunks and labels must have equal length")
        group = TaskGroup(label=group_label)
        group.records = [TaskRecord(i, labels[i]) for i in range(len(thunks))]
        if on_group is not None:
            on_group(group)
        if not thunks:
            return group
        gstate = _GroupState(group, len(thunks))

        caller = self._current_state()
        with self._lock:
            if self._aborted is not None:
                raise SchedulerError("executor already aborted; create a new one")
            if caller is None and self._current is not None:
                raise SchedulerError(
                    "lockstep executor already driving a task group from "
                    "another thread; use one outer run_tasks at a time"
                )
            states = []
            for rec, thunk in zip(group.records, thunks):
                tid = self._next_tid
                self._next_tid += 1
                st = _TaskState(tid, rec.label, gstate, rec)
                self._tasks[tid] = st
                states.append((st, thunk))

        threads = []
        for st, thunk in states:
            t = threading.Thread(
                target=self._task_main,
                args=(st, thunk),
                name=f"{group_label}:{st.label}",
                daemon=True,
            )
            threads.append(t)
            t.start()
        with self._lock:
            for st, _ in states:
                st.status = _RUNNABLE

        if caller is not None:
            # Nested fork-join from inside a managed task: the parent simply
            # blocks until its children are all done; the children are now
            # runnable and the normal switching machinery drives them.
            self.wait_until(
                lambda: gstate.remaining == 0,
                describe=f"completion of nested group {group_label!r}",
            )
        else:
            # Outer call from an unmanaged thread: hand the token to the
            # first task, then sleep until the group completes (or aborts).
            with self._lock:
                first = self._pick_next_locked(current_ok=None)
                if first is not None:
                    self._hand_token_locked(first)
            gstate.done_event.wait()
            if self._aborted is not None:
                # Give every task thread a moment to unwind before raising.
                for t in threads:
                    t.join(timeout=5.0)
                # A real task failure often *causes* the subsequent
                # deadlock (its orphaned peers block forever); report the
                # root cause, with the deadlock among the failures.
                genuine = [
                    f
                    for f in group.failures()
                    if f.cause is not self._aborted
                    and not isinstance(f.cause, DeadlockError)
                ]
                if genuine:
                    raise ParallelError(group.failures())
                raise self._aborted

        for t in threads:
            t.join(timeout=5.0)
        self._raise_group_failures(group)
        return group

    def spawn(self, thunk: Callable[[], Any], label: str) -> TaskHandle:
        caller = self._current_state()
        if caller is None:
            raise SchedulerError(
                "lockstep spawn requires a managed caller: run the program's "
                "main under run_tasks (e.g. PthreadsRuntime.run)"
            )
        record = TaskRecord(0, label)
        group = TaskGroup(label=f"spawn:{label}", records=[record])
        gstate = _GroupState(group, 1)
        with self._lock:
            if self._aborted is not None:
                raise SchedulerError("executor already aborted; create a new one")
            tid = self._next_tid
            self._next_tid += 1
            st = _TaskState(tid, label, gstate, record)
            self._tasks[tid] = st
        thread = threading.Thread(
            target=self._task_main, args=(st, thunk), name=f"spawn:{label}", daemon=True
        )
        thread.start()
        with self._lock:
            st.status = _RUNNABLE

        def waiter() -> None:
            self.wait_until(
                lambda: gstate.remaining == 0,
                describe=f"join of spawned task {label!r}",
            )
            thread.join(timeout=5.0)

        return TaskHandle(record, waiter)

    def checkpoint(self) -> None:
        me = self._current_state()
        if me is None:
            return
        self._check_abort()
        with self._lock:
            nxt = self._pick_next_locked(current_ok=me)
            if nxt is None or nxt is me:
                return
            me.status = _RUNNABLE
            self._hand_token_locked(nxt)
        self._await_token(me)

    def wait_until(
        self, pred: Callable[[], bool], *, describe: str = "condition"
    ) -> None:
        me = self._current_state()
        if me is None:
            # Unmanaged thread (e.g. the pytest main thread polling some
            # state): poll politely.  Rare, but keeps the API total.
            while not pred():
                if self._aborted is not None:
                    raise self._aborted
                threading.Event().wait(0.001)
            return
        while not pred():
            self._check_abort()
            with self._lock:
                me.status = _BLOCKED
                me.pred = pred
                me.describe = describe
                self._trace_add(("block", me.label))
                nxt = self._pick_next_locked(current_ok=None)
                if nxt is None:
                    self._abort_locked(self._deadlock_locked())
                    break
                self._hand_token_locked(nxt)
            self._await_token(me)
        self._check_abort()
        with self._lock:
            me.pred = None
            me.describe = ""

    def notify(self) -> None:
        # State changes only propagate at switch points, so every notify is
        # also a preemption opportunity; this is what lets a seeded run
        # interleave sends with receives, prints with prints, and so on.
        self.checkpoint()

    # -- internals -----------------------------------------------------------

    def _trace_add(self, entry: tuple[str, str]) -> None:
        if len(self._trace) < self.TRACE_LIMIT:
            self._trace.append(entry)
        # Mirror every scheduling decision onto the run's event spine (a
        # no-op when no recorder is ambient).  The event is *about*
        # entry[1]'s task, not necessarily emitted by its thread.
        _trace_emit(f"sched.{entry[0]}", task=entry[1])

    def _current_state(self) -> _TaskState | None:
        tid = getattr(self._tls, "tid", None)
        if tid is None:
            return None
        return self._tasks.get(tid)

    def _task_main(self, st: _TaskState, thunk: Callable[[], Any]) -> None:
        self._tls.tid = st.tid
        set_task_label(st.label)
        self._await_token(st, first=True)
        try:
            if self._aborted is None:
                st.record.result = thunk()
        except _AbortUnwind:
            st.record.exception = self._aborted
            st.group.group.failed = True
        except BaseException as exc:  # noqa: BLE001 - reported via group
            st.record.exception = exc
            st.group.group.failed = True
        finally:
            set_task_label(None)
            self._tls.tid = None
            self._finish(st)

    def _await_token(self, st: _TaskState, *, first: bool = False) -> None:
        st.event.wait()
        st.event.clear()
        if self._aborted is not None and first:
            # Woken only to unwind; _task_main handles it.
            return
        if self._aborted is not None:
            raise _AbortUnwind()

    def _check_abort(self) -> None:
        if self._aborted is not None:
            raise _AbortUnwind()

    def _hand_token_locked(self, nxt: _TaskState) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            self._abort_locked(
                SchedulerError(
                    f"lockstep step limit exceeded ({self.max_steps}); "
                    "probable livelock"
                )
            )
            return
        nxt.status = _RUNNING
        self._current = nxt.tid
        self._trace_add(("run", nxt.label))
        nxt.event.set()

    def _pick_next_locked(self, current_ok: _TaskState | None) -> _TaskState | None:
        # Promote blocked tasks whose predicates came true.
        for st in self._tasks.values():
            if st.status == _BLOCKED and st.pred is not None and st.pred():
                st.status = _RUNNABLE
                self._trace_add(("wake", st.label))
        runnable = sorted(
            tid
            for tid, st in self._tasks.items()
            if st.status == _RUNNABLE or (current_ok is not None and st is current_ok)
        )
        if not runnable:
            return None
        cur = current_ok.tid if current_ok is not None else None
        chosen = self.policy.choose(runnable, cur)
        if chosen not in self._tasks:
            raise SchedulerError(f"policy chose unknown task id {chosen}")
        return self._tasks[chosen]

    def _finish(self, st: _TaskState) -> None:
        with self._lock:
            st.status = _DONE
            self._trace_add(("done", st.label))
            st.group.remaining -= 1
            group_done = st.group.remaining == 0
            self._current = None
            nxt = self._pick_next_locked(current_ok=None)
            if nxt is not None:
                self._hand_token_locked(nxt)
            else:
                live = [
                    t for t in self._tasks.values() if t.status in (_BLOCKED, _RUNNING)
                ]
                if live and self._aborted is None:
                    self._abort_locked(self._deadlock_locked())
            if group_done:
                st.group.done_event.set()
            # Garbage-collect finished tasks so long sessions stay small.
            if all(t.status == _DONE for t in self._tasks.values()):
                self._tasks.clear()
                self._current = None

    def _deadlock_locked(self) -> DeadlockError:
        blocked = {
            st.label: st.describe or "unspecified condition"
            for st in self._tasks.values()
            if st.status == _BLOCKED
        }
        detail = "; ".join(f"{k} waiting for: {v}" for k, v in sorted(blocked.items()))
        return DeadlockError(
            f"deadlock: all live tasks are blocked ({detail})", blocked=blocked
        )

    def _abort_locked(self, exc: BaseException) -> None:
        if self._aborted is None:
            self._aborted = exc
        # Wake everything; each task unwinds via _AbortUnwind, and every
        # group waiter is released.
        for st in self._tasks.values():
            if st.status in (_BLOCKED, _RUNNABLE, _RUNNING):
                st.group.group.failed = True
                st.event.set()
        groups = {id(st.group): st.group for st in self._tasks.values()}
        for g in groups.values():
            g.done_event.set()


class _AbortUnwind(BaseException):
    """Internal unwind signal; never escapes the executor."""
