"""Deterministic lockstep executor.

Tasks are real threads, but exactly one holds the *token* at any moment and
control transfers only at explicit switch points:

- ``checkpoint()`` — called by the runtimes after every observable action
  (a print, a message send, a race-window entry);
- ``wait_until(pred)`` — the task blocks; the token moves on;
- task completion.

At each switch the executor asks its :class:`~repro.sched.policy.Policy`
which runnable task runs next.  With a seeded
:class:`~repro.sched.policy.RandomPolicy` the complete interleaving — and
therefore the output order, the outcome of a data race, whether a deadlock
manifests — is a pure function of the seed.  This gives the patternlets a
*replay* capability the paper's C versions lack: "run it again with seed 7"
shows the same lost update every time.

Switch-point machinery (the hot path of every lockstep run):

- The token is handed over a per-task **binary semaphore** (a raw
  ``threading.Lock`` held-by-default): one release wakes exactly the chosen
  task, one acquire parks the yielding one.  This replaced a per-task
  ``threading.Event`` ping-pong, whose set/clear/wait cycle cost three
  extra lock round-trips per switch.
- Blocked predicates are re-evaluated only when the **dirty flag** says
  shared state actually changed — set by :meth:`notify`, task completion,
  and aborts — rather than on every switch.  This is sound because of the
  executor contract (see :mod:`repro.sched.base`): any state change that
  can turn a predicate true must be followed by ``notify()``.  A safety
  net re-evaluates everything once before declaring deadlock.
- Unmanaged threads (e.g. the pytest main thread polling runtime state)
  wait on one shared :class:`threading.Condition` and are woken by the
  next ``notify()`` — previously they spun on a 1 ms timed sleep.  The
  ``timed_waits`` counter records any fallback timed poll (only ever taken
  when *no* managed task exists to deliver a wakeup); tests assert it
  stays zero in deadlock-free runs.
- The runnable set is a **maintained sorted index** (``_ready``, ascending
  tid — exactly the list the policy contract requires) plus a blocked-task
  index for promotion passes, so a switch costs O(log np) instead of an
  O(np) scan of the task table; this is what makes np=256 runs practical.
- **Batched arbitration** (``batch=k``, default 1): one full policy
  decision grants the chosen task a quantum of ``k-1`` further free passes
  through plain checkpoints, amortising the ~2.6 us OS handoff floor
  across k observable actions.  Blocking waits, completion and aborts
  always cancel the quantum and re-arbitrate, so liveness is unchanged;
  the interleaving is a pure function of ``(seed, batch)`` and the default
  ``batch=1`` stream is byte-identical to the pinned goldens.
- Task bodies run on threads **leased from the process-wide rank pool**
  (:mod:`repro.sched.pool`) rather than freshly spawned per run: thread
  setup/teardown no longer dominates per-run cost at batch rates, and an
  aborted/deadlocked run reparks its workers instead of stranding OS
  threads behind the old ``Thread.join(timeout=5.0)``.

If the runnable set empties while blocked tasks remain, every task is woken
with a :class:`~repro.errors.DeadlockError` naming each blocked task and
what it was waiting for.

Limitations (documented, enforced): one lockstep world at a time per
executor — concurrent ``run_tasks`` calls from *different unmanaged threads*
are rejected; nested ``run_tasks`` from inside a managed task (hybrid
MPI+OpenMP patternlets) is fully supported.  Managed tasks must not block on
raw OS primitives the executor cannot see; the runtimes in this library
never do.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, insort
from typing import Any, Callable, Iterator, Sequence

from repro.errors import DeadlockError, ParallelError, SchedulerError
from repro.sched.pool import lease as _pool_lease, prepare_many as _pool_prepare_many
from repro.sched.base import (
    Executor,
    TaskGroup,
    TaskHandle,
    TaskRecord,
    resolve_describe,
    set_task_label,
)
from repro.obs import live as _live
from repro.sched.policy import Policy, RandomPolicy
from repro.trace import events as _trace_events
from repro.trace.events import active as _trace_active, emit as _trace_emit

__all__ = ["LockstepExecutor"]

_NEW = "new"
_RUNNABLE = "runnable"
_RUNNING = "running"
_BLOCKED = "blocked"
_DONE = "done"


class _TaskState:
    __slots__ = (
        "tid",
        "label",
        "status",
        "sem",
        "pred",
        "describe",
        "group",
        "record",
        "quantum",
        "start",
        "deferred",
    )

    def __init__(self, tid: int, label: str, group: "_GroupState", record: TaskRecord):
        self.tid = tid
        self.label = label
        self.status = _NEW
        # Binary semaphore carrying the token: held (locked) by default,
        # released exactly when this task is handed the token.
        self.sem = threading.Lock()
        self.sem.acquire()
        self.pred: Callable[[], bool] | None = None
        self.describe: str | Callable[[], str] = ""
        self.group = group
        self.record = record
        #: Remaining free fast passes through checkpoint() granted by the
        #: last full arbitration (batched mode only; always 0 at batch=1).
        self.quantum = 0
        #: Deferred pool start (run_tasks bodies): the worker thread stays
        #: parked in the pool until the first token grant calls this — one
        #: OS wakeup per rank instead of two.  None once started (or for
        #: spawn(), which leases immediately).
        self.start: Callable[[], None] | None = None
        self.deferred = False


class _GroupState:
    __slots__ = ("group", "remaining", "done_event")

    def __init__(self, group: TaskGroup, size: int):
        self.group = group
        self.remaining = size
        self.done_event = threading.Event()


class LockstepExecutor(Executor):
    """Deterministic, seed-replayable cooperative executor."""

    mode = "lockstep"

    #: Trace entries beyond this are dropped (the trace is a teaching aid,
    #: not a log; unbounded growth would bloat long benchmark runs).
    TRACE_LIMIT = 200_000

    def __init__(
        self,
        *,
        policy: Policy | None = None,
        max_steps: int = 5_000_000,
        batch: int = 1,
    ):
        self.policy = policy if policy is not None else RandomPolicy(0)
        if not isinstance(batch, int) or batch < 1:
            raise ValueError(f"batch must be a positive int, got {batch!r}")
        #: Switch points serviced per full arbitration.  At the default
        #: ``batch=1`` every checkpoint is a policy decision plus (usually)
        #: an OS token handoff — the classroom mode, byte-identical to the
        #: pinned golden interleavings.  At ``batch=k>1`` one arbitration
        #: grants the chosen task a *quantum* of ``k-1`` further free
        #: passes through plain checkpoints (~25x cheaper than a handoff:
        #: no lock, no semaphore, no policy draw), amortising the ~2.6 us
        #: OS handoff floor across k observable actions.  Blocking waits,
        #: task completion and aborts always cancel the quantum and take
        #: the full arbitration path, so no task can starve a peer whose
        #: predicate its own actions made true for longer than k-1 steps.
        #: The interleaving is still a pure function of (seed, batch) —
        #: only the batch=1 stream matches the goldens.
        self.batch = batch
        self._quantum = batch - 1
        # Bound once: the policy is fixed for the executor's lifetime and
        # choose() runs on every switch.  For the default RandomPolicy the
        # draw is additionally inlined at the switch sites as
        # ``runnable[randbelow(len(runnable))]`` — exactly the bits
        # RandomPolicy.choose draws, skipping its call frame.
        self._choose = self.policy.choose
        self._randbelow = (
            self.policy._randbelow if type(self.policy) is RandomPolicy else None
        )
        #: Hard cap on scheduler switches; a runaway loop aborts instead of
        #: hanging the session.
        self.max_steps = max_steps
        self._lock = threading.Lock()
        #: Wakeup channel for unmanaged threads parked in wait_until.
        self._cond = threading.Condition(self._lock)
        #: Count of unmanaged threads currently waiting on _cond; notify()
        #: only takes the condition lock when someone is actually parked.
        self._ext_waiters = 0
        #: True when shared state changed since blocked predicates were
        #: last re-evaluated (set by notify/finish/abort).
        self._dirty = False
        #: Timed fallback polls taken by unmanaged waiters.  Stays 0 in any
        #: run where managed tasks exist to deliver real wakeups; tests
        #: assert on this to keep the busy-wait from creeping back.
        self.timed_waits = 0
        self._tasks: dict[int, _TaskState] = {}
        #: Live (not yet _DONE) entries in _tasks.  _finish used to decide
        #: "everyone done?" with an O(np) scan of the table — O(np^2) per
        #: world teardown, measurable at np=1024.
        self._undone = 0
        #: Maintained index of runnable tids, always sorted ascending —
        #: exactly the list the policy contract requires.  Switch points
        #: re-insert/remove in O(log np) instead of scanning the whole
        #: task table per switch (O(np) — ruinous at np=256).
        self._ready: list[int] = []
        #: Blocked tasks by tid; promotion passes scan only this index.
        self._blocked: dict[int, _TaskState] = {}
        self._current: int | None = None
        self._next_tid = 0
        self._steps = 0
        self._aborted: BaseException | None = None
        self._trace: list[tuple[str, str]] = []
        self._tls = threading.local()

    # -- introspection -------------------------------------------------------

    def steps(self) -> Iterator[tuple[str, str]]:
        """Recorded ``(event, task_label)`` scheduling trace, in order."""
        return iter(list(self._trace))

    @property
    def step_count(self) -> int:
        return self._steps

    # -- Executor interface --------------------------------------------------

    def run_tasks(
        self,
        thunks: Sequence[Callable[[], Any]],
        labels: Sequence[str],
        *,
        group_label: str = "group",
        on_group: Callable[[TaskGroup], None] | None = None,
    ) -> TaskGroup:
        if len(thunks) != len(labels):
            raise ValueError("thunks and labels must have equal length")
        group = TaskGroup(label=group_label)
        group.records = [TaskRecord(i, labels[i]) for i in range(len(thunks))]
        if on_group is not None:
            on_group(group)
        if not thunks:
            return group
        gstate = _GroupState(group, len(thunks))

        caller = self._current_state()
        with self._lock:
            if self._aborted is not None:
                raise SchedulerError("executor already aborted; create a new one")
            if caller is None and self._current is not None:
                raise SchedulerError(
                    "lockstep executor already driving a task group from "
                    "another thread; use one outer run_tasks at a time"
                )
            states = []
            for rec, thunk in zip(group.records, thunks):
                tid = self._next_tid
                self._next_tid += 1
                st = _TaskState(tid, rec.label, gstate, rec)
                self._tasks[tid] = st
                self._undone += 1
                states.append((st, thunk))

        # Deferred starts: stage every body on a pooled worker without
        # waking it.  A plain lease wakes the worker just to park it again
        # on the token semaphore — two OS wakeups per rank, which at
        # np=1024 is the dominant setup cost.  The first token grant (or
        # the abort wake) calls the starter instead of releasing the
        # semaphore, fusing pool wake and token handoff into one.
        leases, starters = _pool_prepare_many(
            self._task_main,
            [(st, thunk) for st, thunk in states],
            [f"{group_label}:{st.label}" for st, _ in states],
        )
        with self._lock:
            ready = self._ready
            for (st, _), start in zip(states, starters):
                st.start = start
                st.deferred = True
                st.status = _RUNNABLE
                insort(ready, st.tid)
            self._dirty = True

        if caller is not None:
            # Nested fork-join from inside a managed task: the parent simply
            # blocks until its children are all done; the children are now
            # runnable and the normal switching machinery drives them.
            self.wait_until(
                lambda: gstate.remaining == 0,
                describe=f"completion of nested group {group_label!r}",
            )
        else:
            # Outer call from an unmanaged thread: hand the token to the
            # first task, then sleep until the group completes (or aborts).
            with self._lock:
                first = self._pick_next_locked()
                if first is not None:
                    self._hand_token_locked(first)
            gstate.done_event.wait()
            if self._aborted is not None:
                # Give every task body a moment to unwind before raising.
                # Leases are reclaimed by the pool even when a body is
                # still unwinding: no OS thread is stranded either way.
                for l in leases:
                    l.join(timeout=5.0)
                # A real task failure often *causes* the subsequent
                # deadlock (its orphaned peers block forever); report the
                # root cause, with the deadlock among the failures.
                genuine = [
                    f
                    for f in group.failures()
                    if f.cause is not self._aborted
                    and not isinstance(f.cause, DeadlockError)
                ]
                if genuine:
                    raise ParallelError(group.failures())
                raise self._aborted

        for l in leases:
            l.join(timeout=5.0)
        self._raise_group_failures(group)
        return group

    def spawn(self, thunk: Callable[[], Any], label: str) -> TaskHandle:
        caller = self._current_state()
        if caller is None:
            raise SchedulerError(
                "lockstep spawn requires a managed caller: run the program's "
                "main under run_tasks (e.g. PthreadsRuntime.run)"
            )
        record = TaskRecord(0, label)
        group = TaskGroup(label=f"spawn:{label}", records=[record])
        gstate = _GroupState(group, 1)
        with self._lock:
            if self._aborted is not None:
                raise SchedulerError("executor already aborted; create a new one")
            tid = self._next_tid
            self._next_tid += 1
            st = _TaskState(tid, label, gstate, record)
            self._tasks[tid] = st
            self._undone += 1
        task_lease = _pool_lease(self._task_main, (st, thunk), name=f"spawn:{label}")
        with self._lock:
            st.status = _RUNNABLE
            insort(self._ready, st.tid)
            self._dirty = True

        def waiter() -> None:
            self.wait_until(
                lambda: gstate.remaining == 0,
                describe=f"join of spawned task {label!r}",
            )
            task_lease.join(timeout=5.0)

        return TaskHandle(record, waiter)

    def checkpoint(self) -> None:
        # The single hottest function in a lockstep run: called after every
        # observable action by every managed task.  The pick/hand/park
        # sequence is inlined here (same logic as _pick_next_locked +
        # _hand_token_locked, which remain the shared path for wait_until
        # and _finish) to keep the per-switch cost to a handful of
        # attribute reads.  The runnable set is the maintained sorted
        # _ready list — re-inserting *me* costs O(log np) and the policy
        # draw indexes it directly, so a switch no longer scans the task
        # table (O(np) per switch was ruinous at np=256).  The list holds
        # exactly the RUNNABLE tids in ascending order — the same members
        # in the same order the table scan produced — so seeded policies
        # draw identical choices.
        me = getattr(self._tls, "state", None)
        if me is None:
            return
        if self._aborted is not None:
            raise _AbortUnwind()
        if me.quantum:
            # Batched mode: this switch point is covered by the quantum the
            # last full arbitration granted — service it for free (no lock,
            # no policy draw, no handoff).  The dirty flag is deliberately
            # left alone: promotions run at the next full arbitration.
            me.quantum -= 1
            self._steps += 1
            return
        with self._lock:
            me.status = _RUNNABLE
            ready = self._ready
            insort(ready, me.tid)
            if self._dirty:
                self._dirty = False
                if self._blocked:
                    self._promote_locked()
            rb = self._randbelow
            if rb is not None:
                i = rb(len(ready))
                chosen = ready[i]
            else:
                chosen = self._choose(ready, me.tid)
                i = bisect_left(ready, chosen)
                if i >= len(ready) or ready[i] != chosen:
                    raise SchedulerError(f"policy chose unknown task id {chosen}")
            if chosen == me.tid:
                del ready[i]
                me.status = _RUNNING
                me.quantum = self._quantum
                return
            nxt = self._tasks[chosen]
            self._steps += 1
            if self._steps > self.max_steps:
                self._abort_locked(
                    SchedulerError(
                        f"lockstep step limit exceeded ({self.max_steps}); "
                        "probable livelock"
                    )
                )
            else:
                del ready[i]
                nxt.status = _RUNNING
                nxt.quantum = self._quantum
                self._current = nxt.tid
                trace = self._trace
                if len(trace) < self.TRACE_LIMIT:
                    trace.append(("run", nxt.label))
                rec = _trace_events._top
                if rec is not None and rec.recording:
                    rec.emit("sched.run", task=nxt.label)
                p = _live.probe
                if p is not None:
                    p.run(nxt.label)
                s = nxt.start
                if s is None:
                    nxt.sem.release()
                else:
                    nxt.start = None
                    s()
        me.sem.acquire()
        if self._aborted is not None:
            raise _AbortUnwind()

    def wait_until(
        self, pred: Callable[[], bool], *, describe: str | Callable[[], str] = "condition"
    ) -> None:
        me = getattr(self._tls, "state", None)
        if me is None:
            self._wait_unmanaged(pred)
            return
        blocked = False
        while not pred():
            if self._aborted is not None:
                raise _AbortUnwind()
            blocked = True
            # A blocking task surrenders whatever quantum it held: the
            # full arbitration below re-evaluates predicates and draws a
            # fresh policy decision, so batching can never convert a
            # satisfiable wait into a starvation.
            me.quantum = 0
            with self._lock:
                me.status = _BLOCKED
                me.pred = pred
                me.describe = describe
                self._blocked[me.tid] = me
                trace = self._trace
                if len(trace) < self.TRACE_LIMIT:
                    trace.append(("block", me.label))
                rec = _trace_events._top
                if rec is not None and rec.recording:
                    rec.emit("sched.block", task=me.label)
                p = _live.probe
                if p is not None:
                    p.block(me.label)
                # _pick_next_locked + _hand_token_locked inlined, as in
                # checkpoint(): this block runs once per blocked receive.
                # *me* is skipped in the promote pass — its predicate was
                # evaluated false at the top of this loop iteration, and
                # predicates are pure, so re-evaluating it cannot promote
                # it (the empty-ready safety net still re-checks all).
                ready = self._ready
                if self._dirty:
                    self._dirty = False
                    self._promote_locked(skip=me)
                if not ready:
                    # Safety net: one forced re-evaluation (see
                    # _pick_next_locked) before declaring deadlock.
                    self._promote_locked()
                if not ready:
                    self._abort_locked(self._deadlock_locked())
                    break
                rb = self._randbelow
                if rb is not None:
                    i = rb(len(ready))
                    chosen = ready[i]
                else:
                    chosen = self._choose(ready, None)
                    i = bisect_left(ready, chosen)
                    if i >= len(ready) or ready[i] != chosen:
                        raise SchedulerError(
                            f"policy chose unknown task id {chosen}"
                        )
                nxt = self._tasks[chosen]
                self._steps += 1
                if self._steps > self.max_steps:
                    self._abort_locked(
                        SchedulerError(
                            f"lockstep step limit exceeded ({self.max_steps}); "
                            "probable livelock"
                        )
                    )
                else:
                    del ready[i]
                    nxt.status = _RUNNING
                    nxt.quantum = self._quantum
                    self._current = nxt.tid
                    if len(trace) < self.TRACE_LIMIT:
                        trace.append(("run", nxt.label))
                    rec = _trace_events._top
                    if rec is not None and rec.recording:
                        rec.emit("sched.run", task=nxt.label)
                    p = _live.probe
                    if p is not None:
                        p.run(nxt.label)
                    s = nxt.start
                    if s is None:
                        nxt.sem.release()
                    else:
                        nxt.start = None
                        s()
            me.sem.acquire()
            if self._aborted is not None:
                raise _AbortUnwind()
        if self._aborted is not None:
            raise _AbortUnwind()
        if blocked:
            # Safe without the executor lock: *me* holds the token (is
            # RUNNING), the promote pass already dropped me from the
            # blocked index when it woke me, and promote scans only read
            # preds of BLOCKED tasks.
            me.pred = None
            me.describe = ""

    def _wait_unmanaged(self, pred: Callable[[], bool]) -> None:
        # Unmanaged thread (e.g. the pytest main thread polling some
        # state): park on the shared condition; notify() delivers a real
        # wakeup.  Rare, but keeps the API total.
        with self._cond:
            while not pred():
                if self._aborted is not None:
                    raise self._aborted
                self._ext_waiters += 1
                try:
                    if self._tasks:
                        self._cond.wait()
                    else:
                        # No managed task exists, so nothing will ever call
                        # notify(); a timed poll is the only option left.
                        self.timed_waits += 1
                        self._cond.wait(0.01)
                finally:
                    self._ext_waiters -= 1

    def notify(self) -> None:
        # State changes only propagate at switch points, so every notify is
        # also a preemption opportunity; this is what lets a seeded run
        # interleave sends with receives, prints with prints, and so on.
        # The dirty flag is what permits _pick_next_locked to skip predicate
        # re-evaluation on switches where nothing changed.
        self._dirty = True
        if self._ext_waiters:
            with self._cond:
                self._cond.notify_all()
        self.checkpoint()

    # -- internals -----------------------------------------------------------

    def _trace_add(self, entry: tuple[str, str]) -> None:
        if len(self._trace) < self.TRACE_LIMIT:
            self._trace.append(entry)
        # Mirror every scheduling decision onto the run's event spine (a
        # no-op when no recorder is ambient).  The event is *about*
        # entry[1]'s task, not necessarily emitted by its thread.
        if _trace_active():
            _trace_emit(f"sched.{entry[0]}", task=entry[1])

    def _current_state(self) -> _TaskState | None:
        # TLS holds the state object itself (not a tid needing a dict
        # lookup): this runs on every checkpoint and wait.
        return getattr(self._tls, "state", None)

    def _task_main(self, st: _TaskState, thunk: Callable[[], Any]) -> None:
        self._tls.state = st
        set_task_label(st.label)
        if not st.deferred:
            # Deferred run_tasks bodies skip this: being started *is* the
            # first token grant (or the abort wake) — their semaphore was
            # never released, so there is nothing to await.
            self._await_token(st, first=True)
        try:
            if self._aborted is None:
                st.record.result = thunk()
        except _AbortUnwind:
            st.record.exception = self._aborted
            st.group.group.failed = True
        except BaseException as exc:  # noqa: BLE001 - reported via group
            st.record.exception = exc
            st.group.group.failed = True
        finally:
            set_task_label(None)
            self._tls.state = None
            self._finish(st)

    def _await_token(self, st: _TaskState, *, first: bool = False) -> None:
        st.sem.acquire()
        if self._aborted is not None and first:
            # Woken only to unwind; _task_main handles it.
            return
        if self._aborted is not None:
            raise _AbortUnwind()

    def _check_abort(self) -> None:
        if self._aborted is not None:
            raise _AbortUnwind()

    def _hand_token_locked(self, nxt: _TaskState) -> None:
        if self._aborted is not None:
            # _abort_locked already released every live semaphore; a second
            # release would raise (binary semaphore).  Everyone is unwinding.
            return
        self._steps += 1
        if self._steps > self.max_steps:
            self._abort_locked(
                SchedulerError(
                    f"lockstep step limit exceeded ({self.max_steps}); "
                    "probable livelock"
                )
            )
            return
        ready = self._ready
        i = bisect_left(ready, nxt.tid)
        if i < len(ready) and ready[i] == nxt.tid:
            del ready[i]
        nxt.status = _RUNNING
        nxt.quantum = self._quantum
        self._current = nxt.tid
        # _trace_add inlined: this runs once per switch.
        trace = self._trace
        if len(trace) < self.TRACE_LIMIT:
            trace.append(("run", nxt.label))
        rec = _trace_events._top
        if rec is not None and rec.recording:
            rec.emit("sched.run", task=nxt.label)
        p = _live.probe
        if p is not None:
            p.run(nxt.label)
        s = nxt.start
        if s is None:
            nxt.sem.release()
        else:
            nxt.start = None
            s()

    def _promote_locked(self, skip: _TaskState | None = None) -> None:
        """Move blocked tasks whose predicates came true to runnable.

        Scans only the blocked-task index (not the whole table), in
        ascending-tid order — the same wake order the old full-table scan
        produced, so seeded interleavings are unchanged.
        """
        blocked = self._blocked
        if not blocked:
            return
        promoted = None
        for tid in sorted(blocked):
            st = blocked[tid]
            if st is skip or st.pred is None or not st.pred():
                continue
            st.status = _RUNNABLE
            insort(self._ready, tid)
            if promoted is None:
                promoted = [tid]
            else:
                promoted.append(tid)
            trace = self._trace
            if len(trace) < self.TRACE_LIMIT:
                trace.append(("wake", st.label))
            rec = _trace_events._top
            if rec is not None and rec.recording:
                rec.emit("sched.wake", task=st.label)
            p = _live.probe
            if p is not None:
                p.wake(st.label)
        if promoted is not None:
            for tid in promoted:
                del blocked[tid]

    def _pick_next_locked(self) -> _TaskState | None:
        if self._dirty:
            self._dirty = False
            self._promote_locked()
        ready = self._ready
        if not ready:
            # Safety net: one forced re-evaluation before concluding that
            # nothing can run, in case state changed without a notify().
            self._promote_locked()
            if not ready:
                return None
        chosen = self._choose(ready, None)
        i = bisect_left(ready, chosen)
        if i >= len(ready) or ready[i] != chosen:
            raise SchedulerError(f"policy chose unknown task id {chosen}")
        return self._tasks[chosen]

    def _finish(self, st: _TaskState) -> None:
        with self._lock:
            st.status = _DONE
            st.quantum = 0
            self._undone -= 1
            self._trace_add(("done", st.label))
            st.group.remaining -= 1
            group_done = st.group.remaining == 0
            self._current = None
            self._dirty = True  # remaining/failed changed: joiners may wake
            if self._aborted is None:
                nxt = self._pick_next_locked()
                if nxt is not None:
                    self._hand_token_locked(nxt)
                else:
                    live = [
                        t
                        for t in self._tasks.values()
                        if t.status in (_BLOCKED, _RUNNING)
                    ]
                    if live:
                        self._abort_locked(self._deadlock_locked())
            if group_done:
                st.group.done_event.set()
            if self._ext_waiters:
                self._cond.notify_all()
            # Garbage-collect finished tasks so long sessions stay small.
            # The live counter replaces an all-done table scan that made
            # world teardown O(np^2).
            if self._undone == 0:
                self._tasks.clear()
                # Stale tids can linger in the indexes only on abort paths
                # (the executor is dead then anyway); clear with the table.
                self._ready.clear()
                self._blocked.clear()
                self._current = None

    def _deadlock_locked(self) -> DeadlockError:
        blocked = {
            st.label: resolve_describe(st.describe) or "unspecified condition"
            for st in self._blocked.values()
            if st.status == _BLOCKED
        }
        detail = "; ".join(f"{k} waiting for: {v}" for k, v in sorted(blocked.items()))
        return DeadlockError(
            f"deadlock: all live tasks are blocked ({detail})", blocked=blocked
        )

    def _abort_locked(self, exc: BaseException) -> None:
        if self._aborted is None:
            self._aborted = exc
        # Wake everything; each task unwinds via _AbortUnwind, every group
        # waiter is released, and parked unmanaged waiters re-check.
        for st in self._tasks.values():
            if st.status in (_BLOCKED, _RUNNABLE, _RUNNING):
                st.group.group.failed = True
                s = st.start
                if s is not None:
                    # Never-started deferred body: releasing its semaphore
                    # cannot wake a worker still parked in the pool — start
                    # it so it observes the abort and unwinds via _finish.
                    st.start = None
                    s()
                elif st.sem.locked():
                    try:
                        st.sem.release()
                    except RuntimeError:  # pragma: no cover - lost race: already released
                        pass
        groups = {id(st.group): st.group for st in self._tasks.values()}
        for g in groups.values():
            g.done_event.set()
        self._cond.notify_all()


class _AbortUnwind(BaseException):
    """Internal unwind signal; never escapes the executor."""
