"""Execution substrate shared by the SMP and MP runtimes.

The parallel-pattern runtimes in this library (``repro.smp``, ``repro.mp``)
are written once against the small :class:`~repro.sched.base.Executor`
interface defined here, and can therefore run in either of two modes:

- :class:`~repro.sched.threaded.ThreadExecutor` — each task is a real OS
  thread.  Interleavings are genuinely nondeterministic, exactly like the C
  programs in the paper; a watchdog converts silent deadlocks into
  :class:`~repro.errors.DeadlockError`.

- :class:`~repro.sched.lockstep.LockstepExecutor` — tasks are still threads,
  but exactly one runs at a time and control transfers only at explicit
  *checkpoints* (prints, synchronisation operations, message sends, injected
  race points), chosen by a seeded policy.  The same seed always produces
  the same interleaving, which makes race conditions, barrier orderings and
  deadlocks *replayable* — the property the paper's live-coding pedagogy
  relies on the projector for.

Both executors run task bodies on threads **leased** from the process-wide
rank pool (:mod:`repro.sched.pool`), so back-to-back runs — the batch
runner's bread and butter — reuse parked OS threads instead of paying
thread creation/teardown per rank per run.

Use :func:`make_executor` to construct one from a mode string.
"""

from __future__ import annotations

from repro.sched.base import (
    Executor,
    TaskGroup,
    current_task_label,
    set_task_label,
)
from repro.sched.lockstep import LockstepExecutor
from repro.sched.policy import (
    FifoPolicy,
    LifoPolicy,
    Policy,
    RandomPolicy,
    RoundRobinPolicy,
    make_policy,
)
from repro.sched.pool import (
    RankThreadPool,
    pool_stats,
    reset_pool,
    shutdown_pool,
)
from repro.sched.threaded import ThreadExecutor

__all__ = [
    "Executor",
    "TaskGroup",
    "ThreadExecutor",
    "LockstepExecutor",
    "Policy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "FifoPolicy",
    "LifoPolicy",
    "make_policy",
    "make_executor",
    "current_task_label",
    "set_task_label",
    "RankThreadPool",
    "pool_stats",
    "reset_pool",
    "shutdown_pool",
]


def make_executor(
    mode: str = "thread",
    *,
    seed: int = 0,
    policy: str = "random",
    deadlock_timeout: float = 30.0,
    batch: int = 1,
) -> Executor:
    """Build an executor from a mode string.

    Parameters
    ----------
    mode:
        ``"thread"`` for real OS threads (nondeterministic, like the paper's
        C programs) or ``"lockstep"`` for the deterministic seeded scheduler.
    seed:
        Interleaving seed (lockstep mode only).
    policy:
        Switch policy name for lockstep mode: ``"random"``, ``"roundrobin"``,
        ``"fifo"`` or ``"lifo"``.
    deadlock_timeout:
        Seconds of global inactivity after which the threaded executor's
        watchdog raises :class:`~repro.errors.DeadlockError`.
    batch:
        Lockstep switch points serviced per full arbitration (see
        :class:`LockstepExecutor`).  The default 1 is the classroom mode
        whose interleavings match the pinned goldens; larger values trade
        switch granularity for throughput (the bench's hot mode).  Ignored
        by the threaded executor.
    """
    if mode == "thread":
        return ThreadExecutor(deadlock_timeout=deadlock_timeout)
    if mode == "lockstep":
        return LockstepExecutor(policy=make_policy(policy, seed=seed), batch=batch)
    raise ValueError(f"unknown executor mode {mode!r} (use 'thread' or 'lockstep')")
