"""Switch policies for the lockstep executor.

A policy answers one question: given the ordered list of runnable task ids
(and the id of the task currently holding the token, if it is among them),
which task runs next?  Policies are deliberately tiny, deterministic state
machines so an interleaving is fully reproducible from ``(policy, seed)``.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Sequence

__all__ = [
    "Policy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "FifoPolicy",
    "LifoPolicy",
    "make_policy",
]


class Policy(ABC):
    """Chooses the next task to run from the runnable set."""

    name: str = "abstract"

    @abstractmethod
    def choose(self, runnable: Sequence[int], current: int | None) -> int:
        """Return the id of the next task to run.

        ``runnable`` is non-empty and sorted ascending; ``current`` is the
        id of the task performing the switch if it is itself still runnable
        (a voluntary ``checkpoint``), else ``None``.
        """


class RandomPolicy(Policy):
    """Uniform random choice from a seeded PRNG.

    This is the default: it mimics the nondeterminism of a real scheduler
    (different seeds give the varied outputs of the paper's figures) while
    keeping each run exactly reproducible.
    """

    name = "random"

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)
        # Bound once: choose() runs on every task switch.  Indexing with
        # _randbelow draws exactly the bits random.choice would, so seeded
        # interleavings are unchanged.
        self._randbelow = self._rng._randbelow

    def choose(self, runnable: Sequence[int], current: int | None) -> int:
        return runnable[self._randbelow(len(runnable))]


class RoundRobinPolicy(Policy):
    """Cycle through tasks in id order, starting after the current task."""

    name = "roundrobin"

    def __init__(self, seed: int = 0):  # seed accepted for API uniformity
        self._last: int | None = None

    def choose(self, runnable: Sequence[int], current: int | None) -> int:
        pivot = current if current is not None else self._last
        chosen = None
        if pivot is not None:
            for tid in runnable:
                if tid > pivot:
                    chosen = tid
                    break
        if chosen is None:
            chosen = runnable[0]
        self._last = chosen
        return chosen


class FifoPolicy(Policy):
    """Always run the lowest-id runnable task (run-to-completion order).

    Under FIFO a task keeps the token until it blocks or finishes, which
    produces the fully *serialised* outputs (like the paper's single-thread
    figures) even with many tasks — useful as a contrast case in demos.
    """

    name = "fifo"

    def __init__(self, seed: int = 0):
        pass

    def choose(self, runnable: Sequence[int], current: int | None) -> int:
        if current is not None and current in runnable:
            return current
        return runnable[0]


class LifoPolicy(Policy):
    """Always run the highest-id runnable task."""

    name = "lifo"

    def __init__(self, seed: int = 0):
        pass

    def choose(self, runnable: Sequence[int], current: int | None) -> int:
        if current is not None and current == runnable[-1]:
            return current
        return runnable[-1]


_POLICIES: dict[str, type[Policy]] = {
    RandomPolicy.name: RandomPolicy,
    RoundRobinPolicy.name: RoundRobinPolicy,
    FifoPolicy.name: FifoPolicy,
    LifoPolicy.name: LifoPolicy,
}


def make_policy(name: str, *, seed: int = 0) -> Policy:
    """Construct a policy by name (``random``/``roundrobin``/``fifo``/``lifo``)."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise ValueError(f"unknown policy {name!r} (known: {known})") from None
    return cls(seed=seed)
