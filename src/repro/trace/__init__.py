"""``repro.trace`` — the unified event spine of the library.

One run, one stream: every substrate (scheduler, SMP, MP, pthreads) emits
its observable actions — prints, task lifetimes, barrier generations, lock
hand-offs, message edges, shared-memory accesses — into a single
:class:`TraceRecorder`.  The former per-substrate mechanisms are now views
over this stream:

====================  ====================================================
view                  module
====================  ====================================================
captured output       :mod:`repro.core.capture` (``io.print`` events)
critical-path span    :mod:`repro.trace.span` (``task.end`` virtual times)
race proofs           :mod:`repro.trace.hb` (vector clocks over HB edges)
timeline rendering    :mod:`repro.core.timeline` (lanes over any events)
trace files           :mod:`repro.trace.export` (Chrome trace JSON)
====================  ====================================================

Event-kind vocabulary (payload keys in parentheses):

- ``io.print`` (line) — one completed stdout line
- ``task.start`` / ``task.end`` (scope; end carries final ``vtime``)
- ``region.fork`` / ``region.join`` — an SMP parallel region's fork-join
- ``world.fork`` / ``world.join`` — an MP world launch
- ``barrier.arrive`` / ``barrier.depart`` (scope, generation)
- ``critical.acquire`` / ``critical.release`` (scope, name)
- ``atomic.acquire`` / ``atomic.release`` (scope)
- ``ordered.enter`` / ``ordered.exit`` (iteration)
- ``loop.assign`` / ``loop.chunk`` (scope, first, last, count) — iteration
  ownership under static / dynamic-guided schedules
- ``reduce.combine`` (scope, left, right, step) — one tree-combine
- ``msg.send`` / ``msg.recv`` (scope, uid, peer, tag, size) and
  ``msg.ack`` / ``msg.ssend_done`` for rendezvous completion
- ``mem.read`` / ``mem.write`` (cell) — a :class:`~repro.smp.race.SharedCell`
  access, the race detector's subject
- ``mutex.* / cond.* / sem.* / rwlock.* / pbar.*`` — pthreads primitives
- ``sched.run / sched.block / sched.wake / sched.done`` — lockstep
  scheduling decisions
- ``task.spawn`` / ``task.join`` — dynamic (pthread-style) lifecycles

Ambient state is fork-safe: :func:`reset_ambient` is registered via
``os.register_at_fork`` so forked batch workers never emit into their
parent's recorder — the same pattern :mod:`repro.sched.pool` uses to
replace the parent's parked rank threads with a fresh pool in children.
"""

from repro.trace.events import (
    Event,
    TraceRecorder,
    active,
    as_events,
    current_recorder,
    emit,
    muted,
    pop_recorder,
    push_recorder,
    reset_ambient,
    using_recorder,
)
from repro.trace.export import dumps, to_chrome_trace, write_chrome_trace
from repro.trace.hb import (
    Race,
    clock_leq,
    clocks_concurrent,
    detect_races,
    hb_edges,
    race_summary,
    vector_clocks,
)
from repro.trace.span import critical_task, final_vtimes, span_of, span_profile

__all__ = [
    "Event",
    "TraceRecorder",
    "as_events",
    "current_recorder",
    "push_recorder",
    "pop_recorder",
    "reset_ambient",
    "using_recorder",
    "muted",
    "active",
    "emit",
    "final_vtimes",
    "span_of",
    "critical_task",
    "span_profile",
    "Race",
    "vector_clocks",
    "clock_leq",
    "clocks_concurrent",
    "hb_edges",
    "detect_races",
    "race_summary",
    "to_chrome_trace",
    "dumps",
    "write_chrome_trace",
]
