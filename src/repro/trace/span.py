"""Critical-path (span) computation over the unified event stream.

Both runtimes carry per-task virtual clocks — SMP work units advanced by
``ctx.work``/barriers, MP LogP units advanced by sends/receives — and both
used to total them privately.  Now each task's final clock reaches the
trace as the ``vtime`` of its ``task.end`` event, and the span of a region,
a world, or a whole run is one shared computation: the maximum final clock
over the tasks involved.  This is the quantity the paper's Figure 19 time
axis measures (``O(lg t)`` for a tree reduction vs ``O(t)`` sequentially),
computed identically for every substrate.

Scopes keep nested runs separable: every ``task.start``/``task.end`` event
carries a ``scope`` payload naming its fork-join group (an SMP region, an
MP world, a pthreads program), so ``span_of(events, scope=...)`` measures
one group while ``span_of(events)`` measures the whole stream.
"""

from __future__ import annotations

from typing import Iterable

from repro.trace.events import Event, TraceRecorder, as_events

__all__ = ["final_vtimes", "span_of", "critical_task", "span_profile"]

TASK_END = "task.end"


def final_vtimes(
    source: "Iterable[Event] | TraceRecorder", *, scope: str | None = None
) -> dict[str, float]:
    """Each task's final virtual clock, from its ``task.end`` events.

    With ``scope``, only tasks of that fork-join group count.  A task that
    ends several times in one stream (label reuse across sequential
    regions without a scope filter) reports its latest final clock.
    """
    finals: dict[str, float] = {}
    for ev in as_events(source):
        if ev.kind != TASK_END or ev.vtime is None:
            continue
        if scope is not None and ev.payload.get("scope") != scope:
            continue
        finals[ev.task] = ev.vtime
    return finals


def span_of(
    source: "Iterable[Event] | TraceRecorder", *, scope: str | None = None
) -> float:
    """Critical-path length: the maximum final virtual clock over tasks.

    Returns ``0.0`` for a stream with no timed task ends (nothing ran, or
    the substrate tracks no virtual time).
    """
    finals = final_vtimes(source, scope=scope)
    return max(finals.values()) if finals else 0.0


def critical_task(
    source: "Iterable[Event] | TraceRecorder", *, scope: str | None = None
) -> str | None:
    """The task on the critical path (max final clock), or ``None``."""
    finals = final_vtimes(source, scope=scope)
    if not finals:
        return None
    return max(finals, key=lambda t: finals[t])


def span_profile(
    source: "Iterable[Event] | TraceRecorder", *, scope: str | None = None
) -> dict[str, list[tuple[int, float]]]:
    """Per-task ``(seq, vtime)`` checkpoints — the clock's trajectory.

    Every timed event contributes, not just task ends; useful for plotting
    how far behind the critical path each task ran.
    """
    out: dict[str, list[tuple[int, float]]] = {}
    for ev in as_events(source):
        if ev.vtime is None:
            continue
        if scope is not None and ev.payload.get("scope") != scope:
            continue
        out.setdefault(ev.task, []).append((ev.seq, ev.vtime))
    return out
