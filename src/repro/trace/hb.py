"""Happens-before analysis: vector clocks and a data-race detector.

The paper demonstrates races by *sampling* them — run the reduction
patternlet with the clause commented out and watch the sum come up short
(Figure 22).  A sampled race is unconvincing pedagogy on a lucky schedule:
the sum can come out right by accident.  This module proves the race
instead: it replays the run's event stream, grows a vector clock per task
from the synchronisation edges the substrates declared (fork/join, barrier
generations, lock release→acquire, message send→receive), and flags any
two accesses to the same shared cell that are *unordered* by those edges
with at least one write.  Unordered conflicting accesses constitute a data
race on every schedule, whatever this particular run printed.

The algorithm is the standard sync-object vector-clock construction
(FastTrack-style last-access epochs per cell):

- each task ``t`` owns a clock ``C_t``; every event increments ``C_t[t]``;
- an event with ``hb_rel=k`` publishes ``C_t`` into object ``k``'s clock;
- an event with ``hb_acq=k`` joins object ``k``'s clock into ``C_t``;
- access ``a`` (earlier, by task ``u``) happens-before access ``b``
  (later, by task ``t``) iff ``C_u[u]``-at-``a``  ≤  ``C_t[u]``-at-``b``.

Object clocks accumulate *all* prior releases, which adds edges a precise
per-hand-off analysis would omit (e.g. semaphore posts that released a
different waiter).  Extra edges can only hide races, never invent them, so
a reported race is trustworthy — the property the classroom use needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from repro.trace.events import Event, TraceRecorder, as_events

__all__ = [
    "Race",
    "VectorClockState",
    "vector_clocks",
    "clock_leq",
    "clocks_concurrent",
    "hb_edges",
    "detect_races",
    "race_summary",
]

MEM_READ = "mem.read"
MEM_WRITE = "mem.write"


def clock_leq(a: dict[str, int], b: dict[str, int]) -> bool:
    """Componentwise ``a ≤ b`` (the happens-before partial order)."""
    return all(n <= b.get(t, 0) for t, n in a.items())


def clocks_concurrent(a: dict[str, int], b: dict[str, int]) -> bool:
    """Neither clock dominates: the events are unordered."""
    return not clock_leq(a, b) and not clock_leq(b, a)


class VectorClockState:
    """Incremental vector-clock interpreter for an event stream."""

    def __init__(self) -> None:
        self._tasks: dict[str, dict[str, int]] = {}
        self._objects: dict[Hashable, dict[str, int]] = {}

    def observe(self, ev: Event) -> dict[str, int]:
        """Advance state through ``ev``; return the event's clock snapshot."""
        clock = self._tasks.setdefault(ev.task, {})
        clock[ev.task] = clock.get(ev.task, 0) + 1
        if ev.hb_acq is not None:
            for t, n in self._objects.get(ev.hb_acq, {}).items():
                if n > clock.get(t, 0):
                    clock[t] = n
        snap = dict(clock)
        if ev.hb_rel is not None:
            obj = self._objects.setdefault(ev.hb_rel, {})
            for t, n in snap.items():
                if n > obj.get(t, 0):
                    obj[t] = n
        return snap


def vector_clocks(
    source: "Iterable[Event] | TraceRecorder",
) -> list[tuple[Event, dict[str, int]]]:
    """Annotate every event with its vector clock, in stream order."""
    state = VectorClockState()
    return [(ev, state.observe(ev)) for ev in as_events(source)]


def hb_edges(
    source: "Iterable[Event] | TraceRecorder",
) -> list[tuple[int, int]]:
    """The direct happens-before edges, as ``(seq_earlier, seq_later)``.

    Program order (per task) plus one edge from every ``hb_rel`` on a key
    to each later ``hb_acq`` of the same key.  The vector clocks of
    :func:`vector_clocks` realise exactly the transitive closure of these
    edges; tests exploit that equivalence.
    """
    edges: list[tuple[int, int]] = []
    last_of_task: dict[str, Event] = {}
    releases: dict[Hashable, list[Event]] = {}
    for ev in as_events(source):
        prev = last_of_task.get(ev.task)
        if prev is not None:
            edges.append((prev.seq, ev.seq))
        last_of_task[ev.task] = ev
        if ev.hb_acq is not None:
            for rel in releases.get(ev.hb_acq, ()):
                edges.append((rel.seq, ev.seq))
        if ev.hb_rel is not None:
            releases.setdefault(ev.hb_rel, []).append(ev)
    return edges


@dataclass(frozen=True)
class Race:
    """Two unordered accesses to one shared cell, at least one a write."""

    cell: str
    first: Event  # the earlier access (stream order)
    second: Event  # the later, conflicting access

    @property
    def tasks(self) -> tuple[str, str]:
        return (self.first.task, self.second.task)

    def describe(self) -> str:
        """One-line human-readable account of the racing pair."""
        a, b = self.first, self.second
        return (
            f"{a.task} {a.kind.split('.')[1]} (event {a.seq}) is unordered "
            f"with {b.task} {b.kind.split('.')[1]} (event {b.seq}) "
            f"on cell {self.cell!r}"
        )


def detect_races(
    source: "Iterable[Event] | TraceRecorder", *, max_races: int = 1000
) -> list[Race]:
    """Find every pair of HB-unordered conflicting accesses (capped).

    Keeps, per cell, each task's last read and last write epoch; a new
    access races with a stored access by another task whose epoch has not
    reached the new access's clock.  Linear in events (times task count),
    the standard detector shape.
    """
    state = VectorClockState()
    # cell -> task -> (event, clock component of that task at the access)
    last_read: dict[str, dict[str, tuple[Event, int]]] = {}
    last_write: dict[str, dict[str, tuple[Event, int]]] = {}
    races: list[Race] = []
    for ev in as_events(source):
        snap = state.observe(ev)
        if ev.kind not in (MEM_READ, MEM_WRITE):
            continue
        cell = str(ev.payload.get("cell", "?"))
        me = ev.task
        conflicting = (
            (last_read, last_write) if ev.kind == MEM_WRITE else (last_write,)
        )
        for store in conflicting:
            for task, (prior, comp) in store.get(cell, {}).items():
                if task == me or comp <= snap.get(task, 0):
                    continue  # same task, or ordered by happens-before
                races.append(Race(cell, prior, ev))
                if len(races) >= max_races:
                    return races
        mine = last_write if ev.kind == MEM_WRITE else last_read
        mine.setdefault(cell, {})[me] = (ev, snap[me])
    return races


def race_summary(races: "list[Race]") -> str:
    """Human-readable verdict for the CLI and the classroom."""
    if not races:
        return "race detector: all shared-cell accesses are ordered by happens-before"
    by_cell: dict[str, list[Race]] = {}
    for r in races:
        by_cell.setdefault(r.cell, []).append(r)
    lines = [
        f"RACE DETECTED: {len(races)} unordered conflicting access pair(s) "
        f"on {len(by_cell)} shared cell(s)"
    ]
    for cell, cell_races in by_cell.items():
        lines.append(f"  {cell}: {len(cell_races)} pair(s); e.g. "
                     f"{cell_races[0].describe()}")
    return "\n".join(lines)
