"""The event spine: one structured record stream per run.

Every substrate in this library — the lockstep scheduler, the SMP (OpenMP)
runtime, the MP (MPI) runtime, and the pthreads layer — emits its observable
actions into a single :class:`TraceRecorder` as :class:`Event` records: task
starts and ends, prints, barrier arrivals, lock hand-offs, message sends and
receives, shared-memory accesses.  Everything that used to be a separate
bookkeeping mechanism (output capture, virtual-time span accounting, the
lockstep scheduling trace) is a *view* over this one stream:

- :mod:`repro.core.capture` reads the ``io.print`` events;
- :mod:`repro.trace.span` computes critical-path span from ``task.end``
  virtual timestamps;
- :mod:`repro.trace.hb` grows vector clocks from the ``hb_rel``/``hb_acq``
  edges and proves (or refutes) data races;
- :mod:`repro.trace.export` serialises the stream for Chrome's trace viewer.

Recorders are *ambient*: a module-level stack names the recorder currently
collecting events, and :func:`emit` appends to the top of that stack (or
does nothing when no recorder is installed, so untraced library use costs
one ``if``).  Run harnesses push a recorder for the duration of a run
(:class:`~repro.core.capture.OutputRecorder` does this); each runtime pushes
its own private recorder as a fallback, so spans remain computable even for
bare API calls.  The stack is shared across threads on purpose — a run's
worker tasks must all land in the same stream.

Happens-before edges are declared at the emission site with two optional
keys: ``hb_rel=key`` publishes the emitting task's causal knowledge to the
synchronisation object ``key`` (a lock release, a message send, a barrier
arrival), and ``hb_acq=key`` absorbs everything previously published to
``key`` (a lock acquire, a message receive, a barrier departure).  This is
the classic vector-clock sync-object model; :mod:`repro.trace.hb` gives it
teeth.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Iterator

__all__ = [
    "Event",
    "TraceRecorder",
    "current_recorder",
    "push_recorder",
    "pop_recorder",
    "reset_ambient",
    "using_recorder",
    "muted",
    "active",
    "emit",
]


def _current_task() -> str:
    # Imported lazily: repro.sched imports this module (the lockstep
    # executor forwards its scheduling events here), so a top-level import
    # would be circular.
    from repro.sched.base import current_task_label

    return current_task_label() or "main"


@dataclass(frozen=True, slots=True)
class Event:
    """One observable action of one task.

    ``seq`` is the event's position in its recorder's stream — a total
    order consistent with real time (appends are serialised by the
    recorder's lock).  ``vtime`` is the emitting task's virtual clock at
    the time of the action, when the substrate tracks one (SMP work units,
    MP LogP units); ``None`` otherwise.  ``hb_acq``/``hb_rel`` are the
    happens-before edge declarations described in the module docstring,
    and ``payload`` carries kind-specific detail (the printed line, the
    message uid, the barrier generation, ...).
    """

    seq: int
    task: str
    kind: str
    vtime: float | None = None
    hb_acq: Hashable | None = None
    hb_rel: Hashable | None = None
    payload: dict[str, Any] = field(default_factory=dict)

    @property
    def scope(self) -> str | None:
        """The run scope (region/world id) this event belongs to, if any."""
        return self.payload.get("scope")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        vt = f", vtime={self.vtime:g}" if self.vtime is not None else ""
        return f"Event({self.seq}, {self.task!r}, {self.kind!r}{vt})"


class TraceRecorder:
    """Thread-safe sink for one run's events (slotted-ring storage).

    ``limit`` bounds memory for pathological runs (a trace is an analysis
    artifact, not an unbounded log).  Two bounding policies:

    - ``ring=False`` (default): events past the limit are counted in
      ``dropped`` rather than stored — the stream keeps its *head*, and
      analyses should treat a trace with drops as incomplete.
    - ``ring=True``: storage is a fixed ring of ``limit`` slots; new events
      overwrite the oldest and ``evicted`` counts the overwritten head —
      the stream keeps its *tail*, which is what long-lived benchmark and
      service runs want.  ``seq`` numbers keep counting the true stream
      position either way.

    The class attribute ``recording`` is the muting flip: :func:`emit`'s
    module-level fast path reads exactly one attribute off the ambient
    recorder to decide whether to build an event at all, so a muted run
    pays a pointer read plus an attribute read per would-be emission.
    """

    #: Read by the :func:`emit` fast path; ``_MutedRecorder`` overrides.
    recording = True

    def __init__(self, *, limit: int = 1_000_000, ring: bool = False):
        if limit <= 0:
            raise ValueError("limit must be positive")
        self.limit = limit
        self.ring = ring
        #: Events rejected once the limit was reached (head-keeping mode).
        self.dropped = 0
        #: Events overwritten by newer ones (ring mode).
        self.evicted = 0
        #: Span-context labels (sweep/shard/cell/worker lineage) stamped by
        #: the fleet after a run completes.  Advisory: never part of the
        #: event stream, cache records, or derived metrics — exports may
        #: surface it, determinism tests never see it.
        self.context: dict[str, str] = {}
        self._lock = threading.Lock()
        self._events: list[Event] = []
        self._n = 0  # total events ever emitted (stream position / seq)

    def emit(
        self,
        kind: str,
        *,
        task: str | None = None,
        vtime: float | None = None,
        hb_acq: Hashable | None = None,
        hb_rel: Hashable | None = None,
        **payload: Any,
    ) -> Event | None:
        """Record one event; returns it (or ``None`` when head-mode drops it).

        ``task`` defaults to the calling thread's task label, so emission
        sites inside the runtimes rarely need to name themselves; scheduler
        code emitting *about* another task passes ``task=`` explicitly.
        """
        if task is None:
            task = _current_task()
        with self._lock:
            n = self._n
            if len(self._events) >= self.limit:
                if not self.ring:
                    self.dropped += 1
                    return None
                ev = Event(
                    seq=n,
                    task=task,
                    kind=kind,
                    vtime=vtime,
                    hb_acq=hb_acq,
                    hb_rel=hb_rel,
                    payload=payload,
                )
                # Reuse the ring slot of the oldest event.
                self._events[n % self.limit] = ev
                self.evicted += 1
                self._n = n + 1
                return ev
            ev = Event(
                seq=n,
                task=task,
                kind=kind,
                vtime=vtime,
                hb_acq=hb_acq,
                hb_rel=hb_rel,
                payload=payload,
            )
            self._events.append(ev)
            self._n = n + 1
        return ev

    def events(
        self, kind: str | None = None, *, scope: str | None = None
    ) -> list[Event]:
        """Snapshot of the stream, optionally filtered by kind and/or scope.

        In ring mode the snapshot is the retained tail, oldest first.
        """
        with self._lock:
            evs = list(self._events)
            if self.ring and self._n > self.limit:
                pivot = self._n % self.limit
                evs = evs[pivot:] + evs[:pivot]
        if kind is not None:
            evs = [e for e in evs if e.kind == kind]
        if scope is not None:
            evs = [e for e in evs if e.payload.get("scope") == scope]
        return evs

    def preload(self, events: "Iterable[Event]") -> None:
        """Replace the stream with ``events`` (the deserialisation path).

        Used when a recorded run is rebuilt from a cache record or a wire
        transfer: the events arrive fully formed (``seq`` already
        assigned), so they are installed verbatim rather than re-emitted.
        """
        evs = list(events)
        if len(evs) > self.limit:
            self.limit = len(evs)
        with self._lock:
            self._events = evs
            self._n = evs[-1].seq + 1 if evs else 0

    def __getstate__(self) -> dict[str, Any]:
        # Locks cannot cross process boundaries; a recorder travels as its
        # plain state and grows a fresh (necessarily uncontended) lock on
        # arrival.  Worker processes therefore never inherit a lock that a
        # parent thread might have held at fork/pickle time.
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def kinds(self) -> dict[str, int]:
        """Event counts per kind (diagnostics)."""
        out: dict[str, int] = {}
        for e in self.events():
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TraceRecorder({len(self)} events)"


# -- the ambient recorder stack ---------------------------------------------

_stack: list[TraceRecorder] = []
_stack_lock = threading.Lock()

#: Cache of ``_stack[-1]`` (or ``None``), maintained under ``_stack_lock``
#: by push/pop.  The emission fast paths read this single module global
#: instead of indexing the list and catching IndexError — on a muted or
#: untraced run that makes every would-be emission one pointer read plus
#: one attribute read.  Reads are lock-free on purpose: a shared lock here
#: would serialise (and so distort) exactly the code whose costs the
#: library exists to demonstrate.  Torn reads are impossible under the
#: GIL; a push/pop racing a read just means the event lands on (or misses)
#: the recorder by one action, same as any unsynchronised observer.
_top: TraceRecorder | None = None


def current_recorder() -> TraceRecorder | None:
    """The recorder currently collecting events, or ``None``."""
    return _top


def push_recorder(rec: TraceRecorder) -> TraceRecorder:
    """Install ``rec`` as the ambient recorder (stacked; see module doc)."""
    global _top
    with _stack_lock:
        _stack.append(rec)
        _top = rec
    return rec


def pop_recorder(rec: TraceRecorder) -> None:
    """Remove the most recent installation of ``rec`` from the stack.

    Removal is by identity rather than strictly LIFO position because
    nested runs may uninstall out of order when tasks of different
    runtimes finish interleaved.
    """
    global _top
    with _stack_lock:
        for i in range(len(_stack) - 1, -1, -1):
            if _stack[i] is rec:
                del _stack[i]
                break
        _top = _stack[-1] if _stack else None


class using_recorder:
    """Context manager installing a recorder for the duration of a block.

    ``using_recorder()`` with no argument creates a fresh recorder; either
    way the recorder is available as the ``as`` target::

        with using_recorder() as rec:
            rt.parallel(body)
        print(rec.kinds())
    """

    def __init__(self, rec: TraceRecorder | None = None):
        self.recorder = rec if rec is not None else TraceRecorder()

    def __enter__(self) -> TraceRecorder:
        push_recorder(self.recorder)
        return self.recorder

    def __exit__(self, *exc: object) -> None:
        pop_recorder(self.recorder)


def reset_ambient() -> None:
    """Forget every installed recorder: a process-fresh ambient state.

    Batch worker processes call this (and a fork hook calls it for them,
    see below) so a child never emits into — or blocks on — a recorder
    stack inherited from its parent: the parent's run harness may have a
    recorder installed at fork time, and its events belong to the parent's
    run, not the worker's.  The stack *lock* is also replaced, because the
    inherited copy may have been held by a parent thread at fork time and
    would then never be released in the child.
    """
    global _top, _stack_lock
    _stack_lock = threading.Lock()
    _stack.clear()
    _top = None


if hasattr(os, "register_at_fork"):  # POSIX; a no-op concern elsewhere
    os.register_at_fork(after_in_child=reset_ambient)


class _MutedRecorder(TraceRecorder):
    """A recorder that drops everything — the top of the stack under
    :func:`muted`, shadowing whatever run harness installed below it."""

    recording = False

    def emit(self, kind: str, **kwargs: Any) -> Event | None:  # noqa: ARG002
        return None


class muted:
    """Suppress all trace emission for the duration of a block.

    For wall-clock microbenchmarks (the Figure 30 atomic-vs-critical
    timing): recording an event costs a lock round trip, which is the
    same order as the uncontended atomic update being measured — the
    observer would dominate the observation.  Code under ``muted()``
    runs the untraced fast path; spans and captures derived from the
    trace will not see the muted region.

    Each entry pushes its own fresh muted recorder, so one ``muted``
    instance is re-entrant (nested ``with`` blocks, reuse across threads
    or across forked worker processes) and never shares lock state with
    any other entry.
    """

    def __init__(self) -> None:
        self._local = threading.local()

    def __enter__(self) -> None:
        rec = _MutedRecorder()
        pushed = getattr(self._local, "pushed", None)
        if pushed is None:
            pushed = self._local.pushed = []
        pushed.append(rec)
        push_recorder(rec)

    def __exit__(self, *exc: object) -> None:
        pushed = getattr(self._local, "pushed", None)
        if pushed:
            pop_recorder(pushed.pop())


def active() -> bool:
    """True when an unmuted recorder is collecting events.

    Hot emission sites (per-iteration cell accesses, atomic guards, the
    message-transport and scheduler inner loops) check this before building
    an :func:`emit` call, so a muted or untraced run pays one global read
    plus one attribute read per would-be event instead of argument
    packing — the difference matters inside held locks, where emission
    overhead multiplies into contention.
    """
    rec = _top
    return rec is not None and rec.recording


def emit(
    kind: str,
    *,
    task: str | None = None,
    vtime: float | None = None,
    hb_acq: Hashable | None = None,
    hb_rel: Hashable | None = None,
    **payload: Any,
) -> Event | None:
    """Emit to the ambient recorder; a cheap no-op when none is installed."""
    rec = _top
    if rec is None or not rec.recording:
        return None
    return rec.emit(
        kind, task=task, vtime=vtime, hb_acq=hb_acq, hb_rel=hb_rel, **payload
    )


def as_events(source: "Iterable[Event] | TraceRecorder") -> list[Event]:
    """Normalise a recorder-or-iterable argument to an event list."""
    if isinstance(source, TraceRecorder):
        return source.events()
    return list(source)
