"""Trace serialisation: Chrome trace-event JSON.

``patternlet trace NAME --out run.json`` writes a file loadable in any
Chrome trace-event viewer (``chrome://tracing``, Perfetto's legacy
importer, speedscope): task lifetimes as begin/end duration events, every
other spine event as an instant on its task's track.  Timestamps are the
trace sequence numbers (one microsecond per event) — the viewers need a
monotonic axis, and for a deterministic lockstep run the interesting axis
*is* the event order, not wall time.

The schema is the "JSON Array Format" of the Trace Event specification:
``{"traceEvents": [...], "displayTimeUnit": "ms"}`` with ``ph`` one of
``M`` (metadata), ``B``/``E`` (duration), ``i`` (instant).
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.trace.events import Event, TraceRecorder, as_events

__all__ = [
    "display_task_name",
    "to_chrome_trace",
    "to_fleet_chrome_trace",
    "dumps",
    "write_chrome_trace",
    "write_fleet_chrome_trace",
]

TASK_START = "task.start"
TASK_END = "task.end"


def display_task_name(label: str) -> str:
    """Human-friendly name for a task label.

    ``mpi:N`` reads as ``rank N`` and ``omp:N`` as ``thread N``, so
    Perfetto lanes (and report Gantt lanes, which share this helper)
    show ``rank 0..N-1`` instead of bare internal labels.  Nested labels
    keep their nesting: ``mpi:1/omp:0`` → ``rank 1 / thread 0``.
    """
    parts = []
    for part in label.split("/"):
        prefix, _, num = part.partition(":")
        if num.isdigit() and prefix == "mpi":
            parts.append(f"rank {num}")
        elif num.isdigit() and prefix == "omp":
            parts.append(f"thread {num}")
        else:
            parts.append(part)
    return " / ".join(parts)


def _sort_index(label: str) -> int:
    """Stable lane order: main first, then ranks/threads numerically."""
    if label == "main":
        return 0
    index = 0
    for part in label.split("/"):
        _, _, num = part.partition(":")
        if num.isdigit():
            index = index * 1000 + int(num) + 1
        else:
            index = index * 1000 + 999
    return index + 1


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def to_chrome_trace(
    source: "Iterable[Event] | TraceRecorder",
) -> dict[str, Any]:
    """Convert an event stream to a Chrome trace-event document."""
    events = as_events(source)
    tids: dict[str, int] = {}
    process_args: dict[str, Any] = {"name": "patternlet run"}
    if isinstance(source, TraceRecorder):
        context = getattr(source, "context", None)
        if context:
            # Fleet lineage (sweep/shard/cell/worker), when the run has it.
            process_args.update({k: str(v) for k, v in sorted(context.items())})
    out: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": process_args,
        }
    ]
    for ev in events:
        if ev.task not in tids:
            tids[ev.task] = len(tids)
            out.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 0,
                    "tid": tids[ev.task],
                    "args": {"name": display_task_name(ev.task)},
                }
            )
            out.append(
                {
                    "ph": "M",
                    "name": "thread_sort_index",
                    "pid": 0,
                    "tid": tids[ev.task],
                    "args": {"sort_index": _sort_index(ev.task)},
                }
            )
        args: dict[str, Any] = {k: _jsonable(v) for k, v in ev.payload.items()}
        if ev.vtime is not None:
            args["vtime"] = ev.vtime
        entry: dict[str, Any] = {
            "name": ev.kind,
            "cat": ev.kind.split(".", 1)[0],
            "pid": 0,
            "tid": tids[ev.task],
            "ts": ev.seq,
            "args": args,
        }
        if ev.kind == TASK_START:
            entry["ph"] = "B"
            entry["name"] = ev.payload.get("scope", ev.task)
        elif ev.kind == TASK_END:
            entry["ph"] = "E"
            entry["name"] = ev.payload.get("scope", ev.task)
        else:
            entry["ph"] = "i"
            entry["s"] = "t"  # thread-scoped instant
        out.append(entry)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def dumps(
    source: "Iterable[Event] | TraceRecorder", *, indent: int | None = None
) -> str:
    """The Chrome trace document as a JSON string."""
    return json.dumps(to_chrome_trace(source), indent=indent, default=str)


def write_chrome_trace(
    path: str, source: "Iterable[Event] | TraceRecorder"
) -> int:
    """Write the Chrome trace JSON to ``path``; returns the event count."""
    events = as_events(source)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps(events))
    return len(events)


# -- the fleet's merged trace -------------------------------------------------


def _fleet_pid(worker: int) -> int:
    # The coordinator journals as worker -1 and maps to pid 0; workers
    # shift up by one so every pid is a valid (non-negative) process id.
    return 0 if worker < 0 else worker + 1


def to_fleet_chrome_trace(records: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Merged fleet journal → Chrome trace: workers as processes.

    Each fleet participant becomes a trace *process* (the coordinator is
    pid 0), each worker's cell stream is a duration lane (``B``/``E``
    pairs from ``cell.start``/``cell.finish``), the ranks a cell ran get
    thread lanes under their worker's process, and everything else
    (claims — annotated when the shard was stolen — steals, reposts,
    sweep boundaries) renders as instants.  Timestamps are wall-clock
    microseconds since the earliest journal record: unlike a single
    deterministic run, a fleet's interesting axis *is* real time — that
    is where stragglers and steals live.
    """
    recs = [r for r in records if isinstance(r.get("ts"), (int, float))]
    t0 = min((r["ts"] for r in recs), default=0.0)

    def us(ts: float) -> int:
        return max(0, round((ts - t0) * 1e6))

    out: list[dict[str, Any]] = []
    seen_pids: dict[int, int] = {}  # pid -> next free tid for rank lanes
    rank_tids: dict[tuple[int, str], int] = {}

    def ensure_process(worker: int) -> int:
        pid = _fleet_pid(worker)
        if pid not in seen_pids:
            seen_pids[pid] = 1
            name = "coordinator" if worker < 0 else f"worker {worker}"
            out.append({"ph": "M", "name": "process_name", "pid": pid,
                        "tid": 0, "args": {"name": name}})
            out.append({"ph": "M", "name": "process_sort_index", "pid": pid,
                        "tid": 0, "args": {"sort_index": pid}})
            out.append({"ph": "M", "name": "thread_name", "pid": pid,
                        "tid": 0, "args": {"name": "cells"}})
        return pid

    def rank_tid(pid: int, rank: str) -> int:
        key = (pid, rank)
        tid = rank_tids.get(key)
        if tid is None:
            tid = rank_tids[key] = seen_pids[pid]
            seen_pids[pid] += 1
            out.append({"ph": "M", "name": "thread_name", "pid": pid,
                        "tid": tid, "args": {"name": display_task_name(rank)}})
            out.append({"ph": "M", "name": "thread_sort_index", "pid": pid,
                        "tid": tid, "args": {"sort_index": _sort_index(rank)}})
        return tid

    open_cells: dict[tuple[int, Any, Any], dict[str, Any]] = {}
    last_ts = t0
    for rec in recs:
        worker = int(rec.get("worker", 0))
        kind = rec.get("kind", "")
        ts = rec["ts"]
        last_ts = max(last_ts, ts)
        pid = ensure_process(worker)
        span = rec.get("span") if isinstance(rec.get("span"), dict) else {}
        if kind == "cell.start":
            key = (worker, rec.get("shard"), rec.get("cell"))
            open_cells[key] = rec
            continue
        if kind == "cell.finish":
            key = (worker, rec.get("shard"), rec.get("cell"))
            start = open_cells.pop(key, None)
            begin_ts = start["ts"] if start else ts
            name = (start or rec).get("label") or f"cell {rec.get('cell')}"
            args = {
                "shard": rec.get("shard"), "cell": rec.get("cell"),
                "cached": bool(rec.get("cached")),
                "races": rec.get("races", 0),
            }
            args.update({k: _jsonable(v) for k, v in sorted(span.items())})
            if rec.get("error"):
                args["error"] = _jsonable(rec["error"])
            out.append({"ph": "B", "name": name, "cat": "cell", "pid": pid,
                        "tid": 0, "ts": us(begin_ts), "args": args})
            out.append({"ph": "E", "name": name, "cat": "cell", "pid": pid,
                        "tid": 0, "ts": us(ts)})
            for rank in rec.get("ranks") or []:
                tid = rank_tid(pid, str(rank))
                out.append({"ph": "B", "name": name, "cat": "rank",
                            "pid": pid, "tid": tid, "ts": us(begin_ts)})
                out.append({"ph": "E", "name": name, "cat": "rank",
                            "pid": pid, "tid": tid, "ts": us(ts)})
            continue
        name = kind
        if kind == "claim" and rec.get("stolen_from") is not None:
            name = "claim (stolen)"
        args = {k: _jsonable(v) for k, v in sorted(rec.items())
                if k not in ("v", "kind", "ts", "span")}
        args.update({k: _jsonable(v) for k, v in sorted(span.items())})
        out.append({"ph": "i", "s": "p", "name": name,
                    "cat": kind.split(".", 1)[0], "pid": pid, "tid": 0,
                    "ts": us(ts), "args": args})
    # A cell.start without its finish (dead worker, torn tail): close the
    # lane at the last known instant so viewers don't drop the B.
    for (worker, shard, cell), start in sorted(
        open_cells.items(), key=lambda kv: str(kv[0])
    ):
        pid = ensure_process(worker)
        name = start.get("label") or f"cell {cell}"
        out.append({"ph": "B", "name": name, "cat": "cell", "pid": pid,
                    "tid": 0, "ts": us(start["ts"]),
                    "args": {"shard": shard, "cell": cell, "unfinished": True}})
        out.append({"ph": "E", "name": name, "cat": "cell", "pid": pid,
                    "tid": 0, "ts": us(last_ts)})
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_fleet_chrome_trace(
    path: str, records: Iterable[dict[str, Any]]
) -> int:
    """Write the merged-fleet Chrome trace; returns the trace-event count."""
    doc = to_fleet_chrome_trace(records)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(doc, default=str))
    return len(doc["traceEvents"])
