"""Trace serialisation: Chrome trace-event JSON.

``patternlet trace NAME --out run.json`` writes a file loadable in any
Chrome trace-event viewer (``chrome://tracing``, Perfetto's legacy
importer, speedscope): task lifetimes as begin/end duration events, every
other spine event as an instant on its task's track.  Timestamps are the
trace sequence numbers (one microsecond per event) — the viewers need a
monotonic axis, and for a deterministic lockstep run the interesting axis
*is* the event order, not wall time.

The schema is the "JSON Array Format" of the Trace Event specification:
``{"traceEvents": [...], "displayTimeUnit": "ms"}`` with ``ph`` one of
``M`` (metadata), ``B``/``E`` (duration), ``i`` (instant).
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.trace.events import Event, TraceRecorder, as_events

__all__ = ["display_task_name", "to_chrome_trace", "dumps", "write_chrome_trace"]

TASK_START = "task.start"
TASK_END = "task.end"


def display_task_name(label: str) -> str:
    """Human-friendly name for a task label.

    ``mpi:N`` reads as ``rank N`` and ``omp:N`` as ``thread N``, so
    Perfetto lanes (and report Gantt lanes, which share this helper)
    show ``rank 0..N-1`` instead of bare internal labels.  Nested labels
    keep their nesting: ``mpi:1/omp:0`` → ``rank 1 / thread 0``.
    """
    parts = []
    for part in label.split("/"):
        prefix, _, num = part.partition(":")
        if num.isdigit() and prefix == "mpi":
            parts.append(f"rank {num}")
        elif num.isdigit() and prefix == "omp":
            parts.append(f"thread {num}")
        else:
            parts.append(part)
    return " / ".join(parts)


def _sort_index(label: str) -> int:
    """Stable lane order: main first, then ranks/threads numerically."""
    if label == "main":
        return 0
    index = 0
    for part in label.split("/"):
        _, _, num = part.partition(":")
        if num.isdigit():
            index = index * 1000 + int(num) + 1
        else:
            index = index * 1000 + 999
    return index + 1


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def to_chrome_trace(
    source: "Iterable[Event] | TraceRecorder",
) -> dict[str, Any]:
    """Convert an event stream to a Chrome trace-event document."""
    events = as_events(source)
    tids: dict[str, int] = {}
    out: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": "patternlet run"},
        }
    ]
    for ev in events:
        if ev.task not in tids:
            tids[ev.task] = len(tids)
            out.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 0,
                    "tid": tids[ev.task],
                    "args": {"name": display_task_name(ev.task)},
                }
            )
            out.append(
                {
                    "ph": "M",
                    "name": "thread_sort_index",
                    "pid": 0,
                    "tid": tids[ev.task],
                    "args": {"sort_index": _sort_index(ev.task)},
                }
            )
        args: dict[str, Any] = {k: _jsonable(v) for k, v in ev.payload.items()}
        if ev.vtime is not None:
            args["vtime"] = ev.vtime
        entry: dict[str, Any] = {
            "name": ev.kind,
            "cat": ev.kind.split(".", 1)[0],
            "pid": 0,
            "tid": tids[ev.task],
            "ts": ev.seq,
            "args": args,
        }
        if ev.kind == TASK_START:
            entry["ph"] = "B"
            entry["name"] = ev.payload.get("scope", ev.task)
        elif ev.kind == TASK_END:
            entry["ph"] = "E"
            entry["name"] = ev.payload.get("scope", ev.task)
        else:
            entry["ph"] = "i"
            entry["s"] = "t"  # thread-scoped instant
        out.append(entry)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def dumps(
    source: "Iterable[Event] | TraceRecorder", *, indent: int | None = None
) -> str:
    """The Chrome trace document as a JSON string."""
    return json.dumps(to_chrome_trace(source), indent=indent, default=str)


def write_chrome_trace(
    path: str, source: "Iterable[Event] | TraceRecorder"
) -> int:
    """Write the Chrome trace JSON to ``path``; returns the event count."""
    events = as_events(source)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps(events))
    return len(events)
