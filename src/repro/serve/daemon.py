"""The daemon's HTTP plumbing: asyncio sockets around the serving core.

A deliberately small hand-rolled HTTP/1.1 layer on ``asyncio.start_server``
— no framework, matching the repo's stdlib-only discipline — that feeds
:class:`~repro.serve.service.PatternletService`:

- **Keep-alive by default** (HTTP/1.1 semantics: ``Connection: close``
  or an HTTP/1.0 client without ``keep-alive`` closes; everything else
  persists), every response framed with ``Content-Length``, idle
  connections reaped after ``idle_timeout_s``.
- **Bounded parsing**: request line + headers are size-capped, bodies
  past ``max_body_bytes`` are refused with 413 before being read.
- **Graceful shutdown**: :meth:`ServeDaemon.shutdown` stops the
  listener, flips the service to draining (new executions → 503,
  cached/coalesced serves still answered), waits for in-flight runs,
  then force-closes lingering keep-alive sockets and unwinds both pools
  — the batch worker processes and the parked rank threads — so a
  stopped daemon leaves zero threads behind.

Routes: ``POST /run``, ``POST /sweep``, ``GET /report/<key>``,
``GET /metrics`` (strict OpenMetrics, same surface as
``patternlet metrics-serve``), ``GET /healthz``.

:func:`running` hosts a daemon on a background thread for tests, the
bench harness, and embedding; :func:`serve_forever` is the CLI's
foreground path with SIGTERM/SIGINT wired to the graceful drain.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import threading
import time
from typing import Any, Callable, Iterator, Mapping

from repro.batch.specs import spec_key
from repro.serve.service import (
    PatternletService,
    RequestError,
    ServeConfig,
    parse_run_request,
    parse_sweep_request,
)

__all__ = ["ServeDaemon", "running", "serve_forever"]

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}

_JSON_TYPE = "application/json"
_METRICS_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

#: Hard caps on request framing (headers, not bodies).
_MAX_LINE = 8192
_MAX_HEADERS = 100


def _json_body(doc: Mapping[str, Any]) -> bytes:
    return (json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n").encode()


class ServeDaemon:
    """One listening daemon: a :class:`PatternletService` behind a socket."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.cfg = config if config is not None else ServeConfig()
        self.service: PatternletService | None = None
        self._server: asyncio.base_events.Server | None = None
        self._conn_tasks: set[asyncio.Task] = set()

    async def start(self) -> "ServeDaemon":
        """Bind the listener (must run on the loop that will serve)."""
        self.service = PatternletService(self.cfg)
        self._server = await asyncio.start_server(
            self._handle, host=self.cfg.host, port=self.cfg.port)
        return self

    @property
    def port(self) -> int:
        assert self._server is not None, "daemon not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.cfg.host}:{self.port}"

    async def shutdown(self, *, drain_timeout: float | None = None) -> bool:
        """Graceful stop; True when every in-flight run finished in time.

        Order matters: stop accepting, *then* flip draining (so a racing
        accept still gets a well-formed 503), drain executions, cancel
        the keep-alive readers, release the execution lane, and unwind
        the process pool and the parked rank threads.
        """
        if self._server is None:
            return True
        assert self.service is not None
        self._server.close()
        await self._server.wait_closed()
        self.service.start_draining()
        clean = await self.service.drain(drain_timeout)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()
        self.service.close()
        if self.cfg.workers > 1:
            from repro.batch.pool import shutdown_pool

            shutdown_pool()
        from repro.sched.pool import shutdown_pool as shutdown_rank_pool

        shutdown_rank_pool()
        self._server = None
        return clean

    # -- connection handling -------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._serve_connection(reader, writer)
        except (asyncio.CancelledError, asyncio.IncompleteReadError,
                ConnectionError):
            pass  # client went away / shutdown: nothing left to say
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        assert self.service is not None
        while True:
            try:
                line = await asyncio.wait_for(
                    reader.readline(), timeout=self.cfg.idle_timeout_s)
            except (asyncio.TimeoutError, TimeoutError):
                return  # idle reap
            if not line:
                return  # client closed cleanly
            if len(line) > _MAX_LINE:
                await self._respond(writer, 400,
                                    _json_body({"error": "request line too long"}),
                                    close=True)
                return
            try:
                method, path, version = line.decode("latin-1").split()
            except ValueError:
                await self._respond(writer, 400,
                                    _json_body({"error": "malformed request line"}),
                                    close=True)
                return
            headers = await self._read_headers(reader)
            if headers is None:
                await self._respond(writer, 400,
                                    _json_body({"error": "malformed headers"}),
                                    close=True)
                return
            connection = headers.get("connection", "").lower()
            close_after = connection == "close" or (
                version == "HTTP/1.0" and connection != "keep-alive")
            try:
                length = int(headers.get("content-length", "0") or "0")
            except ValueError:
                length = -1
            if length < 0:
                await self._respond(writer, 400,
                                    _json_body({"error": "bad Content-Length"}),
                                    close=True)
                return
            if length > self.cfg.max_body_bytes:
                await self._respond(
                    writer, 413,
                    _json_body({"error": f"body exceeds "
                                f"{self.cfg.max_body_bytes} bytes"}),
                    close=True)
                return
            body = await reader.readexactly(length) if length else b""
            t0 = time.monotonic()
            endpoint = "/" + path.lstrip("/").split("/", 1)[0] if path != "/" else "/"
            status, payload, ctype, extra = await self._route(method, path, body)
            self.service.observe(endpoint, status,
                                 (time.monotonic() - t0) * 1000.0)
            await self._respond(writer, status, payload, ctype=ctype,
                                extra=extra, close=close_after)
            if close_after:
                return

    async def _read_headers(self, reader: asyncio.StreamReader) -> dict[str, str] | None:
        headers: dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=10.0)
            if line in (b"\r\n", b"\n"):
                return headers
            if not line or len(line) > _MAX_LINE or len(headers) >= _MAX_HEADERS:
                return None
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                return None
            headers[name.strip().lower()] = value.strip()

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       body: bytes, *, ctype: str = _JSON_TYPE,
                       extra: Mapping[str, str] | None = None,
                       close: bool = False) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}",
                "Server: patternlet-serve/1",
                f"Content-Type: {ctype}",
                f"Content-Length: {len(body)}",
                f"Connection: {'close' if close else 'keep-alive'}"]
        for name, value in (extra or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()

    # -- routing -------------------------------------------------------------

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, bytes, str, dict[str, str]]:
        assert self.service is not None
        try:
            if path == "/healthz" and method == "GET":
                status, doc = self.service.health_doc()
                return status, _json_body(doc), _JSON_TYPE, {}
            if path in ("/metrics", "/") and method == "GET":
                return (200, self.service.render_metrics().encode(),
                        _METRICS_TYPE, {})
            if path.startswith("/report/") and method == "GET":
                key = path[len("/report/"):]
                stored = self.service.report_body(key)
                if stored is None:
                    return (404, _json_body({"error": f"no report or run "
                                             f"stored under {key!r}"}),
                            _JSON_TYPE, {})
                return 200, stored, _JSON_TYPE, {}
            if path == "/run" and method == "POST":
                return await self._route_run(body)
            if path == "/sweep" and method == "POST":
                doc = self._decode_json(body)
                specs = parse_sweep_request(doc, max_cells=self.cfg.max_cells)
                status, payload = await self.service.serve_sweep(specs)
                return status, payload, _JSON_TYPE, {}
            if path in ("/run", "/sweep", "/metrics", "/healthz", "/") or \
                    path.startswith("/report/"):
                return (405, _json_body({"error": f"{method} not allowed "
                                         f"on {path}"}), _JSON_TYPE, {})
            return (404, _json_body({"error": f"no route {path!r}"}),
                    _JSON_TYPE, {})
        except RequestError as exc:
            extra = {"Retry-After": "1"} if exc.status == 429 else {}
            return exc.status, _json_body({"error": str(exc)}), _JSON_TYPE, extra
        except Exception as exc:  # noqa: BLE001 — a route must never kill the daemon
            return (500, _json_body({"error": f"{type(exc).__name__}: {exc}"}),
                    _JSON_TYPE, {})

    async def _route_run(self, body: bytes) -> tuple[int, bytes, str, dict[str, str]]:
        assert self.service is not None
        doc = self._decode_json(body)
        spec = parse_run_request(doc)
        status, payload, served = await self.service.serve_run(spec)
        extra = {"X-Patternlet-Served": served}
        key = spec_key(spec)
        if key is not None:
            extra["X-Patternlet-Key"] = key
        return status, payload, _JSON_TYPE, extra

    @staticmethod
    def _decode_json(body: bytes) -> Any:
        try:
            return json.loads(body) if body else {}
        except ValueError:
            raise RequestError("request body is not valid JSON") from None


# ---------------------------------------------------------------------------
# Hosting


@contextlib.contextmanager
def running(config: ServeConfig | None = None, **kwargs: Any) -> Iterator[ServeDaemon]:
    """A daemon serving on a background thread for the ``with`` block.

    The bench harness, the tests, and embedders use this instead of the
    CLI: the caller's thread stays free to run clients against
    ``daemon.url`` while a private event loop owns the sockets.  Exit
    performs the same graceful drain as SIGTERM.
    """
    cfg = config if config is not None else ServeConfig(**kwargs)
    daemon = ServeDaemon(cfg)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    boot_error: list[BaseException] = []

    def _host() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(daemon.start())
        except BaseException as exc:  # noqa: BLE001 — surfaced to the caller
            boot_error.append(exc)
            started.set()
            return
        started.set()
        loop.run_forever()
        # Post-stop: let cancellations and closes settle before the
        # loop object is destroyed.
        pending = asyncio.all_tasks(loop)
        for task in pending:
            task.cancel()
        if pending:
            loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True))

    thread = threading.Thread(target=_host, name="patternlet-serve", daemon=True)
    thread.start()
    started.wait(timeout=30)
    if boot_error:
        loop.close()
        raise boot_error[0]
    try:
        yield daemon
    finally:
        stop = asyncio.run_coroutine_threadsafe(daemon.shutdown(), loop)
        with contextlib.suppress(Exception):
            stop.result(timeout=cfg.drain_timeout_s + 10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        if not loop.is_running():
            loop.close()


async def serve_forever(
    config: ServeConfig,
    *,
    announce: Callable[[str], None] | None = None,
) -> bool:
    """The CLI's foreground daemon: serve until SIGTERM/SIGINT, then drain.

    Returns True when the drain finished every in-flight run within the
    configured timeout (the CLI's exit status).
    """
    daemon = ServeDaemon(config)
    await daemon.start()
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    hooked: list[int] = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
            hooked.append(sig)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # platform without loop signal support: Ctrl-C still raises
    if announce is not None:
        announce(daemon.url)
    try:
        await stop.wait()
    except (KeyboardInterrupt, asyncio.CancelledError):
        pass
    finally:
        for sig in hooked:
            loop.remove_signal_handler(sig)
    return await daemon.shutdown()
