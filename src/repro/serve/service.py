"""The serving core: canonicalisation, coalescing, admission, telemetry.

This module is the daemon's brain, deliberately separated from the HTTP
plumbing in :mod:`repro.serve.daemon` so every serving property is
testable without a socket:

**Canonicalisation.**  :func:`parse_run_request` turns an HTTP JSON body
into a :class:`~repro.batch.specs.RunSpec` — validating the patternlet
name, task count, seed, toggles, policy, topology and network profile
*before admission* — and the spec's content address
(:func:`~repro.batch.specs.spec_key`) becomes the request's identity.
Two bodies that spell the same run differently (key order, defaults
spelled out vs omitted, ``np`` vs ``tasks``) resolve to the same key and
are served the same bytes; bodies differing in any semantic field (seed,
np, a toggle) can never collide, because the key is the same SHA-256 the
run cache trusts.

**Cache-aware request coalescing.**  :class:`PatternletService` keeps a
single-flight table: ``{spec key → asyncio.Future}``.  The first request
for a key becomes the *leader* and executes; every identical request
arriving while that flight is open *attaches* to the future instead of
executing — a 300-client burst on one grid cell does exactly one
execution.  Finished responses are memoised per key (content-addressed,
so immutable), which is why a warm burst is served without touching the
admission queue at all: memo, then in-flight table, then the
content-addressed disk cache, and only then an execution slot.

**Admission control.**  Executions (never cache/memo/coalesce serves)
pass a bounded FIFO queue: an ``asyncio.Semaphore(workers)`` provides
the concurrency bound and FIFO ordering, a high-water mark
(``workers + queue_limit``) sheds excess load with 429 +
``Retry-After``, and a per-request deadline bounds queue wait (503 on
expiry).  Draining (graceful shutdown) rejects new executions with 503
while letting attached and cached requests complete.

Executions run off the event loop: on a single dedicated thread when
``workers == 1`` (zero IPC — and safe, because the trace recorder stack
is process-ambient and must never see two concurrent runs in one
process), or on the batch layer's persistent fork pool
(:func:`repro.batch.pool.submit_one`) when ``workers > 1`` — the same
warm worker processes, run cache and wire codecs the sweep fleet uses.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro._version import __version__
from repro.batch.results import outcome_from_wire, outcome_to_wire, spec_from_wire, spec_to_wire
from repro.batch.specs import RunSpec, engine_fingerprint, spec_key, sweep_fingerprint
from repro.errors import ReproError

__all__ = [
    "MAX_SEED",
    "MAX_TASKS",
    "PatternletService",
    "RequestError",
    "ServeConfig",
    "parse_run_request",
    "parse_sweep_request",
]

#: Largest admissible per-request task count — np=1024 is the engine's
#: proven scaling ceiling (the np1024 bench), with headroom above it.
MAX_TASKS = 2048

#: Largest admissible seed (inclusive).  Seeds feed the lockstep policy
#: RNG; bounding them keeps keys canonical and rejects garbage early.
MAX_SEED = 2**32 - 1

_POLICIES = ("random", "roundrobin", "fifo", "lifo")
_NETWORKS = ("uniform", "hetero2", "hetero4")

_RUN_FIELDS = frozenset(
    {"patternlet", "tasks", "np", "toggles", "seed", "policy", "topology",
     "network", "mode"}
)
_SWEEP_FIELDS = frozenset(
    {"patternlets", "tasks", "np", "toggles", "seeds", "policy",
     "topologies", "topology", "network"}
)


class RequestError(ReproError):
    """A request that fails validation — carries its HTTP status."""

    def __init__(self, message: str, *, status: int = 400):
        super().__init__(message)
        self.status = status


@dataclass
class ServeConfig:
    """Everything `patternlet serve` can tune (defaults are classroom-sane)."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Execution concurrency bound.  1 = a single in-process lane (the
    #: lowest-latency path); >1 fans misses to that many persistent
    #: worker processes via the batch pool.
    workers: int = 1
    #: Admitted-but-unstarted executions allowed beyond ``workers``;
    #: past ``workers + queue_limit`` new executions are shed with 429.
    queue_limit: int = 32
    #: Milliseconds an admitted execution may wait for a slot before the
    #: request is failed with 503 (deadline exceeded).
    deadline_ms: float = 10_000.0
    use_cache: bool = True
    cache_dir: str | None = None
    #: Grid cells a single /sweep request may expand to (413 beyond).
    max_cells: int = 256
    #: Fleet workers for large /sweep grids (None = never use the fleet).
    fleet: int | None = None
    #: Journal/export directory for fleet-routed sweeps; folded into
    #: /metrics when present.
    telemetry_dir: str | None = None
    #: Seconds shutdown waits for in-flight executions before forcing.
    drain_timeout_s: float = 10.0
    #: Keep-alive idle timeout per connection, seconds.
    idle_timeout_s: float = 30.0
    max_body_bytes: int = 1 << 20

    @property
    def high_water(self) -> int:
        return max(1, self.workers) + max(0, self.queue_limit)


def _require_int(doc: Mapping[str, Any], key: str, lo: int, hi: int,
                 default: int) -> int:
    value = doc.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestError(f"{key!r} must be an integer, got {value!r}")
    if not lo <= value <= hi:
        raise RequestError(f"{key!r} must be in [{lo}, {hi}], got {value}")
    return value


def _toggle_overrides(doc: Mapping[str, Any]) -> dict[str, bool]:
    toggles = doc.get("toggles") or {}
    if not isinstance(toggles, Mapping):
        raise RequestError(f"'toggles' must be an object, got {toggles!r}")
    out: dict[str, bool] = {}
    for name, value in toggles.items():
        if not isinstance(value, bool):
            raise RequestError(
                f"toggle {name!r} must be true or false, got {value!r}")
        out[str(name)] = value
    return out


def parse_run_request(doc: Any) -> RunSpec:
    """Canonicalise one ``POST /run`` body into a validated :class:`RunSpec`.

    Everything that determines admission is checked here, before any
    queueing: the patternlet exists, the toggles belong to it, np and
    seed are bounded, the policy/topology/network names are known, and
    the mode is deterministic (``lockstep`` — the only mode a shared
    daemon may coalesce or cache, since a thread-mode run is genuine OS
    nondeterminism that no two clients should ever share).  Raises
    :class:`RequestError`; never runs anything.
    """
    if not isinstance(doc, Mapping):
        raise RequestError("request body must be a JSON object")
    unknown = set(doc) - _RUN_FIELDS
    if unknown:
        raise RequestError(f"unknown field(s): {', '.join(sorted(unknown))}")
    name = doc.get("patternlet")
    if not isinstance(name, str) or not name:
        raise RequestError("'patternlet' is required and must be a string")
    from repro.core.registry import get_patternlet

    try:
        p = get_patternlet(name)
    except ReproError as exc:
        raise RequestError(str(exc), status=404) from None
    if "tasks" in doc and "np" in doc:
        raise RequestError("give 'tasks' or 'np', not both")
    tasks_doc = {"tasks": doc.get("tasks", doc.get("np"))}
    tasks: int | None = None
    if tasks_doc["tasks"] is not None:
        tasks = _require_int(tasks_doc, "tasks", 1, MAX_TASKS, 1)
    seed = _require_int(doc, "seed", 0, MAX_SEED, 0)
    mode = doc.get("mode", "lockstep")
    if mode != "lockstep":
        raise RequestError(
            f"mode {mode!r} is not servable: only deterministic 'lockstep' "
            "runs can be coalesced and cached by a shared daemon")
    policy = doc.get("policy", "random")
    if policy not in _POLICIES:
        raise RequestError(
            f"unknown policy {policy!r} (one of: {', '.join(_POLICIES)})")
    toggles = _toggle_overrides(doc)
    try:
        p.toggle_set(toggles)  # unknown toggle names raise here
    except ReproError as exc:
        raise RequestError(str(exc)) from None
    topology = doc.get("topology")
    if topology is not None:
        from repro.mp.communicators import available_topologies

        known = available_topologies()
        if topology not in known:
            raise RequestError(
                f"unknown topology {topology!r} (one of: {', '.join(known)})")
    extra: dict[str, Any] = {}
    network = doc.get("network")
    if network is not None:
        if network not in _NETWORKS:
            raise RequestError(
                f"unknown network {network!r} (one of: {', '.join(_NETWORKS)})")
        extra["network"] = network
    return RunSpec.make(
        p.name,
        tasks=tasks,
        toggles=toggles or None,
        mode="lockstep",
        seed=seed,
        policy=policy,
        topology=topology,
        **extra,
    )


def parse_sweep_request(doc: Any, *, max_cells: int) -> list[RunSpec]:
    """Expand one ``POST /sweep`` body into a validated spec grid.

    The grid is the cross product ``patternlets × tasks × topologies ×
    seeds`` with one shared toggle/policy/network setting — the same
    shape as ``patternlet sweep``.  Every cell passes
    :func:`parse_run_request`'s validation; grids beyond ``max_cells``
    are rejected with 413 before any validation work is done.
    """
    if not isinstance(doc, Mapping):
        raise RequestError("request body must be a JSON object")
    unknown = set(doc) - _SWEEP_FIELDS
    if unknown:
        raise RequestError(f"unknown field(s): {', '.join(sorted(unknown))}")
    names = doc.get("patternlets")
    if not isinstance(names, (list, tuple)) or not names \
            or not all(isinstance(n, str) for n in names):
        raise RequestError("'patternlets' must be a non-empty list of names")
    seeds = doc.get("seeds", list(range(8)))
    if not isinstance(seeds, (list, tuple)) or not seeds:
        raise RequestError("'seeds' must be a non-empty list of integers")
    if "tasks" in doc and "np" in doc:
        raise RequestError("give 'tasks' or 'np', not both")
    tasks_list = doc.get("tasks", doc.get("np"))
    if tasks_list is None:
        tasks_list = [None]
    elif not isinstance(tasks_list, (list, tuple)) or not tasks_list:
        raise RequestError("'tasks' must be a non-empty list of integers")
    topologies = doc.get("topologies", doc.get("topology"))
    if topologies is None:
        topologies = [None]
    elif isinstance(topologies, str):
        topologies = [topologies]
    elif not isinstance(topologies, (list, tuple)) or not topologies:
        raise RequestError("'topologies' must be a list of topology names")
    n_cells = len(names) * len(seeds) * len(tasks_list) * len(topologies)
    if n_cells > max_cells:
        raise RequestError(
            f"grid of {n_cells} cells exceeds the {max_cells}-cell cap",
            status=413)
    specs: list[RunSpec] = []
    for name in names:
        for tasks in tasks_list:
            for topo in topologies:
                for seed in seeds:
                    cell = {
                        "patternlet": name,
                        "tasks": tasks,
                        "seed": seed,
                        "toggles": doc.get("toggles") or {},
                        "policy": doc.get("policy", "random"),
                        "topology": topo,
                    }
                    if doc.get("network") is not None:
                        cell["network"] = doc["network"]
                    specs.append(parse_run_request(cell))
    return specs


# ---------------------------------------------------------------------------
# Execution entry points (picklable: they also run on pool processes)


def _exec_spec_wire(wire: Mapping[str, Any]) -> dict[str, Any]:
    """Run one wire-coded spec → wire-coded outcome (worker-side)."""
    from repro.batch.pool import _exec_spec

    return outcome_to_wire(_exec_spec(spec_from_wire(wire)))


@dataclass
class _Flight:
    """One open single-flight entry: the leader's future plus counters."""

    future: asyncio.Future
    attached: int = 0
    t0: float = field(default_factory=time.monotonic)


class PatternletService:
    """The daemon's request pipeline (see module docstring).

    All mutable state — the single-flight table, the response memo, the
    metrics registry — is touched only from the event loop thread, so
    none of it needs locks; executions and cache decodes happen on
    executor threads / pool processes and only their *results* cross
    back onto the loop.
    """

    #: Finished response bodies kept per spec key (content-addressed, so
    #: permanently valid); LRU-bounded.
    MEMO_CAP = 4096
    #: Stored sweep reports (``GET /report/<key>``); LRU-bounded.
    REPORT_CAP = 64

    def __init__(self, config: ServeConfig) -> None:
        self.cfg = config
        self.started = time.time()
        self._inflight: dict[str, _Flight] = {}
        self._sem = asyncio.Semaphore(max(1, config.workers))
        self._pending = 0  # admitted executions not yet finished
        self._queued = 0  # admitted, still waiting for a slot
        self._draining = False
        self._memo: OrderedDict[str, bytes] = OrderedDict()
        self._reports: OrderedDict[str, bytes] = OrderedDict()
        from repro.batch.cache import RunCache, cache_enabled

        self._use_cache = config.use_cache and cache_enabled()
        self._cache = RunCache(config.cache_dir) if self._use_cache else None
        # The serial execution lane (workers == 1) — also the fallback
        # when the process pool cannot be built.  One thread, because
        # the ambient trace stack allows one live run per process.
        self._lane = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="patternlet-serve-exec")
        self._build_registry()

    # -- metrics -------------------------------------------------------------

    def _build_registry(self) -> None:
        from repro.obs.registry import MetricsRegistry

        reg = MetricsRegistry(prefix="patternlet")
        reg.info["version"] = __version__
        reg.info["fingerprint"] = engine_fingerprint()
        reg.info["role"] = "serve"
        self.registry = reg
        self.c_requests = reg.counter(
            "serve_requests", "HTTP requests handled, by endpoint and status.")
        self.c_executions = reg.counter(
            "serve_executions", "Runs actually executed (cache misses that "
            "won their single-flight slot).")
        self.c_coalesce = reg.counter(
            "serve_coalesce_hits", "Requests attached to an identical "
            "in-flight execution instead of executing.")
        self.c_cache_hits = reg.counter(
            "serve_cache_hits", "Requests served from the response memo or "
            "the content-addressed run cache.")
        self.c_cache_misses = reg.counter(
            "serve_cache_misses", "Requests whose spec key was absent from "
            "every cache tier.")
        self.c_shed = reg.counter(
            "serve_shed", "Executions rejected with 429 past the admission "
            "high-water mark.")
        self.c_deadline = reg.counter(
            "serve_deadline_expired", "Admitted executions that timed out "
            "waiting for a slot (503).")
        self.g_queue = reg.gauge(
            "serve_queue_depth", "Admitted executions waiting for a slot.")
        self.g_inflight = reg.gauge(
            "serve_inflight", "Executions currently running.")
        self.g_draining = reg.gauge(
            "serve_draining", "1 while the daemon is draining for shutdown.")
        self.h_latency = reg.histogram(
            "serve_request", "Per-endpoint request service time.",
            buckets=(0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
                     1000.0, 5000.0),
            unit="ms")

    def render_metrics(self) -> str:
        """One strict-OpenMetrics scrape: serve counters, plus the fleet
        telemetry fold when fleet sweeps have journalled anywhere."""
        reg = self.registry
        if self.cfg.telemetry_dir is not None:
            import os.path

            from repro.obs.registry import merge_registries
            from repro.obs.telemetry import fleet_registry

            if os.path.isdir(self.cfg.telemetry_dir):
                reg = merge_registries(reg, fleet_registry(self.cfg.telemetry_dir))
                reg.info.update(self.registry.info)
        return reg.to_openmetrics()

    def observe(self, endpoint: str, status: int, ms: float) -> None:
        """Record one finished HTTP exchange (called by the HTTP layer)."""
        self.c_requests.inc({"endpoint": endpoint, "status": str(status)})
        self.h_latency.observe(round(ms, 3), {"endpoint": endpoint})

    # -- shutdown ------------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def start_draining(self) -> None:
        """Stop admitting new runs; in-flight executions keep going."""
        self._draining = True
        self.g_draining.set(1)

    async def drain(self, timeout: float | None = None) -> bool:
        """Wait for every admitted execution to finish; True when clean."""
        deadline = time.monotonic() + (
            timeout if timeout is not None else self.cfg.drain_timeout_s)
        while self._pending > 0 or self._inflight:
            if time.monotonic() >= deadline:
                return False
            await asyncio.sleep(0.01)
        return True

    def close(self) -> None:
        """Release the execution lane (idempotent)."""
        self._lane.shutdown(wait=True, cancel_futures=True)

    # -- health / report -----------------------------------------------------

    def health_doc(self) -> tuple[int, dict[str, Any]]:
        """Liveness document for ``GET /healthz`` (503 while draining)."""
        status = 503 if self._draining else 200
        return status, {
            "status": "draining" if self._draining else "ok",
            "uptime_s": round(time.time() - self.started, 3),
            "workers": self.cfg.workers,
            "inflight": len(self._inflight),
            "queue_depth": self._queued,
            "draining": self._draining,
        }

    def report_body(self, key: str) -> bytes | None:
        """A stored sweep report or memoised run response for ``key``."""
        body = self._reports.get(key)
        if body is not None:
            self._reports.move_to_end(key)
            return body
        body = self._memo.get(key)
        if body is not None:
            self._memo.move_to_end(key)
            return body
        if self._cache is not None:
            record = self._cache.get(key)
            if record is not None:
                try:
                    return self._payload_for(key, self._outcome_from_record(key, record))
                except ReproError:
                    return None
        return None

    # -- the /run pipeline ---------------------------------------------------

    async def serve_run(self, spec: RunSpec) -> tuple[int, bytes, str]:
        """Serve one canonical spec; returns ``(status, body, served-by)``.

        ``served-by`` names the tier that produced the bytes (``memo``,
        ``coalesce``, ``cache``, ``execute``) — exposed as a response
        header so clients and tests can see coalescing without the
        bodies differing per tier.
        """
        key = spec_key(spec)
        if key is None:  # unreachable after validation; belt and braces
            raise RequestError("spec is not content-addressable")
        body = self._memo.get(key)
        if body is not None:
            self._memo.move_to_end(key)
            self.c_cache_hits.inc()
            return 200, body, "memo"
        flight = self._inflight.get(key)
        if flight is not None:
            flight.attached += 1
            self.c_coalesce.inc()
            status, body = await asyncio.shield(flight.future)
            return status, body, "coalesce"
        if self._cache is not None:
            record = self._cache.get(key)
            if record is not None:
                outcome = self._outcome_from_record(key, record)
                body = self._payload_for(key, outcome)
                self.c_cache_hits.inc()
                return 200, body, "cache"
        self.c_cache_misses.inc()
        return await self._execute(key, spec) + ("execute",)

    async def _execute(self, key: str, spec: RunSpec) -> tuple[int, bytes]:
        if self._draining:
            raise RequestError("daemon is draining; try another instance",
                               status=503)
        if self._pending >= self.cfg.high_water:
            self.c_shed.inc()
            raise RequestError(
                f"admission queue full ({self._pending} pending)", status=429)
        loop = asyncio.get_running_loop()
        flight = _Flight(future=loop.create_future())
        self._inflight[key] = flight
        self._pending += 1
        self._queued += 1
        self.g_queue.set(self._queued)
        try:
            try:
                await asyncio.wait_for(self._sem.acquire(),
                                       timeout=self.cfg.deadline_ms / 1000.0)
            except (asyncio.TimeoutError, TimeoutError):
                self.c_deadline.inc()
                err = RequestError(
                    f"no execution slot within {self.cfg.deadline_ms:.0f} ms",
                    status=503)
                if not flight.future.done():
                    flight.future.set_exception(err)
                    flight.future.exception()  # consumed: not "unretrieved"
                raise err
            self._queued -= 1
            self.g_queue.set(self._queued)
            self.g_inflight.set(min(self._pending, self.cfg.workers))
            try:
                self.c_executions.inc()
                wire, stats = await self._dispatch(spec)
            finally:
                self._sem.release()
                self.g_inflight.set(
                    max(0, min(self._pending - 1, self.cfg.workers)))
            for name, n in (("hits", stats.get("hits", 0)),
                            ("misses", stats.get("misses", 0))):
                # Worker-side cache counters (a pool process may itself
                # have hit the shared store).
                if n:
                    (self.c_cache_hits if name == "hits"
                     else self.c_cache_misses).inc(amount=n)
            outcome = outcome_from_wire(wire)
            if outcome.error is not None:
                body = self._error_body(outcome.error)
                result = (500, body)
            else:
                body = self._payload_for(key, outcome)
                result = (200, body)
            if not flight.future.done():
                flight.future.set_result(result)
            return result
        except RequestError:
            raise
        except Exception as exc:  # noqa: BLE001 — fail the whole flight
            if not flight.future.done():
                flight.future.set_exception(exc)
                flight.future.exception()
            raise
        finally:
            self._pending -= 1
            if self._queued > self._pending:
                self._queued = self._pending
                self.g_queue.set(self._queued)
            self._inflight.pop(key, None)

    async def _dispatch(self, spec: RunSpec) -> tuple[dict[str, Any], dict[str, int]]:
        """Run one spec on the execution backend; returns (wire, stats)."""
        loop = asyncio.get_running_loop()
        wire_spec = spec_to_wire(spec)
        payload = (_exec_spec_wire, wire_spec, self.cfg.cache_dir,
                   self._use_cache)
        if self.cfg.workers > 1:
            from repro.batch.pool import submit_one

            fut = submit_one(_exec_spec_wire, wire_spec,
                             workers=self.cfg.workers,
                             use_cache=self._use_cache,
                             cache_dir=self.cfg.cache_dir)
            if fut is not None:
                try:
                    return await asyncio.wrap_future(fut)
                except Exception:  # noqa: BLE001 — pool collapse: lane fallback
                    pass
        from repro.batch.pool import _entry

        return await loop.run_in_executor(self._lane, _entry, payload)

    # -- the /sweep pipeline -------------------------------------------------

    async def serve_sweep(self, specs: list[RunSpec]) -> tuple[int, bytes]:
        """Run a validated grid; returns the summary (and stores the report).

        Small grids go cell-by-cell through :meth:`serve_run`, so
        identical cells coalesce with each other *and* with concurrent
        ``/run`` traffic.  Grids past the fleet amortisation threshold
        (when the daemon was started with ``fleet=N``) route to the
        sharded sweep fleet instead — one bounded submission, counted as
        a single execution slot.
        """
        from repro.batch.fleet import FLEET_AMORTISE_CELLS

        if self.cfg.fleet and len(specs) >= self.cfg.fleet * FLEET_AMORTISE_CELLS:
            return await self._sweep_fleet(specs)
        t0 = time.monotonic()
        results = await asyncio.gather(
            *(self.serve_run(spec) for spec in specs), return_exceptions=True)
        cells = []
        errors = 0
        for spec, res in zip(specs, results):
            if isinstance(res, BaseException):
                errors += 1
                detail = (str(res) if isinstance(res, ReproError)
                          else f"{type(res).__name__}: {res}")
                cells.append({"label": spec.label(), "error": detail})
                continue
            status, body, served = res
            doc = json.loads(body)
            if status != 200:
                errors += 1
            cells.append({
                "label": spec.label(),
                "key": doc.get("key"),
                "served": served,
                "races": doc.get("races"),
                "span": doc.get("span"),
                "error": doc.get("error"),
            })
        report_key = sweep_fingerprint(specs)
        report = {
            "report": report_key,
            "cells": cells,
            "runs": len(specs),
            "errors": errors,
            "wall_s": round(time.monotonic() - t0, 4),
            "engine": {"version": __version__,
                       "fingerprint": engine_fingerprint()},
        }
        self._store_report(report_key, report)
        summary = dict(report)
        summary.pop("cells")
        summary["distinct_cells"] = len({spec_key(s) for s in specs})
        return (200 if errors == 0 else 500), _dumps(summary)

    async def _sweep_fleet(self, specs: list[RunSpec]) -> tuple[int, bytes]:
        from repro.batch.fleet import FleetError, run_specs_fleet

        loop = asyncio.get_running_loop()

        def _run() -> Any:
            return run_specs_fleet(
                specs,
                workers=self.cfg.fleet,
                use_cache=self._use_cache,
                cache_dir=self.cfg.cache_dir,
                telemetry_dir=self.cfg.telemetry_dir,
            )

        try:
            # The fleet owns its worker processes; it occupies one slot
            # of the daemon's admission capacity, not one per cell.
            async with self._sem:
                batch = await loop.run_in_executor(None, _run)
        except FleetError as exc:
            raise RequestError(f"fleet sweep failed: {exc}", status=503)
        report_key = sweep_fingerprint(specs)
        report = {
            "report": report_key,
            "cells": [{
                "label": o.spec.label(),
                "key": o.key,
                "served": "fleet",
                "races": o.races,
                "span": o.span,
                "error": o.error,
            } for o in batch.outcomes],
            "runs": batch.runs,
            "errors": len(batch.errors),
            "wall_s": round(batch.wall_s, 4),
            "fleet": batch.fleet,
            "engine": {"version": __version__,
                       "fingerprint": engine_fingerprint()},
        }
        self._store_report(report_key, report)
        self.c_executions.inc(amount=batch.executed)
        self.c_cache_hits.inc(amount=batch.hits)
        self.c_cache_misses.inc(amount=batch.executed)
        summary = dict(report)
        summary.pop("cells")
        summary["hit_rate"] = round(batch.hit_rate, 4)
        return (200 if not batch.errors else 500), _dumps(summary)

    # -- payload construction ------------------------------------------------

    def _outcome_from_record(self, key: str, record: Mapping[str, Any]) -> Any:
        """Decode one cache record into a RunOutcome-shaped object."""
        from repro.batch.results import run_from_record
        from repro.obs.derive import run_summary
        from repro.trace import detect_races

        try:
            run = run_from_record(dict(record))
        except ReproError as exc:
            raise RequestError(f"stored record for {key} is unreadable: {exc}",
                               status=500) from None
        from repro.batch.results import RunOutcome

        return RunOutcome(
            spec=None,
            key=key,
            cached=True,
            text=run.text,
            span=run.span,
            wall=run.wall,
            races=len(detect_races(run.trace)),
            metrics=run_summary(run.trace, tasks_hint=run.meta.get("tasks")),
        )

    def _payload_for(self, key: str, outcome: Any) -> bytes:
        """Build (and memoise) the content-addressed response body.

        The body is a pure function of the spec key's *content* — run
        text, span, race verdict — never of how this particular request
        was served, so every request for one key receives byte-identical
        bytes whether it executed, coalesced, or hit a cache tier.
        (Transport provenance rides in the ``X-Patternlet-Served``
        header instead.)
        """
        doc = {
            "key": key,
            "text": outcome.text,
            "span": outcome.span,
            "races": outcome.races,
            "engine": {"version": __version__,
                       "fingerprint": engine_fingerprint()},
        }
        if outcome.metrics is not None:
            summary = outcome.metrics
            doc["metrics"] = {
                k: summary[k] for k in ("span", "speedup", "efficiency")
                if isinstance(summary, Mapping) and k in summary
            }
        body = _dumps(doc)
        self._memo[key] = body
        self._memo.move_to_end(key)
        while len(self._memo) > self.MEMO_CAP:
            self._memo.popitem(last=False)
        return body

    def _store_report(self, key: str, report: Mapping[str, Any]) -> None:
        self._reports[key] = _dumps(report)
        self._reports.move_to_end(key)
        while len(self._reports) > self.REPORT_CAP:
            self._reports.popitem(last=False)

    @staticmethod
    def _error_body(message: str) -> bytes:
        return _dumps({"error": message})


def _dumps(doc: Mapping[str, Any]) -> bytes:
    """Canonical response JSON: sorted keys, compact, newline-terminated."""
    return (json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n").encode()
