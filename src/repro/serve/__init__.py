"""The patternlet service daemon (``patternlet serve``).

A long-lived HTTP front end over the engine's batch substrate, built for
the classroom serving story: one shared daemon absorbs a lab section's
burst of identical figure-grid requests at approximately one execution
per *distinct* grid cell — everything else is coalesced onto in-flight
runs or served from the content-addressed cache.

- :class:`~repro.serve.service.ServeConfig` /
  :class:`~repro.serve.service.PatternletService` — canonicalisation,
  single-flight coalescing, admission control, serving telemetry.
- :class:`~repro.serve.daemon.ServeDaemon` /
  :func:`~repro.serve.daemon.running` /
  :func:`~repro.serve.daemon.serve_forever` — the asyncio HTTP/1.1
  layer and its hosting helpers.
"""

from repro.serve.daemon import ServeDaemon, running, serve_forever
from repro.serve.service import (
    PatternletService,
    RequestError,
    ServeConfig,
    parse_run_request,
    parse_sweep_request,
)

__all__ = [
    "PatternletService",
    "RequestError",
    "ServeConfig",
    "ServeDaemon",
    "parse_run_request",
    "parse_sweep_request",
    "running",
    "serve_forever",
]
