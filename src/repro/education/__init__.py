"""Educational-evaluation layer: the paper's Section IV in library form.

- :mod:`repro.education.assessment` — the CS2 exam-score study (Fall
  "no patternlets" vs Spring "with patternlets"): from-scratch two-sample
  t-tests, the implied cohort statistics, and synthetic cohorts matching
  the reported aggregates.
- :mod:`repro.education.matrix_lab` — the Tuesday closed-lab: a Matrix
  class with sequential and parallel add/transpose plus the
  thread-count-vs-speedup harness students chart.
- :mod:`repro.education.curriculum` — where PDC topics live across the
  curriculum, and the CS2 parallel week's two schedules.
"""

from repro.education.assessment import (
    FALL_COHORT,
    SPRING_COHORT,
    CohortSummary,
    TestResult,
    cohens_d,
    generate_cohort,
    infer_common_sd,
    pooled_t_test,
    reproduce_paper_analysis,
    student_t_sf,
    welch_t_test,
)
from repro.education.curriculum import (
    CS2_WEEK_FALL,
    CS2_WEEK_SPRING,
    CURRICULUM,
    Course,
    Session,
    courses_using,
)
from repro.education.matrix_lab import Matrix, lab_report, time_operation
from repro.education.quiz import EXAM, Question, correct_answers, grade

__all__ = [
    "CohortSummary",
    "TestResult",
    "FALL_COHORT",
    "SPRING_COHORT",
    "student_t_sf",
    "pooled_t_test",
    "welch_t_test",
    "cohens_d",
    "infer_common_sd",
    "generate_cohort",
    "reproduce_paper_analysis",
    "Matrix",
    "time_operation",
    "lab_report",
    "Course",
    "Session",
    "CURRICULUM",
    "CS2_WEEK_FALL",
    "CS2_WEEK_SPRING",
    "courses_using",
    "Question",
    "EXAM",
    "correct_answers",
    "grade",
]
