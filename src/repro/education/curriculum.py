"""The curriculum map of Section IV: where PDC topics live, course by course.

The paper spreads parallel and distributed computing across five courses so
"every student is exposed to PDC, and students who want more depth may get
it", and uses patternlets in several of them.  This module records that
structure, plus the CS2 parallel week in both of its historical forms —
the Fall lecture-based schedule and the Spring live-coding-patternlet
schedule whose comparison Section IV.B evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Course",
    "Session",
    "CURRICULUM",
    "CS2_WEEK_FALL",
    "CS2_WEEK_SPRING",
    "courses_using",
]


@dataclass(frozen=True)
class Course:
    """One course in the departmental curriculum."""

    code: str
    title: str
    year: int  # curriculum year (1 = first-year)
    required: bool
    pdc_topics: tuple[str, ...]
    patternlet_backends: tuple[str, ...] = ()  # backends demonstrated, if any


CURRICULUM: tuple[Course, ...] = (
    Course(
        "CS2",
        "Data Structures",
        year=1,
        required=True,
        pdc_topics=(
            "multicore CPUs",
            "multithreading with OpenMP",
            "embarrassingly parallel problems",
            "speedup measurement",
            "parallel merge sort (concepts)",
        ),
        patternlet_backends=("openmp",),
    ),
    Course(
        "CS3",
        "Algorithms",
        year=2,
        required=True,
        pdc_topics=(
            "parallel searching",
            "parallel sorting",
            "parallel graph algorithms",
        ),
        patternlet_backends=("openmp",),
    ),
    Course(
        "PL",
        "Programming Languages",
        year=2,
        required=True,
        pdc_topics=(
            "message-passing constructs",
            "synchronisation constructs",
        ),
        patternlet_backends=("mpi", "pthreads"),
    ),
    Course(
        "OSNET",
        "Operating Systems & Networking",
        year=3,
        required=True,
        pdc_topics=(
            "implementing synchronisation",
            "implementing message passing",
        ),
        patternlet_backends=("pthreads", "mpi"),
    ),
    Course(
        "HPC",
        "High Performance Computing",
        year=4,
        required=False,
        pdc_topics=(
            "scalable MPI programming",
            "OpenMP in depth",
            "CUDA",
            "Hadoop / MapReduce",
        ),
        patternlet_backends=("mpi", "openmp", "hybrid"),
    ),
)


@dataclass(frozen=True)
class Session:
    """One class meeting of the CS2 parallel week."""

    day: str
    kind: str  # "lecture", "lab", "active-learning", "live-coding"
    topic: str
    patternlets: tuple[str, ...] = field(default=())


#: The Fall schedule: traditional lectures, no patternlets.
CS2_WEEK_FALL: tuple[Session, ...] = (
    Session(
        "Monday",
        "lecture",
        "Multicore CPUs, multithreading, OpenMP as a multithreading library",
    ),
    Session(
        "Tuesday",
        "lab",
        "Time sequential Matrix add/transpose; parallelise with OpenMP; "
        "chart speedup against thread count",
    ),
    Session(
        "Wednesday",
        "lecture",
        "Multithreading concepts, reinforcing the lab",
    ),
    Session(
        "Friday",
        "active-learning",
        "Parallel algorithm design, culminating in parallel merge sort",
    ),
)

#: The Spring schedule: the same week with live-coding patternlet demos
#: concluding Monday and replacing the Wednesday lecture (Section IV.A).
CS2_WEEK_SPRING: tuple[Session, ...] = (
    Session(
        "Monday",
        "live-coding",
        "Multicore CPUs and OpenMP, concluded with a live-coded patternlet demo",
        patternlets=("openmp.spmd", "openmp.spmd2", "openmp.forkJoin"),
    ),
    Session(
        "Tuesday",
        "lab",
        "Time sequential Matrix add/transpose; parallelise with OpenMP; "
        "chart speedup against thread count",
    ),
    Session(
        "Wednesday",
        "live-coding",
        "Multithreading concepts demonstrated in action with patternlets",
        patternlets=(
            "openmp.barrier",
            "openmp.parallelLoopEqualChunks",
            "openmp.parallelLoopChunksOf1",
            "openmp.critical",
            "openmp.reduction",
        ),
    ),
    Session(
        "Friday",
        "active-learning",
        "Parallel algorithm design, culminating in parallel merge sort",
    ),
)


def courses_using(backend: str) -> list[Course]:
    """Courses whose demos use patternlets of the given backend."""
    return [c for c in CURRICULUM if backend in c.patternlet_backends]
