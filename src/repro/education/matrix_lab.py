"""The CS2 Tuesday lab: Matrix add/transpose, sequential vs parallel.

Students (a) time sequential matrix addition and transposition, (b)
parallelise them with OpenMP, (c) time the parallel versions at several
thread counts, and (d) chart threads-vs-speedup.  This module is that lab
against :mod:`repro.smp`:

- :class:`Matrix` is the provided class, with sequential ``add`` /
  ``transpose`` and parallel ``padd`` / ``ptranspose`` that divide rows
  among a thread team;
- :func:`time_operation` measures wall time *and* virtual span;
- :func:`lab_report` runs the full sweep and returns the chart's rows.

On this container (one core, GIL) wall-clock speedup is physically absent,
so the chart students would draw is computed from the **span** under the
work-per-row cost model — the same deterministic critical-path measure the
rest of the reproduction uses.  Wall time is reported alongside, honestly.
"""

from __future__ import annotations

import random
import time
from typing import Callable

from repro.smp.runtime import SmpRuntime, TeamResult

__all__ = ["Matrix", "time_operation", "lab_report"]


class Matrix:
    """A dense integer matrix with sequential and parallel operations."""

    def __init__(self, rows: list[list[float]]):
        if not rows or not rows[0]:
            raise ValueError("matrix must be non-empty")
        width = len(rows[0])
        if any(len(r) != width for r in rows):
            raise ValueError("ragged rows")
        self.rows = rows

    # -- constructors ----------------------------------------------------------

    @classmethod
    def zeros(cls, n: int, m: int) -> "Matrix":
        return cls([[0.0] * m for _ in range(n)])

    @classmethod
    def random(cls, n: int, m: int, *, seed: int = 0, span: int = 100) -> "Matrix":
        rng = random.Random(seed)
        return cls([[float(rng.randrange(span)) for _ in range(m)] for _ in range(n)])

    # -- shape & access -----------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self.rows), len(self.rows[0]))

    def __getitem__(self, rc: tuple[int, int]) -> float:
        return self.rows[rc[0]][rc[1]]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Matrix) and self.rows == other.rows

    # -- sequential operations (what students start from) ---------------------------

    def add(self, other: "Matrix") -> "Matrix":
        """Sequential elementwise addition."""
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        return Matrix(
            [
                [a + b for a, b in zip(ra, rb)]
                for ra, rb in zip(self.rows, other.rows)
            ]
        )

    def transpose(self) -> "Matrix":
        """Sequential transposition."""
        n, m = self.shape
        return Matrix([[self.rows[i][j] for i in range(n)] for j in range(m)])

    # -- parallel operations (what students write in the lab) ------------------------

    def padd(self, other: "Matrix", rt: SmpRuntime) -> tuple["Matrix", TeamResult]:
        """Parallel addition: rows divided among the team (static schedule)."""
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        n, m = self.shape
        out = [[0.0] * m for _ in range(n)]

        def body(i: int, ctx) -> None:
            ra, rb = self.rows[i], other.rows[i]
            out[i] = [a + b for a, b in zip(ra, rb)]

        team = rt.parallel_for(n, body, schedule="static", work_per_iteration=float(m))
        return Matrix(out), team

    def ptranspose(self, rt: SmpRuntime) -> tuple["Matrix", TeamResult]:
        """Parallel transposition: output rows divided among the team."""
        n, m = self.shape
        out = [[0.0] * n for _ in range(m)]

        def body(j: int, ctx) -> None:
            col = self.rows
            out[j] = [col[i][j] for i in range(n)]

        team = rt.parallel_for(m, body, schedule="static", work_per_iteration=float(n))
        return Matrix(out), team


def time_operation(fn: Callable[[], object]) -> tuple[object, float]:
    """Run ``fn`` once, returning (result, wall_seconds)."""
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def lab_report(
    *,
    size: int = 120,
    thread_counts: tuple[int, ...] = (1, 2, 4, 8),
    seed: int = 0,
) -> dict:
    """The full lab sweep: one row per (operation, thread count).

    Each row carries wall seconds, virtual span, and span-based speedup
    relative to the single-thread run — the y-axis of the chart students
    produce in step (d).
    """
    a = Matrix.random(size, size, seed=seed)
    b = Matrix.random(size, size, seed=seed + 1)
    seq_add, seq_add_wall = time_operation(lambda: a.add(b))
    seq_tr, seq_tr_wall = time_operation(lambda: a.transpose())

    rows = []
    base_span = {}
    for op_name in ("add", "transpose"):
        for t in thread_counts:
            rt = SmpRuntime(num_threads=t, mode="thread")
            if op_name == "add":
                (result, team), wall = time_operation(lambda rt=rt: a.padd(b, rt))
                correct = result == seq_add
            else:
                (result, team), wall = time_operation(lambda rt=rt: a.ptranspose(rt))
                correct = result == seq_tr
            if t == thread_counts[0]:
                base_span[op_name] = team.span
            rows.append(
                {
                    "operation": op_name,
                    "threads": t,
                    "wall": wall,
                    "span": team.span,
                    "speedup": base_span[op_name] / team.span if team.span else 1.0,
                    "efficiency": (
                        base_span[op_name] / team.span / t if team.span else 1.0
                    ),
                    "correct": correct,
                }
            )
    return {
        "size": size,
        "sequential": {"add_wall": seq_add_wall, "transpose_wall": seq_tr_wall},
        "rows": rows,
    }
