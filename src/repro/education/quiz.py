"""The four final-exam questions (Section IV.B), as autograded items.

The paper assessed the parallel week "through the use of four final exam
questions on parallelism and OpenMP", scored out of 4 total.  The actual
questions were not published; these four cover the week's four sessions
(multithreading basics, the lab's speedup ideas, synchronisation, and the
reduction pattern) and — in this library's spirit — every correct answer
is *computed from the runtime*, so the key cannot drift from the system
it examines.

Each :class:`Question` carries its prompt, choices, and a ``solve``
callable returning the correct choice index; :func:`grade` scores a
response sheet the way the paper reports scores (out of 4, one point per
question).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = ["Question", "EXAM", "correct_answers", "grade"]


@dataclass(frozen=True)
class Question:
    """One exam item with a machine-checkable answer."""

    topic: str
    prompt: str
    choices: tuple[str, ...]
    solve: Callable[[], int]  # returns the index of the correct choice

    def correct_index(self) -> int:
        """Compute (and sanity-check) the correct choice's index."""
        answer = self.solve()
        if not 0 <= answer < len(self.choices):
            raise ValueError(f"solver returned bad index {answer}")
        return answer


def _q1_solve() -> int:
    # How many greetings does a 4-thread SPMD hello print?
    from repro.core.registry import run_patternlet

    run = run_patternlet("openmp.spmd", tasks=4, seed=0)
    count = len(run.grep("Hello from"))
    return {1: 0, 4: 1, 5: 2, 16: 3}[count]


def _q2_solve() -> int:
    # Equal chunks of 8 iterations on 2 threads: which does thread 1 get?
    from repro.smp import Schedule, static_iterations

    mine = static_iterations(Schedule.static(), 8, 2, 1)
    table = {
        (0, 1, 2, 3): 0,
        (4, 5, 6, 7): 1,
        (1, 3, 5, 7): 2,
        (0, 2, 4, 6): 3,
    }
    return table[tuple(mine)]


def _q3_solve() -> int:
    # Two threads each add 1 to a shared variable 100 times without
    # synchronisation.  Which final values are possible?
    from repro.smp import SharedCell, SmpRuntime

    def race_total(policy: str, seed: int) -> int:
        cell = SharedCell(0)
        rt = SmpRuntime(num_threads=2, mode="lockstep", seed=seed, policy=policy)
        rt.parallel(lambda ctx: [cell.unsafe_add(1, ctx) for _ in range(100)])
        return cell.value

    saw_less = any(race_total("random", seed) < 200 for seed in range(6))
    # Run-to-completion scheduling shows 200 is also achievable:
    saw_exact = race_total("fifo", 0) == 200
    if saw_less and saw_exact:
        return 2  # "at most 200, possibly less"
    return 0


def _q4_solve() -> int:
    # Combining 16 partial sums with a reduction tree takes how many
    # parallel steps?
    from repro.smp import SmpCosts, SmpRuntime

    rt = SmpRuntime(
        num_threads=16, mode="lockstep", costs=SmpCosts(barrier=0.0, combine=1.0)
    )
    res = rt.parallel(lambda ctx: ctx.reduce(1, "+"))
    return {15: 0, 8: 1, 4: 2, 2: 3}[int(res.span)]


EXAM: tuple[Question, ...] = (
    Question(
        topic="multithreading / SPMD",
        prompt=(
            "A hello-world program forks a team of 4 threads, each printing "
            "one greeting.  How many greetings appear?"
        ),
        choices=("1", "4", "5", "16"),
        solve=_q1_solve,
    ),
    Question(
        topic="parallel loop / data decomposition",
        prompt=(
            "8 loop iterations are divided among 2 threads in equal "
            "contiguous chunks.  Which iterations does thread 1 perform?"
        ),
        choices=("0-3", "4-7", "the odd ones", "the even ones"),
        solve=_q2_solve,
    ),
    Question(
        topic="race conditions / mutual exclusion",
        prompt=(
            "Two threads each add 1 to a shared counter 100 times with no "
            "synchronisation.  The final value is..."
        ),
        choices=(
            "always exactly 200",
            "always less than 200",
            "at most 200, possibly less",
            "more than 200 sometimes",
        ),
        solve=_q3_solve,
    ),
    Question(
        topic="reduction",
        prompt=(
            "16 partial sums are combined with a parallel reduction tree.  "
            "How many time steps of simultaneous additions are needed?"
        ),
        choices=("15", "8", "4", "2"),
        solve=_q4_solve,
    ),
)


def correct_answers() -> list[int]:
    """The key, computed live from the runtime."""
    return [q.correct_index() for q in EXAM]


def grade(responses: Sequence[int]) -> float:
    """Score a response sheet out of 4.0 (the paper's scale)."""
    if len(responses) != len(EXAM):
        raise ValueError(f"expected {len(EXAM)} responses, got {len(responses)}")
    key = correct_answers()
    return float(sum(1 for r, k in zip(responses, key) if r == k))
