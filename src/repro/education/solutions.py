"""Worked solutions to selected patternlet exercises.

Each patternlet carries the student exercise from its C original's header
comment; this module is the instructor's answer key for the ones with
*computational* answers — each solution is a runnable function returning
the evidence, asserted by the test suite, so the answer key can never rot.
"""

from __future__ import annotations

import math

from repro.core.analysis import iterations_by_task
from repro.core.registry import run_patternlet
from repro.smp import Schedule, SmpRuntime, static_iterations

__all__ = [
    "spmd_line_count_formula",
    "equal_chunk_remainder_owners",
    "cyclic_vs_equal_balance",
    "minimum_racy_count",
    "race_loss_by_thread_count",
    "barrier_after_lines_can_reorder",
    "reduction_tree_levels",
    "gather_prediction",
]


def spmd_line_count_formula(max_threads: int = 8) -> dict[int, int]:
    """openmp.forkJoin: total printed lines as a function of thread count.

    Answer: 2 sequential lines + one 'During' line per thread -> t + 2.
    """
    out = {}
    for t in range(1, max_threads + 1):
        run = run_patternlet("openmp.forkJoin", tasks=t, seed=0)
        out[t] = len([l for l in run.lines if l])
        assert out[t] == t + 2, (t, run.lines)
    return out


def equal_chunk_remainder_owners(n: int = 10, threads: int = 4) -> dict[int, int]:
    """openmp.parallelLoopEqualChunks: who gets the extra work when
    iterations do not divide evenly?

    Answer: with the ceiling-division deal every thread but the last gets
    ceil(n/t); the *last* thread gets what remains — possibly much less
    (and middle threads never get less than the last).
    """
    sizes = {
        t: len(static_iterations(Schedule.static(), n, threads, t))
        for t in range(threads)
    }
    chunk = math.ceil(n / threads)
    assert all(sizes[t] == chunk for t in range(threads - 1))
    assert sizes[threads - 1] == n - chunk * (threads - 1)
    return sizes


def cyclic_vs_equal_balance(n: int = 12, threads: int = 4) -> dict[str, int]:
    """mpi.parallelLoopChunksOf1: for a loop where iteration i costs i,
    compare the load balance of cyclic vs equal chunks.

    Answer: the cyclic deal's per-task totals differ by at most
    ~n(t-1)/t ~ n, while equal chunks differ by ~n^2/(2t) — the cyclic
    spread is a factor ~n/(2t-2) smaller here.
    """

    def spread(sched: Schedule) -> int:
        totals = [
            sum(static_iterations(sched, n, threads, t))
            for t in range(threads)
        ]
        return max(totals) - min(totals)

    result = {
        "equal_chunks_spread": spread(Schedule.static()),
        "cyclic_spread": spread(Schedule.static(1)),
    }
    assert result["cyclic_spread"] < result["equal_chunks_spread"]
    return result


def minimum_racy_count(threads: int = 4, reps: int = 50) -> int:
    """openmp.atomic: how low can the unprotected count go?

    Answer: 2 — not reps!  Theoretical construction: thread A reads 0,
    stalls; everyone else runs to completion; A writes 1; then A reads 1
    before the *final* increment of another thread, which overwrites
    everything with 2... In general the count can sink to 2 regardless of
    threads x reps (for reps >= 2).  This function demonstrates losses
    empirically (seed-dependent) and returns the worst observed value —
    the analytic minimum of 2 is asserted only as a lower bound.
    """
    worst = threads * reps
    for seed in range(10):
        run = run_patternlet(
            "openmp.atomic",
            tasks=threads,
            toggles={"atomic": False},
            seed=seed,
            reps=reps,
        )
        actual = int(run.grep("Actual count")[0].split()[-1])
        worst = min(worst, actual)
    assert 2 <= worst < threads * reps
    return worst


def race_loss_by_thread_count(reps: int = 40) -> dict[int, int]:
    """openmp.critical: chart lost deposits against thread count.

    Answer: one thread loses nothing; with more threads, more of each
    read-modify-write overlaps another, so losses appear and (typically)
    grow with the contention.
    """
    losses = {}
    for t in (1, 2, 4, 8):
        run = run_patternlet(
            "openmp.critical", tasks=t, toggles={"critical": False},
            seed=3, reps=reps,
        )
        balance = int(run.grep("the balance is")[0].rstrip(".").split()[-1])
        losses[t] = t * reps - balance
    assert losses[1] == 0
    assert all(losses[t] > 0 for t in (2, 4, 8))
    return losses


def barrier_after_lines_can_reorder(seeds: int = 10) -> bool:
    """openmp.barrier: with the barrier on, can AFTER lines still appear
    in any relative order among themselves?

    Answer: yes — the barrier orders phases, not threads.  Evidence: two
    seeds whose AFTER orders differ while separation holds in both.
    """
    orders = set()
    for seed in range(seeds):
        run = run_patternlet(
            "openmp.barrier", tasks=4, toggles={"barrier": True}, seed=seed
        )
        after = tuple(
            int(line.split()[1]) for line in run.grep("AFTER")
        )
        orders.add(after)
    assert len(orders) > 1
    return True


def reduction_tree_levels(max_t: int = 64) -> dict[int, int]:
    """openmp.reduction2 / Figure 19: how many levels does the combining
    tree need for t tasks?

    Answer: ceil(lg t) — verified by counting barrier generations in an
    instrumented reduction.
    """
    out = {}
    for t in (2, 3, 4, 8, 16, 64):
        levels = 0
        step = 1
        while step < t:
            step *= 2
            levels += 1
        out[t] = levels
        assert levels == math.ceil(math.log2(t))
        rt = SmpRuntime(num_threads=t, mode="lockstep")
        res = rt.parallel(lambda ctx: ctx.reduce(1, "+"))
        assert res.results[0] == t
    return out


def gather_prediction(np_: int = 6) -> list[int]:
    """mpi.gather: predict the gathered array for any np before running.

    Answer: ranks contribute [10r, 10r+1, 10r+2]; gather is rank-ordered,
    so the result is those triples concatenated ascending.
    """
    predicted = [r * 10 + i for r in range(np_) for i in range(3)]
    run = run_patternlet("mpi.gather", tasks=np_, seed=0)
    line = run.grep("gatherArray")[0]
    got = [int(v) for v in line.split(":")[1].split()]
    assert got == predicted
    return predicted
