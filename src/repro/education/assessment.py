"""The CS2 exam-score study (Section IV.B), reproduced from aggregates.

The paper reports: four final-exam questions on parallelism/OpenMP; the
Fall "no patternlets" cohort (41 students, mostly 3rd-year engineering)
averaged 2.95/4; the Spring "with patternlets" cohort (38 students, mostly
1st-years) averaged 3.05/4 — a 2.5% improvement, not statistically
significant (p = 0.293), "perhaps due to small sample sizes".

Per-student scores were not published, so this module works at two levels:

1. **Inference machinery from scratch**: Student-t survival function via
   the regularised incomplete beta function, pooled and Welch two-sample
   t-tests, Cohen's d.  (Validated against scipy in the test suite.)
2. **Aggregate reproduction**: from the published means, sizes, and
   p-value we *invert* the t-test to find the score spread the cohorts
   must have had (:func:`infer_common_sd`), then generate synthetic
   cohorts with exactly those aggregates (:func:`generate_cohort`) and
   confirm the forward analysis returns the published p.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

__all__ = [
    "CohortSummary",
    "TestResult",
    "FALL_COHORT",
    "SPRING_COHORT",
    "student_t_sf",
    "pooled_t_test",
    "welch_t_test",
    "cohens_d",
    "infer_common_sd",
    "generate_cohort",
    "reproduce_paper_analysis",
]


@dataclass(frozen=True)
class CohortSummary:
    """Published aggregate for one course offering."""

    name: str
    n: int
    mean: float
    description: str = ""

    def __post_init__(self) -> None:
        if self.n <= 1:
            raise ValueError("cohort needs n > 1")


#: Fall offering: traditional lectures, no patternlets.
FALL_COHORT = CohortSummary(
    "Fall (no patternlets)",
    n=41,
    mean=2.95,
    description="Mostly 3rd-year engineering majors with two years of "
    "engineering curriculum behind them.",
)

#: Spring offering: live-coding patternlet demos replacing two lectures.
SPRING_COHORT = CohortSummary(
    "Spring (with patternlets)",
    n=38,
    mean=3.05,
    description="Mostly 1st-year students with one semester of college "
    "experience.",
)

#: Exam questions are scored out of this maximum.
MAX_SCORE = 4.0

#: The p-value the paper reports for the cohort comparison.
PAPER_P_VALUE = 0.293


# ---------------------------------------------------------------------------
# Student-t distribution from scratch (regularised incomplete beta)
# ---------------------------------------------------------------------------


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (Numerical Recipes form)."""
    MAXIT, EPS, FPMIN = 200, 3.0e-12, 1.0e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < FPMIN:
        d = FPMIN
    d = 1.0 / d
    h = d
    for m in range(1, MAXIT + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < FPMIN:
            d = FPMIN
        c = 1.0 + aa / c
        if abs(c) < FPMIN:
            c = FPMIN
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < FPMIN:
            d = FPMIN
        c = 1.0 + aa / c
        if abs(c) < FPMIN:
            c = FPMIN
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < EPS:
            return h
    raise ArithmeticError("incomplete beta continued fraction did not converge")


def _betai(a: float, b: float, x: float) -> float:
    """Regularised incomplete beta function I_x(a, b)."""
    if not 0.0 <= x <= 1.0:
        raise ValueError("x must be in [0, 1]")
    if x == 0.0 or x == 1.0:
        return x
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log(1.0 - x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def student_t_sf(t: float, df: float) -> float:
    """Survival function P(T > t) for Student's t with ``df`` degrees."""
    if df <= 0:
        raise ValueError("df must be positive")
    x = df / (df + t * t)
    p = 0.5 * _betai(df / 2.0, 0.5, x)
    return p if t >= 0 else 1.0 - p


# ---------------------------------------------------------------------------
# two-sample tests
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TestResult:
    """Outcome of a two-sample comparison."""

    t: float
    df: float
    p_one_tailed: float
    p_two_tailed: float
    method: str

    def significant(self, alpha: float = 0.05, *, tails: int = 2) -> bool:
        """Whether the chosen tail's p-value clears ``alpha``."""
        p = self.p_two_tailed if tails == 2 else self.p_one_tailed
        return p < alpha


def _summaries(mean1, sd1, n1, mean2, sd2, n2):
    if min(n1, n2) <= 1:
        raise ValueError("both samples need n > 1")
    if min(sd1, sd2) < 0:
        raise ValueError("standard deviations must be non-negative")


def pooled_t_test(
    mean1: float, sd1: float, n1: int, mean2: float, sd2: float, n2: int
) -> TestResult:
    """Classic equal-variance two-sample t-test from summary statistics.

    ``t`` is signed as ``mean1 - mean2``; one-tailed p is for the
    alternative "sample 1 scores higher".
    """
    _summaries(mean1, sd1, n1, mean2, sd2, n2)
    df = n1 + n2 - 2
    sp2 = ((n1 - 1) * sd1 * sd1 + (n2 - 1) * sd2 * sd2) / df
    se = math.sqrt(sp2 * (1.0 / n1 + 1.0 / n2))
    t = (mean1 - mean2) / se if se > 0 else math.inf
    p_one = student_t_sf(t, df)
    p_two = 2.0 * student_t_sf(abs(t), df)
    return TestResult(t, df, p_one, p_two, "pooled")


def welch_t_test(
    mean1: float, sd1: float, n1: int, mean2: float, sd2: float, n2: int
) -> TestResult:
    """Welch's unequal-variance t-test (Welch-Satterthwaite df)."""
    _summaries(mean1, sd1, n1, mean2, sd2, n2)
    v1, v2 = sd1 * sd1 / n1, sd2 * sd2 / n2
    se = math.sqrt(v1 + v2)
    t = (mean1 - mean2) / se if se > 0 else math.inf
    df = (v1 + v2) ** 2 / (v1 * v1 / (n1 - 1) + v2 * v2 / (n2 - 1))
    p_one = student_t_sf(t, df)
    p_two = 2.0 * student_t_sf(abs(t), df)
    return TestResult(t, df, p_one, p_two, "welch")


def cohens_d(mean1: float, sd1: float, n1: int, mean2: float, sd2: float, n2: int) -> float:
    """Cohen's d with the pooled standard deviation."""
    sp2 = ((n1 - 1) * sd1 * sd1 + (n2 - 1) * sd2 * sd2) / (n1 + n2 - 2)
    sp = math.sqrt(sp2)
    return (mean1 - mean2) / sp if sp > 0 else math.inf


# ---------------------------------------------------------------------------
# inverting the published result
# ---------------------------------------------------------------------------


def infer_common_sd(
    p_value: float = PAPER_P_VALUE,
    *,
    tails: int = 1,
    cohort_a: CohortSummary = SPRING_COHORT,
    cohort_b: CohortSummary = FALL_COHORT,
) -> float:
    """The common per-cohort SD implied by the published means/sizes/p.

    Solves the pooled t-test backwards by bisection on the SD: a larger
    spread weakens the same mean difference.  The paper does not say
    whether its p was one- or two-tailed; the default (one-tailed, the
    generous reading for a directional "did scores improve?" question)
    implies SD ~ 0.8 points on the 4-point scale, the two-tailed reading
    ~ 0.42 — both plausible exam spreads, and the bench reports both.
    """
    if not 0 < p_value < 1:
        raise ValueError("p must be in (0, 1)")
    if tails not in (1, 2):
        raise ValueError("tails must be 1 or 2")

    def p_for(sd: float) -> float:
        res = pooled_t_test(
            cohort_a.mean, sd, cohort_a.n, cohort_b.mean, sd, cohort_b.n
        )
        return res.p_one_tailed if tails == 1 else res.p_two_tailed

    lo, hi = 1e-6, 50.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if p_for(mid) < p_value:
            lo = mid  # spread too small -> too significant -> widen
        else:
            hi = mid
    return 0.5 * (lo + hi)


def generate_cohort(
    summary: CohortSummary,
    sd: float,
    *,
    seed: int = 0,
    max_score: float = MAX_SCORE,
    step: float = 0.25,
) -> list[float]:
    """Synthetic per-student scores matching a cohort's published aggregates.

    Draws normal scores, snaps them to the grading grid (quarter points),
    clips to [0, max], then nudges individual scores grid-step by
    grid-step until the sample mean matches the published mean to within
    half a grid step over n — the closest any real grade sheet could get.
    """
    rng = random.Random(seed)
    n = summary.n
    scores = []
    for _ in range(n):
        s = rng.gauss(summary.mean, sd)
        s = round(s / step) * step
        scores.append(min(max(s, 0.0), max_score))
    target_total = summary.mean * n
    # Nudge scores toward the exact published total.
    for _ in range(100_000):
        total = sum(scores)
        if abs(total - target_total) < step / 2:
            break
        idx = rng.randrange(n)
        if total < target_total and scores[idx] <= max_score - step:
            scores[idx] += step
        elif total > target_total and scores[idx] >= step:
            scores[idx] -= step
    return scores


def sample_stats(scores: list[float]) -> tuple[float, float]:
    """Mean and (Bessel-corrected) standard deviation of a score list."""
    n = len(scores)
    mean = sum(scores) / n
    var = sum((s - mean) ** 2 for s in scores) / (n - 1)
    return mean, math.sqrt(var)


def reproduce_paper_analysis(*, seed: int = 0) -> dict:
    """The full Section IV.B reconstruction (used by the bench harness).

    Returns the published aggregates, the implied SDs under both tail
    conventions, synthetic cohorts for the one-tailed reading, and the
    forward test results on those cohorts.
    """
    out: dict = {
        "fall": FALL_COHORT,
        "spring": SPRING_COHORT,
        # The paper's "2.5% improvement" is measured against the 4-point
        # scale: (3.05 - 2.95) / 4.  The relative-to-mean reading (3.4%)
        # is carried alongside for completeness.
        "improvement_pct": 100.0 * (SPRING_COHORT.mean - FALL_COHORT.mean) / MAX_SCORE,
        "improvement_rel_pct": 100.0
        * (SPRING_COHORT.mean - FALL_COHORT.mean)
        / FALL_COHORT.mean,
        "paper_p": PAPER_P_VALUE,
    }
    for tails in (1, 2):
        sd = infer_common_sd(tails=tails)
        res = pooled_t_test(
            SPRING_COHORT.mean, sd, SPRING_COHORT.n, FALL_COHORT.mean, sd, FALL_COHORT.n
        )
        out[f"implied_sd_{tails}tailed"] = sd
        out[f"test_{tails}tailed"] = res
    sd1 = out["implied_sd_1tailed"]
    fall_scores = generate_cohort(FALL_COHORT, sd1, seed=seed)
    spring_scores = generate_cohort(SPRING_COHORT, sd1, seed=seed + 1)
    fm, fsd = sample_stats(fall_scores)
    sm, ssd = sample_stats(spring_scores)
    out["synthetic"] = {
        "fall_mean": fm,
        "fall_sd": fsd,
        "spring_mean": sm,
        "spring_sd": ssd,
        "pooled": pooled_t_test(sm, ssd, len(spring_scores), fm, fsd, len(fall_scores)),
        "welch": welch_t_test(sm, ssd, len(spring_scores), fm, fsd, len(fall_scores)),
        "cohens_d": cohens_d(sm, ssd, len(spring_scores), fm, fsd, len(fall_scores)),
    }
    return out
