"""Visualising parallelism: ASCII timelines of captured runs.

The patternlets teach by *showing* concurrent behaviour; raw interleaved
output is the paper's medium, but a lane-per-task timeline makes the same
behaviour visible at a glance — who printed when, where the barrier
aligned everyone, how a race window interleaved two updates.

Three renderers:

- :func:`render_run` — lanes from a :class:`~repro.core.capture.CapturedRun`:
  one column per global output event, one row per task, event numbers in
  the producing task's lane.
- :func:`render_events` — the same lane layout over the run's full trace
  (any :class:`~repro.trace.Event` stream), so barrier arrivals, lock
  hand-offs and message edges appear between the prints.
- :func:`render_trace` — lanes from a lockstep executor's scheduling
  trace: ``#`` for running, ``.`` for blocked, so students can see the
  token move between tasks and where everyone piled up at a barrier.

All are pure functions returning strings (printable anywhere, assertable
in tests).  The CLI exposes them as ``patternlet trace``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.core.capture import CapturedRun

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace import Event, TraceRecorder

__all__ = ["render_run", "render_events", "render_trace", "lane_order"]


def lane_order(run: CapturedRun) -> list[str]:
    """Stable lane ordering: sorted task labels, ``main`` last."""
    tasks = sorted(set(label for label, _ in run.records))
    if "main" in tasks:
        tasks.remove("main")
        tasks.append("main")
    return tasks


def render_run(
    run: CapturedRun,
    *,
    max_events: int = 60,
    legend: bool = True,
) -> str:
    """One lane per task; event k marks the task that printed line k.

    Example (barrier patternlet, 3 threads)::

        omp:0 | 1 . . 4 . .
        omp:1 | . 2 . . 5 .
        omp:2 | . . 3 . . 6

    Numbers wider than one digit widen their column; ``max_events`` caps
    the width for very chatty runs (the tail is elided with a note).
    """
    records = run.records[:max_events]
    elided = len(run.records) - len(records)
    tasks = lane_order(run)
    if not tasks:
        return "(no output)"
    label_w = max(len(t) for t in tasks)
    cells: dict[str, list[str]] = {t: [] for t in tasks}
    for k, (label, _line) in enumerate(records, start=1):
        mark = str(k)
        for t in tasks:
            cells[t].append(mark if t == label else "." * len(mark))
    lanes = [
        f"{t:<{label_w}} | " + " ".join(cells[t]) for t in tasks
    ]
    out = "\n".join(lanes)
    if elided > 0:
        out += f"\n({elided} later events elided)"
    if legend:
        out += "\n" + "-" * (label_w + 3)
        for k, (label, line) in enumerate(records, start=1):
            out += f"\n{k:>3}. [{label}] {line}"
    return out


def _event_detail(ev: "Event") -> str:
    parts = [f"{k}={v}" for k, v in ev.payload.items() if k != "scope"]
    if ev.vtime is not None:
        parts.append(f"vtime={ev.vtime:g}")
    return f" ({', '.join(parts)})" if parts else ""


def render_events(
    source: "Iterable[Event] | TraceRecorder",
    *,
    max_events: int = 60,
    legend: bool = True,
) -> str:
    """Lanes over a full trace: event k marks the task that emitted it.

    Same layout as :func:`render_run`, but every spine event gets a
    column — a barrier patternlet shows the ``barrier.arrive`` cluster
    between the two print phases, a mutual-exclusion one shows the lock
    hand-off order.  The legend lists each event's kind and payload.
    """
    from repro.trace import as_events

    events = as_events(source)
    shown = events[:max_events]
    elided = len(events) - len(shown)
    tasks: list[str] = []
    for ev in shown:
        if ev.task not in tasks:
            tasks.append(ev.task)
    if not tasks:
        return "(no events)"
    label_w = max(len(t) for t in tasks)
    cells: dict[str, list[str]] = {t: [] for t in tasks}
    for k, ev in enumerate(shown, start=1):
        mark = str(k)
        for t in tasks:
            cells[t].append(mark if t == ev.task else "." * len(mark))
    out = "\n".join(
        f"{t:<{label_w}} | " + " ".join(cells[t]) for t in tasks
    )
    if elided > 0:
        out += f"\n({elided} later events elided)"
    if legend:
        out += "\n" + "-" * (label_w + 3)
        for k, ev in enumerate(shown, start=1):
            out += f"\n{k:>3}. [{ev.task}] {ev.kind}{_event_detail(ev)}"
    return out


def render_trace(
    events: Iterable[tuple[str, str]],
    *,
    max_steps: int = 120,
) -> str:
    """Lanes from a lockstep scheduling trace.

    Each ``run`` event paints one ``#`` step in the chosen task's lane
    and a space in the others; ``block`` paints ``b`` at the moment a
    task parked, ``wake`` paints ``w``, ``done`` paints ``x``.  Reading a
    barrier run, every lane shows ``b``s accumulating until the last
    arrival, then a burst of ``w``s — the barrier made visible.
    """
    events = list(events)
    steps = [e for e in events if e[0] in ("run", "block", "wake", "done")]
    steps = steps[:max_steps]
    tasks: list[str] = []
    for _, label in steps:
        if label not in tasks:
            tasks.append(label)
    if not tasks:
        return "(empty trace)"
    label_w = max(len(t) for t in tasks)
    mark = {"run": "#", "block": "b", "wake": "w", "done": "x"}
    lanes = {t: [] for t in tasks}
    for kind, label in steps:
        for t in tasks:
            lanes[t].append(mark[kind] if t == label else " ")
    body = "\n".join(f"{t:<{label_w}} | {''.join(lanes[t])}" for t in tasks)
    key = "key: # running   b blocked   w woken   x finished"
    return body + "\n" + key
