"""The comment/uncomment pedagogy as a first-class mechanic.

Every patternlet in the paper ships with a crucial line commented out —
``// #pragma omp parallel``, ``// MPI_Barrier(...)``, the
``reduction(+:sum)`` clause — and the lesson *is* the behavioural delta
when it is uncommented.  Here each such line is a named :class:`Toggle`
with its C spelling attached, and a run receives a :class:`ToggleSet`
saying which are "uncommented".

    run_patternlet("openmp.barrier", toggles={"barrier": False})  # Fig. 8
    run_patternlet("openmp.barrier", toggles={"barrier": True})   # Fig. 9
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import ToggleError

__all__ = ["Toggle", "ToggleSet"]


@dataclass(frozen=True)
class Toggle:
    """One comment/uncomment site in a patternlet.

    ``pragma`` records the C line the paper comments out, so docs and the
    CLI can show students exactly what the flag corresponds to.
    """

    name: str
    pragma: str
    description: str
    default: bool = False


class ToggleSet:
    """Resolved on/off states for one run of a patternlet."""

    def __init__(
        self,
        declared: Iterable[Toggle],
        overrides: Mapping[str, bool] | None = None,
    ):
        self._declared = {t.name: t for t in declared}
        self._state = {t.name: t.default for t in self._declared.values()}
        for name, value in (overrides or {}).items():
            if name not in self._declared:
                known = sorted(self._declared)
                raise ToggleError(
                    f"unknown toggle {name!r} (this patternlet has: {known})"
                )
            self._state[name] = bool(value)

    def __getitem__(self, name: str) -> bool:
        try:
            return self._state[name]
        except KeyError:
            raise ToggleError(f"unknown toggle {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._state

    def __iter__(self) -> Iterator[str]:
        return iter(self._state)

    def enabled(self) -> list[str]:
        """Names of toggles currently 'uncommented'."""
        return sorted(n for n, v in self._state.items() if v)

    def as_dict(self) -> dict[str, bool]:
        """A plain name -> state mapping (for run metadata)."""
        return dict(self._state)

    def describe(self, name: str) -> Toggle:
        """The declaration (pragma text etc.) behind a toggle."""
        try:
            return self._declared[name]
        except KeyError:
            raise ToggleError(f"unknown toggle {name!r}") from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ToggleSet({self._state})"
