"""Figure self-check: verify the collection reproduces the paper.

``patternlet selfcheck`` runs every figure-bearing patternlet under the
deterministic executor and asserts the paper's claim about its output —
a one-command sanity check for instructors after installing or modifying
the collection.  Each check is a named, independently-runnable predicate;
the benchmark suite covers the same ground with timing attached, but this
module needs nothing beyond the library itself.

The checks are submitted as one batch through :mod:`repro.batch`: with
``jobs > 1`` they fan across the persistent worker pool, and (unless
disabled) every deterministic patternlet run inside a check is served
from the content-addressed run cache — a warm selfcheck recomputes only
the genuinely nondeterministic Fig. 30 timing run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.analysis import (
    contiguous_blocks,
    iterations_by_task,
    parse_hello_lines,
    phases_interleaved,
    phases_separated,
)
from repro.core.capture import CapturedRun
from repro.core.registry import run_patternlet

__all__ = ["CheckResult", "FIGURE_CHECKS", "run_selfcheck"]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one figure check."""

    figure: str
    description: str
    passed: bool
    detail: str = ""


def _check(run: CapturedRun, ok: bool, detail: str = "") -> tuple[bool, str]:
    return ok, detail


def _fig2() -> tuple[bool, str]:
    run = run_patternlet("openmp.spmd", toggles={"parallel": False}, seed=0)
    hellos = parse_hello_lines(run)
    return hellos == [(0, 1, None)], f"got {hellos}"


def _fig3() -> tuple[bool, str]:
    run = run_patternlet("openmp.spmd", tasks=4, seed=1)
    hellos = sorted(h[0] for h in parse_hello_lines(run))
    return hellos == [0, 1, 2, 3], f"ids {hellos}"


def _fig5() -> tuple[bool, str]:
    run = run_patternlet("mpi.spmd", tasks=1, seed=0)
    hellos = parse_hello_lines(run)
    return hellos == [(0, 1, "node-01")], f"got {hellos}"


def _fig6() -> tuple[bool, str]:
    run = run_patternlet("mpi.spmd", tasks=4, seed=0)
    hellos = sorted(parse_hello_lines(run))
    want = [(r, 4, f"node-0{r + 1}") for r in range(4)]
    return hellos == want, f"got {hellos}"


def _fig8() -> tuple[bool, str]:
    for seed in range(12):
        run = run_patternlet("openmp.barrier", toggles={"barrier": False}, seed=seed)
        if phases_interleaved(run, "BEFORE", "AFTER"):
            return True, f"interleaving at seed {seed}"
    return False, "no interleaving in 12 seeds"


def _fig9() -> tuple[bool, str]:
    for seed in range(8):
        run = run_patternlet("openmp.barrier", toggles={"barrier": True}, seed=seed)
        if not phases_separated(run, "BEFORE", "AFTER"):
            return False, f"not separated at seed {seed}"
    return True, "separated across 8 seeds"


def _fig11() -> tuple[bool, str]:
    for seed in range(12):
        run = run_patternlet(
            "mpi.barrier", tasks=4, toggles={"barrier": False}, seed=seed
        )
        if phases_interleaved(run, "BEFORE", "AFTER"):
            return True, f"interleaving at seed {seed}"
    return False, "no interleaving in 12 seeds"


def _fig12() -> tuple[bool, str]:
    for seed in range(8):
        run = run_patternlet(
            "mpi.barrier", tasks=4, toggles={"barrier": True}, seed=seed
        )
        if not phases_separated(run, "BEFORE", "AFTER"):
            return False, f"not separated at seed {seed}"
    return True, "separated across 8 seeds"


def _fig15() -> tuple[bool, str]:
    run = run_patternlet("openmp.parallelLoopEqualChunks", tasks=2, seed=0)
    got = iterations_by_task(run)
    ok = got.get(0) == [0, 1, 2, 3] and got.get(1) == [4, 5, 6, 7]
    return ok, f"map {got}"


def _fig18() -> tuple[bool, str]:
    run = run_patternlet("mpi.parallelLoopEqualChunks", tasks=4, seed=0)
    got = iterations_by_task(run)
    ok = all(contiguous_blocks(v) and len(v) == 2 for v in got.values())
    return ok and len(got) == 4, f"map {got}"


def _fig22() -> tuple[bool, str]:
    from repro.trace import detect_races

    run = run_patternlet("openmp.reduction", toggles={"parallel_for": True}, seed=1)
    seq = int(run.grep("Seq. sum")[0].split()[-1])
    par = int(run.grep("Par. sum")[0].split()[-1])
    fixed = run_patternlet(
        "openmp.reduction",
        toggles={"parallel_for": True, "reduction": True},
        seed=1,
    )
    fseq = int(fixed.grep("Seq. sum")[0].split()[-1])
    fpar = int(fixed.grep("Par. sum")[0].split()[-1])
    # Beyond the sampled wrong sum: the happens-before detector must
    # prove the race schedule-independently, and certify the fix clean.
    proven = len(detect_races(run.trace)) > 0
    clean = len(detect_races(fixed.trace)) == 0
    ok = par < seq and fpar == fseq and proven and clean
    return ok, (
        f"racy {par}<{seq} (race {'proven' if proven else 'NOT proven'}), "
        f"fixed {fpar}=={fseq} ({'clean' if clean else 'NOT clean'})"
    )


def _fig24() -> tuple[bool, str]:
    run = run_patternlet("mpi.reduction", tasks=10, seed=0)
    ok = bool(
        run.grep("The sum of the squares is 385")
        and run.grep("The max of the squares is 100")
    )
    return ok, "sum 385, max 100" if ok else run.text[-120:]


def _fig28() -> tuple[bool, str]:
    run = run_patternlet("mpi.gather", tasks=6, seed=0)
    expected = " ".join(str(r * 10 + i) for r in range(6) for i in range(3))
    ok = bool(run.grep(f"gatherArray: {expected}"))
    return ok, "rank-ordered gather" if ok else "wrong gather order"


def _fig30() -> tuple[bool, str]:
    # Enough deposits that the per-primitive cost difference dominates
    # thread startup and scheduling noise (300 was flaky under load), and
    # best-of-three on the timing claim: a loaded single-core host can
    # invert one measurement, so only exactness must hold every attempt.
    ratio = 0.0
    for _ in range(3):
        run = run_patternlet(
            "openmp.critical2", mode="thread", tasks=4, reps=1000
        )
        result = run.result
        exact = (
            result["atomic"][0] == result["critical"][0]
            == float(result["reps"])
        )
        if not exact:
            return False, "lost updates under atomic/critical"
        ratio = max(ratio, result["ratio"])
        if ratio > 1.0:
            break
    return ratio > 1.0, f"ratio {ratio:.2f}x"


#: Every check, keyed by the paper figure(s) it verifies.
FIGURE_CHECKS: dict[str, tuple[str, Callable[[], tuple[bool, str]]]] = {
    "Fig. 2": ("spmd sequential: one greeting", _fig2),
    "Fig. 3": ("spmd parallel: ids 0-3 of 4", _fig3),
    "Fig. 5": ("MPI spmd -np 1 on node-01", _fig5),
    "Fig. 6": ("MPI spmd -np 4 across four nodes", _fig6),
    "Fig. 8": ("barrier off: phases interleave", _fig8),
    "Fig. 9": ("barrier on: phases separate", _fig9),
    "Fig. 11": ("MPI barrier off: phases interleave", _fig11),
    "Fig. 12": ("MPI barrier on: phases separate", _fig12),
    "Fig. 15": ("equal chunks: 0-3 / 4-7", _fig15),
    "Fig. 18": ("MPI equal chunks at -np 4", _fig18),
    "Fig. 22": ("race loses updates; clause fixes it", _fig22),
    "Fig. 24": ("sum 385, max 100 at -np 10", _fig24),
    "Fig. 28": ("gather rank-ordered at -np 6", _fig28),
    "Fig. 30": ("atomic/critical both exact; critical dearer", _fig30),
}


def _run_one_check(figure: str) -> CheckResult:
    """Execute one figure check by name (the batch workers' unit of work)."""
    entry = FIGURE_CHECKS.get(figure)
    if entry is None:  # only reachable on a pool worker with a stale name
        return CheckResult(figure, "?", False, "unknown figure on worker")
    description, fn = entry
    try:
        passed, detail = fn()
    except Exception as exc:  # noqa: BLE001 - reported, not raised
        passed, detail = False, f"raised {type(exc).__name__}: {exc}"
    return CheckResult(figure, description, passed, detail)


def run_selfcheck(
    only: str | None = None,
    *,
    jobs: int | None = None,
    use_cache: bool | None = None,
    cache_dir: str | None = None,
    stats_out: dict | None = None,
) -> list[CheckResult]:
    """Run all (or one) figure checks; never raises, always reports.

    The checks go through the batch layer as one submission: ``jobs``
    sets the worker-process count (default 1 — in-process, which a cold
    cache keeps exactly as fast as the pre-batch serial loop),
    ``use_cache`` overrides the ``REPRO_CACHE`` environment gate, and
    ``cache_dir`` relocates the run-cache store.  ``stats_out`` receives
    the batch's aggregated run-cache hit/miss/store counters (the CLI
    summary line reports them through the metrics registry).
    """
    from repro.batch.pool import map_calls

    figures = [f for f in FIGURE_CHECKS if only is None or only == f]
    if not figures:
        return []
    results, _workers, _pooled = map_calls(
        _run_one_check,
        figures,
        max_workers=jobs if jobs is not None else 1,
        use_cache=use_cache,
        cache_dir=cache_dir,
        stats_out=stats_out,
    )
    return results
