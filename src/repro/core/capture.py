"""Task-attributed output capture.

The paper's figures *are* program output: interleaved "Hello from thread 3
of 4" lines, before/after barrier orderings, gathered arrays.  To turn those
into testable artifacts, a :class:`OutputRecorder` replaces ``sys.stdout``
for the duration of a run and records every completed line together with
the label of the task that wrote it (``"omp:2"``, ``"mpi:0"``, nested
``"mpi:1/omp:3"``), in global arrival order.

Patternlets just call :func:`say` (or plain ``print``) — attribution comes
from :func:`repro.sched.base.current_task_label`, which both executors
maintain.  Lines written outside any task are labelled ``"main"``.

The resulting :class:`CapturedRun` is the universal figure format: its
``text`` matches what a terminal would show, while ``by_task`` and the
helpers in :mod:`repro.core.analysis` support the shape assertions the
benches and tests make.
"""

from __future__ import annotations

import io
import sys
import threading
import time
from typing import Any, Callable

from repro.sched.base import current_task_label

__all__ = ["CapturedRun", "OutputRecorder", "capture_run", "say"]


class CapturedRun:
    """Everything observable from one program run."""

    def __init__(self) -> None:
        #: ``(task_label, line)`` pairs in global arrival order.
        self.records: list[tuple[str, str]] = []
        #: Return value of the program's ``main``.
        self.result: Any = None
        #: Wall-clock seconds for the run.
        self.wall: float = 0.0
        #: Critical-path virtual time, when the program reported one.
        self.span: float | None = None
        #: Free-form metadata attached by the runner (toggles used, ...).
        self.meta: dict[str, Any] = {}

    # -- views ---------------------------------------------------------------

    @property
    def lines(self) -> list[str]:
        """Just the printed lines, in order."""
        return [line for _, line in self.records]

    @property
    def text(self) -> str:
        """The run's output as a terminal would show it."""
        return "\n".join(self.lines)

    @property
    def by_task(self) -> dict[str, list[str]]:
        """Lines grouped by producing task, preserving per-task order."""
        out: dict[str, list[str]] = {}
        for label, line in self.records:
            out.setdefault(label, []).append(line)
        return out

    @property
    def tasks(self) -> list[str]:
        """Task labels in order of first appearance."""
        seen: list[str] = []
        for label, _ in self.records:
            if label not in seen:
                seen.append(label)
        return seen

    def grep(self, needle: str) -> list[str]:
        """Lines containing ``needle``."""
        return [line for line in self.lines if needle in line]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CapturedRun({len(self.records)} lines, wall={self.wall:.3g}s)"


class _RouterStream(io.TextIOBase):
    """A ``sys.stdout`` replacement that attributes lines to tasks."""

    def __init__(self, run: CapturedRun, echo_to: Any | None):
        super().__init__()
        self._run = run
        self._echo = echo_to
        self._lock = threading.Lock()
        self._partials: dict[str, str] = {}

    def writable(self) -> bool:  # pragma: no cover - io protocol
        return True

    def write(self, s: str) -> int:
        label = current_task_label() or "main"
        with self._lock:
            buf = self._partials.get(label, "") + s
            while "\n" in buf:
                line, buf = buf.split("\n", 1)
                self._run.records.append((label, line))
            self._partials[label] = buf
        if self._echo is not None:
            self._echo.write(s)
        return len(s)

    def flush(self) -> None:
        if self._echo is not None:
            self._echo.flush()

    def finish(self) -> None:
        """Commit any unterminated partial lines."""
        with self._lock:
            for label, buf in self._partials.items():
                if buf:
                    self._run.records.append((label, buf))
            self._partials.clear()


class OutputRecorder:
    """Context manager that records task-attributed stdout into a run."""

    def __init__(self, *, echo: bool = False):
        self.run = CapturedRun()
        self._echo = echo
        self._saved: Any = None
        self._stream: _RouterStream | None = None

    def __enter__(self) -> "OutputRecorder":
        self._saved = sys.stdout
        self._stream = _RouterStream(self.run, self._saved if self._echo else None)
        sys.stdout = self._stream
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._stream is not None
        self._stream.finish()
        sys.stdout = self._saved


def capture_run(
    fn: Callable[..., Any],
    *args: Any,
    echo: bool = False,
    **kwargs: Any,
) -> CapturedRun:
    """Run ``fn(*args, **kwargs)`` under an :class:`OutputRecorder`.

    The callable's return value lands in ``run.result``; if it returns an
    object with a ``span`` attribute (e.g. a
    :class:`~repro.smp.runtime.TeamResult` or an MP world result), the span
    is copied onto the run for the figure harnesses.
    """
    rec = OutputRecorder(echo=echo)
    t0 = time.perf_counter()
    with rec:
        result = fn(*args, **kwargs)
    rec.run.wall = time.perf_counter() - t0
    rec.run.result = result
    span = getattr(result, "span", None)
    if isinstance(span, (int, float)):
        rec.run.span = float(span)
    return rec.run


def say(*parts: Any, sep: str = " ", end: str = "\n") -> None:
    """``print`` twin used by the patternlets (kept for greppability)."""
    print(*parts, sep=sep, end=end)
