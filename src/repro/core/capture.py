"""Task-attributed output capture, as a view over the event spine.

The paper's figures *are* program output: interleaved "Hello from thread 3
of 4" lines, before/after barrier orderings, gathered arrays.  To turn those
into testable artifacts, a :class:`OutputRecorder` replaces ``sys.stdout``
for the duration of a run and emits every completed line into the run's
:class:`~repro.trace.TraceRecorder` as an ``io.print`` event, attributed to
the task that wrote it (``"omp:2"``, ``"mpi:0"``, nested ``"mpi:1/omp:3"``),
in global arrival order.

The recorder is also installed as the *ambient* trace recorder (see
:mod:`repro.trace.events`), so every substrate event of the run — task
lifetimes, barrier generations, lock hand-offs, message edges, shared-cell
accesses — lands in the same stream, interleaved with the prints.  A
:class:`CapturedRun` is therefore one trace plus views: ``records``/``text``
read the ``io.print`` events, ``span`` derives from ``task.end`` virtual
times, and the happens-before analyses of :mod:`repro.trace.hb` run over
``run.trace`` directly.

Patternlets just call :func:`say` (or plain ``print``) — attribution comes
from :func:`repro.sched.base.current_task_label`, which both executors
maintain.  Lines written outside any task are labelled ``"main"``.
"""

from __future__ import annotations

import io
import sys
import threading
import time
from typing import Any, Callable

from repro.sched.base import current_task_label
from repro.trace import TraceRecorder, pop_recorder, push_recorder, span_of

__all__ = ["CapturedRun", "OutputRecorder", "capture_run", "say"]

PRINT = "io.print"


class CapturedRun:
    """Everything observable from one program run.

    The underlying store is ``trace`` — the run's full event stream; the
    output-shaped attributes are views over its ``io.print`` events.
    """

    def __init__(self) -> None:
        #: The run's full event stream (prints and substrate events).
        self.trace = TraceRecorder()
        #: Return value of the program's ``main``.
        self.result: Any = None
        #: Wall-clock seconds for the run.
        self.wall: float = 0.0
        #: Critical-path virtual time, when the program reported one.
        self.span: float | None = None
        #: Free-form metadata attached by the runner (toggles used, ...).
        self.meta: dict[str, Any] = {}

    # -- views ---------------------------------------------------------------

    @property
    def records(self) -> list[tuple[str, str]]:
        """``(task_label, line)`` pairs in global arrival order."""
        return [
            (ev.task, ev.payload.get("line", ""))
            for ev in self.trace.events(PRINT)
        ]

    @records.setter
    def records(self, pairs: list[tuple[str, str]]) -> None:
        # Tests fabricate runs by assigning records wholesale; keep the
        # trace as the single source of truth by rebuilding it from the
        # given lines.
        rec = TraceRecorder()
        for label, line in pairs:
            rec.emit(PRINT, task=label, line=line)
        self.trace = rec

    @property
    def lines(self) -> list[str]:
        """Just the printed lines, in order."""
        return [line for _, line in self.records]

    @property
    def text(self) -> str:
        """The run's output as a terminal would show it."""
        return "\n".join(self.lines)

    @property
    def by_task(self) -> dict[str, list[str]]:
        """Lines grouped by producing task, preserving per-task order."""
        out: dict[str, list[str]] = {}
        for label, line in self.records:
            out.setdefault(label, []).append(line)
        return out

    @property
    def tasks(self) -> list[str]:
        """Task labels in order of first appearance."""
        seen: list[str] = []
        for label, _ in self.records:
            if label not in seen:
                seen.append(label)
        return seen

    def grep(self, needle: str) -> list[str]:
        """Lines containing ``needle``."""
        return [line for line in self.lines if needle in line]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CapturedRun({len(self.records)} lines, wall={self.wall:.3g}s)"


class _RouterStream(io.TextIOBase):
    """A ``sys.stdout`` replacement that attributes lines to tasks."""

    def __init__(self, run: CapturedRun, echo_to: Any | None):
        super().__init__()
        self._run = run
        self._echo = echo_to
        self._lock = threading.Lock()
        self._partials: dict[str, str] = {}

    def writable(self) -> bool:  # pragma: no cover - io protocol
        return True

    def write(self, s: str) -> int:
        label = current_task_label() or "main"
        with self._lock:
            buf = self._partials.get(label, "") + s
            while "\n" in buf:
                line, buf = buf.split("\n", 1)
                # Directly into the run's trace (not the ambient stack):
                # output must be captured even inside trace.muted() blocks.
                self._run.trace.emit(PRINT, task=label, line=line)
            self._partials[label] = buf
        if self._echo is not None:
            self._echo.write(s)
        return len(s)

    def flush(self) -> None:
        if self._echo is not None:
            self._echo.flush()

    def finish(self) -> None:
        """Commit any unterminated partial lines."""
        with self._lock:
            for label, buf in self._partials.items():
                if buf:
                    self._run.trace.emit(PRINT, task=label, line=buf)
            self._partials.clear()


class OutputRecorder:
    """Context manager that records one run: stdout lines and trace events.

    Replaces ``sys.stdout`` with the attributing router *and* installs the
    run's trace as the ambient recorder, so the runtimes' substrate events
    interleave with the prints in a single sequenced stream.
    """

    def __init__(self, *, echo: bool = False):
        self.run = CapturedRun()
        self._echo = echo
        self._saved: Any = None
        self._stream: _RouterStream | None = None

    def __enter__(self) -> "OutputRecorder":
        self._saved = sys.stdout
        self._stream = _RouterStream(self.run, self._saved if self._echo else None)
        sys.stdout = self._stream
        push_recorder(self.run.trace)
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._stream is not None
        pop_recorder(self.run.trace)
        self._stream.finish()
        sys.stdout = self._saved


def capture_run(
    fn: Callable[..., Any],
    *args: Any,
    echo: bool = False,
    **kwargs: Any,
) -> CapturedRun:
    """Run ``fn(*args, **kwargs)`` under an :class:`OutputRecorder`.

    The callable's return value lands in ``run.result``; the span is taken
    from the result's ``span`` attribute when it has one (e.g. a
    :class:`~repro.smp.runtime.TeamResult` or an MP world result), falling
    back to the trace's own ``task.end`` virtual times.
    """
    rec = OutputRecorder(echo=echo)
    t0 = time.perf_counter()
    with rec:
        result = fn(*args, **kwargs)
    rec.run.wall = time.perf_counter() - t0
    rec.run.result = result
    span = getattr(result, "span", None)
    if isinstance(span, (int, float)):
        rec.run.span = float(span)
    else:
        derived = span_of(rec.run.trace)
        if derived > 0.0:
            rec.run.span = derived
    return rec.run


def say(*parts: Any, sep: str = " ", end: str = "\n") -> None:
    """``print`` twin used by the patternlets (kept for greppability)."""
    print(*parts, sep=sep, end=end)
