"""Shape predicates over captured output.

The paper's figures make *qualitative* claims — "the before-and-after
behaviors of the threads are interleaved", "no worker process can perform
its 'after' behavior until all processes have completed their 'before'
behaviors", "thread 0 is performing iterations 0-3".  These helpers turn
each claim into a checkable predicate over a :class:`~repro.core.capture.CapturedRun`.
"""

from __future__ import annotations

import re
from typing import Callable, Iterable, Sequence

from repro.core.capture import CapturedRun

__all__ = [
    "phase_positions",
    "phases_separated",
    "phases_interleaved",
    "tasks_interleaved",
    "iterations_by_task",
    "parse_hello_lines",
]


def phase_positions(
    run: CapturedRun, phase_of: Callable[[str], str | None]
) -> dict[str, list[int]]:
    """Indices of each phase's lines, per ``phase_of(line)`` (None = ignore)."""
    out: dict[str, list[int]] = {}
    for i, line in enumerate(run.lines):
        phase = phase_of(line)
        if phase is not None:
            out.setdefault(phase, []).append(i)
    return out


def phases_separated(run: CapturedRun, before: str, after: str) -> bool:
    """True iff every ``before`` line precedes every ``after`` line.

    This is the barrier figures' claim (Figure 9 / Figure 12): with the
    barrier uncommented, the last BEFORE line comes before the first AFTER
    line.
    """
    pos = phase_positions(
        run,
        lambda ln: "before" if before in ln else ("after" if after in ln else None),
    )
    if not pos.get("before") or not pos.get("after"):
        return False
    return max(pos["before"]) < min(pos["after"])


def phases_interleaved(run: CapturedRun, before: str, after: str) -> bool:
    """True iff some ``after`` line precedes some ``before`` line (Figure 8)."""
    pos = phase_positions(
        run,
        lambda ln: "before" if before in ln else ("after" if after in ln else None),
    )
    if not pos.get("before") or not pos.get("after"):
        return False
    return min(pos["after"]) < max(pos["before"])


def tasks_interleaved(run: CapturedRun, tasks: Iterable[str] | None = None) -> bool:
    """True iff the per-task output blocks overlap rather than running
    back-to-back — the figures' visual signature of concurrency."""
    labels = list(tasks) if tasks is not None else run.tasks
    if len(labels) < 2:
        return False
    first: dict[str, int] = {}
    last: dict[str, int] = {}
    for i, (label, _) in enumerate(run.records):
        if label in labels:
            first.setdefault(label, i)
            last[label] = i
    spans = sorted((first[t], last[t]) for t in first)
    return any(spans[k][1] > spans[k + 1][0] for k in range(len(spans) - 1))


_ITER_RE = re.compile(
    r"(?:Thread|Process)\s+(\d+)\s+performed iteration\s+(\d+)"
)


def iterations_by_task(run: CapturedRun) -> dict[int, list[int]]:
    """Parse the parallel-loop figures' lines into task -> iteration lists.

    Matches both the OpenMP wording ("Thread 0 performed iteration 3") and
    the MPI wording ("Process 0 performed iteration 3").
    """
    out: dict[int, list[int]] = {}
    for line in run.lines:
        m = _ITER_RE.search(line)
        if m:
            out.setdefault(int(m.group(1)), []).append(int(m.group(2)))
    return out


_HELLO_RE = re.compile(
    r"Hello from (?:thread|process)\s+(\d+)\s+of\s+(\d+)(?:\s+on\s+(\S+))?"
)


def parse_hello_lines(run: CapturedRun) -> list[tuple[int, int, str | None]]:
    """Parse SPMD hello lines into ``(id, count, hostname_or_None)`` tuples."""
    out: list[tuple[int, int, str | None]] = []
    for line in run.lines:
        m = _HELLO_RE.search(line)
        if m:
            out.append((int(m.group(1)), int(m.group(2)), m.group(3)))
    return out


def contiguous_blocks(indices: Sequence[int]) -> bool:
    """True iff ``indices`` is a run of consecutive integers (equal-chunk map)."""
    return all(b - a == 1 for a, b in zip(indices, indices[1:]))
