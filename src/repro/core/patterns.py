"""The layered parallel-design-pattern catalog of Section II.B.

The paper grounds patternlets in two cataloguing efforts — "Parallel
Programming Patterns" (Johnson, Chen, Tasharofi & Kjolstad, UIUC; 62
patterns) and "Our Pattern Language" (Keutzer & Mattson, Berkeley/Intel;
56 patterns) — both organised into hierarchical layers: high-level
patterns describing software architectures, middle layers describing
algorithmic strategies, and lower layers for implementing algorithmic
steps.  The paper's own examples: *N-body Problems* and *Monte Carlo
Simulations* at the top, *Data Decomposition* and *Task Decomposition* in
the middle, *Barrier*, *Reduction* and *Message Passing* at the bottom.

This module encodes that taxonomy.  Each :class:`Pattern` carries its
layer, its spelling in each catalogue (where the two differ), and its
relationships; the patternlet registry validates every patternlet's
``patterns`` tuple against this catalog, so the mapping "patternlet →
pattern(s) taught" stays coherent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RegistryError

__all__ = [
    "LAYERS",
    "Pattern",
    "CATALOG",
    "get_pattern",
    "patterns_by_layer",
    "validate_pattern_names",
]

#: Catalogue layers, highest (application architecture) to lowest
#: (execution mechanics), following OPL's structure.
LAYERS = (
    "application",  # whole-problem architectures (N-body, Monte Carlo, ...)
    "algorithm-strategy",  # how to decompose and organise the computation
    "implementation-strategy",  # program structures realising a strategy
    "execution",  # mechanics: coordination and data-movement primitives
)


@dataclass(frozen=True)
class Pattern:
    """One named parallel design pattern."""

    name: str
    layer: str
    description: str
    uiuc_name: str | None = None  # spelling in the UIUC catalogue, if distinct
    opl_name: str | None = None  # spelling in OPL, if distinct
    related: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.layer not in LAYERS:
            raise RegistryError(f"pattern {self.name!r}: unknown layer {self.layer!r}")


def _p(*args: object, **kw: object) -> Pattern:
    return Pattern(*args, **kw)  # type: ignore[arg-type]


CATALOG: dict[str, Pattern] = {
    p.name: p
    for p in (
        # -- application layer -------------------------------------------------
        _p(
            "N-body Problems",
            "application",
            "Pairwise-interaction simulations; the paper's example of a "
            "high-level pattern.",
            related=("Data Decomposition", "Reduction"),
        ),
        _p(
            "Monte Carlo Simulation",
            "application",
            "Estimate by aggregating many independent random trials.",
            opl_name="Monte Carlo Methods",
            related=("SPMD", "Reduction", "Parallel Loop"),
        ),
        _p(
            "Pipeline",
            "application",
            "Stream data through a chain of concurrent stages.",
            related=("Message Passing", "Task Decomposition"),
        ),
        _p(
            "MapReduce",
            "application",
            "Map a function over records, reduce per key; the paper's 'big "
            "data' framing for distributed memory.",
            related=("Parallel Loop", "Reduction", "Scatter", "Gather"),
        ),
        # -- algorithm-strategy layer -------------------------------------------
        _p(
            "Data Decomposition",
            "algorithm-strategy",
            "Partition the data; each task computes on its share.",
            opl_name="Data Parallelism",
            related=("Parallel Loop", "Scatter", "Geometric Decomposition"),
        ),
        _p(
            "Task Decomposition",
            "algorithm-strategy",
            "Partition the work into distinct concurrent activities.",
            opl_name="Task Parallelism",
            related=("Fork-Join", "Master-Worker"),
        ),
        _p(
            "Geometric Decomposition",
            "algorithm-strategy",
            "Split a spatial domain into chunks with boundary exchange.",
            related=("Data Decomposition", "Message Passing"),
        ),
        _p(
            "Divide and Conquer",
            "algorithm-strategy",
            "Recursively split, solve, and merge (parallel merge sort).",
            related=("Fork-Join",),
        ),
        _p(
            "Embarrassingly Parallel",
            "algorithm-strategy",
            "Independent work items with no interaction until a final "
            "combine; the CS2 course's entry point.",
            uiuc_name="Independent Tasks",
            related=("Parallel Loop", "Reduction"),
        ),
        # -- implementation-strategy layer -----------------------------------------
        _p(
            "SPMD",
            "implementation-strategy",
            "Single Program, Multiple Data: instances of one program "
            "distinguish themselves by id (Section III.A).",
            opl_name="Single-Program Multiple-Data",
            related=("Parallel Loop", "Message Passing"),
        ),
        _p(
            "Fork-Join",
            "implementation-strategy",
            "Fork concurrent tasks, then join them all before proceeding.",
            related=("Parallel Loop", "Task Decomposition"),
        ),
        _p(
            "Parallel Loop",
            "implementation-strategy",
            "Divide independent loop iterations among tasks (Section III.C).",
            opl_name="Loop Parallelism",
            related=("Data Decomposition", "SPMD"),
        ),
        _p(
            "Master-Worker",
            "implementation-strategy",
            "One task coordinates; the rest execute work it hands out.",
            uiuc_name="Master/Worker",
            opl_name="Master-Worker",
            related=("Task Decomposition", "Message Passing"),
        ),
        _p(
            "Loop Schedule",
            "implementation-strategy",
            "Policy assigning loop iterations to tasks: equal chunks, "
            "cyclic, dynamic, guided ('different chunk sizes or scheduling "
            "algorithms', Section III.E).",
            related=("Parallel Loop",),
        ),
        # -- execution layer ----------------------------------------------------------
        _p(
            "Barrier",
            "execution",
            "No task proceeds past the barrier until all have arrived "
            "(Section III.B).",
            related=("Collective Communication",),
        ),
        _p(
            "Reduction",
            "execution",
            "Combine per-task partial results in O(lg t) tree time "
            "(Section III.D, Figure 19).",
            opl_name="Collective Reduction",
            related=("Collective Communication", "Parallel Loop"),
        ),
        _p(
            "Mutual Exclusion",
            "execution",
            "At most one task in a critical section at a time; atomic vs "
            "critical cost trade-off (Figures 29-30).",
            uiuc_name="Critical Section",
            related=("Shared Data",),
        ),
        _p(
            "Critical Section",
            "execution",
            "The guarded code region itself; the named form of mutual "
            "exclusion OpenMP exposes as a directive.",
            related=("Mutual Exclusion",),
        ),
        _p(
            "Atomic Update",
            "execution",
            "Hardware-assisted single-operation mutual exclusion; cheaper "
            "but restricted to simple updates (Figure 30).",
            related=("Mutual Exclusion",),
        ),
        _p(
            "Message Passing",
            "execution",
            "Tasks with private memories communicate by send/receive.",
            related=("Collective Communication", "SPMD"),
        ),
        _p(
            "Collective Communication",
            "execution",
            "All tasks of a group participate in one structured exchange.",
            related=("Broadcast", "Scatter", "Gather", "Reduction", "Barrier"),
        ),
        _p(
            "Broadcast",
            "execution",
            "One task's value is delivered to every task.",
            related=("Collective Communication",),
        ),
        _p(
            "Scatter",
            "execution",
            "Distinct slices of one task's data are dealt to each task.",
            related=("Collective Communication", "Data Decomposition"),
        ),
        _p(
            "Gather",
            "execution",
            "Per-task data is collected, rank-ordered, at one task "
            "(Section III.E, Figures 25-28).",
            related=("Collective Communication",),
        ),
        _p(
            "Shared Data",
            "execution",
            "State accessible to multiple tasks; the source of races when "
            "updates are unsynchronised (Figure 22).",
            uiuc_name="Shared Data",
            related=("Mutual Exclusion", "Private Data"),
        ),
        _p(
            "Private Data",
            "execution",
            "Per-task storage shielding tasks from each other's updates; "
            "OpenMP's private clause.",
            related=("Shared Data",),
        ),
        _p(
            "Synchronisation",
            "execution",
            "Ordering constraints between tasks: condition variables, "
            "semaphores, ordered sections.",
            related=("Barrier", "Mutual Exclusion"),
        ),
    )
}


def get_pattern(name: str) -> Pattern:
    """Look up a pattern by its canonical name."""
    try:
        return CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(CATALOG))
        raise RegistryError(f"unknown pattern {name!r}; catalog has: {known}") from None


def patterns_by_layer(layer: str) -> list[Pattern]:
    """All catalogued patterns at one layer, sorted by name."""
    if layer not in LAYERS:
        raise RegistryError(f"unknown layer {layer!r} (layers: {LAYERS})")
    return sorted(
        (p for p in CATALOG.values() if p.layer == layer), key=lambda p: p.name
    )


def validate_pattern_names(names: tuple[str, ...]) -> None:
    """Raise if any name is absent from the catalog (registry hook)."""
    for name in names:
        get_pattern(name)
