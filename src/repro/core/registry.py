"""The patternlet registry: metadata, lookup, and the run harness.

A *patternlet* is "a minimalist, scalable, syntactically correct program
designed to introduce students to a particular parallel design pattern".
Here each is a Python module under :mod:`repro.patternlets` whose ``main``
takes a :class:`RunConfig` and prints what the paper's C version prints.

The registry records, per patternlet:

- which backend it belongs to (``openmp`` / ``mpi`` / ``pthreads`` /
  ``hybrid``) — the paper's 17/16/9/2 inventory;
- which design pattern(s) it teaches (names from
  :mod:`repro.core.patterns`);
- which paper figures it reproduces;
- its comment/uncomment :class:`~repro.core.toggles.Toggle` sites;
- the student exercise from its header comment.

:func:`run_patternlet` is the single entry point used by the CLI, the
tests, and the figure benches: it runs the patternlet under a chosen
executor mode / seed / task count / toggle state and returns the captured,
task-attributed output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.core.capture import CapturedRun, capture_run
from repro.core.toggles import Toggle, ToggleSet
from repro.errors import RegistryError

__all__ = [
    "BACKENDS",
    "RunConfig",
    "Patternlet",
    "register",
    "get_patternlet",
    "all_patternlets",
    "inventory",
    "run_patternlet",
    "set_run_interceptor",
]

#: The paper's four backend families.
BACKENDS = ("openmp", "mpi", "pthreads", "hybrid")


@dataclass
class RunConfig:
    """Everything a patternlet's ``main`` needs to run once.

    ``tasks`` is the thread/process count (the ``./barrier 4`` or
    ``mpirun -np 4`` argument); ``toggles`` the comment/uncomment state;
    ``mode``/``seed``/``policy`` select and parameterise the executor;
    ``topology`` the communicator algorithm set for MPI worlds
    (``flat``/``binomial``/``ring``/``hierarchical``); ``extra`` carries
    patternlet-specific knobs (array sizes, chunk sizes, a ``network``
    profile name or model).
    """

    tasks: int
    toggles: ToggleSet
    mode: str = "lockstep"
    seed: int = 0
    policy: str = "random"
    topology: str | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    def smp_runtime(self, **kw: Any):
        """A fresh SMP runtime honouring this config."""
        from repro.smp.runtime import SmpRuntime

        kw.setdefault("num_threads", self.tasks)
        kw.setdefault("mode", self.mode)
        kw.setdefault("seed", self.seed)
        kw.setdefault("policy", self.policy)
        return SmpRuntime(**kw)

    def mp_runtime(self, **kw: Any):
        """A fresh MP runtime honouring this config."""
        from repro.mp.runtime import MpRuntime

        kw.setdefault("mode", self.mode)
        kw.setdefault("seed", self.seed)
        kw.setdefault("policy", self.policy)
        kw.setdefault("topology", self.topology)
        if "network" in self.extra:
            kw.setdefault("network", self.extra["network"])
        return MpRuntime(**kw)

    def mpirun(self, main: Callable[..., Any], *args: Any, **kw: Any):
        """Launch ``main`` on ``self.tasks`` ranks with this config's runtime."""
        runtime_kw = {
            k: kw.pop(k)
            for k in ("costs", "cluster", "network", "topology", "deadlock_timeout")
            if k in kw
        }
        return self.mp_runtime(**runtime_kw).run(self.tasks, main, *args, **kw)


@dataclass(frozen=True)
class Patternlet:
    """Registry entry for one patternlet."""

    name: str  # e.g. "openmp.spmd"
    backend: str  # one of BACKENDS
    summary: str  # one-line description
    patterns: tuple[str, ...]  # design patterns taught
    main: Callable[[RunConfig], Any]
    figures: tuple[str, ...] = ()  # paper figures reproduced
    toggles: tuple[Toggle, ...] = ()
    exercise: str = ""  # the header-comment student exercise
    default_tasks: int = 4
    source: str = ""  # module path, filled by register()

    def toggle_set(self, overrides: Mapping[str, bool] | None = None) -> ToggleSet:
        """Resolve this patternlet's toggles with the given overrides."""
        return ToggleSet(self.toggles, overrides)


_REGISTRY: dict[str, Patternlet] = {}


def register(patternlet: Patternlet) -> Patternlet:
    """Add a patternlet to the global registry (module import side effect)."""
    if patternlet.backend not in BACKENDS:
        raise RegistryError(
            f"{patternlet.name}: unknown backend {patternlet.backend!r}"
        )
    if patternlet.name in _REGISTRY:
        raise RegistryError(f"duplicate patternlet {patternlet.name!r}")
    if not patternlet.patterns:
        raise RegistryError(f"{patternlet.name}: must teach at least one pattern")
    from repro.core.patterns import validate_pattern_names

    validate_pattern_names(patternlet.patterns)
    _REGISTRY[patternlet.name] = patternlet
    return patternlet


def _ensure_loaded() -> None:
    # Importing the collection package registers every patternlet.
    import repro.patternlets  # noqa: F401


def get_patternlet(name: str) -> Patternlet:
    """Look up a patternlet by its ``backend.name`` id.

    ``backend/name`` (the paper's directory-style spelling, e.g.
    ``openmp/parallelLoopDynamic``) is accepted as an alias.
    """
    _ensure_loaded()
    try:
        return _REGISTRY[name.replace("/", ".")]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise RegistryError(f"unknown patternlet {name!r}; known: {known}") from None


def all_patternlets(backend: str | None = None) -> list[Patternlet]:
    """Every registered patternlet, optionally filtered by backend."""
    _ensure_loaded()
    items = sorted(_REGISTRY.values(), key=lambda p: p.name)
    if backend is None:
        return items
    if backend not in BACKENDS:
        raise RegistryError(f"unknown backend {backend!r}")
    return [p for p in items if p.backend == backend]


def inventory() -> dict[str, int]:
    """Patternlet counts per backend — the paper's '44 = 16+17+9+2' table."""
    _ensure_loaded()
    counts = {b: 0 for b in BACKENDS}
    for p in _REGISTRY.values():
        counts[p.backend] += 1
    counts["total"] = sum(counts[b] for b in BACKENDS)
    return counts


#: When set, every non-echo :func:`run_patternlet` call is routed through
#: this callable as ``interceptor(patternlet, cfg, execute)`` where
#: ``execute()`` performs (and returns) the real captured run.  The batch
#: layer's content-addressed run cache installs itself here: it can serve a
#: stored :class:`CapturedRun` without calling ``execute`` at all, or call
#: it and persist the outcome.  Process-wide, like the registry itself.
RunInterceptor = Callable[[Patternlet, RunConfig, Callable[[], CapturedRun]], CapturedRun]

_RUN_INTERCEPTOR: RunInterceptor | None = None


def set_run_interceptor(fn: RunInterceptor | None) -> RunInterceptor | None:
    """Install ``fn`` as the run interceptor (``None`` clears it).

    Returns the previously installed interceptor so callers can nest:
    save the return value, restore it on exit.
    """
    global _RUN_INTERCEPTOR
    prev = _RUN_INTERCEPTOR
    _RUN_INTERCEPTOR = fn
    return prev


def run_patternlet(
    name: str,
    *,
    tasks: int | None = None,
    toggles: Mapping[str, bool] | None = None,
    mode: str = "lockstep",
    seed: int = 0,
    policy: str = "random",
    topology: str | None = None,
    echo: bool = False,
    **extra: Any,
) -> CapturedRun:
    """Run one patternlet and capture its attributed output.

    Defaults to the lockstep executor so classroom runs and tests are
    replayable; pass ``mode="thread"`` for genuine OS-thread
    nondeterminism (the paper's native behaviour).

    ``topology`` picks the communicator algorithm set for MPI worlds;
    ``None`` resolves the process default (``REPRO_TOPOLOGY`` env hatch,
    else binomial) so the chosen topology is always recorded in the run's
    metadata.
    """
    p = get_patternlet(name)
    if tasks is not None and tasks <= 0:
        raise RegistryError(f"tasks must be positive, got {tasks}")
    if topology is None:
        from repro.mp.communicators import default_topology

        topology = default_topology()
    cfg = RunConfig(
        tasks=tasks if tasks is not None else p.default_tasks,
        toggles=p.toggle_set(toggles),
        mode=mode,
        seed=seed,
        policy=policy,
        topology=topology,
        extra=dict(extra),
    )

    def _execute() -> CapturedRun:
        run = capture_run(p.main, cfg, echo=echo)
        run.meta.update(
            patternlet=p.name,
            backend=p.backend,
            tasks=cfg.tasks,
            toggles=cfg.toggles.as_dict(),
            mode=mode,
            seed=seed,
            topology=cfg.topology,
        )
        return run

    interceptor = _RUN_INTERCEPTOR
    if interceptor is not None and not echo:
        # echo streams to the real stdout as the run happens; a served
        # cache record has no live stream, so echoing runs stay direct.
        return interceptor(p, cfg, _execute)
    return _execute()
