"""Patternlet framework: capture, analysis, registry, toggles, catalog.

This package is the paper's primary contribution in library form:

- :mod:`repro.core.capture` — run a program while recording every printed
  line with the task (thread/rank) that produced it, in global arrival
  order, so the figures' interleaved outputs become assertable data.
- :mod:`repro.core.analysis` — predicates over captured output
  (interleaving, barrier ordering, iteration maps).
- :mod:`repro.core.patterns` — the layered parallel-design-pattern catalog
  of Section II.B (UIUC and Berkeley/Intel OPL namings).
- :mod:`repro.core.toggles` / :mod:`repro.core.registry` — patternlet
  metadata: the comment/uncomment toggles, the patterns each patternlet
  teaches, the paper figures it reproduces, and the student exercise.
"""

from repro.core.capture import CapturedRun, OutputRecorder, capture_run, say
from repro.core.registry import (
    Patternlet,
    all_patternlets,
    get_patternlet,
    inventory,
    register,
    run_patternlet,
)
from repro.core.toggles import Toggle, ToggleSet

__all__ = [
    "CapturedRun",
    "OutputRecorder",
    "capture_run",
    "say",
    "Patternlet",
    "Toggle",
    "ToggleSet",
    "register",
    "get_patternlet",
    "all_patternlets",
    "inventory",
    "run_patternlet",
]
