"""Engine microbenchmarks and baseline comparison.

Four metric families, chosen to cover every layer the execution engine
optimises:

``msg_throughput_immutable`` / ``msg_throughput_mutable`` /
``msg_throughput_cow`` / ``msg_throughput_buffer``
    One-directional rank0→rank1 message stream under the lockstep
    executor, messages per second — one metric per transport lane
    (:func:`repro.mp.serialize.pack_packet`'s decision ladder).  The
    immutable variant sends an ``int`` (the by-reference fast path) and
    deliberately runs at the default ``batch=1``, so it guards the
    classroom token-handoff path end to end.  The mutable variant sends
    a small flat ``list`` (the ``cow-flat`` shallow-snapshot lane),
    ``cow`` a nested 8×8 list (the full freeze walk + lazy proxies, at a
    size where a pickle round-trip used to hurt), and ``buffer`` a
    16 KiB ``bytearray`` (the buffer-protocol snapshot lane); these
    three run under batched arbitration
    (``batch=64``) — the configuration a throughput-bound harness would
    actually use — which is what moved the mutable gate from 90k to
    450k+ msgs/s.

``switch_rate`` / ``switch_rate_np64``
    Lockstep task switches per second: spinners on bare ``checkpoint()``
    calls, measured over the executor's own step counter.  This isolates
    the switch-point primitive from transport costs.  ``switch_rate``
    runs under batched arbitration (``batch=32``), where a quantum'd
    checkpoint is a few attribute reads instead of an OS handoff — the
    1M+ switches/s headline.  The ``np64`` variant runs 64 spinners at
    the default ``batch=1`` and is gated separately: it guards both the
    un-batched handoff floor and the O(log np) ready index — a
    per-switch table scan (or a batching regression that leaks into the
    default path) craters exactly this metric.

``np1024_spmd_wall_s``
    Wall seconds for one warm np=1024 spmd world (no communication):
    the world setup + serial rank chain cost at the executor's scaling
    ceiling.  Reported, not gated — CI asserts completion via the
    np=1024 smoke test instead, since absolute wall clock at this scale
    is machine noise on shared runners.

``run_setup_ms``
    Fixed per-run overhead: wall milliseconds per empty 4-rank lockstep
    world, warm rank pool.  This is the thread-spawn amortisation the
    rank pool (:mod:`repro.sched.pool`) buys; it is what bounds batch
    throughput on cache misses.

``bcast_ms_p{2,4,8,32}``
    Wall milliseconds per 64-element broadcast at 2/4/8/32 ranks — the
    collective-latency-vs-rank-count curve; exercises the pack-once
    forwarding path (p32 adds the large-np point where mailbox matching
    and switch selection costs would dominate if they were O(np)).
    Each point is the *fastest registered communicator topology* at that
    rank count (pin one with ``bench --topology``), so the metric tracks
    the engine's best collective path as topologies evolve.

``allreduce_ms_p64``
    Wall milliseconds per scalar allreduce at 64 ranks, again the
    fastest topology — the many-rank combining path (reduction + fan-out
    or ring pipeline) that the topology registry is supposed to keep
    cheap.  Gated (see below).

``figure_suite_np64_wall_s``
    Wall seconds for the scaling demo: the three classroom-representative
    patternlets (spmd, broadcast, reduction) each run once at np=64 —
    the "crank the task count" mechanic the paper teaches with.

``figure_suite_wall_s``
    Wall seconds for one pass of the figure self-check
    (:func:`repro.core.selfcheck.run_selfcheck`, cache disabled) — the
    end-to-end number a classroom actually feels on first run.

``batch_throughput_runs_s`` / ``cache_hit_rate`` / ``figure_suite_batch_wall_s``
    The batch layer (:mod:`repro.batch`): a cold pass over the
    deterministic figure-suite spec grid into a private cache, then warm
    passes served entirely from it.  ``batch_throughput_runs_s`` is the
    warm (cache-served) rate, ``cache_hit_rate`` the warm pass's hit
    fraction (1.0 when the cache is sound), and
    ``figure_suite_batch_wall_s`` the cold batch's wall clock.

``fleet_sweep_runs_s`` / ``fleet_speedup_vs_pool``
    The sharded fleet (:mod:`repro.batch.fleet`): the same figure-suite
    grid through persistent worker processes coordinated by the
    file-based job messenger, interleaved A/B against the in-process
    path over one shared warm cache.  ``fleet_sweep_runs_s`` (gated) is
    the fleet's best warm throughput — it prices the whole messenger
    (job files, claims, status heartbeats, result merge) on top of
    cache-served runs, so a protocol regression (chattier polling, a
    slower claim path) lands squarely on it.  ``fleet_speedup_vs_pool``
    is the A/B ratio, *reported only*: above 1 on multi-core hosts,
    below 1 on single-core CI where the fleet's processes time-slice one
    CPU — gating a machine property would make the check runner-shaped.

``serve_p50_ms`` / ``serve_p99_ms`` / ``served_runs_s`` / ``coalesce_hit_rate``
    The service daemon (:mod:`repro.serve`): a 300-request burst of one
    identical Fig. 21/22 grid cell from 8 keep-alive client threads
    against a live warm daemon, interleaved A/B with direct in-process
    cache-served runs (``serve_direct_ms``, reported).  The percentiles
    are client-observed request latencies (gated lower-is-better:
    best-of-rounds minima, same stability argument as the collective
    latencies), ``served_runs_s`` the burst throughput (gated), and
    ``coalesce_hit_rate`` the fraction of burst requests that cost no
    execution — 1.0 exactly when single-flight coalescing plus the
    response memo are sound, which the serve tests pin.

``selfcheck_cold_wall_s`` / ``selfcheck_warm_wall_s`` / ``selfcheck_warm_speedup``
    Interleaved A/B over the full self-check: alternating
    cache-disabled (A) and cache-served (B) passes, best-of-each, so
    both arms see the same machine state.  The speedup is the number the
    tentpole promises (≥ 2x warm).

``metrics_overhead_pct``
    How much of the un-instrumented message throughput the live metrics
    probes (:mod:`repro.obs.live`) cost, interleaved A/B.  Gated
    *absolutely* against :data:`METRICS_OVERHEAD_BUDGET_PCT` (6%)
    regardless of the baseline file, so instrumentation can never
    silently eat the hot path.  The probe hooks are bound C appends
    with deferred aggregation, which is what holds the measured cost in
    the documented ~3-5% envelope.

``telemetry_overhead_pct``
    What the fleet telemetry plane (worker journals + span propagation,
    :mod:`repro.obs.telemetry`) costs on warm fleet sweeps, interleaved
    A/B between a journalling fleet and a plain one over the same warm
    cache — the same estimator as ``metrics_overhead_pct``.  Gated
    *absolutely* against :data:`TELEMETRY_OVERHEAD_BUDGET_PCT` (5%):
    journals are a handful of buffered JSONL appends per cell, which
    must stay invisible next to the messenger's own file traffic.

All engine benchmarks run under ``muted()`` so they measure the engine,
not the trace recorder; the trace fast path is itself covered because
muting is exactly the one-attribute-read guard the emit sites take.

Comparison policy: throughput metrics (:data:`HIGHER_IS_BETTER`) fail a
check when they drop more than ``tolerance`` (default 30%) below the
baseline; the fastest-topology collective latencies
(:data:`LOWER_IS_BETTER`: ``bcast_ms_p32``, ``allreduce_ms_p64``) fail
when they *rise* more than ``tolerance`` above it — these are best-of
minima over several topologies, which bounds their noise enough to gate.
A gated metric *absent from the baseline* is skipped with a warning (new
metrics must not break older baselines).  The remaining latency/wall
metrics are *reported* but never fail a check — shared CI machines make
absolute milliseconds too noisy to gate on, while a 30% throughput
collapse on the same machine within one run is a real regression.

A failing gate is re-measured before the verdict: the CLI calls
:func:`remeasure` on just the failing metrics (best of 10 fresh
samples) and compares again.  This shields the check from hosts whose
effective CPU speed swings in multi-minute phases — a slow phase can
depress every sample of a three-repetition estimate — without
weakening the gate, since no amount of resampling speeds up a truly
slower engine.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Any, Callable, Mapping

from repro.trace import muted

__all__ = [
    "HIGHER_IS_BETTER",
    "LOWER_IS_BETTER",
    "METRICS_OVERHEAD_BUDGET_PCT",
    "SCHEMA",
    "TELEMETRY_OVERHEAD_BUDGET_PCT",
    "bench_allreduce_latency",
    "bench_batch_suite",
    "bench_bcast_latency",
    "bench_figure_suite",
    "bench_fleet_sweep",
    "bench_large_np_suite",
    "bench_metrics_overhead",
    "bench_msg_throughput",
    "bench_np1024_spmd",
    "bench_run_setup",
    "bench_selfcheck_ab",
    "bench_serve",
    "bench_switch_rate",
    "bench_telemetry_overhead",
    "compare",
    "format_table",
    "load_report",
    "make_report",
    "remeasure",
    "run_benchmarks",
    "save_report",
]

SCHEMA = 1

#: Metrics where bigger numbers are better; only these can fail a check.
HIGHER_IS_BETTER = (
    "msg_throughput_immutable",
    "msg_throughput_mutable",
    "msg_throughput_cow",
    "msg_throughput_buffer",
    "switch_rate",
    "switch_rate_np64",
    "batch_throughput_runs_s",
    "fleet_sweep_runs_s",
    "served_runs_s",
)

#: Latency metrics where smaller numbers are better; these fail a check
#: when they rise more than ``tolerance`` above the baseline.  Only
#: best-of-several minima qualify (the fastest-topology collectives, the
#: serve daemon's best-round percentiles): a min over several
#: independently-run samples is stable enough to gate, where a single
#: raw latency is not.
LOWER_IS_BETTER = (
    "bcast_ms_p32",
    "allreduce_ms_p64",
    "serve_p50_ms",
    "serve_p99_ms",
)

#: Absolute ceiling (percent) for live-probe hot-path overhead.  Fixed,
#: not tolerance-derived: the documented probe cost is ~3-5%, so 6% is
#: one honest notch of headroom, and a probe redesign that regresses past
#: it fails every ``--check`` no matter what baseline file is used.
METRICS_OVERHEAD_BUDGET_PCT = 6.0

#: Absolute ceiling (percent) for the fleet telemetry plane's overhead
#: on warm sweeps.  Fixed like the probe budget: journalling is a few
#: buffered JSONL appends per cell, so a redesign that costs more than
#: 5% of fleet throughput fails every ``--check`` on any baseline.
TELEMETRY_OVERHEAD_BUDGET_PCT = 5.0


def bench_msg_throughput(payload: Any = 12345, *, n: int = 3000, batch: int = 1) -> float:
    """Messages/second for a rank0→rank1 stream of ``payload`` copies.

    ``batch`` selects the lockstep arbitration quantum (see
    :class:`~repro.sched.lockstep.LockstepExecutor`): 1 measures the
    classroom default, >1 the amortised-handoff configuration.

    The clock runs *inside* the world, from the post-barrier start of the
    stream to the receiver draining its last message.  World setup and
    teardown (pool lease, executor construction) are ``run_setup_ms``'s
    job; folding them in here made the measured rate depend on ``n`` —
    at current transport speeds setup was ~25% of a ``--quick`` run —
    so quick and full runs disagreed about the same engine.
    """
    from repro.mp.runtime import MpRuntime

    start = [0.0]

    def main(comm):
        comm.barrier()
        if comm.rank == 0:
            start[0] = time.perf_counter()
            for _ in range(n):
                comm.send(payload, 1, tag=0)
            return None
        for _ in range(n):
            comm.recv(source=0, tag=0)
        # Draining message n proves rank 0 already stamped the start.
        return time.perf_counter() - start[0]

    rt = MpRuntime(mode="lockstep", seed=0, batch=batch)
    with muted():
        dt = rt.run(2, main).results[1]
    return n / dt


def bench_switch_rate(*, tasks: int = 4, k: int = 20000, batch: int = 1) -> float:
    """Lockstep task switches/second: ``tasks`` spinners × ``k`` checkpoints."""
    from repro.sched.lockstep import LockstepExecutor

    ex = LockstepExecutor(batch=batch)

    def body():
        for _ in range(k):
            ex.checkpoint()

    with muted():
        t0 = time.perf_counter()
        ex.run_tasks([body] * tasks, [f"t{i}" for i in range(tasks)])
        dt = time.perf_counter() - t0
    return ex.step_count / dt


def bench_run_setup(*, np: int = 4, runs: int = 100) -> float:
    """Fixed per-run overhead: wall ms per empty ``np``-rank lockstep run.

    Each iteration builds a fresh :class:`~repro.mp.runtime.MpRuntime`
    and runs a no-op world — the setup/teardown a ``patternlet run`` or
    a batch cache miss pays before any patternlet code executes.  One
    warm-up run first, so the measurement sees the steady state a run
    loop actually lives in (rank pool populated, imports warm).
    """
    from repro.mp.runtime import MpRuntime

    def main(comm):
        return None

    with muted():
        MpRuntime(mode="lockstep", seed=0).run(np, main)  # warm the pool
        t0 = time.perf_counter()
        for _ in range(runs):
            MpRuntime(mode="lockstep", seed=0).run(np, main)
        dt = time.perf_counter() - t0
    return dt / runs * 1000


def bench_np1024_spmd(*, np: int = 1024, repeats: int = 3) -> float:
    """Wall seconds for one warm ``np``-rank spmd world (no communication).

    One warm-up run populates the rank pool (its MAX_IDLE is sized to
    park a whole np=1024 team); the best of ``repeats`` is reported —
    world setup can only be slowed by interference, never sped up.
    """
    from repro.mp.runtime import MpRuntime

    def main(comm):
        return comm.rank

    with muted():
        MpRuntime(mode="lockstep", seed=0).run(np, main)  # warm the pool
        best = float("inf")
        for _ in range(repeats):
            best = min(best, MpRuntime(mode="lockstep", seed=0).run(np, main).wall)
    return best


def bench_large_np_suite(*, np: int = 64) -> float:
    """Wall seconds to run the three classroom patternlets at ``np`` tasks.

    spmd, broadcast and reduction (the "crank the task count" demos) run
    once each at ``np`` under the seeded lockstep scheduler — the
    end-to-end cost of the scaling mechanic the paper's patternlets are
    built around.
    """
    from repro.core.registry import run_patternlet

    t0 = time.perf_counter()
    for name in ("mpi.spmd", "mpi.broadcast", "openmp.reduction"):
        run_patternlet(name, tasks=np, mode="lockstep", seed=0)
    return time.perf_counter() - t0


def bench_bcast_latency(
    p: int, *, iters: int = 50, topology: str | None = None
) -> float:
    """Wall milliseconds per 64-element broadcast across ``p`` ranks.

    ``topology`` pins the communicator algorithm set (``None`` = the
    process default); :func:`run_benchmarks` reports the fastest across
    every registered topology.

    Timed in-world between two barriers (same reasoning as
    :func:`bench_msg_throughput`): folding world setup into ``dt/iters``
    made the per-op latency depend on ``iters``, so quick and full runs
    disagreed about the same collective.
    """
    from repro.mp.runtime import MpRuntime

    start = [0.0]

    def main(comm):
        comm.barrier()
        if comm.rank == 0:
            start[0] = time.perf_counter()
        for _ in range(iters):
            comm.bcast(list(range(64)), root=0)
        comm.barrier()
        if comm.rank == 0:
            return time.perf_counter() - start[0]
        return None

    rt = MpRuntime(mode="lockstep", seed=0, topology=topology)
    with muted():
        dt = rt.run(p, main).results[0]
    return dt / iters * 1000


def bench_allreduce_latency(
    p: int = 64, *, iters: int = 20, topology: str | None = None
) -> float:
    """Wall milliseconds per scalar allreduce across ``p`` ranks.

    In-world timing, like :func:`bench_bcast_latency`.
    """
    from repro.mp.runtime import MpRuntime

    start = [0.0]

    def main(comm):
        comm.barrier()
        if comm.rank == 0:
            start[0] = time.perf_counter()
        for _ in range(iters):
            comm.allreduce(comm.rank)
        comm.barrier()
        if comm.rank == 0:
            return time.perf_counter() - start[0]
        return None

    rt = MpRuntime(mode="lockstep", seed=0, topology=topology)
    with muted():
        dt = rt.run(p, main).results[0]
    return dt / iters * 1000


def bench_figure_suite() -> float:
    """Wall seconds for one full figure self-check pass (cache disabled).

    Cache-off keeps this metric's meaning stable against the committed
    baselines: it is the *compute* cost of the suite.  The cache-served
    cost is :func:`bench_selfcheck_ab`'s warm arm.
    """
    from repro.core.selfcheck import run_selfcheck

    t0 = time.perf_counter()
    run_selfcheck(use_cache=False)
    return time.perf_counter() - t0


def bench_batch_suite(*, quick: bool = False, repeats: int = 3) -> dict[str, float]:
    """Cold + warm batch passes over the figure-suite grid (private cache).

    The cold pass computes every spec into a throwaway cache directory;
    ``repeats`` warm passes then serve it back.  Returns the three batch
    metrics described in the module docstring.  Warm throughput is the
    best of the repeats — a cache read can only be slowed by
    interference, never sped up.
    """
    import shutil
    import tempfile

    from repro.batch import figure_suite_specs, run_specs

    specs = figure_suite_specs(seeds=range(2 if quick else 4))
    tmp = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        cold = run_specs(specs, max_workers=1, use_cache=True, cache_dir=tmp)
        warms = [
            run_specs(specs, max_workers=1, use_cache=True, cache_dir=tmp)
            for _ in range(repeats)
        ]
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    best = max(warms, key=lambda r: r.throughput_runs_s)
    return {
        "batch_throughput_runs_s": round(best.throughput_runs_s, 1),
        "cache_hit_rate": round(min(w.hit_rate for w in warms), 4),
        "figure_suite_batch_wall_s": round(cold.wall_s, 3),
    }


def bench_fleet_sweep(
    *, quick: bool = False, workers: int | None = None, rounds: int = 3
) -> dict[str, float]:
    """Warm fleet sweep vs warm in-process sweep, interleaved A/B.

    A cold fleet pass primes a private cache; each round then runs one
    warm fleet pass (A) and one warm in-process pass (B) over the same
    cache, best-of-each.  ``fleet_sweep_runs_s`` is the fleet arm's best
    warm throughput — cache-served cells plus the full messenger
    overhead — and ``fleet_speedup_vs_pool`` the A/B ratio (above 1 only
    when real cores back the worker processes).  The fleet is private to
    the measurement and torn down afterwards, so the benchmark never
    leaves worker processes behind or perturbs a session fleet.
    """
    import shutil
    import tempfile

    from repro.batch import figure_suite_specs, run_specs
    from repro.batch.fleet import Fleet

    # Always the 5-seed grid, quick or not: below the fleet's
    # amortisation threshold a sweep measures per-job messenger fixed
    # cost, not throughput, so a shrunken quick grid would sample a
    # different quantity than the committed full-mode baseline and the
    # --check gate would compare apples to oranges.  The whole warm A/B
    # is under a second, so quick mode loses nothing by keeping it.
    del quick
    n_workers = max(2, workers or 2)
    # 70 cells ≥ workers × FLEET_AMORTISE_CELLS for the default 2-worker
    # fleet: the grid must sit *past* the amortisation threshold, or the
    # A/B prices per-job messenger fixed cost instead of throughput and
    # fleet_speedup_vs_pool reads ~0.3 on any machine (the
    # tests assert fleet_advisory() fires on the old 4-seed grid).
    specs = figure_suite_specs(seeds=range(5))
    tmp = tempfile.mkdtemp(prefix="repro-bench-fleet-")
    fleet = None
    try:
        fleet = Fleet(n_workers, use_cache=True, cache_dir=tmp)
        fleet.submit(specs, timeout=300.0)  # cold prime
        fleet_tp: list[float] = []
        pool_tp: list[float] = []
        for _ in range(rounds):
            rep = fleet.submit(specs, timeout=300.0)
            fleet_tp.append(rep.throughput_runs_s)
            rep = run_specs(specs, max_workers=1, use_cache=True, cache_dir=tmp)
            pool_tp.append(rep.throughput_runs_s)
    finally:
        if fleet is not None:
            fleet.shutdown()
        shutil.rmtree(tmp, ignore_errors=True)
    best_fleet, best_pool = max(fleet_tp), max(pool_tp)
    return {
        "fleet_sweep_runs_s": round(best_fleet, 1),
        "fleet_speedup_vs_pool": round(best_fleet / best_pool, 2)
        if best_pool > 0
        else 0.0,
    }


def _pct(values: list[float], q: float) -> float:
    """Nearest-rank percentile (deterministic; no interpolation)."""
    ordered = sorted(values)
    rank = max(1, -(-int(q * 100) * len(ordered) // 100))  # ceil(q*n)
    return ordered[min(rank, len(ordered)) - 1]


#: The serve-bench burst spec: one Fig. 21/22 grid cell (mpi.reduction
#: at np=10 is a FIGURE_RUNS entry), identical across every request so
#: the whole burst coalesces/caches onto at most one execution.
_SERVE_SPEC = {"patternlet": "mpi.reduction", "np": 10, "seed": 0}


def _serve_swarm(
    port: int, body: bytes, *, clients: int, requests: int
) -> tuple[list[float], float]:
    """Fire ``requests`` identical POSTs from ``clients`` keep-alive
    connections; returns (per-request latencies in ms, burst wall s)."""
    import http.client
    from concurrent.futures import ThreadPoolExecutor

    def one_client(n: int) -> list[float]:
        lat: list[float] = []
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        try:
            for _ in range(n):
                t0 = time.perf_counter()
                conn.request("POST", "/run", body=body)
                resp = conn.getresponse()
                resp.read()
                lat.append((time.perf_counter() - t0) * 1000.0)
                if resp.status != 200:
                    raise RuntimeError(f"serve bench got HTTP {resp.status}")
        finally:
            conn.close()
        return lat

    shares = [requests // clients + (1 if i < requests % clients else 0)
              for i in range(clients)]
    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients) as pool:
        chunks = list(pool.map(one_client, shares))
    wall = time.perf_counter() - t0
    return [ms for chunk in chunks for ms in chunk], wall


def bench_serve(
    *, quick: bool = False, rounds: int = 3, clients: int = 8,
    requests: int = 300,
) -> dict[str, float]:
    """Concurrent client swarm against a live daemon, warm cache, A/B direct.

    A private daemon (one execution lane, private cache) is primed with
    one request for the burst spec; each round then fires a
    ``requests``-strong burst of *identical* requests from ``clients``
    keep-alive connections (A) and, back to back, the same number of
    direct in-process cache-served runs (B) — so the serving overhead is
    priced against the same machine state that produced the direct
    number.

    ``serve_p50_ms`` / ``serve_p99_ms`` are client-observed request
    latencies (best across rounds — interference only ever inflates a
    latency), ``served_runs_s`` the best burst throughput, and
    ``coalesce_hit_rate`` the fraction of burst requests that did *not*
    cost an execution — exactly 1.0 when coalescing + caching are sound,
    since the daemon was warm.  ``serve_direct_ms`` (reported only) is
    the direct arm's per-run cost, the floor the HTTP hop is measured
    against.  The burst stays at full size in quick mode: the whole A/B
    is a few seconds, and a smaller burst would sample queueing, not
    steady-state serving.
    """
    import shutil
    import tempfile

    from repro.batch.cache import RunCache, caching_runs
    from repro.core.registry import run_patternlet
    from repro.serve import ServeConfig, running

    del quick
    tmp = tempfile.mkdtemp(prefix="repro-bench-serve-")
    body = json.dumps(_SERVE_SPEC).encode()
    p50s: list[float] = []
    p99s: list[float] = []
    rates: list[float] = []
    hit_rates: list[float] = []
    direct_ms: list[float] = []
    try:
        cfg = ServeConfig(workers=1, cache_dir=tmp, queue_limit=1024,
                          deadline_ms=60_000.0)
        with running(cfg) as daemon:
            service = daemon.service
            assert service is not None
            # Prime: the one execution the whole benchmark pays.
            _serve_swarm(daemon.port, body, clients=1, requests=1)
            for _ in range(rounds):
                before = service.c_executions.total()
                lats, wall = _serve_swarm(daemon.port, body,
                                          clients=clients, requests=requests)
                executed = service.c_executions.total() - before
                p50s.append(_pct(lats, 0.50))
                p99s.append(_pct(lats, 0.99))
                rates.append(requests / wall if wall > 0 else 0.0)
                hit_rates.append(1.0 - executed / requests)
                with muted(), caching_runs(RunCache(tmp), enabled=True):
                    t0 = time.perf_counter()
                    for _ in range(requests):
                        run_patternlet(_SERVE_SPEC["patternlet"],
                                       tasks=_SERVE_SPEC["np"],
                                       mode="lockstep",
                                       seed=_SERVE_SPEC["seed"])
                    direct_ms.append(
                        (time.perf_counter() - t0) / requests * 1000.0)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return {
        "serve_p50_ms": round(min(p50s), 3),
        "serve_p99_ms": round(min(p99s), 3),
        "served_runs_s": round(max(rates), 1),
        "coalesce_hit_rate": round(min(hit_rates), 4),
        "serve_direct_ms": round(min(direct_ms), 3),
    }


def bench_selfcheck_ab(*, rounds: int = 3) -> dict[str, float]:
    """Interleaved A/B: cache-disabled vs cache-served full self-checks.

    Alternates one cold (A) and one warm (B) pass per round against a
    private pre-primed cache, taking the best of each arm, so both arms
    sample the same machine conditions — the measurement discipline the
    engine benchmarks established for cross-commit comparisons.
    """
    import shutil
    import tempfile

    from repro.core.selfcheck import run_selfcheck

    tmp = tempfile.mkdtemp(prefix="repro-bench-ab-")
    try:
        run_selfcheck(use_cache=True, cache_dir=tmp)  # prime
        cold: list[float] = []
        warm: list[float] = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            run_selfcheck(use_cache=False)
            cold.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            run_selfcheck(use_cache=True, cache_dir=tmp)
            warm.append(time.perf_counter() - t0)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    best_cold, best_warm = min(cold), min(warm)
    return {
        "selfcheck_cold_wall_s": round(best_cold, 3),
        "selfcheck_warm_wall_s": round(best_warm, 3),
        "selfcheck_warm_speedup": round(best_cold / best_warm, 2)
        if best_warm > 0
        else 0.0,
    }


def bench_metrics_overhead(*, quick: bool = False, rounds: int = 3) -> float:
    """Live-probe overhead on the hottest path, as a percentage.

    Interleaved A/B over the immutable message stream: one arm with no
    probe installed (the engine's ``_live.probe is None`` fast path), one
    arm under :func:`repro.obs.live.probing`.  Each round measures its
    two arms back to back and yields one probed/base ratio — adjacent
    measurements share machine conditions, so a per-round ratio is far
    more stable than comparing bests across rounds.  The reported
    overhead is the *minimum* across rounds: interference (GC, a noisy
    neighbour) can only depress one arm and inflate the apparent
    overhead, never hide real hook cost that is paid in every round.
    The result is how much of the un-instrumented throughput the live
    metrics hooks cost — gated absolutely in :func:`compare` against
    :data:`METRICS_OVERHEAD_BUDGET_PCT` (6%), tighter than the
    regression tolerance because the probe's cost is a design property
    of the hooks, not a machine property.
    """
    from repro.obs.live import probing

    n = 3000 // (5 if quick else 1)
    best_ratio = 0.0
    for i in range(rounds):
        # Alternate arm order: a multi-round noise burst then lands on
        # each arm equally instead of depressing one arm every round.
        if i % 2:
            with probing():
                probed = bench_msg_throughput(12345, n=n)
            base = bench_msg_throughput(12345, n=n)
        else:
            base = bench_msg_throughput(12345, n=n)
            with probing():
                probed = bench_msg_throughput(12345, n=n)
        if base > 0:
            best_ratio = max(best_ratio, probed / base)
    return round(max(0.0, (1.0 - best_ratio) * 100), 2)


def bench_telemetry_overhead(
    *, quick: bool = False, rounds: int = 3, workers: int | None = None
) -> float:
    """Fleet-telemetry overhead on warm sweeps, as a percentage.

    Interleaved A/B over the same warm private cache: one persistent
    fleet with journals off (base), one with ``telemetry=True`` (probed)
    — each round runs both arms back to back in alternating order, the
    same estimator discipline as :func:`bench_metrics_overhead`.  The
    probed arm pays everything the telemetry plane adds per cell: the
    span-context install, the post-run lineage stamp, and the journal
    appends (claim, cell start/finish, job done).  The reported overhead
    is the minimum across rounds — interference can only inflate an
    apparent overhead, never hide a real per-cell cost — and is gated
    absolutely in :func:`compare` against
    :data:`TELEMETRY_OVERHEAD_BUDGET_PCT` (5%).
    """
    import shutil
    import tempfile

    from repro.batch import figure_suite_specs
    from repro.batch.fleet import Fleet

    specs = figure_suite_specs(seeds=range(2 if quick else 4))
    n_workers = max(2, workers or 2)
    tmp = tempfile.mkdtemp(prefix="repro-bench-telem-")
    base_fleet = probed_fleet = None
    try:
        base_fleet = Fleet(n_workers, use_cache=True, cache_dir=tmp)
        probed_fleet = Fleet(n_workers, use_cache=True, cache_dir=tmp,
                             telemetry=True)
        base_fleet.submit(specs, timeout=300.0)  # prime the shared cache
        probed_fleet.submit(specs, timeout=300.0)  # warm the probed arm too
        best_ratio = 0.0
        for i in range(rounds):
            if i % 2:
                probed = probed_fleet.submit(specs, timeout=300.0).throughput_runs_s
                base = base_fleet.submit(specs, timeout=300.0).throughput_runs_s
            else:
                base = base_fleet.submit(specs, timeout=300.0).throughput_runs_s
                probed = probed_fleet.submit(specs, timeout=300.0).throughput_runs_s
            if base > 0:
                best_ratio = max(best_ratio, probed / base)
    finally:
        if probed_fleet is not None:
            probed_fleet.shutdown()
        if base_fleet is not None:
            base_fleet.shutdown()
        shutil.rmtree(tmp, ignore_errors=True)
    return round(max(0.0, (1.0 - best_ratio) * 100), 2)


def run_benchmarks(
    *,
    quick: bool = False,
    progress: Callable[[str], None] | None = None,
    topology: str | None = None,
    fleet: int | None = None,
) -> dict[str, float]:
    """Run the full metric set; returns ``{metric: value}``.

    ``quick`` shrinks iteration counts ~5× for CI smoke runs — noisier,
    but each metric stays well above timer resolution, and the 30%
    check tolerance absorbs the jitter.

    ``topology`` pins the collective-latency benches to one communicator
    topology; by default each reports the fastest registered topology at
    its rank count.  ``fleet`` sizes the fleet-sweep benches' worker set
    (default 2 — enough to exercise the whole messenger on any host).

    The gated throughput metrics are each the best of three repetitions:
    a rate sample can only be depressed by interference (GC, a noisy
    neighbour on a shared runner), never inflated, so the maximum is the
    best estimate of the engine's actual speed and the one that makes a
    30% regression gate trustworthy.
    """
    scale = 5 if quick else 1
    note = progress or (lambda _msg: None)
    out: dict[str, float] = {}
    note("msg throughput (immutable payload, batch=1 default path)")
    out["msg_throughput_immutable"] = round(
        max(bench_msg_throughput(12345, n=3000 // scale) for _ in range(3)), 1
    )
    note("msg throughput (mutable payload, batch=64)")
    out["msg_throughput_mutable"] = round(
        max(
            bench_msg_throughput([1, 2, 3], n=3000 // scale, batch=64)
            for _ in range(3)
        ),
        1,
    )
    note("msg throughput (CoW nested 8x8 list, batch=64)")
    cow_payload = [list(range(8)) for _ in range(8)]
    out["msg_throughput_cow"] = round(
        max(
            bench_msg_throughput(cow_payload, n=3000 // scale, batch=64)
            for _ in range(3)
        ),
        1,
    )
    note("msg throughput (16 KiB bytearray buffer lane, batch=64)")
    out["msg_throughput_buffer"] = round(
        max(
            bench_msg_throughput(bytearray(16384), n=3000 // scale, batch=64)
            for _ in range(3)
        ),
        1,
    )
    note("lockstep switch rate (batch=32)")
    out["switch_rate"] = round(
        max(bench_switch_rate(k=20000 // scale, batch=32) for _ in range(3)), 1
    )
    note("lockstep switch rate at np=64 (batch=1 default path)")
    out["switch_rate_np64"] = round(
        max(bench_switch_rate(tasks=64, k=20000 // scale) for _ in range(3)), 1
    )
    note("np=1024 spmd world wall clock")
    out["np1024_spmd_wall_s"] = round(
        bench_np1024_spmd(repeats=1 if quick else 3), 4
    )
    note("per-run setup cost (pool-amortised)")
    out["run_setup_ms"] = round(bench_run_setup(runs=100 // scale), 3)
    from repro.mp.communicators import available_topologies

    topos = [topology] if topology else available_topologies()
    for p in (2, 4, 8, 32):
        note(f"bcast latency at {p} ranks ({'/'.join(t or 'default' for t in topos)})")
        out[f"bcast_ms_p{p}"] = round(
            min(
                bench_bcast_latency(p, iters=50 // scale, topology=t)
                for t in topos
            ),
            3,
        )
    note(f"allreduce latency at 64 ranks ({'/'.join(t or 'default' for t in topos)})")
    out["allreduce_ms_p64"] = round(
        min(
            bench_allreduce_latency(64, iters=20 // scale, topology=t)
            for t in topos
        ),
        3,
    )
    note("figure suite wall clock")
    out["figure_suite_wall_s"] = round(bench_figure_suite(), 3)
    note("large-np patternlet suite at 64 tasks")
    out["figure_suite_np64_wall_s"] = round(bench_large_np_suite(), 3)
    note("batch runner: cold + warm figure-suite grid")
    out.update(bench_batch_suite(quick=quick))
    note("sweep fleet: warm fleet vs in-process A/B")
    out.update(
        bench_fleet_sweep(quick=quick, workers=fleet, rounds=1 if quick else 3)
    )
    note("service daemon: 300-request coalescing swarm over a warm cache")
    out.update(bench_serve(quick=quick, rounds=1 if quick else 3))
    note("selfcheck cold/warm interleaved A/B")
    out.update(bench_selfcheck_ab(rounds=1 if quick else 3))
    note("live metrics probe overhead A/B")
    # Always 7 rounds: the min-across-rounds estimator needs several
    # probed/base pairs to shed interference, and quick mode already
    # shrinks the per-round message count 5x.
    out["metrics_overhead_pct"] = bench_metrics_overhead(quick=quick, rounds=7)
    note("fleet telemetry overhead A/B (journals on vs off)")
    out["telemetry_overhead_pct"] = bench_telemetry_overhead(
        quick=quick, rounds=3 if quick else 5, workers=fleet
    )
    return out


def _best_bcast_ms_p32(scale: int) -> float:
    from repro.mp.communicators import available_topologies

    return min(
        bench_bcast_latency(32, iters=50 // scale, topology=t)
        for t in available_topologies()
    )


def _best_allreduce_ms_p64(scale: int) -> float:
    from repro.mp.communicators import available_topologies

    return min(
        bench_allreduce_latency(64, iters=20 // scale, topology=t)
        for t in available_topologies()
    )


def _fleet_sweep_sample(scale: int) -> float:
    del scale  # the fleet grid is fixed (see bench_fleet_sweep)
    return bench_fleet_sweep(rounds=2)["fleet_sweep_runs_s"]


def _serve_sample(metric: str) -> Callable[[int], float]:
    def sample(scale: int) -> float:
        del scale  # the burst is fixed-size (see bench_serve)
        return bench_serve(rounds=2)[metric]

    return sample


#: One raw sample per gated microbench metric, keyed by metric name.
#: Payloads, iteration counts and batch sizes mirror
#: :func:`run_benchmarks` exactly — each sampler takes the quick-mode
#: ``scale`` divisor (5 for quick, 1 for full).  Batch throughput is
#: deliberately absent (a whole cold+warm grid is too expensive to
#: retry); the fleet sweep *is* sampled — its warm A/B is under a
#: second and its process-scheduling noise is exactly the transient a
#: best-of-N retry exists to shed.
_GATED_SAMPLERS: dict[str, Callable[[int], float]] = {
    "fleet_sweep_runs_s": _fleet_sweep_sample,
    "served_runs_s": _serve_sample("served_runs_s"),
    "serve_p50_ms": _serve_sample("serve_p50_ms"),
    "serve_p99_ms": _serve_sample("serve_p99_ms"),
    "msg_throughput_immutable": lambda s: bench_msg_throughput(12345, n=3000 // s),
    "msg_throughput_mutable": lambda s: bench_msg_throughput(
        [1, 2, 3], n=3000 // s, batch=64
    ),
    "msg_throughput_cow": lambda s: bench_msg_throughput(
        [list(range(8)) for _ in range(8)], n=3000 // s, batch=64
    ),
    "msg_throughput_buffer": lambda s: bench_msg_throughput(
        bytearray(16384), n=3000 // s, batch=64
    ),
    "switch_rate": lambda s: bench_switch_rate(k=20000 // s, batch=32),
    "switch_rate_np64": lambda s: bench_switch_rate(tasks=64, k=20000 // s),
    "bcast_ms_p32": _best_bcast_ms_p32,
    "allreduce_ms_p64": _best_allreduce_ms_p64,
}


def remeasure(
    metrics: Mapping[str, float],
    names: list[str],
    *,
    quick: bool = False,
    repeats: int = 10,
    progress: Callable[[str], None] | None = None,
) -> dict[str, float]:
    """Best-of-``repeats`` re-measurement of specific gated metrics.

    A regression verdict deserves more samples than a pass.  On a busy
    or frequency-scaling host, the three-sample estimate from
    :func:`run_benchmarks` can land entirely inside a slow CPU phase and
    read 30-50% under the engine's true speed.  Interference only ever
    *depresses* a throughput sample, so taking the best of many extra
    repetitions converges on the real rate without hiding a genuine
    regression — a truly slower engine cannot luck its way back above
    the baseline floor.

    Returns a copy of ``metrics`` with every metric in ``names`` that
    has a registered sampler replaced by its re-measured value; names
    without a sampler (suite walls, absolute gates) pass through
    unchanged.  "Best" honours the metric's direction: max for
    throughputs, min for the gated latencies.
    """
    scale = 5 if quick else 1
    note = progress or (lambda _msg: None)
    out = dict(metrics)
    for name in names:
        sampler = _GATED_SAMPLERS.get(name)
        if sampler is None:
            continue
        note(f"re-measuring {name} (best of {repeats})")
        samples = [sampler(scale) for _ in range(repeats)]
        if name in LOWER_IS_BETTER:
            out[name] = round(min(samples), 3)
        else:
            out[name] = round(max(samples), 1)
    return out


# -- reports and baseline comparison -----------------------------------------


def make_report(metrics: Mapping[str, float], *, quick: bool = False) -> dict:
    """Wrap raw metrics in the versioned report envelope."""
    return {
        "schema": SCHEMA,
        "quick": quick,
        "python": platform.python_version(),
        "metrics": dict(metrics),
    }


def save_report(path: str, report: Mapping[str, Any]) -> None:
    """Write a report as stable, diff-friendly JSON (sorted keys)."""
    with open(path, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_report(path: str) -> dict:
    """Load a report; a bare ``{metric: value}`` dict is also accepted."""
    with open(path) as fh:
        data = json.load(fh)
    if "metrics" not in data:
        data = {"schema": 0, "metrics": data}
    return data


def compare(
    current: Mapping[str, float],
    baseline: Mapping[str, float],
    *,
    tolerance: float = 0.30,
    on_skip: Callable[[str], None] | None = None,
) -> list[str]:
    """Failure messages for throughput metrics that regressed past tolerance.

    Empty list means the check passes.  Metrics missing from either side
    are skipped — a newly added metric has no baseline to regress
    against, and gating on its absence would break every older baseline
    file.  Each skip of a *gated* metric is reported through ``on_skip``
    (the CLI prints it as a warning) so a silently un-gated metric is
    visible rather than mistaken for a passing check.
    """
    failures: list[str] = []
    # The probe-overhead gate is absolute (no baseline needed): the live
    # metrics hooks must stay inside METRICS_OVERHEAD_BUDGET_PCT of the
    # hot path, whatever machine measured it.
    overhead = current.get("metrics_overhead_pct")
    if overhead is not None and overhead > METRICS_OVERHEAD_BUDGET_PCT:
        failures.append(
            f"metrics_overhead_pct: live-probe overhead {overhead:.1f}% "
            f"exceeds the {METRICS_OVERHEAD_BUDGET_PCT:.0f}% hot-path budget"
        )
    # The telemetry gate is absolute for the same reason: worker journals
    # must stay within TELEMETRY_OVERHEAD_BUDGET_PCT of warm fleet
    # throughput on any machine.
    telemetry = current.get("telemetry_overhead_pct")
    if telemetry is not None and telemetry > TELEMETRY_OVERHEAD_BUDGET_PCT:
        failures.append(
            f"telemetry_overhead_pct: fleet journalling overhead "
            f"{telemetry:.1f}% exceeds the "
            f"{TELEMETRY_OVERHEAD_BUDGET_PCT:.0f}% fleet-sweep budget"
        )
    for name in HIGHER_IS_BETTER:
        if name not in current:
            continue
        if name not in baseline:
            if on_skip is not None:
                on_skip(
                    f"{name}: absent from baseline; gate skipped "
                    f"(regenerate the baseline to arm it)"
                )
            continue
        base = baseline[name]
        if base <= 0:
            continue
        floor = base * (1.0 - tolerance)
        if current[name] < floor:
            failures.append(
                f"{name}: {current[name]:.1f} is {1 - current[name] / base:.0%} "
                f"below baseline {base:.1f} (tolerance {tolerance:.0%})"
            )
    for name in LOWER_IS_BETTER:
        if name not in current:
            continue
        if name not in baseline:
            if on_skip is not None:
                on_skip(
                    f"{name}: absent from baseline; gate skipped "
                    f"(regenerate the baseline to arm it)"
                )
            continue
        base = baseline[name]
        if base <= 0:
            continue
        ceiling = base * (1.0 + tolerance)
        if current[name] > ceiling:
            failures.append(
                f"{name}: {current[name]:.3f}ms is "
                f"{current[name] / base - 1:.0%} above baseline "
                f"{base:.3f}ms (tolerance {tolerance:.0%})"
            )
    return failures


def format_table(
    current: Mapping[str, float], baseline: Mapping[str, float] | None = None
) -> list[str]:
    """Human-readable metric rows, with deltas when a baseline is given."""
    lines = []
    width = max(len(k) for k in current)
    for name, value in current.items():
        row = f"{name:<{width}}  {value:>12g}"
        if baseline and name in baseline and baseline[name]:
            ratio = value / baseline[name]
            row += f"  ({ratio:.2f}x baseline)"
        lines.append(row)
    return lines
