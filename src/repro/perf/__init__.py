"""Performance-regression harness for the execution engine.

The engine's value is pedagogical *and* quantitative: spans, speedup
curves, and the figure suite all assume the runtime itself is cheap
enough not to drown the effects being taught.  This package measures the
engine's hot paths — message transport, lockstep task switching,
collective latency, and the end-to-end figure suite — and compares runs
against a committed baseline so a refactor that quietly halves
throughput fails CI instead of shipping.

Use from the command line::

    patternlet bench --quick --check BENCH_runtime.json

or programmatically via :func:`repro.perf.bench.run_benchmarks`.
"""

from repro.perf.bench import (
    HIGHER_IS_BETTER,
    compare,
    load_report,
    make_report,
    run_benchmarks,
    save_report,
)

__all__ = [
    "HIGHER_IS_BETTER",
    "compare",
    "load_report",
    "make_report",
    "run_benchmarks",
    "save_report",
]
