#!/usr/bin/env python3
"""Quickstart: the patternlet workflow in two minutes.

Runs the canonical first patternlet the way an instructor would in class:
sequentially, then parallel, then replayed with a different seed — and
shows where the collection, the toggles, and the exercises live.

Usage: python examples/quickstart.py
"""

from repro import all_patternlets, get_patternlet, inventory, run_patternlet


def main() -> None:
    print("=" * 64)
    print("1. The collection")
    print("=" * 64)
    inv = inventory()
    print(
        f"{inv['total']} patternlets: {inv['openmp']} OpenMP-analogue, "
        f"{inv['mpi']} MPI-analogue, {inv['pthreads']} Pthreads-analogue, "
        f"{inv['hybrid']} heterogeneous.\n"
    )

    print("=" * 64)
    print("2. spmd with the pragma 'commented out' (paper Figure 2)")
    print("=" * 64)
    run = run_patternlet("openmp.spmd", toggles={"parallel": False})
    print(run.text)

    print("=" * 64)
    print("3. Uncomment the pragma: 4 threads (paper Figure 3)")
    print("=" * 64)
    run = run_patternlet("openmp.spmd", tasks=4, seed=1)
    print(run.text)

    print("=" * 64)
    print("4. Same program, different seed: a different interleaving")
    print("=" * 64)
    run = run_patternlet("openmp.spmd", tasks=4, seed=9)
    print(run.text)
    print("(lockstep seeds make every interleaving replayable: run seed 9")
    print(" again and you will see exactly these lines in this order)\n")

    print("=" * 64)
    print("5. Every patternlet carries its teaching card")
    print("=" * 64)
    p = get_patternlet("openmp.barrier")
    print(f"name:     {p.name}")
    print(f"teaches:  {', '.join(p.patterns)}")
    print(f"toggles:  {', '.join(t.name for t in p.toggles)}")
    print(f"exercise: {p.exercise}\n")

    print("Next steps:")
    print("  patternlet list                  # the whole collection")
    print("  patternlet show mpi.deadlock     # a patternlet's card")
    print("  patternlet run openmp.barrier --tasks 4 --on barrier")
    print("  python examples/classroom_demo.py")


if __name__ == "__main__":
    main()
