#!/usr/bin/env python3
"""N-body simulation: the paper's high-level pattern, fully decomposed.

Section II.B cites *N-body Problems* as a top-layer design pattern.  This
example runs a small gravitating cluster with the ring-pipeline force
algorithm — SPMD ranks, block Data Decomposition, a periodic Cartesian
ring, p-1 sendrecv hops per step — and shows the distributed forces
matching the sequential all-pairs reference exactly, plus the span curve.

Usage: python examples/nbody_simulation.py [bodies] [steps]
"""

import sys

from repro.algorithms.nbody import (
    forces_mp,
    forces_sequential,
    make_bodies,
    step_bodies,
)
from repro.mp import MpRuntime


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    steps = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    bodies = make_bodies(n, seed=7)
    print(f"{n} bodies, {steps} steps, ring-pipeline forces\n")

    print("force verification (distributed vs sequential):")
    ref = forces_sequential(bodies)
    for ranks in (1, 2, 4):
        got, span = forces_mp(
            bodies, num_ranks=ranks, runtime=MpRuntime(mode="lockstep")
        )
        exact = all(
            abs(a[0] - b[0]) < 1e-12 and abs(a[1] - b[1]) < 1e-12
            for a, b in zip(got, ref)
        )
        print(f"  {ranks} ranks: exact={exact}  span={span:8.2f}")

    print("\nsimulating (sequential stepping, distributed forces each step):")
    state = bodies
    for k in range(steps):
        forces, _ = forces_mp(state, num_ranks=4, runtime=MpRuntime(mode="lockstep"))
        state = step_bodies(state, forces, dt=0.05)
        cx = sum(b.x * b.mass for b in state) / sum(b.mass for b in state)
        cy = sum(b.y * b.mass for b in state) / sum(b.mass for b in state)
        print(f"  step {k + 1}: centre of mass = ({cx:+.4f}, {cy:+.4f})")
    print("\n(The centre of mass never moves: internal forces cancel")
    print(" pairwise - Newton's third law acting as a unit test.)")


if __name__ == "__main__":
    main()
