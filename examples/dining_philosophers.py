#!/usr/bin/env python3
"""Dining philosophers: the circular-wait deadlock and two classic fixes.

Five philosophers, five forks, three policies:

- "naive":   everyone grabs their left fork, then their right — the
             circular wait, which the lockstep executor detects and names;
- "ordered": forks are acquired lowest-numbered first (resource
             ordering), which breaks every cycle;
- "waiter":  a semaphore admits at most four philosophers to the table
             at a time (resource limiting).

Usage: python examples/dining_philosophers.py [meals] [seed]
"""

import sys

from repro.errors import DeadlockError
from repro.pthreads import PthreadsRuntime

PHILOSOPHERS = 5


def dine(policy: str, *, meals: int, seed: int) -> list[int] | DeadlockError:
    rt = PthreadsRuntime(mode="lockstep", seed=seed)

    def program(pt):
        forks = [pt.mutex(f"fork{i}") for i in range(PHILOSOPHERS)]
        table = pt.semaphore(PHILOSOPHERS - 1, "waiter")
        eaten = [0] * PHILOSOPHERS

        def philosopher(i):
            left, right = forks[i], forks[(i + 1) % PHILOSOPHERS]
            for _ in range(meals):
                if policy == "waiter":
                    table.wait()
                if policy == "ordered":
                    first, second = sorted(
                        (left, right), key=lambda f: f.name
                    )
                else:
                    first, second = left, right
                first.lock()
                pt.checkpoint()  # the fatal pause with a fork in hand
                second.lock()
                eaten[i] += 1
                second.unlock()
                first.unlock()
                if policy == "waiter":
                    table.post()
                pt.checkpoint()
            return eaten[i]

        handles = [pt.create(philosopher, i, name=f"phil:{i}") for i in range(PHILOSOPHERS)]
        return [pt.join(h) for h in handles]

    try:
        return rt.run(program)
    except DeadlockError as exc:
        return exc


def main() -> None:
    meals = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 0

    print(f"{PHILOSOPHERS} philosophers, {meals} meals each, seed {seed}\n")
    for policy, blurb in (
        ("naive", "left fork then right fork (circular wait)"),
        ("ordered", "lowest-numbered fork first (resource ordering)"),
        ("waiter", "at most 4 seated at once (resource limiting)"),
    ):
        print(f"policy {policy!r}: {blurb}")
        outcome = dine(policy, meals=meals, seed=seed)
        if isinstance(outcome, DeadlockError):
            print("  DEADLOCK:")
            for who, what in sorted(outcome.blocked.items()):
                print(f"    {who} waiting for {what}")
        else:
            print(f"  everyone ate: {outcome}")
        print()
    print("The naive policy deadlocks for some seeds (each philosopher")
    print("pauses holding one fork); both fixes finish for every seed.")


if __name__ == "__main__":
    main()
