#!/usr/bin/env python3
"""Deadlock clinic: provoking, diagnosing, and fixing circular waits.

The paper's message-passing patternlets hint at the classic hazards; the
lockstep runtime turns them into a clinic: every deadlock is detected
immediately, named task by task, and replayable by seed.

Usage: python examples/deadlock_clinic.py
"""

from repro import run_patternlet
from repro.errors import DeadlockError
from repro.mp import mpirun


def case(title):
    print("\n" + "=" * 64)
    print(title)
    print("=" * 64)


def main() -> None:
    case("Case 1: head-to-head synchronous sends (mpi.messagePassing2)")
    run = run_patternlet("mpi.messagePassing2", toggles={"ssend": True})
    print(run.text)

    case("Case 2: receive-before-send ring (mpi.deadlock), np=4")
    run = run_patternlet("mpi.deadlock", tasks=4)
    print(run.text)

    case("Case 2 fixed: alternate send/receive order by rank parity")
    run = run_patternlet("mpi.deadlock", tasks=4, toggles={"fix": True})
    print(run.text)

    case("Case 3: a barrier nobody finishes - mismatched collective")

    def bad(comm):
        if comm.rank == 0:
            comm.recv(source=1, tag=99)  # rank 0 skips the barrier
        else:
            comm.barrier()

    try:
        mpirun(3, bad, mode="lockstep")
    except DeadlockError as exc:
        print("DeadlockError, as it should be:")
        for who, what in sorted(exc.blocked.items()):
            print(f"  {who} waiting for: {what}")

    print("\nMoral: under the lockstep executor a deadlock is a test")
    print("failure with a wait-for list, not a hung terminal.")


if __name__ == "__main__":
    main()
