#!/usr/bin/env python3
"""The CS2 Friday session's destination: parallel merge sort.

Fork-join divide and conquer with the pthreads-analogue API, showing the
recursion tree, validating against sorted(), and sweeping the fork depth
to expose the fork-cost/parallelism trade-off via virtual span.

Usage: python examples/parallel_mergesort.py [n]
"""

import random
import sys

from repro.algorithms.mergesort import parallel_mergesort, sequential_mergesort
from repro.pthreads import PthreadsRuntime
from repro.smp import SmpRuntime


def span_of_depth(data, depth):
    """Model the sort's span: equal leaf chunks sorted in parallel."""
    leaves = 2 ** depth
    rt = SmpRuntime(num_threads=leaves, mode="lockstep")
    chunk = max(1, len(data) // leaves)

    def body(ctx):
        import math

        n = chunk
        ctx.work(n * max(1, math.ceil(math.log2(max(n, 2)))))  # leaf sort
        ctx.reduce(0, "+")  # stand-in for the merge combining tree

    return rt.parallel(body).span


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    rng = random.Random(42)
    data = [rng.randrange(10 * n) for _ in range(n)]

    result = parallel_mergesort(data, max_depth=3)
    assert result == sorted(data)
    print(f"parallel merge sort of {n} values: OK (matches sorted())")
    assert sequential_mergesort(data) == result

    print("\nreplayable run (lockstep seed 5):")
    rt = PthreadsRuntime(mode="lockstep", seed=5)
    result2 = parallel_mergesort(data, max_depth=2, rt=rt)
    assert result2 == sorted(data)
    print("  deterministic fork-join schedule: OK")

    print("\nfork-depth sweep (modelled span, lower is better):")
    print(f"  {'depth':>5} {'leaf sorters':>12} {'span':>10}")
    for depth in range(0, 5):
        s = span_of_depth(data, depth)
        print(f"  {depth:>5} {2 ** depth:>12} {s:>10.0f}")
    print("\nDeeper forking shrinks the span until leaves get trivial -")
    print("the reason the implementation stops forking at max_depth.")


if __name__ == "__main__":
    main()
