#!/usr/bin/env python3
"""Geometric decomposition exemplar: 1-D heat diffusion with halo exchange.

A hot end, a warm end, and a cold rod between them: each MPI-analogue
rank owns a slab of cells on a Cartesian grid, swaps boundary cells with
its neighbours every step (the halo exchange), and updates its interior.
The distributed result matches the sequential reference exactly, and the
span table shows the strong-scaling curve flattening as halo traffic
starts to matter.

Usage: python examples/heat_diffusion.py [cells] [steps]
"""

import sys

from repro.algorithms.heat import simulate_mp, simulate_sequential
from repro.mp import MpRuntime


def thermometer(rod, width=60):
    lo, hi = min(rod), max(rod)
    span = (hi - lo) or 1.0
    cells = " .:-=+*#%@"
    return "".join(cells[int((v - lo) / span * (len(cells) - 1))] for v in rod[:width])


def main() -> None:
    cells = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    steps = int(sys.argv[2]) if len(sys.argv) > 2 else 60
    rod = [0.0] * cells
    rod[0], rod[-1] = 100.0, 40.0

    print(f"rod: {cells} cells, ends pinned at 100 / 40, {steps} steps\n")
    print("t=0     " + thermometer(rod))
    ref = simulate_sequential(rod, steps=steps)
    print(f"t={steps:<6}" + thermometer(ref))

    print("\ndistributed runs (geometric decomposition + halo exchange):")
    print(f"{'ranks':>6} {'matches sequential':>20} {'span':>10}")
    base = None
    for ranks in (1, 2, 4, 8):
        got, span = simulate_mp(
            rod, steps=steps, num_ranks=ranks, runtime=MpRuntime(mode="lockstep")
        )
        ok = all(abs(a - b) < 1e-9 for a, b in zip(got, ref))
        base = base or span
        print(f"{ranks:>6} {str(ok):>20} {span:>10.1f}  ({base / span:.2f}x)")
    print("\nEvery run is bit-equal to the sequential stencil; speedup")
    print("flattens as per-step halo messages eat into the shrinking slabs.")


if __name__ == "__main__":
    main()
