#!/usr/bin/env python3
"""The CS2 Wednesday live-coding session (paper Section IV.A), scripted.

In Spring the concepts lecture was replaced by live-coded patternlet
demos.  This example replays that session: for each scheduled patternlet
it shows the "before" behaviour, names the pragma being uncommented, and
shows the "after" behaviour — the comment/uncomment pedagogy end to end.

Usage: python examples/classroom_demo.py [seed]
"""

import sys

from repro import get_patternlet, run_patternlet
from repro.education.curriculum import CS2_WEEK_SPRING


def demo_patternlet(name: str, seed: int) -> None:
    p = get_patternlet(name)
    print("-" * 64)
    print(f"{p.name}: {p.summary}")
    print(f"(teaches: {', '.join(p.patterns)})")
    if not p.toggles:
        run = run_patternlet(name, seed=seed)
        print(run.text)
        return
    # Show the behavioural delta for the patternlet's first toggle.
    toggle = p.toggles[0]
    before = run_patternlet(name, toggles={toggle.name: False}, seed=seed)
    print(f"\n-- with `{toggle.pragma}` commented out:")
    print(before.text)
    after = run_patternlet(name, toggles={toggle.name: True}, seed=seed)
    print(f"-- now uncomment `{toggle.pragma}`, recompile, rerun:")
    print(after.text)


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    wednesday = next(s for s in CS2_WEEK_SPRING if s.day == "Wednesday")
    print(f"CS2, Wednesday: {wednesday.topic}")
    print(f"(seed {seed}; rerun with another seed for different interleavings)\n")
    for name in wednesday.patternlets:
        demo_patternlet(name, seed)
    print("-" * 64)
    print("End of session.  Friday: parallel merge sort")
    print("(see examples/parallel_mergesort.py).")


if __name__ == "__main__":
    main()
