#!/usr/bin/env python3
"""The CS2 Tuesday closed lab (paper Section IV.A), steps (a)-(d).

(a) time sequential Matrix add/transpose; (b) parallelise with the SMP
runtime; (c) time at several thread counts; (d) chart speedup vs threads
(ASCII, since this lab's spreadsheet is out of scope).

Usage: python examples/cs2_matrix_lab.py [size]
"""

import sys

from repro.education.matrix_lab import lab_report


def ascii_chart(rows, op):
    print(f"\n  speedup vs threads - {op}")
    for row in (r for r in rows if r["operation"] == op):
        bar = "#" * max(1, round(row["speedup"] * 4))
        print(f"  {row['threads']:>3} threads | {bar} {row['speedup']:.2f}x")


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    print(f"Matrix lab, {size}x{size} matrices")
    rep = lab_report(size=size, thread_counts=(1, 2, 4, 8))
    seq = rep["sequential"]
    print(f"(a) sequential add:       {seq['add_wall'] * 1e3:7.2f} ms")
    print(f"    sequential transpose: {seq['transpose_wall'] * 1e3:7.2f} ms")
    print("\n(b,c) parallel versions, swept over thread counts:")
    print(f"  {'op':<10} {'threads':>7} {'wall ms':>9} {'span':>8} {'speedup':>8}")
    for row in rep["rows"]:
        print(
            f"  {row['operation']:<10} {row['threads']:>7} "
            f"{row['wall'] * 1e3:>9.2f} {row['span']:>8.0f} {row['speedup']:>7.2f}x"
        )
    print("\n(d) the chart students draw:")
    ascii_chart(rep["rows"], "add")
    ascii_chart(rep["rows"], "transpose")
    print("\nNote: speedups are span-based (critical path under the work")
    print("model) - this container has one core, so wall time cannot show")
    print("parallel speedup; the span is what the chart would show on the")
    print("lab machines.")


if __name__ == "__main__":
    main()
