#!/usr/bin/env python3
"""The paper's Reduction walk-through (Section III.D + Figure 19), runnable.

Builds an image whose eight equal chunks contain exactly 6, 8, 9, 1, 5,
7, 2 and 4 red pixels — the paper's numbers — counts them with the
Parallel Loop + Reduction composition in both shared-memory and
message-passing form, and prints the O(t)-vs-O(lg t) span table behind
Figure 19.

Usage: python examples/red_pixel_reduction.py
"""

from repro.algorithms.red_pixels import (
    PAPER_PARTIALS,
    count_red_mp,
    count_red_sequential,
    count_red_smp,
    make_image,
)
from repro.mp import LogPCosts, mpirun
from repro.mp import collectives as C


def main() -> None:
    image = make_image()
    print(f"image: {len(image)} pixels in 8 chunks")
    print(f"red pixels per chunk (by construction): {list(PAPER_PARTIALS)}\n")

    total = count_red_sequential(image)
    print(f"sequential scan:        {total} red pixels")

    smp_total, smp_partials, smp_span = count_red_smp(image, num_threads=8)
    print(f"8 threads  (SMP):       {smp_total} red pixels, partials {smp_partials}")

    mp_total, mp_partials, mp_span = count_red_mp(image, num_ranks=8)
    print(f"8 processes (MP):       {mp_total} red pixels, partials {mp_partials}\n")

    print("combining the partials: sequential fold vs reduction tree")
    print(f"{'t':>5} {'tree span':>10} {'seq span':>10}")
    costs = LogPCosts(latency=1.0, overhead=0.1, combine=1.0)
    for t in (2, 4, 8, 16, 32, 64):
        tree = mpirun(t, lambda c: c.reduce(1, "SUM", 0), mode="lockstep", costs=costs).span
        lin = mpirun(
            t, lambda c: C.reduce_linear(c, 1, "SUM", 0), mode="lockstep", costs=costs
        ).span
        print(f"{t:>5} {tree:>10.2f} {lin:>10.2f}")
    print("\nSame t-1 additions either way; the tree does t/2 of them at")
    print("time 1, t/4 at time 2, ... - O(lg t) span (paper Figure 19).")


if __name__ == "__main__":
    main()
