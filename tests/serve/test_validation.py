"""Request canonicalisation: every admission decision is made pre-queue."""

from __future__ import annotations

import pytest

from repro.batch.specs import spec_key
from repro.serve import RequestError, parse_run_request, parse_sweep_request
from repro.serve.service import MAX_SEED, MAX_TASKS


def _status(callable_, *args, **kwargs):
    with pytest.raises(RequestError) as exc:
        callable_(*args, **kwargs)
    return exc.value.status


class TestRunValidation:
    def test_minimal_body_gets_engine_defaults(self):
        spec = parse_run_request({"patternlet": "mpi.reduction"})
        assert spec.patternlet == "mpi.reduction"
        assert spec.mode == "lockstep"
        assert spec.seed == 0
        assert spec.policy == "random"

    def test_np_is_an_alias_for_tasks(self):
        a = parse_run_request({"patternlet": "mpi.reduction", "np": 6})
        b = parse_run_request({"patternlet": "mpi.reduction", "tasks": 6})
        assert a == b
        assert spec_key(a) == spec_key(b)

    def test_tasks_and_np_together_rejected(self):
        assert _status(parse_run_request,
                       {"patternlet": "mpi.reduction",
                        "tasks": 4, "np": 4}) == 400

    def test_unknown_patternlet_is_404(self):
        assert _status(parse_run_request, {"patternlet": "no.such"}) == 404

    def test_unknown_field_rejected(self):
        assert _status(parse_run_request,
                       {"patternlet": "mpi.reduction", "turbo": 1}) == 400

    def test_non_object_body_rejected(self):
        assert _status(parse_run_request, [1, 2, 3]) == 400
        assert _status(parse_run_request, "mpi.reduction") == 400

    def test_missing_patternlet_rejected(self):
        assert _status(parse_run_request, {}) == 400

    @pytest.mark.parametrize("tasks", [0, -1, MAX_TASKS + 1, 2.5, True, "4"])
    def test_task_bounds(self, tasks):
        assert _status(parse_run_request,
                       {"patternlet": "mpi.reduction", "tasks": tasks}) == 400

    @pytest.mark.parametrize("seed", [-1, MAX_SEED + 1, "0", False])
    def test_seed_bounds(self, seed):
        assert _status(parse_run_request,
                       {"patternlet": "mpi.reduction", "seed": seed}) == 400

    def test_thread_mode_not_servable(self):
        # OS nondeterminism must never be coalesced between clients.
        with pytest.raises(RequestError, match="lockstep"):
            parse_run_request({"patternlet": "mpi.reduction",
                               "mode": "thread"})

    def test_unknown_policy_rejected(self):
        assert _status(parse_run_request,
                       {"patternlet": "mpi.reduction",
                        "policy": "fastest"}) == 400

    def test_unknown_toggle_rejected(self):
        assert _status(parse_run_request,
                       {"patternlet": "mpi.reduction",
                        "toggles": {"warpdrive": True}}) == 400

    def test_non_bool_toggle_rejected(self):
        assert _status(parse_run_request,
                       {"patternlet": "openmp.spmd",
                        "toggles": {"parallel": 1}}) == 400

    def test_unknown_topology_rejected(self):
        assert _status(parse_run_request,
                       {"patternlet": "mpi.reduction",
                        "topology": "moebius"}) == 400

    def test_unknown_network_rejected(self):
        assert _status(parse_run_request,
                       {"patternlet": "mpi.reduction",
                        "network": "carrier-pigeon"}) == 400

    def test_spelled_defaults_share_the_omitted_key(self):
        # The run cache's canonicalisation carries straight through: a
        # body that restates engine defaults addresses the same record.
        bare = parse_run_request({"patternlet": "openmp.barrier", "seed": 3})
        spelled = parse_run_request({
            "patternlet": "openmp.barrier",
            "seed": 3,
            "mode": "lockstep",
            "policy": "random",
            "toggles": {"barrier": False},
        })
        assert spec_key(bare) == spec_key(spelled)


class TestSweepValidation:
    def test_grid_is_the_cross_product(self):
        specs = parse_sweep_request(
            {"patternlets": ["mpi.reduction", "openmp.spmd"],
             "np": [2, 4], "seeds": [0, 1, 2]},
            max_cells=256)
        assert len(specs) == 2 * 2 * 3
        assert len({spec_key(s) for s in specs}) == len(specs)

    def test_oversized_grid_is_413_before_validation(self):
        assert _status(parse_sweep_request,
                       {"patternlets": ["no.such.name"] * 4,
                        "seeds": list(range(100))},
                       max_cells=256) == 413

    def test_topology_string_and_list_both_accepted(self):
        one = parse_sweep_request(
            {"patternlets": ["mpi.reduction"], "seeds": [0],
             "topology": "binomial"}, max_cells=16)
        many = parse_sweep_request(
            {"patternlets": ["mpi.reduction"], "seeds": [0],
             "topologies": ["binomial"]}, max_cells=16)
        assert [spec_key(s) for s in one] == [spec_key(s) for s in many]

    def test_empty_patternlets_rejected(self):
        assert _status(parse_sweep_request, {"patternlets": []},
                       max_cells=16) == 400

    def test_unknown_field_rejected(self):
        assert _status(parse_sweep_request,
                       {"patternlets": ["mpi.reduction"], "turbo": 1},
                       max_cells=16) == 400

    def test_every_cell_is_validated(self):
        assert _status(parse_sweep_request,
                       {"patternlets": ["mpi.reduction", "no.such"],
                        "seeds": [0]},
                       max_cells=16) == 404
