"""The HTTP daemon end-to-end: routes, keep-alive, admission, shutdown."""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time

from repro.obs import parse_openmetrics
from repro.serve import ServeConfig, running

RUN = {"patternlet": "mpi.reduction", "np": 4}


def _request(port, method, path, body=None, conn=None):
    """One HTTP exchange; returns (status, headers, decoded-or-raw body)."""
    owned = conn is None
    if owned:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    payload = json.dumps(body).encode() if body is not None else None
    conn.request(method, path, body=payload,
                 headers={"Content-Type": "application/json"} if payload else {})
    resp = conn.getresponse()
    raw = resp.read()
    headers = {k.lower(): v for k, v in resp.getheaders()}
    if owned:
        conn.close()
    try:
        doc = json.loads(raw)
    except ValueError:
        doc = raw
    return resp.status, headers, doc


def _slow_dispatch(daemon, delay):
    """Swap the execution backend for a deterministic slow coroutine."""
    from repro.batch.results import RunOutcome, outcome_to_wire
    from repro.batch.specs import spec_key

    async def dispatch(spec):
        await asyncio.sleep(delay)
        out = RunOutcome(spec=spec, key=spec_key(spec), cached=False,
                         text="slow", span=1.0, wall=delay, races=0)
        return outcome_to_wire(out), {"hits": 0, "misses": 1}

    daemon.service._dispatch = dispatch


class TestRoutes:
    def test_run_report_metrics_healthz(self, tmp_path):
        with running(cache_dir=str(tmp_path)) as daemon:
            status, headers, _ = _request(daemon.port, "GET", "/healthz")
            assert status == 200

            status, headers, doc = _request(daemon.port, "POST", "/run", RUN)
            assert status == 200
            assert headers["x-patternlet-served"] == "execute"
            key = headers["x-patternlet-key"]
            assert doc["key"] == key and doc["races"] == 0

            # Identical body again: memoised, byte-identical.
            status, headers, doc2 = _request(daemon.port, "POST", "/run", RUN)
            assert headers["x-patternlet-served"] == "memo"
            assert doc2 == doc

            status, _, stored = _request(daemon.port, "GET", f"/report/{key}")
            assert status == 200 and stored == doc

            status, _, _ = _request(daemon.port, "GET", "/report/nope")
            assert status == 404

            status, headers, text = _request(daemon.port, "GET", "/metrics")
            assert status == 200
            assert headers["content-type"].startswith(
                "application/openmetrics-text")
            doc = parse_openmetrics(text.decode())
            assert "patternlet_serve_executions" in doc
            assert "patternlet_serve_requests" in doc

    def test_sweep_summary_and_stored_report(self, tmp_path):
        with running(cache_dir=str(tmp_path)) as daemon:
            grid = {"patternlets": ["mpi.reduction"], "np": [2, 4],
                    "seeds": [0, 1]}
            status, _, doc = _request(daemon.port, "POST", "/sweep", grid)
            assert status == 200
            assert doc["runs"] == 4 and doc["errors"] == 0
            assert doc["distinct_cells"] == 4
            status, _, report = _request(
                daemon.port, "GET", f"/report/{doc['report']}")
            assert status == 200
            assert len(report["cells"]) == 4

    def test_error_statuses(self, tmp_path):
        cfg = ServeConfig(cache_dir=str(tmp_path), max_body_bytes=512)
        with running(cfg) as daemon:
            port = daemon.port
            assert _request(port, "GET", "/nope")[0] == 404
            assert _request(port, "GET", "/run")[0] == 405
            assert _request(port, "POST", "/run",
                            {"patternlet": "no.such"})[0] == 404
            assert _request(port, "POST", "/run",
                            {"patternlet": "mpi.reduction",
                             "mode": "thread"})[0] == 400
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
            conn.request("POST", "/run", body=b"x" * 1024)
            assert conn.getresponse().status == 413
            conn.close()
            # Invalid JSON is a 400, not a connection reset.
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
            conn.request("POST", "/run", body=b"{not json")
            assert conn.getresponse().status == 400
            conn.close()


class TestKeepAlive:
    def test_two_requests_share_one_socket(self, tmp_path):
        with running(cache_dir=str(tmp_path)) as daemon:
            conn = http.client.HTTPConnection("127.0.0.1", daemon.port,
                                              timeout=30)
            status, headers, _ = _request(daemon.port, "GET", "/healthz",
                                          conn=conn)
            assert status == 200
            assert headers["connection"] == "keep-alive"
            sock = conn.sock
            assert sock is not None
            status, _, _ = _request(daemon.port, "POST", "/run", RUN,
                                    conn=conn)
            assert status == 200
            assert conn.sock is sock  # same socket, no reconnect
            conn.close()

    def test_connection_close_is_honoured(self, tmp_path):
        with running(cache_dir=str(tmp_path)) as daemon:
            conn = http.client.HTTPConnection("127.0.0.1", daemon.port,
                                              timeout=30)
            conn.request("GET", "/healthz", headers={"Connection": "close"})
            resp = conn.getresponse()
            resp.read()
            assert resp.getheader("Connection") == "close"
            conn.close()


class TestAdmission:
    def test_high_water_sheds_with_429_and_retry_after(self, tmp_path):
        cfg = ServeConfig(cache_dir=str(tmp_path), workers=1, queue_limit=0)
        with running(cfg) as daemon:
            _slow_dispatch(daemon, 0.6)
            port = daemon.port
            results = []

            def post(seed):
                results.append(_request(
                    port, "POST", "/run", dict(RUN, seed=seed)))

            first = threading.Thread(target=post, args=(0,))
            first.start()
            time.sleep(0.2)  # first request holds the only slot
            status, headers, doc = _request(port, "POST", "/run",
                                            dict(RUN, seed=1))
            first.join()
            assert status == 429
            assert headers["retry-after"] == "1"
            assert "admission queue full" in doc["error"]
            assert results[0][0] == 200  # the leader still finished
            assert daemon.service.c_shed.total() == 1.0

    def test_queue_deadline_expires_with_503(self, tmp_path):
        cfg = ServeConfig(cache_dir=str(tmp_path), workers=1,
                          queue_limit=4, deadline_ms=100)
        with running(cfg) as daemon:
            _slow_dispatch(daemon, 0.8)
            port = daemon.port
            first = threading.Thread(
                target=_request, args=(port, "POST", "/run", RUN))
            first.start()
            time.sleep(0.2)
            status, _, doc = _request(port, "POST", "/run",
                                      dict(RUN, seed=1))
            first.join()
            assert status == 503
            assert "no execution slot" in doc["error"]
            assert daemon.service.c_deadline.total() == 1.0

    def test_draining_rejects_new_executions(self, tmp_path):
        with running(cache_dir=str(tmp_path)) as daemon:
            port = daemon.port
            _request(port, "POST", "/run", RUN)  # warm the memo
            daemon.service.start_draining()
            # New work is refused...
            status, _, doc = _request(port, "POST", "/run",
                                      dict(RUN, seed=5))
            assert status == 503
            assert "draining" in doc["error"]
            assert _request(port, "GET", "/healthz")[0] == 503
            # ...but already-finished keys are still served.
            status, headers, _ = _request(port, "POST", "/run", RUN)
            assert status == 200
            assert headers["x-patternlet-served"] == "memo"


def _thread_count_settles(target, *, timeout=10.0):
    """Wait for stragglers mid-exit; return the settled count."""
    deadline = time.monotonic() + timeout
    n = threading.active_count()
    while n > target and time.monotonic() < deadline:
        time.sleep(0.02)
        n = threading.active_count()
    return n


class TestGracefulShutdown:
    def test_shutdown_drains_inflight_runs(self, tmp_path):
        results = []
        with running(cache_dir=str(tmp_path)) as daemon:
            _slow_dispatch(daemon, 0.5)
            port = daemon.port
            client = threading.Thread(
                target=lambda: results.append(
                    _request(port, "POST", "/run", RUN)))
            client.start()
            time.sleep(0.2)  # the run is in flight when shutdown begins
        client.join()
        assert results[0][0] == 200  # drained, not dropped

    def test_stopped_daemon_leaves_zero_threads(self, tmp_path):
        # PR-5's leak discipline extended to the daemon: the event loop
        # thread, the execution lane, and every rank thread the runs
        # parked must all be gone after shutdown.
        baseline = _thread_count_settles(threading.active_count())
        with running(cache_dir=str(tmp_path)) as daemon:
            for seed in range(3):
                status, _, _ = _request(daemon.port, "POST", "/run",
                                        dict(RUN, seed=seed))
                assert status == 200
        assert _thread_count_settles(baseline) <= baseline

    def test_shutdown_reports_clean_drain(self, tmp_path):
        # The context manager path returns through ServeDaemon.shutdown;
        # drive it directly to pin the clean-drain verdict.
        from repro.serve import ServeDaemon

        async def scenario():
            daemon = await ServeDaemon(
                ServeConfig(cache_dir=str(tmp_path))).start()
            status, _, _ = await _async_health(daemon.port)
            assert status == 200
            return await daemon.shutdown()

        assert asyncio.run(scenario()) is True


async def _async_health(port):
    """A minimal in-loop client (the daemon serves on this same loop)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":")[1])
    body = await reader.readexactly(length)
    writer.close()
    return status, {}, body
