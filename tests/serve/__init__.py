"""The patternlet service daemon: validation, coalescing, HTTP plumbing."""
