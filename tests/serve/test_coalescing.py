"""Single-flight coalescing: one execution per distinct spec, ever.

The hypothesis suite drives the *property* the daemon is built on: any
two request bodies spelling the same canonical ``RunSpec`` — ``np`` vs
``tasks``, defaults spelled out vs omitted — coalesce onto one
execution and receive byte-identical bodies; bodies differing in any
semantic field (seed, np, a toggle) never share an execution.  The
execution backend is stubbed to a deterministic coroutine so the
property runs hundreds of service-level bursts in milliseconds.
"""

from __future__ import annotations

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch.results import RunOutcome, outcome_to_wire
from repro.batch.specs import spec_key
from repro.serve import PatternletService, ServeConfig, parse_run_request

run_params = st.tuples(
    st.integers(min_value=0, max_value=7),   # seed
    st.integers(min_value=1, max_value=8),   # np
    st.booleans(),                           # the 'parallel' toggle
)


def _body(seed, np, parallel, *, spell_defaults=False, use_np=False):
    doc = {"patternlet": "openmp.spmd", "seed": seed,
           "toggles": {"parallel": parallel}}
    doc["np" if use_np else "tasks"] = np
    if spell_defaults:
        doc.update(mode="lockstep", policy="random")
    return doc


def _stubbed_service(**cfg):
    """A service whose executions are instant, counted, and deterministic."""
    service = PatternletService(ServeConfig(use_cache=False, **cfg))
    calls = []

    async def dispatch(spec):
        calls.append(spec)
        await asyncio.sleep(0.005)  # hold the flight open for attachers
        out = RunOutcome(spec=spec, key=spec_key(spec), cached=False,
                         text=f"ran {spec.label()}",
                         span=float(spec.seed + (spec.tasks or 0)),
                         wall=0.001, races=0)
        return outcome_to_wire(out), {"hits": 0, "misses": 1}

    service._dispatch = dispatch
    return service, calls


async def _burst(service, specs):
    return await asyncio.gather(*(service.serve_run(s) for s in specs))


class TestCoalescingProperty:
    @given(params=run_params, spell=st.booleans(), use_np=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_same_spec_bodies_always_coalesce(self, params, spell, use_np):
        seed, np, parallel = params
        a = parse_run_request(_body(seed, np, parallel))
        b = parse_run_request(_body(seed, np, parallel,
                                    spell_defaults=spell, use_np=use_np))
        assert spec_key(a) == spec_key(b)
        service, calls = _stubbed_service()
        try:
            results = asyncio.run(_burst(service, [a, b]))
        finally:
            service.close()
        assert len(calls) == 1  # exactly one execution
        bodies = {body for _, body, _ in results}
        assert len(bodies) == 1  # byte-identical responses
        assert {status for status, _, _ in results} == {200}

    @given(a=run_params, b=run_params)
    @settings(max_examples=40, deadline=None)
    def test_different_specs_never_coalesce(self, a, b):
        if a == b:
            return  # identity is the other property's business
        sa = parse_run_request(_body(*a))
        sb = parse_run_request(_body(*b))
        assert spec_key(sa) != spec_key(sb)
        service, calls = _stubbed_service()
        try:
            asyncio.run(_burst(service, [sa, sb]))
        finally:
            service.close()
        assert len(calls) == 2  # one execution each, no sharing


class TestServiceTiers:
    def test_burst_of_40_identical_requests_executes_once(self):
        spec = parse_run_request(_body(0, 4, True))
        service, calls = _stubbed_service()
        try:
            results = asyncio.run(_burst(service, [spec] * 40))
        finally:
            service.close()
        assert len(calls) == 1
        assert len({body for _, body, _ in results}) == 1
        served = [tier for _, _, tier in results]
        assert served.count("execute") == 1
        assert served.count("coalesce") == 39
        assert service.c_coalesce.total() == 39.0
        assert service.c_executions.total() == 1.0

    def test_finished_flights_serve_from_the_memo(self):
        spec = parse_run_request(_body(1, 2, False))
        service, calls = _stubbed_service()

        async def twice():
            first = await service.serve_run(spec)
            second = await service.serve_run(spec)
            return first, second

        try:
            (s1, b1, t1), (s2, b2, t2) = asyncio.run(twice())
        finally:
            service.close()
        assert (t1, t2) == ("execute", "memo")
        assert b1 == b2
        assert len(calls) == 1
        assert service.c_cache_hits.total() == 1.0

    def test_cold_daemon_serves_from_the_shared_disk_cache(self, tmp_path):
        # A restarted daemon inherits every prior execution through the
        # content-addressed store: same key, same bytes, zero runs.
        spec = parse_run_request({"patternlet": "mpi.reduction", "np": 4})
        cfg = dict(use_cache=True, cache_dir=str(tmp_path))
        warm = PatternletService(ServeConfig(**cfg))
        try:
            _, warm_body, tier = asyncio.run(warm.serve_run(spec))
        finally:
            warm.close()
        assert tier == "execute"
        cold = PatternletService(ServeConfig(**cfg))
        try:
            _, cold_body, tier = asyncio.run(cold.serve_run(spec))
        finally:
            cold.close()
        assert tier == "cache"
        assert cold_body == warm_body
        assert cold.c_executions.total() == 0.0
