"""Golden-file pin of the Fig. 21/22 patternlet under seeds 0-7.

The engine optimisations (inlined switch points, fused predicate
promotion, the policy's ``_randbelow`` fast lane, lock-free mailbox
scans) are all argued to be *observationally identical* to the code they
replaced: same runnable sets at every switch point, same RNG draw
sequence, same virtual-time arithmetic.  This test makes that argument
mechanically checkable forever: the plain and racy variants of the
Fig. 21/22 reduction patternlet must reproduce byte-identical output and
identical span for each of the first eight seeds, as captured in
``tests/golden_fig21_22.json`` before the optimisation work.

If this test fails after an engine change, the change altered scheduling
semantics — not just performance — and either has a bug or needs the
goldens regenerated *with justification in the commit message*.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.core import run_patternlet

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_fig21_22.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

CASES = sorted(GOLDEN)  # "plain/seed0" ... "race/seed7"


@pytest.mark.parametrize("case", CASES)
def test_interleaving_matches_golden(case):
    variant, seed_key = case.split("/")
    seed = int(seed_key.removeprefix("seed"))
    toggles = {"parallel_for": True} if variant == "race" else {}
    res = run_patternlet(
        "openmp.reduction", toggles=toggles, mode="lockstep", seed=seed
    )
    want = GOLDEN[case]
    assert res.text == want["text"], f"{case}: printed output drifted"
    assert res.span == want["span"], f"{case}: virtual-time span drifted"


def test_golden_file_covers_both_variants_for_eight_seeds():
    assert len(CASES) == 16
    assert {c.split("/")[0] for c in CASES} == {"plain", "race"}
    assert {int(c.split("seed")[1]) for c in CASES} == set(range(8))
