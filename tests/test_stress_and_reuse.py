"""Scale stress and runtime-reuse behaviour."""

import pytest

from repro.mp import MpRuntime, mpirun
from repro.pthreads import PthreadsRuntime
from repro.smp import SmpRuntime


class TestScale:
    def test_large_world_allreduce(self, any_mode):
        res = mpirun(64, lambda c: c.allreduce(1, "SUM"), mode=any_mode)
        assert res.results == [64] * 64

    def test_large_team_reduction(self, any_mode):
        rt = SmpRuntime(num_threads=48, mode=any_mode)
        res = rt.parallel(lambda ctx: ctx.reduce(ctx.thread_num, "+"))
        assert res.results[0] == sum(range(48))

    def test_deep_message_chain(self, any_mode):
        """A 40-rank token relay exercises long dependency chains."""

        def main(comm):
            if comm.rank == 0:
                comm.send(0, dest=1)
                return comm.recv(source=comm.size - 1)
            token = comm.recv(source=comm.rank - 1)
            nxt = (comm.rank + 1) % comm.size
            comm.send(token + 1, dest=nxt)
            return token

        res = mpirun(40, main, mode=any_mode)
        assert res.results[0] == 39

    def test_many_small_collectives(self, any_mode):
        def main(comm):
            total = 0
            for _ in range(25):
                total = comm.allreduce(total + 1, "MAX")
            return total

        res = mpirun(6, main, mode=any_mode)
        assert res.results == [25] * 6


class TestRuntimeReuse:
    def test_smp_runtime_many_regions(self, any_mode):
        rt = SmpRuntime(num_threads=3, mode=any_mode)
        for k in range(10):
            res = rt.parallel(lambda ctx, k=k: ctx.thread_num + k)
            assert res.results == [k, k + 1, k + 2]

    def test_mp_runtime_many_worlds(self, any_mode):
        rt = MpRuntime(mode=any_mode)
        for k in range(5):
            res = rt.run(3, lambda comm, k=k: comm.allreduce(k, "SUM"))
            assert res.results == [3 * k] * 3

    def test_mixed_runtimes_one_lockstep_executor(self):
        """SMP teams and MP worlds can interleave on one executor."""
        from repro.sched import make_executor

        ex = make_executor("lockstep", seed=5)
        smp = SmpRuntime(num_threads=2, executor=ex)
        mp = MpRuntime(executor=ex)
        a = smp.parallel(lambda ctx: ctx.thread_num).results
        b = mp.run(2, lambda comm: comm.rank).results
        c = smp.parallel_for(6, lambda i, ctx: i, reduction="+").reduction
        assert (a, b, c) == ([0, 1], [0, 1], 15)

    def test_pthreads_runtime_reuse(self, any_mode):
        rt = PthreadsRuntime(mode=any_mode, seed=1)
        for _ in range(3):
            total = rt.run(
                lambda pt: sum(pt.join(h) for h in [pt.create(lambda i=i: i) for i in range(4)])
            )
            assert total == 6

    def test_seed_determinism_survives_reuse(self):
        def story(seed):
            rt = SmpRuntime(num_threads=3, mode="lockstep", seed=seed)
            log = []

            def body(ctx):
                log.append(ctx.thread_num)
                ctx.checkpoint()
                log.append(-ctx.thread_num)

            rt.parallel(body)
            rt.parallel(body)  # second region on the same executor
            return log

        assert story(9) == story(9)
